"""Routing long-range circuits to a line before MPS sampling.

The MPS state handles a long-range CNOT by bonding two distant sites
directly; routing first converts it into a nearest-neighbor SWAP chain.
Both produce identical samples, but the bond structure — and with it the
contraction cost of every bitstring-probability query — differs.  This
example prints the per-site bond-dimension profile both ways.

Run:  python examples/routed_mps_sampling.py
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState, bond_dimension_profile
from repro.protocols import act_on
from repro.transpile import Topology, is_routed, route_circuit


def build_circuit(qubits, rng):
    """Shallow circuit with a few deliberately long-range CNOTs."""
    circuit = cirq.Circuit(cirq.H.on(q) for q in qubits)
    n = len(qubits)
    for _ in range(4):
        a, b = rng.choice(n, size=2, replace=False)
        circuit.append(cirq.CNOT.on(qubits[a], qubits[b]))
        circuit.append(cirq.T.on(qubits[int(rng.integers(n))]))
    return circuit


def evolve_mps(circuit, qubits):
    state = MPSState(qubits)
    for op in circuit.without_measurements().all_operations():
        act_on(op, state)
    return state


def main() -> None:
    n = 8
    qubits = cirq.LineQubit.range(n)
    rng = np.random.default_rng(3)
    circuit = build_circuit(qubits, rng)

    topology = Topology.line(n)
    routed = route_circuit(
        circuit, topology, initial_mapping={q: q for q in qubits}
    )
    assert is_routed(routed.circuit, topology)

    direct = evolve_mps(circuit, qubits)
    chained = evolve_mps(routed.circuit, qubits)

    print(f"{n}-qubit circuit with long-range CNOTs "
          f"({circuit.num_operations()} ops)")
    print(f"routed for a line topology: {routed.num_swaps} SWAPs inserted, "
          f"{routed.circuit.num_operations()} ops total\n")
    print(f"{'site':>6} {'direct bonds':>14} {'routed bonds':>14}")
    for k in range(n):
        d = bond_dimension_profile(direct)[k]
        c = bond_dimension_profile(chained)[k]
        print(f"{k:>6} {d:>14} {c:>14}")

    print("\nSampling both with BGLS (100 reps each)...")
    for label, circ in (("direct", circuit), ("routed", routed.circuit)):
        sampled = cirq.Circuit()
        for moment in circ.moments:
            sampled.append_new_moment(moment.operations)
        sampled.append(cirq.measure(*qubits, key="z"))
        sim = bgls.Simulator(
            initial_state=MPSState(qubits),
            apply_op=bgls.act_on,
            compute_probability=born.compute_probability_mps,
            seed=9,
        )
        bits = sim.sample_bitstrings(sampled, repetitions=100)
        print(f"  {label}: mean bit value {np.mean(bits):.3f}")

    print("\nDirect application bonds distant sites pairwise; routing trades")
    print("that for SWAP chains whose bonds stay chain-local — the choice")
    print("that decides tensor-contraction cost at scale.")


if __name__ == "__main__":
    main()
