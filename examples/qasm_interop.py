"""Using BGLS with non-native circuits via OpenQASM (paper Sec. 3.2.4).

Parses an OpenQASM 2.0 program (as produced by Qiskit or any other
framework), samples it with the BGLS simulator, and exports a native
circuit back to QASM.

Run:  python examples/qasm_interop.py
"""

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import circuit_from_qasm, circuit_to_qasm

QASM_PROGRAM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg out[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
rz(pi/8) q[2];
h q[2];
measure q[0] -> out[0];
measure q[1] -> out[1];
measure q[2] -> out[2];
"""


def main() -> None:
    circuit = circuit_from_qasm(QASM_PROGRAM)
    print("Imported circuit:")
    print(circuit)

    qubits = circuit.all_qubits()
    simulator = bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=7,
    )
    results = simulator.run(circuit, repetitions=500)
    print()
    bgls.plot_state_histogram(results, key="out")

    print("\nExporting a native circuit back to QASM:")
    ghz = cirq.Circuit(
        cirq.H(qubits[0]),
        cirq.CNOT(qubits[0], qubits[1]),
        cirq.measure(qubits[0], qubits[1], key="z"),
    )
    print(circuit_to_qasm(ghz))


if __name__ == "__main__":
    main()
