"""Noisy Clifford sampling at 40 qubits via stochastic Pauli channels.

A dense state vector at 40 qubits would need 16 TiB; the CH-form
stabilizer state handles it in O(n^2) memory.  Depolarizing noise is
applied as stochastically sampled Pauli gates — each trajectory stays a
stabilizer state — so the BGLS sampler produces noisy samples from a
regime far beyond dense simulation.

The observable: GHZ parity. Noiseless GHZ samples are all-0 or all-1
(parity of matched neighbors = n-1 agreements); depolarizing noise breaks
neighbor agreements at a predictable rate.

Run:  python examples/noisy_clifford_sampling.py
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.sampler import act_on_with_pauli_noise


def ghz_with_noise(qubits, p):
    circuit = cirq.Circuit(cirq.H.on(qubits[0]))
    for a, b in zip(qubits, qubits[1:]):
        circuit.append(cirq.CNOT.on(a, b))
        circuit.append(channels.depolarize(p).on(b))
    circuit.append(cirq.measure(*qubits, key="z"))
    return circuit


def neighbor_agreement(samples):
    """Mean fraction of adjacent qubit pairs agreeing per sample."""
    samples = np.asarray(samples)
    agree = samples[:, :-1] == samples[:, 1:]
    return float(agree.mean())


def main() -> None:
    n = 40
    qubits = cirq.LineQubit.range(n)
    repetitions = 200

    print(f"{n}-qubit GHZ with depolarizing noise, {repetitions} reps "
          "(CH-form stabilizer state)\n")
    print(f"{'noise p':>10} {'neighbor agreement':>20}")
    for p in (0.0, 0.02, 0.05, 0.1, 0.2):
        circuit = ghz_with_noise(qubits, p)
        simulator = bgls.Simulator(
            initial_state=bgls.StabilizerChFormSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=42,
        )
        samples = simulator.sample_bitstrings(circuit, repetitions=repetitions)
        print(f"{p:>10.2f} {neighbor_agreement(samples):>20.4f}")

    print("\nAt p = 0 every neighbor pair agrees (pure GHZ).  Each unit of")
    print("depolarizing strength breaks agreements at a predictable rate;")
    print("no dense simulator could check this at 40 qubits.")


if __name__ == "__main__":
    main()
