"""Noisy circuits and mid-circuit measurement (paper Sec. 3.2.1).

Demonstrates the two BGLS execution modes:

* the default *parallel* mode for unitary circuits (all repetitions share
  one wavefunction walk);
* the *quantum trajectories* mode, triggered automatically by channels or
  mid-circuit measurements, with conditional Kraus-branch selection.

Cross-checks the trajectory statistics against the exact density-matrix
channel output.

Run:  python examples/noisy_simulation.py
"""


import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import (
    ascii_histogram,
    empirical_distribution,
    total_variation_distance,
)


def main() -> None:
    qubits = cirq.LineQubit.range(3)
    circuit = cirq.Circuit(
        cirq.H(qubits[0]),
        cirq.depolarize(0.1)(qubits[0]),
        cirq.CNOT(qubits[0], qubits[1]),
        cirq.amplitude_damp(0.25)(qubits[1]),
        cirq.CNOT(qubits[1], qubits[2]),
        cirq.bit_flip(0.05)(qubits[2]),
        cirq.measure(*qubits, key="m"),
    )
    print("Noisy GHZ-like circuit:")
    print(circuit)

    # Exact channel output via the density-matrix backend.
    dm = bgls.DensityMatrixSimulationState(qubits)
    for op in circuit.without_measurements().all_operations():
        bgls.act_on(op, dm)
    exact = dm.diagonal_probabilities()
    print("\nExact outcome distribution (density matrix):")
    print(ascii_histogram(exact, min_prob=0.005))

    # BGLS trajectories over the pure-state backend.
    sim = bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=1,
    )
    result = sim.run(circuit, repetitions=4000)
    emp = empirical_distribution(result.measurements["m"], 3)
    print("\nBGLS quantum-trajectory estimate (4000 shots):")
    print(ascii_histogram(emp, min_prob=0.005))
    print(
        "\ntotal variation distance:",
        round(total_variation_distance(emp, exact), 4),
    )

    # Mid-circuit measurement: measure, then keep computing.
    mc = cirq.Circuit(
        cirq.H(qubits[0]),
        cirq.measure(qubits[0], key="early"),
        cirq.CNOT(qubits[0], qubits[1]),
        cirq.measure(qubits[1], key="late"),
    )
    result = sim.run(mc, repetitions=2000)
    agreement = float(
        (result.measurements["early"] == result.measurements["late"]).mean()
    )
    print(
        "\nmid-circuit measurement: early and late records agree with "
        f"probability {agreement:.3f} (expected 1.0)"
    )


if __name__ == "__main__":
    main()
