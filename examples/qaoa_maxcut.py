"""QAOA for MaxCut with BGLS over a bounded-bond MPS (Sec. 4.4, Figs. 8-9).

Reproduces the paper's pipeline end to end:

1. draw a random Erdős–Rényi graph G(10, 0.3);
2. build the 1-layer QAOA circuit parameterized by (gamma, beta);
3. sweep a parameter grid, sampling each configuration with the BGLS
   simulator over an MPS state with restricted bond dimension chi;
4. rerun the best parameters with more samples and report the best cut,
   compared against the brute-force optimum.

Run:  python examples/qaoa_maxcut.py
"""


import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.apps import brute_force_maxcut, random_graph, solve_maxcut


def main() -> None:
    graph = random_graph(10, edge_probability=0.3, random_state=4)
    print(
        f"Graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges: {sorted(graph.edges())}"
    )

    qubits = cirq.LineQubit.range(10)
    simulator = bgls.Simulator(
        bgls.MPSState(qubits, options=bgls.MPSOptions(max_bond=16)),
        bgls.act_on,
        born.compute_probability_mps,
        seed=0,
    )

    def sampler(circuit, repetitions):
        return simulator.sample_bitstrings(circuit, repetitions=repetitions)

    result = solve_maxcut(
        graph,
        sampler,
        grid_size=8,
        sweep_repetitions=100,
        final_repetitions=400,
    )

    print("\nSweep of average cut over the (gamma, beta) grid:")
    header = "gamma\\beta " + " ".join(
        f"{b:6.2f}" for b in result.sweep_betas
    )
    print(header)
    for gamma, row in zip(result.sweep_gammas, result.sweep_average_cuts):
        print(f"{gamma:10.2f} " + " ".join(f"{v:6.2f}" for v in row))

    optimum, _ = brute_force_maxcut(graph)
    left, right = result.partition()
    print(f"\nbest parameters: gamma={result.best_gamma:.3f}, "
          f"beta={result.best_beta:.3f}")
    print(f"best sampled cut: {result.best_cut}   (brute-force optimum: {optimum})")
    print(f"partition: {left} | {right}")


if __name__ == "__main__":
    main()
