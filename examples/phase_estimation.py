"""Quantum phase estimation with the BGLS sampler.

Estimates the eigenphase of ``U = diag(1, e^{2 pi i phi})`` two ways: an
exactly-representable phase (a single deterministic peak) and a generic
phase (mass concentrated on the two nearest grid points).  The QFT's
all-to-all controlled phases make this a worst case for gate-by-gate
sampling over dense states — every candidate update matters.

Run:  python examples/phase_estimation.py
"""

import numpy as np

import repro as bgls
from repro import apps, born
from repro import circuits as cirq


def run_qpe(phi: float, n_bits: int, repetitions: int = 300) -> None:
    unitary = np.diag([1.0, np.exp(2j * np.pi * phi)])
    circuit, phase_qubits, targets = apps.phase_estimation_circuit(
        unitary,
        n_bits,
        target_preparation=[cirq.X.on(cirq.LineQubit(n_bits))],
    )
    qubits = phase_qubits + targets
    simulator = bgls.Simulator(
        initial_state=bgls.StateVectorSimulationState(qubits),
        apply_op=bgls.act_on,
        compute_probability=born.compute_probability_state_vector,
        seed=5,
    )
    result = simulator.run(circuit, repetitions=repetitions)
    samples = result.measurements["phase"]
    estimate = apps.estimate_phase(samples)

    print(f"true phase phi = {phi:.6f}")
    print(f"{n_bits}-bit estimate = {estimate:.6f} "
          f"(error {abs(estimate - phi):.6f}, resolution {1 / 2**n_bits:.6f})")
    rows, counts = np.unique(samples, axis=0, return_counts=True)
    order = np.argsort(-counts)[:4]
    print("top outcomes:")
    for i in order:
        bits = "".join(str(b) for b in rows[i])
        print(
            f"  {bits} -> phase {apps.phase_from_bits(rows[i]):.4f} "
            f"({counts[i]}/{repetitions})"
        )
    print()


def main() -> None:
    print("=== exactly representable phase (0.101 binary = 0.625) ===")
    run_qpe(phi=0.625, n_bits=3)

    print("=== generic phase (phi = 0.3), 5 counting bits ===")
    run_qpe(phi=0.3, n_bits=5)


if __name__ == "__main__":
    main()
