"""MPS-backed BGLS sampling (Sec. 4.3): where tensor networks win and lose.

Two contrasting workloads from the paper:

* a GHZ circuit with randomly sequenced CNOTs (Fig. 6) — maximal
  entanglement; the naive per-qubit tensor network degrades to dense-like
  cost as width grows;
* a shallow random circuit with sparse CNOTs (Fig. 7a) — bounded
  entanglement; MPS sampling stays cheap while the dense state vector
  grows exponentially.

Run:  python examples/mps_sampling.py
"""

import time

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.apps import random_ghz_circuit, random_shallow_circuit


def time_sampling(state_factory, compute_probability, circuit, qubits, reps=20):
    sim = bgls.Simulator(
        state_factory(qubits),
        bgls.act_on,
        compute_probability,
        seed=0,
    )
    start = time.perf_counter()
    sim.sample_bitstrings(circuit, repetitions=reps)
    return time.perf_counter() - start


def main() -> None:
    print("=== Random-GHZ workload (maximal entanglement, Fig. 6) ===")
    print(f"{'width':>6} {'mps_s':>10} {'sv_s':>10}")
    for width in (4, 8, 12, 14):
        qubits = cirq.LineQubit.range(width)
        circuit = random_ghz_circuit(qubits, random_state=width)
        t_mps = time_sampling(
            bgls.MPSState, born.compute_probability_mps, circuit, qubits
        )
        t_sv = time_sampling(
            bgls.StateVectorSimulationState,
            born.compute_probability_state_vector,
            circuit,
            qubits,
        )
        print(f"{width:>6} {t_mps:>10.4f} {t_sv:>10.4f}")
    print("both scale exponentially: GHZ entanglement defeats the MPS.\n")

    print("=== Shallow sparse workload (low entanglement, Fig. 7a) ===")
    print(f"{'width':>6} {'mps_s':>10} {'sv_s':>10}")
    for width in (6, 10, 14, 18):
        qubits = cirq.LineQubit.range(width)
        circuit = random_shallow_circuit(
            qubits, depth=5, cnot_probability=0.15, random_state=width
        )
        t_mps = time_sampling(
            bgls.MPSState, born.compute_probability_mps, circuit, qubits
        )
        t_sv = time_sampling(
            bgls.StateVectorSimulationState,
            born.compute_probability_state_vector,
            circuit,
            qubits,
        )
        print(f"{width:>6} {t_mps:>10.4f} {t_sv:>10.4f}")
    print("MPS stays flat while the dense state vector blows up with width.")


if __name__ == "__main__":
    main()
