"""Near-Clifford sampling with the sum-over-Cliffords technique (Sec. 4.2).

Builds a random Clifford+T circuit, samples it three ways:

1. exactly, from the dense final distribution (ground truth),
2. with BGLS over the CH-form stabilizer state after replacing T -> S
   (pure Clifford, exact up to shot noise),
3. with BGLS + ``act_on_near_clifford`` on the original circuit, where each
   T gate stochastically becomes I or S (one of the 2^#T branches per shot),

and prints the fractional overlap each attains with its ideal distribution.
The sum-over-Cliffords run visibly lags — the paper's Fig. 4a.

Run:  python examples/near_clifford_sampling.py
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import empirical_distribution, fractional_overlap


def overlap_with_ideal(circuit, qubits, sampler, repetitions) -> float:
    ideal = (
        np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qubits)
        )
        ** 2
    )
    bits = sampler.sample_bitstrings(circuit, repetitions=repetitions)
    return fractional_overlap(empirical_distribution(bits, len(qubits)), ideal)


def main() -> None:
    qubits = cirq.LineQubit.range(5)
    reps = 2000

    clifford_t = cirq.random_clifford_t_circuit(
        qubits, 20, t_density=0.2, random_state=11
    )
    n_t = cirq.count_gate(clifford_t, cirq.T)
    pure_clifford = cirq.substitute_gate(clifford_t, cirq.T, cirq.S)
    print(f"Random Clifford+T circuit: depth {clifford_t.depth()}, "
          f"{n_t} T gates\n")

    exact = bgls.ExactDistributionSampler(
        bgls.StateVectorSimulationState(qubits), bgls.act_on, seed=0
    )
    ideal = np.abs(
        clifford_t.without_measurements().final_state_vector(qubit_order=qubits)
    ) ** 2
    exact_bits = exact.sample_bitstrings(clifford_t, repetitions=reps)
    print(
        "exact sampler overlap (shot noise only):        ",
        round(fractional_overlap(
            empirical_distribution(exact_bits, 5), ideal), 3),
    )

    stabilizer_sim = bgls.Simulator(
        bgls.StabilizerChFormSimulationState(qubits),
        bgls.act_on,  # plain Clifford application
        born.compute_probability_stabilizer_state,
        seed=1,
    )
    print(
        "pure-Clifford (T->S) stabilizer BGLS overlap:   ",
        round(overlap_with_ideal(pure_clifford, qubits, stabilizer_sim, reps), 3),
    )

    near_clifford_sim = bgls.Simulator(
        bgls.StabilizerChFormSimulationState(qubits),
        bgls.act_on_near_clifford,  # stochastic I/S substitution for T
        born.compute_probability_stabilizer_state,
        seed=2,
    )
    print(
        f"sum-over-Cliffords BGLS overlap ({n_t} T gates):   ",
        round(overlap_with_ideal(clifford_t, qubits, near_clifford_sim, reps), 3),
    )
    print(
        "\nThe non-Clifford run explores one of "
        f"2^{n_t} stabilizer branches per shot, so its attained overlap lags"
        "\n(the paper's Fig. 4a behaviour)."
    )


if __name__ == "__main__":
    main()
