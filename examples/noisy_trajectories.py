"""Batched noisy trajectories through the warm pool.

A depolarizing circuit forces trajectory mode: every repetition replays
the whole circuit as its own stochastic trajectory.
``trajectory_mode="batched"`` runs those repetitions as stacked NumPy
tiles — one vectorized pass per plan record instead of one Python gate
loop per repetition — and composes with the warm-pool executor, which
splits the repetition block into per-worker chunks.

The batched engine's seeding contract makes trajectory ``r`` a pure
function of ``(seed, point, r)``, so the pooled output is bit-for-bit
identical to the single-process batched run no matter how many workers
split the block.  This example times serial vs batched trajectories,
then shows the worker-count invariance.

Run:  PYTHONPATH=src python examples/noisy_trajectories.py
"""

import time

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.sampler import PoolManager, ProcessPoolExecutor


NQUBITS = 5
DEPTH = 8
REPS = 2_000
QUBITS = cirq.LineQubit.range(NQUBITS)


def noisy_circuit():
    rng = np.random.default_rng(7)
    circuit = cirq.Circuit(cirq.H(q) for q in QUBITS)
    for layer in range(DEPTH):
        a = layer % (NQUBITS - 1)
        circuit.append(cirq.CNOT(QUBITS[a], QUBITS[a + 1]))
        circuit.append(
            cirq.Rx(float(rng.uniform(0.2, 1.0))).on(
                QUBITS[(3 * layer) % NQUBITS]
            )
        )
        circuit.append(
            channels.depolarize(0.03).on(QUBITS[(layer + 1) % NQUBITS])
        )
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


def make_simulator(mode, executor=None):
    return bgls.Simulator(
        initial_state=bgls.StateVectorSimulationState(QUBITS),
        apply_op=bgls.act_on,
        compute_probability=born.compute_probability_state_vector,
        seed=2023,
        trajectory_mode=mode,
        executor=executor,
    )


def main() -> None:
    circuit = noisy_circuit()

    print(f"{REPS} noisy trajectories, {NQUBITS} qubits, depth {DEPTH}:")
    timings = {}
    for mode in ("serial", "batched"):
        simulator = make_simulator(mode)
        start = time.perf_counter()
        simulator.run(circuit, repetitions=REPS)
        timings[mode] = time.perf_counter() - start
        print(f"  {mode:>7}: {timings[mode]:.3f}s")
    print(f"  speedup: {timings['serial'] / timings['batched']:.1f}x")

    # The same batched block through the warm pool: chunk seeds anchor
    # each worker's tile to its global repetition offset, so the pooled
    # output is invariant to the worker count.
    pooled = {}
    for workers in (1, 2):
        with PoolManager() as manager:
            simulator = make_simulator(
                "batched",
                ProcessPoolExecutor(
                    num_workers=workers, pool_manager=manager
                ),
            )
            pooled[workers] = simulator.run_batch(
                [circuit], repetitions=REPS
            )[0]
    np.testing.assert_array_equal(
        pooled[1].measurements["m"], pooled[2].measurements["m"]
    )
    print("Pooled batched output is identical for 1 and 2 workers.")


if __name__ == "__main__":
    main()
