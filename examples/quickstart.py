"""Quickstart: the paper's core usage example (Sec. 3.1 / Fig. 1).

Builds a 2-qubit GHZ circuit, samples it with the BGLS gate-by-gate
simulator over a state-vector representation, and prints the measurement
histogram — only the 00 and 11 outcomes appear, each with ~50% frequency.

Run:  python examples/quickstart.py
"""

import repro as bgls
from repro import born
from repro import circuits as cirq


def main() -> None:
    nqubits = 2
    qubits = cirq.LineQubit.range(nqubits)
    circuit = cirq.Circuit(
        cirq.H.on(qubits[0]),
        cirq.CNOT.on(qubits[0], qubits[1]),
        cirq.measure(*qubits, key="z"),
    )
    print("Circuit:")
    print(circuit)
    print()

    simulator = bgls.Simulator(
        initial_state=bgls.StateVectorSimulationState(
            qubits=qubits, initial_state=0
        ),
        apply_op=bgls.act_on,
        compute_probability=born.compute_probability_state_vector,
        seed=2023,
    )
    results = simulator.run(circuit, repetitions=1000)
    bgls.plot_state_histogram(results)

    print()
    print("The gate-by-gate sampler walked the circuit once per batch,")
    print("resampling candidate bitstrings over each gate's support —")
    print("no marginal distributions were ever computed.")


if __name__ == "__main__":
    main()
