"""Streaming XEB verification of a supremacy-style random-circuit batch.

The paper's motivating workload end to end: build an ensemble of
distinct random supremacy circuits (delivered pulse-split, the way
hardware emits them), collapse the same-axis pulse runs with the
``MergeRotations`` transpile pass, sweep the whole ensemble through
``run_batch(scope="points")`` on the warm pool — one worker init for
every circuit — and print each circuit's linear-XEB fidelity the moment
its point lands.  Finishes with the ensemble estimate and the
Porter-Thomas convergence diagnostics of one member.

Run:  PYTHONPATH=src python examples/xeb_supremacy.py
"""

import time

import repro as bgls
from repro import born
from repro.analysis import ensemble_xeb, porter_thomas_convergence
from repro.apps import (
    ideal_output_probabilities,
    stream_xeb_workload,
    xeb_circuits,
)
from repro.sampler import PoolManager, ProcessPoolExecutor
from repro.transpile import MergeRotations, PassPipeline

ROWS, COLS, CYCLES = 2, 3, 8
NUM_CIRCUITS = 16
REPS = 500


def main() -> None:
    raw = xeb_circuits(
        ROWS, COLS, CYCLES, NUM_CIRCUITS, pulse_splits=4, random_state=7
    )
    pipeline = PassPipeline([MergeRotations()])
    circuits = [pipeline(c) for c in raw]
    stats = pipeline.stats[0]
    print(
        f"MergeRotations: {stats.ops_before} -> {stats.ops_after} ops "
        f"per circuit (depth {stats.depth_before} -> {stats.depth_after})"
    )

    probs = [ideal_output_probabilities(c) for c in circuits]
    qubits = circuits[0].all_qubits()

    with PoolManager() as manager:
        simulator = bgls.Simulator(
            initial_state=bgls.StateVectorSimulationState(qubits),
            apply_op=bgls.act_on,
            compute_probability=born.compute_probability_state_vector,
            seed=2023,
            executor=ProcessPoolExecutor(num_workers=2, pool_manager=manager),
        )

        print(
            f"Streaming XEB over {NUM_CIRCUITS} distinct circuits, "
            f"{REPS} samples each:"
        )
        start = time.perf_counter()
        estimates = []
        for i, est in enumerate(
            stream_xeb_workload(
                simulator, circuits, REPS, probabilities=probs
            )
        ):
            estimates.append(est)
            print(
                f"  circuit {i:2d} after {time.perf_counter() - start:5.2f}s: "
                f"F_xeb = {est.fidelity:6.3f} +- {est.std_err:.3f}"
            )
        assert manager.stats["inits"] == 1, manager.stats
        print(f"Warm-pool inits for the whole ensemble: "
              f"{manager.stats['inits']}")

    result = ensemble_xeb(estimates)
    print(
        f"Ensemble fidelity: {result.fidelity:.3f} "
        f"+- {result.scatter_err:.3f} (circuit scatter) "
        f"over {result.num_samples} samples"
    )
    conv = porter_thomas_convergence(probs[0])
    print(
        f"Porter-Thomas check (circuit 0): KS p-value {conv.p_value:.3f}, "
        f"collision ratio {conv.collision_ratio:.2f}, "
        f"speckle purity {conv.speckle_purity:.2f}"
    )


if __name__ == "__main__":
    main()
