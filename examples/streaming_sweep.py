"""Streaming sweep results: consume each point as its last chunk lands.

``Simulator.run_sweep_iter`` yields one :class:`Result` per sweep point
*while the rest of the sweep is still executing* on the warm pool —
results travel back through zero-copy shared-memory planes, are
collected completion-ordered, and are released to the consumer in point
order.  This example sweeps a rotation angle, prints a live |1...1>
probability estimate the moment each point completes, and shows the
streamed results are bit-for-bit the blocking ``run_sweep`` list.

Run:  PYTHONPATH=src python examples/streaming_sweep.py
"""

import time

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import PoolManager, ProcessPoolExecutor


def main() -> None:
    nqubits = 4
    qubits = cirq.LineQubit.range(nqubits)
    theta = cirq.Symbol("theta")
    circuit = cirq.Circuit(cirq.Rx(theta).on(q) for q in qubits)
    circuit.append(cirq.measure(*qubits, key="m"))

    points = 8
    params = [{"theta": np.pi * i / (points - 1)} for i in range(points)]
    repetitions = 50_000

    with PoolManager() as manager:
        simulator = bgls.Simulator(
            initial_state=bgls.StateVectorSimulationState(qubits),
            apply_op=bgls.act_on,
            compute_probability=born.compute_probability_state_vector,
            seed=2023,
            executor=ProcessPoolExecutor(
                num_workers=2, pool_manager=manager
            ),
        )

        print(f"Streaming {points}-point sweep, {repetitions} reps/point:")
        start = time.perf_counter()
        streamed = []
        for i, result in enumerate(
            simulator.run_sweep_iter(
                circuit, params, repetitions=repetitions, scope="points"
            )
        ):
            streamed.append(result)
            ones = result.measurements["m"].all(axis=1).mean()
            print(
                f"  point {i} (theta={params[i]['theta']:.3f}) after "
                f"{time.perf_counter() - start:5.2f}s: "
                f"P(1...1) ~= {ones:.3f}"
            )

        # The streamed results ARE the blocking API's list, bit for bit.
        blocking = simulator.run_sweep(
            circuit, params, repetitions=repetitions, scope="points"
        )
        for streamed_result, blocking_result in zip(streamed, blocking):
            np.testing.assert_array_equal(
                streamed_result.measurements["m"],
                blocking_result.measurements["m"],
            )
    print("Streamed results match run_sweep exactly.")


if __name__ == "__main__":
    main()
