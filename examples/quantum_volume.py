"""Quantum-volume heavy-output sampling with the BGLS sampler.

Runs the IBM quantum-volume protocol on 4-qubit model circuits: Haar-
random SU(4) blocks on randomly permuted pairs, heavy set from the exact
distribution, heavy-output probability from BGLS samples.  An ideal
sampler converges to HOP ~ 0.85 >> 2/3; a uniform sampler scores ~1/2.

Run:  python examples/quantum_volume.py
"""


import repro as bgls
from repro import apps, born
from repro import circuits as cirq
from repro.analysis import wilson_interval


def main() -> None:
    m = 4
    qubits = cirq.LineQubit.range(m)

    def bgls_sampler(circuit, repetitions):
        simulator = bgls.Simulator(
            initial_state=bgls.StateVectorSimulationState(qubits),
            apply_op=bgls.act_on,
            compute_probability=born.compute_probability_state_vector,
            seed=17,
        )
        return simulator.sample_bitstrings(circuit, repetitions=repetitions)

    result = apps.run_quantum_volume(
        m,
        bgls_sampler,
        num_circuits=6,
        repetitions=250,
        random_state=7,
    )

    print(f"quantum volume protocol at m = {m}")
    print(f"per-circuit heavy-output probabilities:")
    for k, hop in enumerate(result.hops):
        print(f"  circuit {k}: HOP = {hop:.3f}")
    print(f"\nmean HOP = {result.mean_hop:.3f} "
          f"(ideal asymptote {apps.IDEAL_ASYMPTOTIC_HOP:.3f}, threshold 2/3)")
    total = result.num_circuits * result.repetitions
    successes = int(round(result.mean_hop * total))
    lo, hi = wilson_interval(successes, total)
    print(f"95% Wilson interval on HOP: [{lo:.3f}, {hi:.3f}]")
    verdict = "PASSES" if result.passed else "FAILS"
    print(f"\n{verdict}: log2(QV) = {result.log2_quantum_volume} "
          f"=> quantum volume {2**result.log2_quantum_volume}")


if __name__ == "__main__":
    main()
