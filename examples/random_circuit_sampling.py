"""Random circuit sampling and cross-entropy benchmarking.

The paper's introduction motivates weak simulation via the "quantum
supremacy" experiments: sampling bitstrings from random circuits, scored
by linear cross-entropy (XEB).  This example builds a Sycamore-style
random circuit on a 2x3 grid, samples it with BGLS, and shows that the
samples achieve near-ideal XEB while a uniform sampler scores ~0.

Run:  python examples/random_circuit_sampling.py
"""

import numpy as np

import repro as bgls
from repro import born
from repro.apps import random_supremacy_circuit, xeb_fidelity


def main() -> None:
    circuit = random_supremacy_circuit(
        2, 3, cycles=8, random_state=7, measure_key=None
    )
    qubits = circuit.all_qubits()
    print(f"Random circuit on a 2x3 grid, depth {circuit.depth()}, "
          f"{circuit.num_operations()} operations")

    ideal = np.abs(circuit.final_state_vector(qubit_order=qubits)) ** 2
    ideal_xeb = float(2 ** len(qubits) * (ideal**2).sum() - 1.0)
    print(f"ideal sampler XEB (Porter-Thomas ~ 1): {ideal_xeb:.3f}")

    sim = bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=0,
    )
    samples = sim.sample_bitstrings(circuit, repetitions=5000)
    print(f"BGLS sampler XEB:                      "
          f"{xeb_fidelity(samples, ideal):.3f}")

    rng = np.random.default_rng(1)
    uniform = rng.integers(0, 2, size=(5000, len(qubits)))
    print(f"uniform sampler XEB (should be ~0):    "
          f"{xeb_fidelity(uniform, ideal):.3f}")


if __name__ == "__main__":
    main()
