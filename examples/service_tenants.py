"""Two tenants streaming concurrently off one warm sampling service.

``SamplingService`` turns the simulator stack into a long-lived,
multi-tenant job tier: tenants submit sweep jobs from their own threads,
a single dispatcher drains the per-tenant queues by quota-weighted fair
share onto ONE warm process pool, and every job's results stream back
per point while later jobs are still queued.  Each job carries its own
seed, so anything the service returns can be replayed bit-for-bit with
a plain ``run_sweep``.

This example runs an "analysis" tenant (few large sweeps) and a
"dashboard" tenant (many small probes, double quota) concurrently,
streams both from worker threads, then shows the shared pool was
initialized once and replays one job directly to prove determinism.

Run:  PYTHONPATH=src python examples/service_tenants.py
"""

import threading

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import SamplingService


def sweep_circuit(qubits, theta):
    circuit = cirq.Circuit(cirq.H(q) for q in qubits)
    for a, b in zip(qubits[:-1], qubits[1:]):
        circuit.append(cirq.CNOT(a, b))
    for q in qubits:
        circuit.append(cirq.Rx(theta).on(q))
    circuit.append(cirq.measure(*qubits, key="m"))
    return circuit


def main() -> None:
    qubits = cirq.LineQubit.range(5)
    theta = cirq.Symbol("theta")
    circuit = sweep_circuit(qubits, theta)

    service = SamplingService(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        num_workers=2,
    )
    with service:
        # The dashboard tenant pays for snappier service: double quota.
        service.register_tenant("analysis", quota=1.0)
        service.register_tenant("dashboard", quota=2.0)

        def analysis(log):
            params = [{"theta": np.pi * i / 7} for i in range(8)]
            for n in range(2):
                job = service.submit(
                    circuit,
                    params,
                    tenant="analysis",
                    repetitions=20_000,
                    seed=100 + n,
                )
                for i, result in enumerate(job.stream()):
                    ones = result.measurements["m"].all(axis=1).mean()
                    log.append(
                        f"[analysis ] sweep {n} point {i}: "
                        f"P(1...1) ~= {ones:.3f}"
                    )

        def dashboard(log):
            for n in range(6):
                job = service.submit(
                    circuit,
                    [{"theta": 0.1 + 0.4 * n}, {"theta": 0.2 + 0.4 * n}],
                    tenant="dashboard",
                    repetitions=2_000,
                    seed=200 + n,
                )
                results = job.result(timeout=300)
                ones = results[0].measurements["m"].all(axis=1).mean()
                log.append(f"[dashboard] probe {n}: P(1...1) ~= {ones:.3f}")

        logs = ([], [])
        threads = [
            threading.Thread(target=analysis, args=(logs[0],)),
            threading.Thread(target=dashboard, args=(logs[1],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for log in logs:
            print("\n".join(log))

        # One pool served both tenants: initialized once, reused since.
        print(f"\npool stats: {service.pool_stats()}")
        for tenant, stats in sorted(service.stats().items()):
            print(
                f"  {tenant}: {stats['jobs_completed']} jobs, "
                f"{stats['repetitions']} total reps, "
                f"queue wait {stats['queue_wait_seconds']:.3f}s"
            )

        # Every job is replayable: same (circuit, params, reps, seed)
        # through a plain serial Simulator gives the same bits.
        replay_params = [{"theta": 0.1}, {"theta": 0.2}]
        job = service.submit(
            circuit,
            replay_params,
            tenant="dashboard",
            repetitions=2_000,
            seed=7,
        )
        serviced = job.result(timeout=300)
        direct = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=job.seed,
        ).run_sweep(circuit, replay_params, 2_000)
        for a, b in zip(serviced, direct):
            np.testing.assert_array_equal(
                a.measurements["m"], b.measurements["m"]
            )
        print("service results replay bit-for-bit through run_sweep")


if __name__ == "__main__":
    main()
