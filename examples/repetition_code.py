"""Error correction under noise: the 3-qubit repetition code.

Sweeps the physical bit-flip rate p and compares the sampled logical
error rate against the closed form 3p² − 2p³, using the stabilizer
backend with stochastic Pauli noise — the configuration that would scale
to real code distances.  Mid-circuit syndrome measurements and terminal
data measurements flow through the BGLS trajectory path together.

Run:  python examples/repetition_code.py
"""

import repro as bgls
from repro import apps, born
from repro import circuits as cirq
from repro.sampler import act_on_with_pauli_noise


def main() -> None:
    qubits = cirq.LineQubit.range(5)  # 3 data + 2 syndrome ancillas
    repetitions = 2000

    print("3-qubit repetition code, syndrome-decoded "
          f"({repetitions} reps per point, stabilizer backend)\n")
    print(f"{'p':>8} {'logical (sampled)':>18} {'logical (theory)':>17} "
          f"{'protected?':>11}")
    for p in (0.01, 0.05, 0.1, 0.2, 0.3, 0.5):
        circuit = apps.repetition_code_circuit(p)
        simulator = bgls.Simulator(
            initial_state=bgls.StabilizerChFormSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=13,
        )
        result = simulator.run(circuit, repetitions=repetitions)
        sampled = apps.logical_error_rate(result)
        theory = apps.theoretical_logical_error_rate(p)
        protected = "yes" if sampled < p else "no"
        print(f"{p:>8.2f} {sampled:>18.4f} {theory:>17.4f} {protected:>11}")

    print("\nBelow p = 1/2 the code suppresses errors quadratically; at")
    print("p = 1/2 it provides no protection — both visible in the sweep.")


if __name__ == "__main__":
    main()
