"""VQE for the transverse-field Ising chain with BGLS sampling.

Optimizes a 2-layer hardware-efficient ansatz for the 4-site TFIM
(J = 1, h = 0.9), then re-estimates the optimal energy from BGLS samples
in two measurement bases — the full variational measurement workflow on
top of the gate-by-gate sampler.

Run:  python examples/vqe_tfim.py
"""

import repro as bgls
from repro import apps, born
from repro import circuits as cirq


def main() -> None:
    problem = apps.TFIMProblem(num_sites=4, coupling=1.0, field=0.9)
    qubits = cirq.LineQubit.range(problem.num_sites)

    def sampler(circuit, repetitions):
        simulator = bgls.Simulator(
            initial_state=bgls.StateVectorSimulationState(qubits),
            apply_op=bgls.act_on,
            compute_probability=born.compute_probability_state_vector,
            seed=21,
        )
        return simulator.sample_bitstrings(circuit, repetitions=repetitions)

    print(f"TFIM chain: {problem.num_sites} sites, "
          f"J = {problem.coupling}, h = {problem.field}")
    print(f"exact ground energy: {apps.exact_ground_energy(problem):.6f}\n")

    result = apps.optimize_tfim(
        problem,
        layers=2,
        grid_size=7,
        refinements=2,
        sampler=sampler,
        repetitions=3000,
    )

    print(f"grid-search evaluations: {result.evaluations}")
    params = ", ".join(f"{p:+.4f}" for p in result.best_params)
    print(f"best parameters: [{params}]")
    print(f"sampled energy at optimum: {result.best_energy:.6f}")
    print(f"exact ground energy:       {result.exact_energy:.6f}")
    print(f"relative error:            {result.relative_error:.4%}")
    print("\nEnergy was estimated from two BGLS measurement settings:")
    print("Z-basis samples for the ZZ couplings, X-basis samples for the")
    print("transverse field.")


if __name__ == "__main__":
    main()
