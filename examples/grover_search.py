"""Grover search with the BGLS sampler.

Searches a 5-qubit (N = 32) database for a single marked item.  The
output distribution is the opposite extreme from random-circuit sampling:
after the optimal number of Grover iterations nearly all probability mass
sits on one bitstring, and the gate-by-gate sampler's candidate updates
must track that concentration exactly.

Run:  python examples/grover_search.py
"""

import numpy as np

import repro as bgls
from repro import apps, born
from repro import circuits as cirq


def main() -> None:
    n = 5
    marked = 0b10110
    qubits = cirq.LineQubit.range(n)

    iterations = apps.optimal_iterations(n, num_marked=1)
    circuit = apps.grover_circuit(n, [marked], iterations=iterations)
    print(f"Searching N = {2**n} items for index {marked:0{n}b}")
    print(f"Optimal Grover iterations: {iterations}")

    simulator = bgls.Simulator(
        initial_state=bgls.StateVectorSimulationState(qubits),
        apply_op=bgls.act_on,
        compute_probability=born.compute_probability_state_vector,
        seed=11,
    )
    repetitions = 500
    samples = simulator.sample_bitstrings(circuit, repetitions=repetitions)

    success = apps.success_probability(samples, [marked])
    print(f"\nSampled {repetitions} repetitions.")
    print(f"Fraction landing on the marked item: {success:.3f}")
    theory = np.sin((2 * iterations + 1) * np.arcsin(np.sqrt(1 / 2**n))) ** 2
    print(f"Theoretical success probability:      {theory:.3f}")

    rows, counts = np.unique(samples, axis=0, return_counts=True)
    order = np.argsort(-counts)[:3]
    print("\nTop sampled bitstrings:")
    for i in order:
        bits = "".join(str(b) for b in rows[i])
        print(f"  {bits}  x{counts[i]}")


if __name__ == "__main__":
    main()
