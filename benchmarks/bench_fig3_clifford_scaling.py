"""Fig. 3: sampling runtime scaling for pure Clifford circuits.

Paper claims (Sec. 4.1.3): with the CH-form stabilizer state, computing a
bitstring probability costs O(n^2) *independent of depth*, so sampling
runtime grows ~linearly with depth (a) and polynomially with width (b).
"""


from repro import circuits as cirq

from conftest import make_stabilizer_simulator, print_series, wall_time

REPS = 20


def _run(qubits, circuit, seed=0):
    sim = make_stabilizer_simulator(qubits, seed=seed)
    sim.sample_bitstrings(circuit, repetitions=REPS)


def test_fig3a_runtime_vs_depth(benchmark):
    """Runtime grows ~linearly in depth at fixed width."""
    qubits = cirq.LineQubit.range(8)
    depths = [10, 20, 40, 80, 160]
    rows = []
    times = {}
    for depth in depths:
        circuit = cirq.random_clifford_circuit(qubits, depth, random_state=depth)
        seconds = wall_time(lambda: _run(qubits, circuit))
        times[depth] = seconds
        rows.append((depth, seconds, seconds / depth))
    print_series(
        "Fig. 3a - Clifford sampling runtime vs depth (8 qubits, 20 reps)",
        ["depth", "seconds", "sec_per_moment"],
        rows,
    )
    # Linear shape: doubling depth must not much more than double runtime
    # (no exponential blow-up; allow generous constant factors).
    assert times[160] < times[10] * 64
    # Per-amplitude cost is depth-independent: per-moment cost ~flat.
    ratio = (times[160] / 160) / (times[20] / 20)
    assert ratio < 4.0

    circuit = cirq.random_clifford_circuit(qubits, 40, random_state=1)
    benchmark(lambda: _run(qubits, circuit))


def test_fig3b_runtime_vs_width(benchmark):
    """Runtime grows polynomially (not exponentially) in width."""
    depths = 30
    widths = [4, 8, 16, 32]
    rows = []
    times = {}
    for width in widths:
        qubits = cirq.LineQubit.range(width)
        circuit = cirq.random_clifford_circuit(qubits, depths, random_state=width)
        seconds = wall_time(lambda: _run(qubits, circuit))
        times[width] = seconds
        rows.append((width, seconds))
    print_series(
        "Fig. 3b - Clifford sampling runtime vs width (depth 30, 20 reps)",
        ["width", "seconds"],
        rows,
    )
    # Polynomial shape: width 32 vs 4 is an 8x increase; if scaling were
    # exponential (2^n), the ratio would exceed 2^28.  Require << that and
    # consistent with a low-degree polynomial (allow up to ~n^3 + overheads).
    growth = times[32] / times[4]
    assert growth < 8**3.5

    qubits = cirq.LineQubit.range(16)
    circuit = cirq.random_clifford_circuit(qubits, depths, random_state=0)
    benchmark(lambda: _run(qubits, circuit))
