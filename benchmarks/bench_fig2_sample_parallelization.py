"""Fig. 2: automatic sample parallelization saturates runtime.

Paper claim: with the dict-of-bitstrings parallelization, runtime grows
sub-linearly in the repetition count and saturates once the ~2^n unique
bitstrings are all populated.  The series prints runtime and the
runtime-per-repetition ratio across 1 .. 10^4 repetitions; the per-rep
cost must fall by orders of magnitude.
"""

import pytest

from repro import circuits as cirq

from conftest import make_sv_simulator, print_series, wall_time


@pytest.fixture
def workload():
    qubits = cirq.LineQubit.range(8)
    circuit = cirq.generate_random_circuit(
        qubits, 20, op_density=0.8, random_state=2
    )
    circuit.append(cirq.measure(*qubits, key="m"))
    return qubits, circuit


def test_fig2_runtime_saturates(benchmark, workload):
    qubits, circuit = workload
    reps_series = [1, 10, 100, 1000, 10000]
    rows = []
    times = {}
    for reps in reps_series:
        sim = make_sv_simulator(qubits, seed=3)
        seconds = wall_time(lambda: sim.run(circuit, repetitions=reps))
        times[reps] = seconds
        rows.append((reps, seconds, seconds / reps))
    print_series(
        "Fig. 2 - runtime vs repetitions (8-qubit random circuit)",
        ["repetitions", "seconds", "sec_per_rep"],
        rows,
    )

    # Saturation shape: 10^4 reps costs far less than 10^4 x the 1-rep time.
    assert times[10000] < times[1] * 1000
    # Per-repetition cost decreases monotonically in the large-reps regime.
    assert times[10000] / 10000 < times[100] / 100

    sim = make_sv_simulator(qubits, seed=3)
    benchmark(lambda: sim.run(circuit, repetitions=1000))
