"""Fig. 6: randomly-connected GHZ circuits — MPS scales as badly as dense.

Paper claim: GHZ states are maximally entangled, so blindly simulating a
GHZ circuit with randomly sequenced CNOTs gives exponential runtime for
*both* the MPS and the state-vector representations.
"""


from repro import circuits as cirq
from repro.apps import random_ghz_circuit

from conftest import make_mps_simulator, make_sv_simulator, print_series, wall_time

REPS = 10


def test_fig6_random_ghz_scaling(benchmark):
    widths = [4, 8, 12, 16]
    rows = []
    mps_times = {}
    sv_times = {}
    for width in widths:
        qubits = cirq.LineQubit.range(width)
        circuit = random_ghz_circuit(qubits, random_state=width)
        mps_times[width] = wall_time(
            lambda: make_mps_simulator(qubits, seed=0).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        sv_times[width] = wall_time(
            lambda: make_sv_simulator(qubits, seed=0).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        rows.append((width, mps_times[width], sv_times[width]))
    print_series(
        "Fig. 6 - random-GHZ sampling runtime (10 reps)",
        ["width", "mps_seconds", "sv_seconds"],
        rows,
    )
    # Exponential-ish growth for BOTH representations: runtime keeps
    # increasing and the 16-qubit case costs several times the 8-qubit one.
    assert mps_times[16] > 2.0 * mps_times[8]
    assert sv_times[16] > 1.5 * sv_times[8]
    # And MPS gains nothing here (comparable to or worse than dense).
    assert mps_times[16] > 0.5 * sv_times[16]

    qubits = cirq.LineQubit.range(12)
    circuit = random_ghz_circuit(qubits, random_state=3)
    sim = make_mps_simulator(qubits, seed=0)
    benchmark(lambda: sim.sample_bitstrings(circuit, repetitions=REPS))
