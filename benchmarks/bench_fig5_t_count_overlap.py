"""Fig. 5: sum-over-Cliffords overlap decreases with additional T gates.

Paper workload: a random pure-Clifford circuit of 100 moments in which
progressively more 1-qubit gates are replaced by T.  The attained overlap
at a fixed sample budget decreases as the circuit becomes more
non-Clifford (the 2^#T branch explosion).
"""

import numpy as np

from repro import circuits as cirq
from repro.analysis import empirical_distribution, fractional_overlap

from conftest import make_stabilizer_simulator, print_series

REPS = 1000


def _overlap(circuit, qubits, seed):
    ideal = (
        np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qubits)
        )
        ** 2
    )
    sim = make_stabilizer_simulator(qubits, seed=seed, near_clifford=True)
    bits = sim.sample_bitstrings(circuit, repetitions=REPS)
    return fractional_overlap(
        empirical_distribution(bits, len(qubits)), ideal
    )


def test_fig5_overlap_vs_t_count(benchmark):
    qubits = cirq.LineQubit.range(5)
    base = cirq.random_clifford_circuit(qubits, 100, random_state=5)
    t_counts = [0, 2, 4, 8, 16, 32]
    rows = []
    overlaps = []
    for n_t in t_counts:
        circuit = cirq.substitute_clifford_with_t(base, n_t, random_state=1)
        # Average two seeds to damp stochastic-branch noise.
        o = np.mean([_overlap(circuit, qubits, seed=n_t + s) for s in (0, 1)])
        overlaps.append(o)
        rows.append((n_t, float(o)))
    print_series(
        f"Fig. 5 - overlap vs number of T substitutions "
        f"(100-moment Clifford base, {REPS} samples)",
        ["t_count", "overlap"],
        rows,
    )
    # Monotone-ish decrease: the heavily-T'd circuit is clearly worse.
    assert overlaps[-1] < overlaps[0] - 0.1
    # And the trend holds between the extremes on average.
    assert np.mean(overlaps[:2]) > np.mean(overlaps[-2:])

    circuit = cirq.substitute_clifford_with_t(base, 8, random_state=1)
    benchmark(lambda: _overlap(circuit, qubits, seed=99))
