"""Cross-backend bench: the same Clifford workload on every representation.

Not a paper figure, but the paper's Sec. 3 pitch — BGLS is state-agnostic —
deserves a direct measurement: identical circuit, four state backends.
"""

import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq

from conftest import (
    make_mps_simulator,
    make_stabilizer_simulator,
    make_sv_simulator,
    print_series,
    wall_time,
)

REPS = 50


@pytest.fixture(scope="module")
def workload():
    qubits = cirq.LineQubit.range(6)
    circuit = cirq.random_clifford_circuit(qubits, 20, random_state=6)
    return qubits, circuit


def test_backend_comparison(benchmark, workload):
    qubits, circuit = workload
    dm_sim = bgls.Simulator(
        bgls.DensityMatrixSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_density_matrix,
        seed=0,
    )
    variants = [
        ("state_vector", make_sv_simulator(qubits, seed=0)),
        ("stabilizer_ch", make_stabilizer_simulator(qubits, seed=0)),
        ("mps", make_mps_simulator(qubits, seed=0)),
        ("density_matrix", dm_sim),
    ]
    rows = []
    for name, sim in variants:
        seconds = wall_time(
            lambda: sim.sample_bitstrings(circuit, repetitions=REPS)
        )
        rows.append((name, seconds))
    print_series(
        f"State backends on one 6-qubit Clifford circuit ({REPS} reps)",
        ["backend", "seconds"],
        rows,
    )

    sim = make_sv_simulator(qubits, seed=0)
    benchmark(lambda: sim.sample_bitstrings(circuit, repetitions=REPS))
