"""Program-cache sweeps and shared-plan pooled startup (PR 3 layers).

Two claims, two series:

* **Sweep cache** — ``run_sweep`` over a parameterized template compiles
  the circuit's structure once (one Program-cache miss) and re-derives
  only the resolver-dependent unitaries per point, versus recompiling the
  full circuit per point (the pre-Program behavior, emulated by clearing
  the cache between points).
* **Pooled startup** — the executor-layer process pool ships the compiled
  plan and packed initial state once per *worker* and hands each task two
  integers, versus the legacy factory API's per-task ``(factory,
  circuit)`` pickle and in-worker rebuild.  The payload series is
  deterministic (byte counts); the wall-time series respects
  ``BGLS_RELAX_TIMING``.
"""

import pickle

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.sampler import (
    ProcessPoolExecutor,
    clear_program_cache,
    program_cache_info,
    sample_trajectories_parallel,
)
from repro.sampler.executors import _WorkerPayload
from repro.states import StateVectorSimulationState

from conftest import assert_timing_win, print_series, wall_time

SWEEP_POINTS = 24
REPS = 8


def layered_template(qubits, layers):
    """Clifford-heavy layers with one Rz(theta) per layer: lots of
    resolver-independent compile work, a sliver of per-point work."""
    theta = cirq.Symbol("theta")
    rng = np.random.default_rng(7)
    circuit = cirq.Circuit()
    for layer in range(layers):
        for q in qubits:
            circuit.append(
                cirq.H(q) if rng.random() < 0.5 else cirq.S(q)
            )
        start = layer % 2
        for a, b in zip(qubits[start::2], qubits[start + 1 :: 2]):
            circuit.append(cirq.CNOT(a, b))
        circuit.append(cirq.Rz(theta * (layer + 1)).on(qubits[layer % len(qubits)]))
    circuit.append(cirq.measure(*qubits, key="m"))
    return circuit


def sv_simulator(qubits, seed=0, **kw):
    return bgls.Simulator(
        StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        **kw,
    )


def test_sweep_cache_vs_per_point_compilation(benchmark):
    """>= 20-point sweep: one compile + cheap specializations wins."""
    qubits = cirq.LineQubit.range(10)
    circuit = layered_template(qubits, layers=24)
    resolvers = [{"theta": 0.1 * i} for i in range(SWEEP_POINTS)]

    def swept():
        clear_program_cache()
        sim = sv_simulator(qubits, seed=1)
        return sim.run_sweep(circuit, resolvers, repetitions=REPS)

    def per_point():
        sim = sv_simulator(qubits, seed=1)
        out = []
        for resolver in resolvers:
            clear_program_cache()  # the pre-Program cost model
            out.append(sim.run(circuit, REPS, param_resolver=resolver))
        return out

    t_swept = wall_time(swept, repeats=3)
    # Counter acceptance: the whole sweep compiled shared metadata once.
    clear_program_cache()
    sim = sv_simulator(qubits, seed=1)
    sim.run_sweep(circuit, resolvers, repetitions=REPS)
    info = program_cache_info()
    assert info["misses"] == 1, info
    program = sim.compile(circuit)
    assert program.specializations == SWEEP_POINTS
    assert program.param_slot_count == 24  # one Rz per layer
    t_per_point = wall_time(per_point, repeats=3)

    print_series(
        f"run_sweep cached Program vs per-point compile "
        f"({SWEEP_POINTS} points, 10 qubits, 24 layers, {REPS} reps)",
        ["variant", "seconds", "speedup"],
        [
            ("swept_cached", t_swept, 1.0),
            ("per_point_compile", t_per_point, t_per_point / t_swept),
        ],
    )
    assert_timing_win(t_swept, t_per_point, "program-cache sweep")
    benchmark(lambda: sv_simulator(qubits, seed=2).run_sweep(
        circuit, resolvers[:4], repetitions=REPS
    ))


def noisy_circuit(qubits, layers=20):
    rng = np.random.default_rng(11)
    circuit = cirq.Circuit()
    for layer in range(layers):
        for q in qubits:
            circuit.append(cirq.H(q) if rng.random() < 0.5 else cirq.T(q))
        start = layer % 2
        for a, b in zip(qubits[start::2], qubits[start + 1 :: 2]):
            circuit.append(cirq.CNOT(a, b))
        circuit.append(channels.depolarize(0.02).on(qubits[layer % len(qubits)]))
    circuit.append(cirq.measure(*qubits, key="z"))
    return circuit


POOL_QUBITS = cirq.LineQubit.range(10)


def pool_factory(seed):
    """Module-level legacy factory (pickled per task by the old API)."""
    return sv_simulator(POOL_QUBITS, seed=seed)


def test_pooled_task_payload_is_constant(benchmark):
    """The per-task pickle no longer grows with the circuit or state."""
    rows = []
    for layers in (8, 16, 32):
        circuit = noisy_circuit(POOL_QUBITS, layers=layers)
        legacy_task = len(pickle.dumps((pool_factory, circuit, 4, 123)))
        pooled_task = len(pickle.dumps((4, 123)))
        sim = sv_simulator(POOL_QUBITS, seed=0)
        plan = sim.compile(circuit).specialize(None)
        once_per_worker = len(pickle.dumps(_WorkerPayload(sim, plan)))
        rows.append((layers, legacy_task, pooled_task, once_per_worker))
        # Acceptance: tasks are O(1); the circuit ships once per worker.
        assert pooled_task < 100
        assert pooled_task < legacy_task
    assert rows[0][2] == rows[-1][2]  # task payload independent of depth
    print_series(
        "Pooled executor task payloads (bytes)",
        ["layers", "legacy_per_task", "pooled_per_task", "pooled_once_per_worker"],
        rows,
    )
    circuit = noisy_circuit(POOL_QUBITS, layers=8)
    sim = sv_simulator(POOL_QUBITS, seed=0)
    plan = sim.compile(circuit).specialize(None)
    benchmark(lambda: pickle.dumps(_WorkerPayload(sim, plan)))


def test_pooled_executor_vs_legacy_factory_wall_time(benchmark):
    """Shared-plan pool vs per-task factory rebuild at equal work."""
    circuit = noisy_circuit(POOL_QUBITS, layers=24)
    reps, workers, chunks = 32, 2, 8

    def legacy():
        return sample_trajectories_parallel(
            pool_factory,
            circuit,
            reps,
            num_workers=workers,
            chunks_per_worker=chunks,
            seed=3,
        )

    def pooled():
        sim = sv_simulator(
            POOL_QUBITS,
            seed=3,
            executor=ProcessPoolExecutor(
                num_workers=workers,
                chunks_per_worker=chunks,
                start_method="fork",
            ),
        )
        return sim.sample_bitstrings(circuit, repetitions=reps)

    t_legacy = wall_time(legacy, repeats=3)
    t_pooled = wall_time(pooled, repeats=3)
    print_series(
        f"Shared-plan pool vs legacy factory pool "
        f"({reps} trajectories, {workers} workers, {workers * chunks} tasks)",
        ["variant", "seconds", "speedup"],
        [
            ("shared_plan_pool", t_pooled, 1.0),
            ("legacy_factory_pool", t_legacy, t_legacy / t_pooled),
        ],
    )
    assert_timing_win(t_pooled, t_legacy, "shared-plan pooled startup")
    benchmark(pooled)
