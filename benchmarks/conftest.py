"""Shared helpers for the benchmark/figure-regeneration harness.

Every ``bench_*`` module regenerates one table or figure from the paper:
pytest-benchmark times the headline sampling call, and each module prints
the full data series (the "figure") to stdout.  Run with::

    pytest benchmarks/ --benchmark-only -s

Each printed series is also written as machine-readable JSON to
``benchmarks/results/BENCH_<slug>.json`` so the perf trajectory can be
tracked (and diffed) across PRs.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Callable, List, Sequence, Tuple

import numpy as np
import pytest

import repro as bgls
from repro import born


def make_sv_simulator(qubits, seed=0, **kw):
    """BGLS simulator over a dense state vector."""
    return bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        **kw,
    )


def make_stabilizer_simulator(qubits, seed=0, near_clifford=False):
    """BGLS simulator over the CH-form stabilizer state."""
    return bgls.Simulator(
        bgls.StabilizerChFormSimulationState(qubits),
        bgls.act_on_near_clifford if near_clifford else bgls.act_on,
        born.compute_probability_stabilizer_state,
        seed=seed,
    )


def make_mps_simulator(qubits, seed=0, options=None):
    """BGLS simulator over the MPS tensor-network state."""
    return bgls.Simulator(
        bgls.MPSState(qubits, options=options),
        bgls.act_on,
        born.compute_probability_mps,
        seed=seed,
    )


def wall_time(fn: Callable[[], object], repeats: int = 1) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def assert_timing_win(fast_seconds: float, slow_seconds: float, label: str) -> None:
    """Assert a measured speedup, downgraded to a warning on noisy machines.

    Timing comparisons on shared CI runners flip under co-tenant load with
    no code regression, so ``BGLS_RELAX_TIMING=1`` (set by the CI smoke
    job) turns a miss into a warning while local/idle runs keep the hard
    assertion.
    """
    if fast_seconds < slow_seconds:
        return
    message = (
        f"{label}: expected a win but measured {fast_seconds:.6f}s vs "
        f"{slow_seconds:.6f}s"
    )
    if os.environ.get("BGLS_RELAX_TIMING") == "1":
        import warnings

        warnings.warn(message + " (tolerated: BGLS_RELAX_TIMING=1)")
        return
    raise AssertionError(message)


RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def save_bench_json(
    title: str, columns: Sequence[str], rows: List[Tuple]
) -> str:
    """Write a data series as ``results/BENCH_<slug>.json``; returns the path."""
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:64]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{slug}.json")
    payload = {
        "title": title,
        "columns": list(columns),
        "rows": [
            [v if isinstance(v, (int, str)) else float(v) for v in row]
            for row in rows
        ],
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def print_series(
    title: str, columns: Sequence[str], rows: List[Tuple]
) -> None:
    """Print a figure's data series as an aligned table, and save it as JSON."""
    print(f"\n### {title}")
    widths = [max(len(str(c)), 12) for c in columns]
    print(" ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    for row in rows:
        cells = [
            f"{v:.6f}" if isinstance(v, float) else str(v) for v in row
        ]
        print(" ".join(c.rjust(w) for c, w in zip(cells, widths)))
    print(f"[json] {save_bench_json(title, columns, rows)}")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20231112)
