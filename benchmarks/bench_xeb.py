"""XEB supremacy-scale verification workload benchmark.

The headline workload of this series: 64 *distinct* random supremacy
circuits swept through ``run_batch(scope="points")`` on the warm pool as
one multi-program payload, scored with the batched linear-XEB estimators.
Three claims ride in one JSON row (``BENCH_xeb_supremacy_batch.json``):

* **One init for the whole ensemble** — 64 distinct circuits, streamed
  *and* blocking passes on the same pool, exactly 1 worker
  initialization (``pool_inits``, exact-gated).
* **Streamed == blocking** — the per-circuit XEB estimates yielded by
  ``stream_xeb_workload`` as points land are bit-for-bit the estimates
  the blocking ``run_xeb_workload`` computes (``streamed_equal``,
  exact-gated).
* **MergeRotations is an end-to-end sampling win** — the circuits arrive
  pulse-split (each sqrt gate as 4 consecutive same-axis fractional
  pulses, hardware style); collapsing the runs back with the
  ``MergeRotations`` pass cuts the sampled op count ~3x and the measured
  warm-pool sampling time >= 1.2x (``speedup``, ratio-gated with a 1.2
  absolute floor in ``check_regressions.py``).
"""

import numpy as np

import repro as bgls
from repro import born
from repro.apps import (
    ideal_output_probabilities,
    run_xeb_workload,
    stream_xeb_workload,
    xeb_circuits,
)
from repro.sampler import PoolManager, ProcessPoolExecutor
from repro.states import StateVectorSimulationState
from repro.transpile import MergeRotations, transpile

from conftest import assert_timing_win, print_series, wall_time

ROWS, COLS, CYCLES = 2, 3, 4
NUM_CIRCUITS = 64
REPS = 20
PULSE_SPLITS = 4
SEED = 2023


def make_sim(qubits, executor=None, seed=17):
    return bgls.Simulator(
        StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        executor=executor,
    )


def test_xeb_supremacy_batch():
    """64 distinct circuits, 1 pool init, streamed parity, merge win."""
    split = xeb_circuits(
        ROWS,
        COLS,
        CYCLES,
        NUM_CIRCUITS,
        pulse_splits=PULSE_SPLITS,
        random_state=SEED,
    )
    assert len({repr(c) for c in split}) == NUM_CIRCUITS
    merged = [transpile(c, [MergeRotations()]) for c in split]
    qubits = split[0].all_qubits()
    # Same unitary by construction — one exact-distribution set serves
    # both transpile variants.
    probs = [ideal_output_probabilities(c) for c in merged]

    ops_split = split[0].num_operations()
    ops_merged = merged[0].num_operations()
    assert ops_merged < ops_split

    with PoolManager() as manager:
        executor = ProcessPoolExecutor(
            num_workers=2, start_method="fork", pool_manager=manager
        )
        # One simulator for every pass: per-call seeding is deterministic
        # (streamed == blocking is a replay, not a coincidence), and the
        # pool's execution key stays fixed across both passes.
        sim = make_sim(qubits, executor)
        streamed = list(
            stream_xeb_workload(sim, split, REPS, probabilities=probs)
        )
        blocking = run_xeb_workload(sim, split, REPS, probabilities=probs)
        # Acceptance: the whole ensemble — streamed and blocking passes —
        # reuses one warm pool, initialized exactly once.
        assert manager.stats["inits"] == 1, manager.stats
        pool_inits = manager.stats["inits"]

        streamed_equal = int(streamed == list(blocking.per_circuit))
        assert streamed_equal == 1

        split_s = wall_time(
            lambda: run_xeb_workload(sim, split, REPS, probabilities=probs),
            repeats=3,
        )
        merged_s = wall_time(
            lambda: run_xeb_workload(sim, merged, REPS, probabilities=probs),
            repeats=3,
        )

    # The estimators certify the sampler: ensemble fidelity consistent
    # with 1 at this sample budget.
    assert 0.5 < blocking.fidelity < 1.5

    speedup = split_s / merged_s
    print_series(
        "XEB supremacy batch",
        [
            "circuits",
            "reps",
            "qubits",
            "pool_inits",
            "streamed_equal",
            "ops_split",
            "ops_merged",
            "split_s",
            "merged_s",
            "speedup",
            "fidelity",
            "scatter_err",
        ],
        [
            (
                NUM_CIRCUITS,
                REPS,
                len(qubits),
                pool_inits,
                streamed_equal,
                ops_split,
                ops_merged,
                split_s,
                merged_s,
                speedup,
                blocking.fidelity,
                blocking.scatter_err,
            )
        ],
    )
    assert_timing_win(
        1.2 * merged_s,
        split_s,
        "merge-rotations end-to-end sampling win >= 1.2x",
    )
