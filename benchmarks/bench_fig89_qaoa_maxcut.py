"""Figs. 8-9: QAOA for MaxCut on a random graph, sampled via MPS-BGLS.

Paper setup: Erdős–Rényi G(10, 0.3), 1 QAOA layer, a (gamma, beta) sweep
of 100 samples per configuration with a bounded-bond MPS, then a final run
whose best bitstring is the MaxCut solution (paper instance: cut of 9).
We print the sweep grid (Fig. 9a) and the final cut vs the brute-force
optimum (Fig. 9b's coloring).
"""


import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.apps import (
    brute_force_maxcut,
    cut_value,
    random_graph,
    solve_maxcut,
)

from conftest import print_series


def test_fig89_qaoa_maxcut(benchmark):
    graph = random_graph(10, edge_probability=0.3, random_state=4)
    qubits = cirq.LineQubit.range(10)
    sim = bgls.Simulator(
        bgls.MPSState(qubits, options=bgls.MPSOptions(max_bond=16)),
        bgls.act_on,
        born.compute_probability_mps,
        seed=0,
    )

    def sampler(circuit, repetitions):
        return sim.sample_bitstrings(circuit, repetitions=repetitions)

    result = solve_maxcut(
        graph,
        sampler,
        grid_size=6,
        sweep_repetitions=100,
        final_repetitions=400,
    )

    rows = []
    for i, gamma in enumerate(result.sweep_gammas):
        for j, beta in enumerate(result.sweep_betas):
            rows.append(
                (round(float(gamma), 3), round(float(beta), 3),
                 float(result.sweep_average_cuts[i, j]))
            )
    print_series(
        "Fig. 9a - QAOA sweep: average cut per (gamma, beta), 100 samples each",
        ["gamma", "beta", "avg_cut"],
        rows,
    )

    optimum, _ = brute_force_maxcut(graph)
    print_series(
        "Fig. 9b - final MaxCut solution",
        ["best_cut", "optimum", "edges", "gamma", "beta"],
        [
            (
                result.best_cut,
                optimum,
                graph.number_of_edges(),
                round(result.best_gamma, 3),
                round(result.best_beta, 3),
            )
        ],
    )

    # Shape claims: the solution is a valid cut, near the optimum, and the
    # tuned parameters beat the uniform-random baseline (= |E|/2).
    assert cut_value(graph, result.best_bitstring) == result.best_cut
    assert result.best_cut >= optimum - 1
    assert result.sweep_average_cuts.max() > graph.number_of_edges() / 2

    # Benchmark one sweep configuration (100 samples of the QAOA circuit).
    from repro.apps import qaoa_maxcut_circuit

    circuit = qaoa_maxcut_circuit(graph, result.best_gamma, result.best_beta)
    benchmark(lambda: sampler(circuit, 100))
