"""Ablation: Aaronson-Gottesman tableau vs CH form as the BGLS state.

The paper (Sec. 4.1.2) builds on the CH form because its bitstring-
amplitude query costs O(n^2); a plain tableau answers the same query only
through a chain of n forced measurements, O(n^3).  This benchmark
quantifies that design decision: both backends sample identical
distributions, but the CH form's per-sample cost grows one power of n
slower.
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq

from conftest import make_stabilizer_simulator, print_series, wall_time

REPS = 10


def make_tableau_simulator(qubits, seed=0):
    return bgls.Simulator(
        bgls.CliffordTableauSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_tableau,
        seed=seed,
    )


def test_tableau_vs_chform_runtime_vs_width(benchmark):
    """CH form scales one power of n better than the tableau."""
    widths = [4, 8, 16, 24]
    depth = 20
    rows = []
    times = {"tableau": {}, "chform": {}}
    for width in widths:
        qubits = cirq.LineQubit.range(width)
        circuit = cirq.random_clifford_circuit(qubits, depth, random_state=width)
        t_tab = wall_time(
            lambda: make_tableau_simulator(qubits).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        t_ch = wall_time(
            lambda: make_stabilizer_simulator(qubits).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        times["tableau"][width] = t_tab
        times["chform"][width] = t_ch
        rows.append((width, t_tab, t_ch, t_tab / t_ch))
    print_series(
        "Ablation - tableau vs CH form sampling (depth 20, 10 reps)",
        ["width", "tableau_sec", "chform_sec", "ratio"],
        rows,
    )
    # The tableau's extra power of n shows up as a growing ratio.
    assert times["tableau"][24] / times["chform"][24] > 1.5

    qubits = cirq.LineQubit.range(8)
    circuit = cirq.random_clifford_circuit(qubits, depth, random_state=0)
    sim = make_tableau_simulator(qubits)
    benchmark(lambda: sim.sample_bitstrings(circuit, repetitions=REPS))


def test_tableau_and_chform_agree_statistically(benchmark):
    """Both stabilizer backends sample the same distribution."""
    n = 5
    qubits = cirq.LineQubit.range(n)
    circuit = cirq.random_clifford_circuit(qubits, 15, random_state=3)
    circuit.append(cirq.measure(*qubits, key="z"))
    reps = 1500

    def hist(result):
        h = np.zeros(2**n)
        for row in result.measurements["z"]:
            h[int("".join(str(b) for b in row), 2)] += 1
        return h / reps

    h_tab = hist(make_tableau_simulator(qubits, seed=1).run(circuit, reps))
    h_ch = hist(make_stabilizer_simulator(qubits, seed=2).run(circuit, reps))
    tv = 0.5 * np.abs(h_tab - h_ch).sum()
    print_series(
        "Ablation - tableau vs CH form agreement",
        ["metric", "value"],
        [("tv_distance", tv)],
    )
    assert tv < 0.1

    sim = make_tableau_simulator(qubits, seed=3)
    benchmark(lambda: sim.run(circuit, repetitions=50))
