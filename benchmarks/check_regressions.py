"""Benchmark-regression gate: re-run headline series, compare to baselines.

The committed ``benchmarks/results/BENCH_*.json`` files are the perf
record of every PR's headline win.  This script keeps them honest: it
re-runs the warm-pool, multi-program-batch, adaptive-scheduling,
program-cache, batched-oracle, batched-trajectory,
result-plane-transport, streaming-latency, service-fair-share,
work-stealing, and XEB-supremacy-batch series and compares each fresh
``speedup`` (or byte-reduction ratio) against the committed baseline with a *generous* tolerance —
the fresh ratio must stay at or above ``tolerance`` (default 0.5) times
the recorded win, so shared-runner noise passes but a genuinely lost
optimization (a speedup collapsing toward 1x) fails the gate.
Correctness columns (widths, point counts, variant labels) must match
exactly: a benchmark silently changing shape is a regression too.

Flow:

1. read the committed baselines into memory,
2. re-run the owning benchmark modules (``--skip-run`` reuses existing
   JSON, e.g. right after a manual benchmark run),
3. copy the fresh JSON into ``benchmarks/results/fresh/`` (CI uploads
   this directory as a workflow artifact),
4. restore the committed baselines in place (the working tree stays
   clean), and
5. compare, printing one verdict row per (file, row, column).

Exit status 0 iff every gated ratio holds.  Run from the repository
root::

    PYTHONPATH=src python benchmarks/check_regressions.py
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(BENCH_DIR, "results")
REPO_ROOT = os.path.dirname(BENCH_DIR)

# Each gated series: the module that regenerates it, the columns whose
# fresh/baseline ratio is gated, and the columns that must match exactly
# (they identify rows and pin the benchmark's shape).
SERIES = {
    "BENCH_warm_pool_vs_cold_pool_sweep.json": {
        "module": "bench_pool_service.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("points", "reps"),
    },
    "BENCH_multi_program_batch_vs_per_circuit_reinit.json": {
        "module": "bench_scheduler.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("circuits", "reps", "warm_inits", "reinit_inits"),
    },
    "BENCH_adaptive_vs_fifo_mixed_depth_sweep.json": {
        "module": "bench_scheduler.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("points", "reps", "workers"),
    },
    "BENCH_run_sweep_cached_program_vs_per_point_compile_24_points_10_qubit.json": {
        "module": "bench_program_cache.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("variant",),
    },
    "BENCH_batched_vs_per_candidate_tableau_oracle_depth_20_8_reps.json": {
        "module": "bench_batched_oracles.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("width",),
    },
    # The shm-transport gate rides on bytes_ratio (deterministic — the
    # per-task result payload shrinking to one integer) rather than the
    # wall speedup, which is a small margin on a box where simulation
    # shares one core with the transport.
    "BENCH_shm_result_planes_vs_pickled_results.json": {
        "module": "bench_result_planes.py",
        "speedup_columns": ("bytes_ratio",),
        "exact_columns": ("points", "reps", "width", "equal"),
    },
    "BENCH_streaming_first_point_latency.json": {
        "module": "bench_result_planes.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("points", "reps"),
    },
    # The batched trajectory engine's headline win is an order of
    # magnitude, so its absolute floor sits well above the noise: the
    # batched-over-serial ratio must never drop below 3x.
    "BENCH_batched_vs_serial_trajectories.json": {
        "module": "bench_trajectory_batch.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("qubits", "depth", "reps"),
        "min_ratio": 3.0,
    },
    # The service gate pins the job tier's whole contract: exactly one
    # pool re-init for two interleaved execution keys across four
    # tenants, streamed results bit-for-bit equal to direct run_sweep
    # (``equal``), and the fair-share latency bar — ``fairness_headroom``
    # is 3 * idle_p99 / loaded_p99, so the absolute floor of 1.0 IS the
    # acceptance criterion "light-tenant p99 under load <= 3x idle p99".
    "BENCH_service_fair_share.json": {
        "module": "bench_service.py",
        "speedup_columns": ("fairness_headroom",),
        "exact_columns": ("tenants", "distinct_keys", "reinits", "equal"),
        "min_ratio": 1.0,
    },
    # The straggler makespan is computed from measured durations over a
    # deterministic placement model, so it also carries an absolute
    # floor: the stealing win must never drop below 1.3x regardless of
    # how large the committed baseline is.
    "BENCH_work_stealing_vs_adaptive_straggler.json": {
        "module": "bench_work_stealing.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("points", "reps", "workers", "granularity"),
        "min_ratio": 1.3,
    },
    # The XEB supremacy batch pins the whole verification contract:
    # 64 distinct circuits on exactly 1 warm-pool init with streamed
    # estimates bit-for-bit equal to the blocking path (exact columns),
    # and the merge-rotations end-to-end sampling win with the
    # acceptance floor of 1.2x as the absolute minimum.
    "BENCH_xeb_supremacy_batch.json": {
        "module": "bench_xeb.py",
        "speedup_columns": ("speedup",),
        "exact_columns": ("circuits", "reps", "pool_inits", "streamed_equal"),
        "min_ratio": 1.2,
    },
}


def load_series(path):
    with open(path) as f:
        return json.load(f)


def row_key(payload, row, exact_columns):
    index = {name: i for i, name in enumerate(payload["columns"])}
    missing = [c for c in exact_columns if c not in index]
    if missing:
        raise SystemExit(
            f"{payload['title']!r}: exact columns {missing} not in "
            f"{payload['columns']}"
        )
    return tuple(row[index[c]] for c in exact_columns)


def column_value(payload, row, column):
    return row[payload["columns"].index(column)]


def run_benchmarks(modules):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
    )
    # The modules' own timing asserts are advisory here — this gate owns
    # the ratio comparison, with the committed baseline as the yardstick.
    env["BGLS_RELAX_TIMING"] = "1"
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-s",
        "--benchmark-disable",
    ] + [os.path.join(BENCH_DIR, module) for module in modules]
    print("$", " ".join(command), flush=True)
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(
            f"Benchmark rerun failed with exit code {result.returncode}"
        )


def compare(name, baseline, fresh, spec, tolerance):
    """Yield (ok, message) verdicts for one series."""
    exact = spec["exact_columns"]
    base_rows = {row_key(baseline, row, exact): row for row in baseline["rows"]}
    fresh_rows = {row_key(fresh, row, exact): row for row in fresh["rows"]}
    if set(base_rows) != set(fresh_rows):
        yield False, (
            f"{name}: row set changed — baseline {sorted(base_rows)} vs "
            f"fresh {sorted(fresh_rows)}"
        )
        return
    for key, base_row in base_rows.items():
        fresh_row = fresh_rows[key]
        for column in spec["speedup_columns"]:
            base_value = float(column_value(baseline, base_row, column))
            fresh_value = float(column_value(fresh, fresh_row, column))
            # A series may also pin an absolute floor (``min_ratio``) —
            # an acceptance bar the fresh ratio must clear even when the
            # committed baseline is far above it.
            floor = max(
                tolerance * base_value, float(spec.get("min_ratio", 0.0))
            )
            ok = fresh_value >= floor
            yield ok, (
                f"{name} {key} {column}: fresh {fresh_value:.3f}x vs "
                f"baseline {base_value:.3f}x (floor {floor:.3f}x) "
                f"{'ok' if ok else 'REGRESSION'}"
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="Fresh speedup must be >= tolerance x baseline (default 0.5)",
    )
    parser.add_argument(
        "--skip-run",
        action="store_true",
        help="Compare existing results JSON instead of re-running",
    )
    parser.add_argument(
        "--fresh-dir",
        default=os.path.join(RESULTS_DIR, "fresh"),
        help="Where fresh JSON is copied for artifact upload",
    )
    args = parser.parse_args(argv)

    # Snapshot every committed series, not just the gated ones: the
    # benchmark modules regenerate sibling series too, and this gate must
    # leave the whole results directory as it found it.
    originals = {}
    for name in sorted(os.listdir(RESULTS_DIR)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            with open(os.path.join(RESULTS_DIR, name)) as f:
                originals[name] = f.read()
    baselines = {}
    for name in SERIES:
        if name not in originals:
            raise SystemExit(
                f"Missing committed baseline: {os.path.join(RESULTS_DIR, name)}"
            )
        baselines[name] = json.loads(originals[name])

    fresh = {}
    try:
        if not args.skip_run:
            modules = sorted({spec["module"] for spec in SERIES.values()})
            run_benchmarks(modules)
        os.makedirs(args.fresh_dir, exist_ok=True)
        for name in SERIES:
            path = os.path.join(RESULTS_DIR, name)
            fresh[name] = load_series(path)
            shutil.copy(path, os.path.join(args.fresh_dir, name))
    finally:
        if not args.skip_run:
            # Leave the committed baselines untouched in the working tree
            # even when the rerun fails or is interrupted mid-way.
            for name, content in originals.items():
                with open(os.path.join(RESULTS_DIR, name), "w") as f:
                    f.write(content)

    failures = 0
    for name, spec in SERIES.items():
        for ok, message in compare(
            name, baselines[name], fresh[name], spec, args.tolerance
        ):
            print(("PASS " if ok else "FAIL ") + message)
            failures += 0 if ok else 1
    if failures:
        print(f"\n{failures} benchmark regression(s) detected")
        return 1
    print("\nAll benchmark series within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
