"""Ablation benches for design choices called out in DESIGN.md.

1. Vectorized candidate enumeration (tensor slice) vs the generic
   per-candidate compute_probability loop.
2. Dict-of-bitstrings parallelization vs per-shot trajectories.
3. Gate-by-gate (BGLS) vs the conventional qubit-by-qubit baseline.
4. skip_diagonal_updates on diagonal-heavy circuits.
5. Process-parallel trajectory fan-out vs serial trajectories.
"""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import sample_trajectories_parallel

from conftest import make_sv_simulator, print_series, wall_time

REPS = 200

_PAR_QUBITS = cirq.LineQubit.range(10)


def _parallel_factory(seed):
    """Module-level simulator factory (picklable for worker processes)."""
    return bgls.Simulator(
        bgls.StateVectorSimulationState(_PAR_QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
    )


@pytest.fixture(scope="module")
def workload():
    qubits = cirq.LineQubit.range(10)
    circuit = cirq.generate_random_circuit(
        qubits, 20, op_density=0.8, random_state=9
    )
    return qubits, circuit


def test_ablation_vectorized_candidates(benchmark, workload):
    qubits, circuit = workload
    fast = bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,  # auto-maps to batched slice
        seed=0,
    )

    def scalar_only(state, bitstring):
        return state.probability_of(bitstring)

    slow = bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        scalar_only,  # unknown to the registry -> per-candidate loop
        seed=0,
    )
    t_fast = wall_time(lambda: fast.sample_bitstrings(circuit, REPS))
    t_slow = wall_time(lambda: slow.sample_bitstrings(circuit, REPS))
    print_series(
        "Ablation - vectorized candidate slicing vs per-candidate loop",
        ["variant", "seconds"],
        [("vectorized", t_fast), ("loop", t_slow), ("speedup", t_slow / t_fast)],
    )
    assert t_fast <= t_slow * 1.2  # vectorized never meaningfully slower

    benchmark(lambda: fast.sample_bitstrings(circuit, REPS))


def test_ablation_dict_parallelization(benchmark, workload):
    qubits, circuit = workload
    parallel = make_sv_simulator(qubits, seed=0)

    def tagged(op, state):
        bgls.act_on(op, state)

    tagged._bgls_stochastic_ = True  # force per-shot trajectories
    trajectories = bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        tagged,
        born.compute_probability_state_vector,
        seed=0,
    )
    t_par = wall_time(lambda: parallel.sample_bitstrings(circuit, REPS))
    t_traj = wall_time(lambda: trajectories.sample_bitstrings(circuit, REPS))
    print_series(
        f"Ablation - dict parallelization vs trajectories ({REPS} reps)",
        ["variant", "seconds"],
        [("parallel_dict", t_par), ("trajectories", t_traj),
         ("speedup", t_traj / t_par)],
    )
    # The whole point of Sec. 3.2.3: batching many reps is much cheaper.
    assert t_par < t_traj

    benchmark(lambda: parallel.sample_bitstrings(circuit, REPS))


def test_ablation_bgls_vs_qubit_by_qubit(benchmark, workload):
    qubits, circuit = workload
    gate_by_gate = make_sv_simulator(qubits, seed=0)
    baseline = bgls.QubitByQubitSimulator(
        bgls.StateVectorSimulationState(qubits), bgls.act_on, seed=0
    )
    t_bgls = wall_time(lambda: gate_by_gate.sample_bitstrings(circuit, REPS))
    t_base = wall_time(lambda: baseline.sample_bitstrings(circuit, REPS))
    print_series(
        f"Ablation - BGLS vs conventional qubit-by-qubit ({REPS} reps, "
        "10 qubits)",
        ["variant", "seconds"],
        [("gate_by_gate", t_bgls), ("qubit_by_qubit", t_base)],
    )
    # With dict parallelization BGLS amortizes over repetitions; the
    # baseline collapses n marginals per shot.
    assert t_bgls < t_base

    benchmark(lambda: gate_by_gate.sample_bitstrings(circuit, REPS))


def test_ablation_process_parallel_trajectories(benchmark):
    """Process fan-out of trajectory sampling (noisy circuit workload).

    Noise forces one independent walk per repetition (Sec. 3.2.1), the
    regime where a process pool can pay for its dispatch overhead.  The
    series shows the crossover; the assertion only requires correctness
    plus a sane overhead bound, since small workloads can be slower in
    parallel.
    """
    from repro.circuits import channels

    circuit = cirq.generate_random_circuit(
        _PAR_QUBITS, 16, op_density=0.8, random_state=13
    )
    noisy = cirq.Circuit()
    for moment in circuit.moments:
        noisy.append_new_moment(moment.operations)
    noisy.append(channels.depolarize(0.01).on(q) for q in _PAR_QUBITS)
    noisy.append(cirq.measure(*_PAR_QUBITS, key="z"))
    reps = 100

    t_serial = wall_time(
        lambda: _parallel_factory(0).sample_bitstrings(noisy, repetitions=reps)
    )
    t_par2 = wall_time(
        lambda: sample_trajectories_parallel(
            _parallel_factory, noisy, reps, num_workers=2, seed=0
        )
    )
    t_par4 = wall_time(
        lambda: sample_trajectories_parallel(
            _parallel_factory, noisy, reps, num_workers=4, seed=0
        )
    )
    print_series(
        f"Ablation - process-parallel trajectories ({reps} noisy reps)",
        ["variant", "seconds", "speedup_vs_serial"],
        [
            ("serial", t_serial, 1.0),
            ("2_workers", t_par2, t_serial / t_par2),
            ("4_workers", t_par4, t_serial / t_par4),
        ],
    )
    # Pool overhead must stay bounded even if it does not win at this size.
    assert t_par4 < t_serial * 3.0

    benchmark(
        lambda: sample_trajectories_parallel(
            _parallel_factory, noisy, reps, num_workers=4, seed=1
        )
    )


def test_ablation_skip_diagonal_updates(benchmark):
    qubits = cirq.LineQubit.range(8)
    # Diagonal-heavy circuit: H layer then many CZ/T/Z gates.
    rng = np.random.default_rng(4)
    circuit = cirq.Circuit([cirq.H(q) for q in qubits])
    for _ in range(60):
        if rng.random() < 0.5:
            a, b = rng.choice(8, size=2, replace=False)
            circuit.append(cirq.CZ(qubits[a], qubits[b]))
        else:
            gate = [cirq.T, cirq.Z, cirq.S][int(rng.integers(3))]
            circuit.append(gate(qubits[int(rng.integers(8))]))
    plain = make_sv_simulator(qubits, seed=0)
    skipping = make_sv_simulator(qubits, seed=0, skip_diagonal_updates=True)
    t_plain = wall_time(lambda: plain.sample_bitstrings(circuit, REPS))
    t_skip = wall_time(lambda: skipping.sample_bitstrings(circuit, REPS))
    print_series(
        "Ablation - skip_diagonal_updates on a diagonal-heavy circuit",
        ["variant", "seconds"],
        [("update_always", t_plain), ("skip_diagonal", t_skip)],
    )
    # Diagonal gates never change candidate conditionals; skipping is safe
    # and should not be slower (usually faster).
    assert t_skip < t_plain * 1.5

    benchmark(lambda: skipping.sample_bitstrings(circuit, REPS))
