"""Fig. 7: for low-entanglement random circuits, MPS sampling beats dense.

(a) Fixed-depth random circuits of increasing width: shallow depth keeps
    entanglement far below the exponential ceiling, so MPS runtime grows
    slowly while the dense state vector grows exponentially — a crossover.
(b) Random 1-qubit layers plus a *fixed* number of CNOTs: entanglement is
    constant, and MPS sampling runtime scales ~linearly with width.
"""


from repro import circuits as cirq
from repro.apps import random_fixed_cnot_circuit, random_shallow_circuit

from conftest import make_mps_simulator, make_sv_simulator, print_series, wall_time

REPS = 10


def test_fig7a_shallow_random_circuits(benchmark):
    widths = [6, 10, 14, 18, 22]
    rows = []
    mps_times = {}
    sv_times = {}
    for width in widths:
        qubits = cirq.LineQubit.range(width)
        circuit = random_shallow_circuit(
            qubits, depth=5, cnot_probability=0.15, random_state=width
        )
        mps_times[width] = wall_time(
            lambda: make_mps_simulator(qubits, seed=0).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        sv_times[width] = wall_time(
            lambda: make_sv_simulator(qubits, seed=0).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        rows.append((width, mps_times[width], sv_times[width]))
    print_series(
        "Fig. 7a - shallow random circuits: MPS vs state vector (10 reps)",
        ["width", "mps_seconds", "sv_seconds"],
        rows,
    )
    # Crossover shape: dense blows up exponentially, MPS does not.
    sv_growth = sv_times[22] / sv_times[10]
    mps_growth = mps_times[22] / mps_times[10]
    assert sv_growth > 4 * mps_growth
    # At the widest point MPS must win outright.
    assert mps_times[22] < sv_times[22]

    qubits = cirq.LineQubit.range(14)
    circuit = random_shallow_circuit(qubits, 5, 0.15, random_state=1)
    sim = make_mps_simulator(qubits, seed=0)
    benchmark(lambda: sim.sample_bitstrings(circuit, repetitions=REPS))


def test_fig7b_fixed_cnot_count_linear_scaling(benchmark):
    widths = [8, 16, 24, 32]
    n_cnots = 6
    rows = []
    times = {}
    for width in widths:
        qubits = cirq.LineQubit.range(width)
        circuit = random_fixed_cnot_circuit(
            qubits, n_single_qubit_layers=3, n_cnots=n_cnots, random_state=width
        )
        times[width] = wall_time(
            lambda: make_mps_simulator(qubits, seed=0).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        rows.append((width, times[width], times[width] / width))
    print_series(
        f"Fig. 7b - MPS sampling, fixed {n_cnots} CNOTs (10 reps)",
        ["width", "mps_seconds", "sec_per_qubit"],
        rows,
    )
    # Near-linear: quadrupling the width must stay in the polynomial regime
    # (comfortably under cubic), far from the 2^24x of exponential scaling.
    # The bound is loose because n-qubit sampling also walks ~n gates per
    # repetition, adding a machine-noise-sensitive extra factor of width.
    assert times[32] / times[8] < 48

    qubits = cirq.LineQubit.range(16)
    circuit = random_fixed_cnot_circuit(qubits, 3, n_cnots, random_state=0)
    sim = make_mps_simulator(qubits, seed=0)
    benchmark(lambda: sim.sample_bitstrings(circuit, repetitions=REPS))
