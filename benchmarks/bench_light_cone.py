"""Ablation: light-cone reduction + transpiler pipeline before sampling.

An optimization beyond the paper's ``optimize_for_bgls`` (Sec. 3.2.2):
when only a few qubits are measured, every gate outside their backward
causal cone can be deleted without changing the sampled records, saving
both the state update and a candidate-resampling round per dropped gate.
This harness measures the speedup on a wide circuit with a narrow
measured register, and verifies the sampled marginals agree.
"""

import numpy as np

from repro import circuits as cirq
from repro.transpile import LightConeReduction, default_pipeline, transpile

from conftest import make_sv_simulator, print_series, wall_time

REPS = 200


def _wide_circuit_narrow_measurement(width, depth, measured, seed):
    qubits = cirq.LineQubit.range(width)
    circuit = cirq.generate_random_circuit(
        qubits, depth, random_state=seed
    )
    circuit.append(cirq.measure(*qubits[:measured], key="z"))
    return qubits, circuit


def test_light_cone_speedup(benchmark):
    """Dropping out-of-cone gates speeds sampling at equal output."""
    width, depth, measured = 10, 12, 2
    qubits, circuit = _wide_circuit_narrow_measurement(width, depth, measured, 5)
    reduced = transpile(circuit, [LightConeReduction()])

    t_full = wall_time(
        lambda: make_sv_simulator(qubits, seed=0).run(circuit, repetitions=REPS)
    )
    t_reduced = wall_time(
        lambda: make_sv_simulator(qubits, seed=0).run(reduced, repetitions=REPS)
    )
    rows = [
        ("full", circuit.num_operations(), t_full),
        ("light_cone", reduced.num_operations(), t_reduced),
        ("speedup", 0, t_full / t_reduced),
    ]
    print_series(
        "Ablation - light-cone reduction (10 qubits, 2 measured)",
        ["circuit", "num_ops", "seconds"],
        rows,
    )
    assert reduced.num_operations() < circuit.num_operations()

    # Output equivalence: measured-marginal TV distance is sampling noise.
    res_full = make_sv_simulator(qubits, seed=1).run(circuit, repetitions=2000)
    res_red = make_sv_simulator(qubits, seed=2).run(reduced, repetitions=2000)

    def hist(res):
        h = np.zeros(2**measured)
        for row in res.measurements["z"]:
            h[int("".join(str(b) for b in row), 2)] += 1
        return h / 2000

    tv = 0.5 * np.abs(hist(res_full) - hist(res_red)).sum()
    assert tv < 0.08

    sim = make_sv_simulator(qubits, seed=3)
    benchmark(lambda: sim.run(reduced, repetitions=REPS))


def test_full_pipeline_op_reduction(benchmark):
    """The default pipeline (cone + cancel + merge) shrinks real circuits."""
    width, depth, measured = 8, 16, 3
    qubits, circuit = _wide_circuit_narrow_measurement(width, depth, measured, 9)
    pm = default_pipeline()
    optimized = transpile(circuit, pm)

    rows = [(name, before, after) for name, before, after in pm.history]
    print_series(
        "Ablation - default transpile pipeline op counts",
        ["pass", "ops_before", "ops_after"],
        rows,
    )
    assert optimized.num_operations() <= circuit.num_operations()

    sim = make_sv_simulator(qubits, seed=4)
    benchmark(lambda: sim.run(optimized, repetitions=REPS))
