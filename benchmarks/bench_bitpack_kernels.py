"""Micro-benchmark: packed vs unpacked stabilizer kernels.

The production engines store their GF(2) matrices as ``uint64`` words
(:mod:`repro.states.bitpack`); the pre-packing implementations are
retained in :mod:`repro.states.reference`.  This module times the kernels
the BGLS hot loop leans on — measurement collapse (the batched
``_rowsum_many`` pass), probability queries (the flat-stabilizer
membership test), and batched candidate enumeration — on identical
workloads for both paths.

Honest accounting: single-column *gate* updates are overhead-bound and
roughly break even below a few hundred qubits (both paths are ~10 NumPy
calls on small arrays); the word-parallel wins live in the row-times-row
kernels and the batched query paths, which is where the assertions bite.
The printed/JSON series record actual speedups per width so the perf
trajectory is tracked across PRs.
"""

import numpy as np

from repro.states import bitpack as bp
from repro.states.chform import StabilizerChForm
from repro.states.reference import (
    UnpackedCliffordTableau,
    UnpackedStabilizerChForm,
)
from repro.states.tableau import CliffordTableau

from conftest import print_series, wall_time

_ONE_QUBIT = ["h", "s", "sdg", "x", "y", "z"]
_TWO_QUBIT = ["cx", "cz"]


def _gate_stream(n, length, rng):
    ops = []
    for _ in range(length):
        if n >= 2 and rng.random() < 0.5:
            name = _TWO_QUBIT[int(rng.integers(len(_TWO_QUBIT)))]
            a, b = rng.choice(n, size=2, replace=False)
            ops.append((name, (int(a), int(b))))
        else:
            name = _ONE_QUBIT[int(rng.integers(len(_ONE_QUBIT)))]
            ops.append((name, (int(rng.integers(n)),)))
    return ops


def _apply_stream(engine, ops):
    for name, qs in ops:
        getattr(engine, f"apply_{name}")(*qs)


def _scrambled_pair(n, depth, seed):
    """(packed, unpacked) tableaus evolved through the same gate stream."""
    ops = _gate_stream(n, depth, np.random.default_rng(seed))
    packed = CliffordTableau(n)
    unpacked = UnpackedCliffordTableau(n)
    _apply_stream(packed, ops)
    _apply_stream(unpacked, ops)
    return packed, unpacked


def _dense_pair(n, seed):
    """(packed, unpacked) tableaus holding identical dense random bits.

    Rowsum is plain GF(2)/phase arithmetic, valid for arbitrary row
    contents, so a random-filled tableau isolates the kernel itself from
    workload-dependent sparsity (a lightly entangled state only ever hands
    the kernel a handful of rows).
    """
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=(2 * n + 1, n)).astype(np.uint8)
    z = rng.integers(0, 2, size=(2 * n + 1, n)).astype(np.uint8)
    r = rng.integers(0, 2, size=2 * n + 1).astype(np.uint8)
    packed = CliffordTableau(n)
    packed.xw = bp.pack_rows(x)
    packed.zw = bp.pack_rows(z)
    packed.r = r.copy()
    unpacked = UnpackedCliffordTableau(n)
    unpacked.x, unpacked.z, unpacked.r = x.copy(), z.copy(), r.copy()
    return packed, unpacked


def test_batched_rowsum_kernel(benchmark):
    """One 2-D rowsum pass vs the per-row Python loop, on dense rows.

    This is the measurement-collapse hot kernel (`_collapse` multiplies
    the pivot into every anticommuting row); dense random rows give the
    kernel the work profile of a genuinely scrambled wide state.
    """
    widths = [64, 128, 256]
    rows = []
    speedups = {}
    for n in widths:
        targets = np.arange(1, 2 * n + 1)

        def run_packed():
            t, _ = _dense_pair(n, seed=n)
            t._rowsum_many(targets, 0)
            return t

        def run_unpacked():
            _, t = _dense_pair(n, seed=n)
            for h in targets:
                t._rowsum(int(h), 0)
            return t

        got, want = run_packed(), run_unpacked()
        np.testing.assert_array_equal(got.x, want.x)
        np.testing.assert_array_equal(got.z, want.z)
        np.testing.assert_array_equal(got.r, want.r)
        # Pre-build fresh tableaus so setup cost never enters the timing.
        packed_pool = [run_packed().copy() for _ in range(5)]
        unpacked_pool = [run_unpacked().copy() for _ in range(5)]
        t_packed = wall_time(
            lambda: packed_pool.pop()._rowsum_many(targets, 0), repeats=5
        )

        def unpacked_once():
            t = unpacked_pool.pop()
            for h in targets:
                t._rowsum(int(h), 0)

        t_unpacked = wall_time(unpacked_once, repeats=5)
        speedups[n] = t_unpacked / t_packed
        rows.append((n, t_unpacked, t_packed, t_unpacked / t_packed))
    print_series(
        "Bitpack - batched rowsum kernel (dense rows, pivot into all)",
        ["width", "unpacked_sec", "packed_sec", "speedup"],
        rows,
    )
    assert speedups[256] > 4.0

    packed, _ = _dense_pair(128, seed=3)
    targets = np.arange(1, 257)
    benchmark(lambda: packed.copy()._rowsum_many(targets, 0))


def test_tableau_measure_all_workload(benchmark):
    """Measure-all on a lightly entangled state: report-only series.

    With shallow entanglement the kernels only ever see a few rows, so
    both paths are NumPy-call-overhead-bound; the series documents that
    the packed path stays within noise of the unpacked one there (the
    structural wins are in `test_batched_rowsum_kernel` and the sampler
    benchmarks).
    """
    widths = [32, 64, 128]
    rows = []
    for n in widths:
        packed, unpacked = _scrambled_pair(n, 4 * n, seed=n)

        def measure_all(template):
            t = template.copy()
            rng = np.random.default_rng(1)
            return [t.measure(a, rng) for a in range(n)]

        assert measure_all(packed) == measure_all(unpacked)
        t_packed = wall_time(lambda: measure_all(packed), repeats=3)
        t_unpacked = wall_time(lambda: measure_all(unpacked), repeats=3)
        rows.append((n, t_unpacked, t_packed, t_unpacked / t_packed))
    print_series(
        "Bitpack - tableau measure-all (lightly entangled, report-only)",
        ["width", "unpacked_sec", "packed_sec", "speedup"],
        rows,
    )

    packed, _ = _scrambled_pair(64, 256, seed=0)
    benchmark(
        lambda: [packed.copy().measure(a, np.random.default_rng(1)) for a in range(64)]
    )


def test_tableau_candidate_probabilities(benchmark):
    """Batched candidate queries vs 2^k independent probability chains."""
    n = 48
    packed, unpacked = _scrambled_pair(n, 4 * n, seed=5)
    bits = [packed.copy().measure(a, np.random.default_rng(6)) for a in range(n)]
    support = [3, 11]

    def batched():
        return packed.candidate_probabilities(bits, support)

    def chained():
        out = np.empty(4)
        cand = list(bits)
        for idx in range(4):
            cand[support[0]] = (idx >> 1) & 1
            cand[support[1]] = idx & 1
            out[idx] = unpacked.probability_of(cand)
        return out

    np.testing.assert_allclose(batched(), chained(), atol=1e-12)
    t_batched = wall_time(batched, repeats=5)
    t_chained = wall_time(chained, repeats=5)
    print_series(
        "Bitpack - tableau candidate probabilities (48 qubits, k=2)",
        ["variant", "seconds"],
        [("batched_packed", t_batched), ("chained_unpacked", t_chained)],
    )
    assert t_batched < t_chained
    benchmark(batched)


def test_chform_probability_queries(benchmark):
    """Flat-stabilizer membership test vs unpacked amplitude accumulation."""
    widths = [16, 64, 128]
    depth = 60
    queries = 40
    rows = []
    speedups = {}
    for n in widths:
        rng = np.random.default_rng(n + 1)
        ops = _gate_stream(n, depth, rng)
        packed = StabilizerChForm(n)
        unpacked = UnpackedStabilizerChForm(n)
        _apply_stream(packed, ops)
        _apply_stream(unpacked, ops)
        bitstrings = rng.integers(0, 2, size=(queries, n))

        def run(form):
            return [form.probability_of(list(b)) for b in bitstrings]

        assert np.allclose(run(packed), run(unpacked))
        t_packed = wall_time(lambda: run(packed), repeats=3)
        t_unpacked = wall_time(lambda: run(unpacked), repeats=3)
        speedups[n] = t_unpacked / t_packed
        rows.append((n, t_unpacked, t_packed, t_unpacked / t_packed))
    print_series(
        "Bitpack - CH form 40 probability queries (depth 60)",
        ["width", "unpacked_sec", "packed_sec", "speedup"],
        rows,
    )
    assert speedups[128] > 2.0

    packed = StabilizerChForm(64)
    _apply_stream(packed, _gate_stream(64, depth, np.random.default_rng(2)))
    batch = np.random.default_rng(3).integers(0, 2, size=(256, 64))
    benchmark(lambda: packed.probabilities_of_many(batch))


def test_chform_gate_stream(benchmark):
    """Gate application parity check: packed must stay within 2.5x of the
    unpacked path at small widths (overhead-bound) — regression guard, not
    a claimed win."""
    n, depth = 32, 200
    ops = _gate_stream(n, depth, np.random.default_rng(7))
    t_packed = wall_time(lambda: _apply_stream(StabilizerChForm(n), ops), repeats=3)
    t_unpacked = wall_time(
        lambda: _apply_stream(UnpackedStabilizerChForm(n), ops), repeats=3
    )
    print_series(
        "Bitpack - CH form gate stream (32 qubits, depth 200)",
        ["variant", "seconds"],
        [("packed", t_packed), ("unpacked", t_unpacked)],
    )
    assert t_packed < t_unpacked * 2.5
    benchmark(lambda: _apply_stream(StabilizerChForm(n), ops))
