"""Batched candidate-probability oracles vs the per-candidate loop.

PR 1 batched the CH form's candidate queries; PR 2 extended the batched
``candidate_probabilities_many`` oracle to every backend (state vector via
one flat gather, tableau via a prefix-shared projection chain, MPS via
cached environment tensors) and fused single-qubit Clifford moments.
These series quantify the batching alone: identical circuits sampled (or
queried) once through the batched oracle and once through a per-candidate
``probability_of`` loop — the exact fallback path user-supplied
probability functions still take.

The width-24 point of the tableau series is the same ablation point as
``bench_tableau_vs_chform.py``; the batched path must beat the loop there.
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps.state import MPSState
from repro.states import (
    CliffordTableauSimulationState,
    StateVectorSimulationState,
)

from conftest import assert_timing_win, print_series, wall_time

REPS = 8


def _loop_candidates(compute_probability):
    """The per-candidate fallback, as a user-supplied candidate function."""

    def loop(state, bits, support):
        k = len(support)
        candidate = list(bits)
        out = np.empty(2**k)
        for idx in range(2**k):
            for pos, axis in enumerate(support):
                candidate[axis] = (idx >> (k - 1 - pos)) & 1
            out[idx] = compute_probability(state, candidate)
        return out

    return loop


def _tableau_simulator(qubits, batched=True, seed=0):
    kwargs = {}
    if not batched:
        kwargs["compute_candidate_probabilities"] = _loop_candidates(
            born.compute_probability_tableau
        )
    return bgls.Simulator(
        CliffordTableauSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_tableau,
        seed=seed,
        **kwargs,
    )


def test_tableau_batched_vs_candidate_loop(benchmark):
    """The prefix-shared batched tableau oracle vs per-candidate chains."""
    depth = 20
    rows = []
    times = {}
    for width in (8, 16, 24):
        qubits = cirq.LineQubit.range(width)
        circuit = cirq.random_clifford_circuit(
            qubits, depth, random_state=width
        )
        t_batched = wall_time(
            lambda: _tableau_simulator(qubits, True).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        t_loop = wall_time(
            lambda: _tableau_simulator(qubits, False).sample_bitstrings(
                circuit, repetitions=REPS
            )
        )
        times[width] = (t_batched, t_loop)
        rows.append((width, t_batched, t_loop, t_loop / t_batched))
    print_series(
        f"Batched vs per-candidate tableau oracle (depth {depth}, {REPS} reps)",
        ["width", "batched_sec", "loop_sec", "speedup"],
        rows,
    )
    # The acceptance point: batched beats the loop at the width-24 ablation
    # point of bench_tableau_vs_chform.
    assert_timing_win(times[24][0], times[24][1], "tableau width-24 batched oracle")

    qubits = cirq.LineQubit.range(8)
    circuit = cirq.random_clifford_circuit(qubits, depth, random_state=8)
    sim = _tableau_simulator(qubits)
    benchmark(lambda: sim.sample_bitstrings(circuit, repetitions=REPS))


def test_state_vector_batched_vs_candidate_loop(benchmark):
    """One-gather state-vector fronts vs per-candidate probability calls."""
    n = 18
    qubits = cirq.LineQubit.range(n)
    circuit = cirq.random_clifford_circuit(qubits, 12, random_state=3)
    state = StateVectorSimulationState(qubits)
    for op in circuit.all_operations():
        bgls.act_on(op, state)
    rng = np.random.default_rng(0)
    loop = _loop_candidates(born.compute_probability_state_vector)
    rows = []
    times = {}
    for front in (4, 32, 128):
        bits_list = [list(rng.integers(0, 2, n)) for _ in range(front)]
        support = [5, 11]
        t_batched = wall_time(
            lambda: state.candidate_probabilities_many(bits_list, support),
            repeats=5,
        )
        t_loop = wall_time(
            lambda: np.array([loop(state, b, support) for b in bits_list]),
            repeats=5,
        )
        times[front] = (t_batched, t_loop)
        rows.append((front, t_batched, t_loop, t_loop / t_batched))
    print_series(
        f"Batched vs per-candidate state-vector fronts ({n} qubits, k=2)",
        ["front_size", "batched_sec", "loop_sec", "speedup"],
        rows,
    )
    assert_timing_win(*times[128], "state-vector front-128 batched gather")

    small = cirq.random_clifford_circuit(
        cirq.LineQubit.range(10), 12, random_state=4
    )
    sv_sim = bgls.Simulator(
        StateVectorSimulationState(cirq.LineQubit.range(10)),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=1,
    )
    benchmark(lambda: sv_sim.sample_bitstrings(small, repetitions=REPS))


def test_mps_environment_cached_fronts(benchmark):
    """Environment-cached MPS fronts vs one sliced contraction per string."""
    n = 14
    qubits = cirq.LineQubit.range(n)
    circuit = cirq.Circuit()
    rng = np.random.default_rng(5)
    # Shallow brickwork: low entanglement, the regime MPS is built for.
    for layer in range(4):
        for q in qubits:
            circuit.append(cirq.H(q) if rng.random() < 0.5 else cirq.T(q))
        start = layer % 2
        for a, b in zip(qubits[start::2], qubits[start + 1 :: 2]):
            circuit.append(cirq.CZ(a, b))
    state = MPSState(qubits)
    for op in circuit.all_operations():
        bgls.act_on(op, state)
    # A parallel-mode-like front: common prefix, diverging tail.
    prefix = list(rng.integers(0, 2, n - 5))
    bits_list = [
        prefix + [(idx >> (4 - j)) & 1 for j in range(5)] for idx in range(32)
    ]
    support = [6, 7]
    t_cached = wall_time(
        lambda: state.candidate_probabilities_many(bits_list, support),
        repeats=3,
    )
    t_loop = wall_time(
        lambda: np.array(
            [state.candidate_probabilities(b, support) for b in bits_list]
        ),
        repeats=3,
    )
    print_series(
        f"MPS environment-cached front ({n} qubits, 32 strings, k=2)",
        ["variant", "seconds"],
        [("env_cached", t_cached), ("per_string_loop", t_loop),
         ("speedup", t_loop / t_cached)],
    )
    assert_timing_win(t_cached, t_loop, "MPS environment-cached front")

    benchmark(
        lambda: state.candidate_probabilities_many(bits_list, support)
    )
