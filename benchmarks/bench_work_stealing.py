"""Work-stealing vs adaptive scheduling on an induced straggler.

The scenario the static scheduler cannot win: 8 points whose
*estimated* costs are identical — same qubit count, same op count, all
unitary, so ``estimate_cost`` sees no reason to split or reorder
anything — but one point is secretly heavy: it opens with a Hadamard
layer and branches on every ``Rx``, so its parallel-mode front grows
to hundreds of distinct bitstrings, while its 7 siblings open with an
``X`` layer and rotate only with diagonal ``Rz`` gates, keeping their
front at a single bitstring.  Front entropy is invisible to the static
cost model.  The
:class:`~repro.sampler.schedule.AdaptiveScheduler` schedules 8 whole
points and one worker grinds the straggler alone while the rest of the
pool idles; the :class:`~repro.sampler.schedule.WorkStealingScheduler`
pre-splits every point into repetition chunks and lets idle workers
steal the straggler's tail.

Gated on the measured-duration makespan (deterministic on a
single-core runner — see ``list_schedule_makespan``); raw pooled wall
times ride along as informational columns.  Correctness stays pinned:
estimated costs are asserted equal, the adaptive schedule is asserted
unsplit, the adaptive pooled output is bit-for-bit the serial
``run_batch``, and the stealing run is bit-for-bit reproducible.

Acceptance bar: stealing beats adaptive by >= 1.3x on the straggler
makespan (``BENCH_work_stealing_vs_adaptive_straggler.json``; enforced
with ``min_ratio`` by ``check_regressions.py``).
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import (
    AdaptiveScheduler,
    PoolManager,
    ProcessPoolExecutor,
    WorkStealingScheduler,
    estimate_cost,
)
from repro.states import StateVectorSimulationState

from bench_scheduler import list_schedule_makespan
from conftest import assert_timing_win, print_series, wall_time

WIDTH = 10
QUBITS = cirq.LineQubit.range(WIDTH)
POINTS = 8
REPS = 1024
DEPTH = 60
NUM_WORKERS = 2
GRANULARITY = 4
MIN_SPEEDUP = 1.3


def _layers(rng):
    """Shared per-layer structure: (cnot pair, rotation target, angle)."""
    return [
        (
            int(rng.integers(WIDTH - 1)),
            int(rng.integers(WIDTH)),
            float(rng.uniform(1.0, 2.5)),
        )
        for _ in range(DEPTH)
    ]


def _circuit(first, rotation, layers):
    circuit = cirq.Circuit(first(q) for q in QUBITS)
    for a, t, angle in layers:
        circuit.append(cirq.CNOT(QUBITS[a], QUBITS[a + 1]))
        circuit.append(rotation(angle).on(QUBITS[t]))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


def cheap_circuit(rng):
    """Deterministic front: basis-state input, diagonal rotations — the
    parallel-mode front never grows past one bitstring."""
    return _circuit(cirq.X, cirq.Rz, _layers(rng))


def heavy_circuit(rng):
    """Straggler: same op count, but the Hadamard opening and branching
    ``Rx`` rotations blow the front up to ~min(2**WIDTH, REPS) strings."""
    return _circuit(cirq.H, cirq.Rx, _layers(rng))


def make_sim(executor=None, seed=19):
    return bgls.Simulator(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        executor=executor,
    )


def test_work_stealing_vs_adaptive_straggler():
    rng = np.random.default_rng(23)
    # The straggler sits last — the worst (and realistic) place for a
    # static schedule, the irrelevant place for stealing.
    circuits = [cheap_circuit(rng) for _ in range(POINTS - 1)]
    circuits.append(heavy_circuit(rng))

    # The premise: identical static cost estimates across all points.
    probe_sim = make_sim()
    costs = [
        estimate_cost(probe_sim.compile(c), REPS) for c in circuits
    ]
    assert len(set(costs)) == 1, costs

    # Measured per-point serial seconds anchor the makespan model.
    serial_sim = make_sim()
    point_seconds = [
        wall_time(
            lambda c=circuit: serial_sim.run_batch([c], repetitions=REPS),
            repeats=2,
        )
        for circuit in circuits
    ]
    heavy_ratio = point_seconds[-1] / float(np.median(point_seconds[:-1]))

    def pooled(scheduler):
        with PoolManager() as manager:
            sim = make_sim(
                ProcessPoolExecutor(
                    num_workers=NUM_WORKERS,
                    start_method="fork",
                    pool_manager=manager,
                    scheduler=scheduler,
                )
            )
            first = sim.run_batch(circuits, repetitions=REPS)
            seconds = wall_time(
                lambda: sim.run_batch(circuits, repetitions=REPS), repeats=3
            )
            assert manager.stats["inits"] == 1, manager.stats
        return first, seconds

    adaptive = AdaptiveScheduler()
    stealing = WorkStealingScheduler(granularity=GRANULARITY)
    adaptive_results, adaptive_wall = pooled(adaptive)
    stealing_results, stealing_wall = pooled(stealing)

    # Equal estimates leave the adaptive schedule whole — the straggler
    # is invisible to it — while stealing pre-split every point.
    assert adaptive.last_schedule["split_points"] == 0
    assert stealing.last_schedule["split_points"] == POINTS

    # Correctness: the unsplit adaptive run uses serial seeds, so it is
    # bit-for-bit the serial batch; the stealing run is reproducible.
    serial = make_sim().run_batch(circuits, repetitions=REPS)
    for a, b in zip(serial, adaptive_results):
        np.testing.assert_array_equal(a.measurements["m"], b.measurements["m"])
    rerun, _ = pooled(WorkStealingScheduler(granularity=GRANULARITY))
    for a, b in zip(stealing_results, rerun):
        np.testing.assert_array_equal(a.measurements["m"], b.measurements["m"])

    # The makespan each geometry achieves for the measured durations,
    # under the pull-next-task placement both dispatch modes share.
    def task_durations(scheduler):
        return [
            point_seconds[t.point_index] * t.repetitions / REPS
            for t in scheduler.last_schedule["_tasks"]
        ]

    adaptive_makespan = list_schedule_makespan(
        task_durations(adaptive), NUM_WORKERS
    )
    stealing_makespan = list_schedule_makespan(
        task_durations(stealing), NUM_WORKERS
    )
    speedup = adaptive_makespan / stealing_makespan

    print_series(
        "Work stealing vs adaptive straggler",
        [
            "points",
            "reps",
            "workers",
            "granularity",
            "stealing_makespan_s",
            "adaptive_makespan_s",
            "speedup",
            "heavy_ratio",
            "stealing_wall_s",
            "adaptive_wall_s",
        ],
        [
            (
                POINTS,
                REPS,
                NUM_WORKERS,
                GRANULARITY,
                stealing_makespan,
                adaptive_makespan,
                speedup,
                heavy_ratio,
                stealing_wall,
                adaptive_wall,
            )
        ],
    )
    assert_timing_win(
        MIN_SPEEDUP * stealing_makespan,
        adaptive_makespan,
        f"work stealing >= {MIN_SPEEDUP}x over adaptive on the straggler",
    )
