"""Batched vs serial trajectory engine on a noisy depolarizing workload.

The workload the batched engine was built for: a shallow random circuit
laced with depolarizing channels, so every repetition must replay the
whole circuit as its own trajectory.  ``trajectory_mode="serial"`` runs
the repetitions one at a time — one Python-level gate loop per
trajectory — while ``trajectory_mode="batched"`` stacks the whole
repetition block into ``(B, 2**n)`` NumPy tiles and runs each plan
record once across the batch.

Correctness stays pinned before any timing: the batched output is
bit-for-bit invariant under the tile width (the engine's only internal
geometry knob) and bit-for-bit reproducible for a fixed seed.

Acceptance bar: batched beats serial by >= 3x on the headline wall time
(``BENCH_batched_vs_serial_trajectories.json``; enforced with
``min_ratio`` by ``check_regressions.py``).
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.states import StateVectorSimulationState

from conftest import assert_timing_win, print_series, wall_time

WIDTH = 6
DEPTH = 10
REPS = 512
MIN_SPEEDUP = 3.0
QUBITS = cirq.LineQubit.range(WIDTH)


def noisy_circuit(seed=11):
    """Random shallow circuit with one depolarizing channel per layer."""
    rng = np.random.default_rng(seed)
    circuit = cirq.Circuit(cirq.H(q) for q in QUBITS)
    for layer in range(DEPTH):
        a = layer % (WIDTH - 1)
        circuit.append(cirq.CNOT(QUBITS[a], QUBITS[a + 1]))
        circuit.append(
            cirq.Rx(float(rng.uniform(0.2, 1.2))).on(
                QUBITS[(3 * layer) % WIDTH]
            )
        )
        circuit.append(channels.depolarize(0.02).on(QUBITS[(layer + 1) % WIDTH]))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


def make_sim(mode, seed=19, tile=None):
    return bgls.Simulator(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        trajectory_mode=mode,
        trajectory_tile=tile,
    )


def test_batched_vs_serial_trajectories():
    circuit = noisy_circuit()

    # Correctness before timing: the batched output is a pure function
    # of (seed, repetition index) — the tile width must not show.
    reference = make_sim("batched").run(circuit, repetitions=REPS)
    for tile in (7, 64):
        tiled = make_sim("batched", tile=tile).run(circuit, repetitions=REPS)
        np.testing.assert_array_equal(
            reference.measurements["m"],
            tiled.measurements["m"],
            err_msg=f"tile={tile} changed the batched output",
        )
    replay = make_sim("batched").run(circuit, repetitions=REPS)
    np.testing.assert_array_equal(
        reference.measurements["m"], replay.measurements["m"]
    )

    serial_sim = make_sim("serial")
    batched_sim = make_sim("batched")
    serial_s = wall_time(
        lambda: serial_sim.run(circuit, repetitions=REPS), repeats=3
    )
    batched_s = wall_time(
        lambda: batched_sim.run(circuit, repetitions=REPS), repeats=3
    )
    speedup = serial_s / batched_s

    print_series(
        "Batched vs serial trajectories",
        [
            "qubits",
            "depth",
            "reps",
            "serial_s",
            "batched_s",
            "speedup",
        ],
        [(WIDTH, DEPTH, REPS, serial_s, batched_s, speedup)],
    )
    assert_timing_win(
        MIN_SPEEDUP * batched_s,
        serial_s,
        f"batched trajectories >= {MIN_SPEEDUP}x over serial",
    )
