"""Multi-program warm-pool batches + adaptive scheduling benchmarks.

Two claims, two series:

* **Multi-program batch vs per-circuit re-init** — ``run_batch`` over 8
  *distinct* circuits ships one program table to the warm pool (one
  worker initialization for the whole batch) versus the PR-4 cost model
  in which every circuit is its own execution key and re-initializes the
  pool (``scope="repetitions"``; 8 inits).  Acceptance bar: the
  multi-program batch wins by >= 1.5x wall-clock
  (``BENCH_multi_program_batch_vs_per_circuit_reinit.json``), with the
  init counters asserted exactly (1 vs N).
* **Adaptive vs FIFO scheduling** — a mixed-depth 24-point batch whose
  one deep circuit sits at the end of the queue.  FIFO (one task per
  point, submission order) serializes the deep tail on a single worker;
  the adaptive scheduler orders largest-first and splits the oversized
  point into repetition sub-chunks, keeping both workers busy
  (``BENCH_adaptive_vs_fifo_mixed_depth_sweep.json``).

Correctness stays pinned alongside the timings: the FIFO batch is
bit-for-bit identical to the serial ``run_batch``, and the adaptive
schedule verifiably split the deep point.
"""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.sampler import (
    AdaptiveScheduler,
    FifoScheduler,
    PoolManager,
    ProcessPoolExecutor,
)
from repro.states import StateVectorSimulationState

from conftest import assert_timing_win, print_series, wall_time

WIDTH = 4
QUBITS = cirq.LineQubit.range(WIDTH)
BATCH = 8
REPS = 20


def clifford_batch(count):
    """``count`` structurally distinct Clifford circuits."""
    circuits = []
    for extra in range(count):
        circuit = cirq.Circuit(cirq.H(q) for q in QUBITS)
        for layer in range(extra + 1):
            for a, b in zip(QUBITS[:-1], QUBITS[1:]):
                circuit.append(cirq.CNOT(a, b))
            circuit.append(cirq.S(QUBITS[layer % WIDTH]))
        circuit.append(cirq.measure(*QUBITS, key="m"))
        circuits.append(circuit)
    return circuits


def noisy_circuit(depth, rng):
    """A trajectory-mode circuit whose cost is linear in depth x reps."""
    circuit = cirq.Circuit(cirq.H(q) for q in QUBITS)
    for _ in range(depth):
        a = int(rng.integers(WIDTH - 1))
        circuit.append(cirq.CNOT(QUBITS[a], QUBITS[a + 1]))
        circuit.append(cirq.Rx(float(rng.random())).on(QUBITS[int(rng.integers(WIDTH))]))
        circuit.append(channels.depolarize(0.02).on(QUBITS[a]))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


def make_sim(executor=None, seed=11):
    return bgls.Simulator(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        executor=executor,
    )


def test_multi_program_batch_vs_per_circuit_reinit():
    """One pool init for a heterogeneous batch vs one per circuit."""
    circuits = clifford_batch(BATCH)
    serial = make_sim().run_batch(circuits, repetitions=REPS)

    with PoolManager() as manager:
        warm_sim = make_sim(
            ProcessPoolExecutor(
                num_workers=2, start_method="fork", pool_manager=manager
            )
        )
        warm_first = warm_sim.run_batch(circuits, repetitions=REPS)
        warm_seconds = wall_time(
            lambda: warm_sim.run_batch(circuits, repetitions=REPS), repeats=3
        )
        # Acceptance criterion: 8 distinct circuits, exactly 1 worker init.
        assert manager.stats["inits"] == 1, manager.stats
        warm_inits = manager.stats["inits"]

    with PoolManager() as manager:
        reinit_sim = make_sim(
            ProcessPoolExecutor(
                num_workers=2, start_method="fork", pool_manager=manager
            )
        )
        # scope="repetitions" = the PR-4 cost model: every circuit is its
        # own execution key, so each batch pass re-initializes the pool
        # once per circuit.
        reinit_seconds = wall_time(
            lambda: reinit_sim.run_batch(
                circuits, repetitions=REPS, scope="repetitions"
            ),
            repeats=1,
        )
        reinit_inits = manager.stats["inits"]
        assert reinit_inits >= BATCH

    for a, b in zip(serial, warm_first):
        np.testing.assert_array_equal(a.measurements["m"], b.measurements["m"])

    speedup = reinit_seconds / warm_seconds
    print_series(
        "Multi-program batch vs per-circuit reinit",
        ["circuits", "reps", "warm_s", "reinit_s", "speedup", "warm_inits", "reinit_inits"],
        [
            (
                BATCH,
                REPS,
                warm_seconds,
                reinit_seconds,
                speedup,
                warm_inits,
                reinit_inits,
            )
        ],
    )
    assert_timing_win(
        1.5 * warm_seconds,
        reinit_seconds,
        "multi-program batch >= 1.5x over per-circuit reinit",
    )


def list_schedule_makespan(durations, num_workers):
    """Earliest-free-worker makespan of tasks dispatched in list order.

    This is exactly how the process pool consumes the submitted task
    queue (a free worker pulls the next task), so the makespan of the
    measured per-task durations is the wall-clock the schedule achieves
    on an otherwise-idle ``num_workers`` pool.  Computing it explicitly
    makes the comparison robust on constrained CI runners, where two
    workers timesharing one core would reduce any wall-clock diff to
    scheduler noise.
    """
    workers = [0.0] * num_workers
    for duration in durations:
        earliest = min(range(num_workers), key=lambda w: workers[w])
        workers[earliest] += duration
    return max(workers)


def test_adaptive_vs_fifo_mixed_depth_sweep():
    """Largest-first + split scheduling vs one-task-per-point FIFO.

    The deep point sits at the end of the FIFO queue, so one worker
    grinds it alone while the rest of the pool idles; the adaptive
    scheduler runs it first *and* splits it into repetition sub-chunks.
    Gated on the measured-duration makespan (deterministic); the raw
    pooled wall times ride along as informational columns.
    """
    points = 24
    reps = 24
    num_workers = 2
    rng = np.random.default_rng(7)
    depths = [2] * (points - 1) + [90]  # the deep point sits last
    circuits = [noisy_circuit(depth, rng) for depth in depths]

    # Measured per-point serial seconds anchor the task durations.
    serial_sim = make_sim()
    point_seconds = [
        wall_time(
            lambda c=circuit: serial_sim.run_batch([c], repetitions=reps),
            repeats=2,
        )
        for circuit in circuits
    ]

    def pooled(scheduler):
        with PoolManager() as manager:
            sim = make_sim(
                ProcessPoolExecutor(
                    num_workers=num_workers,
                    start_method="fork",
                    pool_manager=manager,
                    scheduler=scheduler,
                )
            )
            first = sim.run_batch(circuits, repetitions=reps)
            seconds = wall_time(
                lambda: sim.run_batch(circuits, repetitions=reps), repeats=3
            )
            assert manager.stats["inits"] == 1, manager.stats
        return first, seconds

    fifo = FifoScheduler()
    adaptive = AdaptiveScheduler()
    fifo_results, fifo_wall = pooled(fifo)
    _, adaptive_wall = pooled(adaptive)
    assert adaptive.last_schedule["split_points"] >= 1

    # FIFO correctness: bit-for-bit identical to the serial run_batch.
    serial = make_sim().run_batch(circuits, repetitions=reps)
    for a, b in zip(serial, fifo_results):
        np.testing.assert_array_equal(a.measurements["m"], b.measurements["m"])

    # The makespan each schedule achieves for the measured durations.
    fifo_makespan = list_schedule_makespan(point_seconds, num_workers)
    adaptive_tasks = adaptive.last_schedule["_tasks"]
    adaptive_durations = [
        point_seconds[t.point_index] * t.repetitions / reps
        for t in adaptive_tasks
    ]
    adaptive_makespan = list_schedule_makespan(adaptive_durations, num_workers)

    speedup = fifo_makespan / adaptive_makespan
    print_series(
        "Adaptive vs FIFO mixed-depth sweep",
        [
            "points",
            "reps",
            "workers",
            "adaptive_makespan_s",
            "fifo_makespan_s",
            "speedup",
            "adaptive_wall_s",
            "fifo_wall_s",
        ],
        [
            (
                points,
                reps,
                num_workers,
                adaptive_makespan,
                fifo_makespan,
                speedup,
                adaptive_wall,
                fifo_wall,
            )
        ],
    )
    assert_timing_win(
        adaptive_makespan, fifo_makespan, "adaptive scheduling beats FIFO"
    )
