"""Fig. 4: overlap attained with sum-over-Cliffords sampling.

(a) overlap vs number of samples for a pure-Clifford circuit (T -> S) and
    the corresponding near-Clifford Clifford+T circuit: the non-Clifford
    run lags at every sample count.
(b) overlap vs rotation angle theta when every T is replaced by R(theta):
    the overlap fluctuates with theta, peaking at the Clifford angles.
"""

import math

import numpy as np
import pytest

from repro import circuits as cirq
from repro.analysis import empirical_distribution, fractional_overlap

from conftest import make_stabilizer_simulator, print_series


def _ideal(circuit, qubits):
    return (
        np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qubits)
        )
        ** 2
    )


def _overlap(circuit, qubits, reps, seed):
    sim = make_stabilizer_simulator(qubits, seed=seed, near_clifford=True)
    bits = sim.sample_bitstrings(circuit, repetitions=reps)
    return fractional_overlap(
        empirical_distribution(bits, len(qubits)), _ideal(circuit, qubits)
    )


@pytest.fixture(scope="module")
def workload():
    qubits = cirq.LineQubit.range(5)
    clifford_t = cirq.random_clifford_t_circuit(
        qubits, 20, t_density=0.2, random_state=11
    )
    pure = cirq.substitute_gate(clifford_t, cirq.T, cirq.S)
    return qubits, clifford_t, pure


def test_fig4a_overlap_vs_samples(benchmark, workload):
    qubits, clifford_t, pure = workload
    n_t = cirq.count_gate(clifford_t, cirq.T)
    sample_counts = [100, 400, 1600]
    rows = []
    lag_seen = []
    for reps in sample_counts:
        o_pure = _overlap(pure, qubits, reps, seed=reps)
        o_near = _overlap(clifford_t, qubits, reps, seed=reps + 1)
        rows.append((reps, o_pure, o_near))
        lag_seen.append(o_near <= o_pure + 0.02)
    print_series(
        f"Fig. 4a - overlap vs samples (pure Clifford vs {n_t} T gates)",
        ["samples", "overlap_pure", "overlap_near_clifford"],
        rows,
    )
    # The near-Clifford overlap lags the pure-Clifford one.
    assert sum(lag_seen) >= 2

    benchmark(lambda: _overlap(clifford_t, qubits, 400, seed=0))


def test_fig4b_overlap_vs_angle(benchmark, workload):
    qubits, clifford_t, _ = workload
    thetas = [i * math.pi / 8 for i in range(9)]  # 0 .. pi
    rows = []
    overlaps = {}
    for theta in thetas:
        circuit = cirq.substitute_gate(
            clifford_t, cirq.T, cirq.Rz(theta)
        )
        o = _overlap(circuit, qubits, 800, seed=int(theta * 100))
        overlaps[theta] = o
        rows.append((round(theta / math.pi, 3), o))
    print_series(
        "Fig. 4b - overlap vs rotation angle (theta in units of pi, 800 samples)",
        ["theta_over_pi", "overlap"],
        rows,
    )
    # Clifford angles (0, pi/2, pi) are maxima: branch choice is exact there.
    clifford_mean = np.mean([overlaps[0.0], overlaps[math.pi / 2], overlaps[math.pi]])
    odd_mean = np.mean([overlaps[math.pi / 8], overlaps[3 * math.pi / 8]])
    assert clifford_mean > odd_mean

    circuit = cirq.substitute_gate(clifford_t, cirq.T, cirq.Rz(math.pi / 8))
    benchmark(lambda: _overlap(circuit, qubits, 200, seed=0))
