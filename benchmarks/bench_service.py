"""Sampling-service benchmarks: fair share, key grouping, isolation cost.

One series, four claims (``BENCH_service_fair_share.json``):

* **Shared warm pool** — >= 4 concurrent tenants run their jobs through
  ONE warm process pool; the pool manager's reuse counter (not fresh
  inits) absorbs the whole job stream.
* **Key grouping** — 16 jobs interleaving 2 distinct execution keys
  across 4 tenant queues cost 1 pool re-initialization (the single
  warm-key flip), never one per job: dispatch groups adjacent same-key
  jobs per tenant without starving anyone.
* **Fair-share latency** — a light tenant's probe-job p99 latency under
  3 heavy backlogged tenants stays within 3x its idle p99 (the gated
  ``fairness_headroom`` column is ``3 * idle_p99 / loaded_p99`` and
  must stay >= 1).
* **Determinism under multiplexing** — streamed job results are
  bit-for-bit equal to a direct ``run_sweep`` of the same
  ``(circuit, params, repetitions, seed)`` on a fresh serial simulator
  (the ``equal`` column pins this exactly).
"""

import time

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import SamplingService
from repro.sampler import jobs as jobs_mod
from repro.states import StateVectorSimulationState

from conftest import assert_timing_win, print_series

WIDTH = 6
QUBITS = cirq.LineQubit.range(WIDTH)
THETA = cirq.Symbol("theta")
POINTS = [{"theta": 0.1 + 0.11 * i} for i in range(3)]
# The light tenant's probe is a wide sweep (12 points fanned across the
# pool) so its own pool-parallel run time dominates its latency; the
# heavy tenants flood with narrow 3-point jobs, so the probe's queueing
# delay — bounded by start-time fair queueing's one-job re-entry slack
# at roughly the job in service — is a fraction of the probe itself.
# p99 is taken per round of probes and the median across rounds is
# reported, so a one-off OS hiccup cannot masquerade as a fairness
# regression.
PROBE_POINTS = [{"theta": 0.1 + 0.07 * i} for i in range(12)]
PROBE_REPS = 32
HEAVY_REPS = 64
PROBES = 8
ROUNDS = 3
BACKLOG_PER_HEAVY = 64


def circuit_a():
    circuit = cirq.Circuit(cirq.H(q) for q in QUBITS)
    for a, b in zip(QUBITS[:-1], QUBITS[1:]):
        circuit.append(cirq.CNOT(a, b))
    for q in QUBITS:
        circuit.append(cirq.Rx(THETA).on(q))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


def circuit_b():
    circuit = cirq.Circuit(cirq.H(q) for q in QUBITS)
    for a, b in zip(QUBITS[1:], QUBITS[:-1]):
        circuit.append(cirq.CNOT(a, b))
    for q in QUBITS:
        circuit.append(cirq.Rz(THETA).on(q))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


def direct_sweep(circuit, params, repetitions, seed):
    sim = bgls.Simulator(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
    )
    return sim.run_sweep(circuit, params, repetitions)


def probe_p99(service, seed_base):
    """Median over rounds of the p99 of sequential probe round trips."""
    p99s = []
    for round_ in range(ROUNDS):
        latencies = []
        for k in range(PROBES):
            start = time.perf_counter()
            handle = service.submit(
                circuit_a(),
                PROBE_POINTS,
                tenant="light",
                repetitions=PROBE_REPS,
                seed=seed_base + PROBES * round_ + k,
            )
            handle.result(timeout=300)
            latencies.append(time.perf_counter() - start)
        p99s.append(float(np.percentile(latencies, 99)))
    return float(np.median(p99s))


def test_service_fair_share():
    """4 tenants, 1 warm pool: grouping, fair-share latency, determinism."""
    ca, cb = circuit_a(), circuit_b()
    heavies = ("heavy0", "heavy1", "heavy2")
    service = SamplingService(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        num_workers=2,
        start_method="fork",
    )
    with service:
        manager = service.executor.pool_manager
        service.register_tenant("light", quota=6.0)
        for name in heavies:
            service.register_tenant(name, quota=1.0)

        # -- idle baseline: the light tenant alone on a warmed pool ----
        warmup = service.submit(
            ca, PROBE_POINTS, tenant="light", repetitions=PROBE_REPS, seed=7
        )
        assert warmup.result(timeout=300) == direct_sweep(
            ca, PROBE_POINTS, PROBE_REPS, 7
        )
        idle_p99 = probe_p99(service, seed_base=100)

        # -- key grouping: 16 jobs over 2 keys from 4 tenant queues ----
        # A long stall job (from a throwaway filler tenant, so the cost
        # is not billed to the light tenant's fair-share ledger) holds
        # the dispatcher while every backlog is enqueued, so the
        # measured init count is the policy's doing, not
        # submission-timing luck.
        inits_before = manager.stats["inits"]
        stall = service.submit(
            ca, POINTS, tenant="filler", repetitions=8 * PROBE_REPS, seed=8
        )
        grouped = [
            service.submit(
                circuit,
                POINTS,
                tenant=tenant,
                repetitions=PROBE_REPS,
                seed=200 + 10 * t + 2 * r + i,
            )
            for t, tenant in enumerate(("light",) + heavies)
            for r in range(2)
            for i, circuit in enumerate((ca, cb))
        ]
        stall.result(timeout=300)
        for handle in grouped:
            handle.result(timeout=300)
        reinits = manager.stats["inits"] - inits_before
        distinct_keys = 2
        # Grouping bar: interleaved keys cost at most one init per
        # distinct key (here exactly one — the single A->B flip).
        assert reinits <= distinct_keys, manager.stats

        # -- fair share: light probes against 3 heavy backlogs ---------
        # Re-warm the pool on the probe key so the one-off B->A flip is
        # not billed to the loaded-latency measurement.
        service.submit(
            ca, PROBE_POINTS, tenant="light", repetitions=PROBE_REPS, seed=9
        ).result(timeout=300)
        backlog = [
            service.submit(
                ca, POINTS, tenant=tenant, repetitions=HEAVY_REPS, seed=300 + k
            )
            for k in range(BACKLOG_PER_HEAVY)
            for tenant in heavies
        ]
        loaded_p99 = probe_p99(service, seed_base=400)
        # The heavy backlogs must have stayed live through every loaded
        # probe round — otherwise the measurement quietly degraded into
        # another idle baseline.
        assert any(
            handle.status() in (jobs_mod.QUEUED, jobs_mod.RUNNING)
            for handle in backlog
        ), "heavy backlog drained before the loaded probes finished"
        for handle in backlog:
            handle.result(timeout=300)

        # -- determinism: multiplexed stream == direct serial sweep ----
        job = service.submit(
            cb, POINTS, tenant="heavy0", repetitions=HEAVY_REPS, seed=5
        )
        equal = int(
            list(job.stream()) == direct_sweep(cb, POINTS, HEAVY_REPS, 5)
        )
        assert equal == 1

        stats = service.stats()
        tenants = len(stats)
        assert tenants >= 4
        assert manager.stats["reuses"] > 0
        assert stats["light"]["jobs_completed"] == 2 * ROUNDS * PROBES + 6
        assert sum(stats[h]["jobs_failed"] for h in heavies) == 0

    latency_ratio = loaded_p99 / idle_p99
    fairness_headroom = 3.0 / latency_ratio
    print_series(
        "service fair share",
        [
            "tenants",
            "distinct_keys",
            "reinits",
            "idle_p99_s",
            "loaded_p99_s",
            "latency_ratio",
            "fairness_headroom",
            "equal",
        ],
        [
            (
                tenants,
                distinct_keys,
                reinits,
                idle_p99,
                loaded_p99,
                latency_ratio,
                fairness_headroom,
                equal,
            )
        ],
    )
    # The acceptance bar: a light tenant's loaded p99 stays within 3x of
    # its idle p99 while three heavy tenants flood the same pool.
    assert_timing_win(
        loaded_p99,
        3.0 * idle_p99,
        "light-tenant p99 under load <= 3x idle p99",
    )
