"""Sec. 3.2.2: circuit optimization speedup for gate-by-gate sampling.

Paper claim: merging runs of single-qubit operations (fewer bitstring
updates) speeds BGLS sampling of random 8-qubit circuits with up to 50
layers by 1.5-2x.  We sweep layer counts and print the speedup series.
"""

import numpy as np

from repro import circuits as cirq

from conftest import make_sv_simulator, print_series, wall_time

REPS = 50


def _sample(qubits, circuit):
    sim = make_sv_simulator(qubits, seed=0)
    sim.sample_bitstrings(circuit, repetitions=REPS)


def test_optimize_for_bgls_speedup(benchmark):
    qubits = cirq.LineQubit.range(8)
    rows = []
    speedups = []
    for layers in (10, 25, 50):
        circuit = cirq.generate_random_circuit(
            qubits, layers, op_density=0.9, random_state=layers
        )
        optimized = cirq.optimize_for_bgls(circuit)
        t_plain = wall_time(lambda: _sample(qubits, circuit), repeats=3)
        t_opt = wall_time(lambda: _sample(qubits, optimized), repeats=3)
        speedup = t_plain / t_opt
        speedups.append(speedup)
        rows.append(
            (
                layers,
                circuit.num_operations(),
                optimized.num_operations(),
                t_plain,
                t_opt,
                speedup,
            )
        )
    print_series(
        "Sec. 3.2.2 - optimize_for_bgls on random 8-qubit circuits "
        f"({REPS} reps)",
        ["layers", "ops_before", "ops_after", "sec_plain", "sec_opt", "speedup"],
        rows,
    )
    # Paper reports 1.5-2x; require a clear win on the deeper circuits.
    assert max(speedups) > 1.3
    assert np.mean(speedups) > 1.1

    circuit = cirq.generate_random_circuit(
        qubits, 50, op_density=0.9, random_state=7
    )
    optimized = cirq.optimize_for_bgls(circuit)
    benchmark(lambda: _sample(qubits, optimized))


def test_optimization_preserves_distribution():
    """Sanity gate for the bench: merging must not change sampled stats."""
    qubits = cirq.LineQubit.range(5)
    circuit = cirq.generate_random_circuit(
        qubits, 30, op_density=0.9, random_state=3
    )
    optimized = cirq.optimize_for_bgls(circuit)
    p1 = np.abs(circuit.final_state_vector(qubit_order=qubits)) ** 2
    p2 = np.abs(optimized.final_state_vector(qubit_order=qubits)) ** 2
    np.testing.assert_allclose(p1, p2, atol=1e-8)
