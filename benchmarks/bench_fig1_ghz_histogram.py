"""Fig. 1: measurement histogram of the 2-qubit GHZ circuit.

Paper claim: only the 00 and 11 outcomes appear, ~uniformly.  The bench
times a 1000-repetition BGLS run and prints the histogram.
"""

import pytest

from repro import circuits as cirq
from repro.apps import ghz_circuit

from conftest import make_sv_simulator, print_series


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(2)


@pytest.fixture
def circuit():
    return ghz_circuit(2)


def test_fig1_ghz_histogram(benchmark, qubits, circuit):
    sim = make_sv_simulator(qubits, seed=1)
    result = benchmark(lambda: sim.run(circuit, repetitions=1000))
    hist = result.histogram("z")

    rows = [
        (format(outcome, "02b"), count, count / 1000)
        for outcome, count in sorted(hist.items())
    ]
    print_series(
        "Fig. 1 - GHZ measurement histogram (1000 repetitions)",
        ["outcome", "count", "frequency"],
        rows,
    )
    # Shape assertions: only extremes, roughly balanced.
    assert set(hist) <= {0, 3}
    assert 350 < hist[0] < 650
