"""Warm-pool service benchmarks: startup amortization + payload economy.

Two claims, two series:

* **Warm vs cold pool** — a 24-point parameter sweep fanned point-wise
  across a warm process pool (workers initialized once, reused across
  ``run_sweep`` calls) versus the cold per-call model (a fresh pool —
  and a full worker re-initialization — for every point's ``execute``,
  the PR-3 behavior).  Acceptance bar: warm wins by >= 1.5x wall-clock
  (``BENCH_warm_pool_vs_cold_pool_sweep.json``), with zero warm worker
  re-initializations across consecutive sweeps asserted via the
  manager's init counter.
* **Snapshot payloads** — the packed tableau/CH backends ship raw
  ``uint64`` words to workers instead of pickled state objects; the
  series records payload-vs-pickle bytes at word-boundary widths
  (``BENCH_snapshot_payload_bytes.json``).

Correctness stays pinned alongside the timings: warm, cold, and serial
sweeps are bit-for-bit identical.
"""

import pickle

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import PoolManager, ProcessPoolExecutor
from repro.states import (
    CliffordTableauSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
    capabilities_for,
)

from conftest import assert_timing_win, print_series, wall_time

SWEEP_POINTS = 24
REPS = 20
WIDTH = 6


def sweep_template(qubits):
    theta = cirq.Symbol("theta")
    circuit = cirq.Circuit(cirq.H(q) for q in qubits)
    for a, b in zip(qubits[:-1], qubits[1:]):
        circuit.append(cirq.CNOT(a, b))
    for q in qubits:
        circuit.append(cirq.Rx(theta).on(q))
    circuit.append(cirq.measure(*qubits, key="m"))
    return circuit


def make_sim(qubits, executor=None):
    return bgls.Simulator(
        StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=11,
        executor=executor,
    )


def test_warm_pool_vs_cold_pool_sweep():
    """One warm pool for the whole sweep vs one pool startup per point."""
    qubits = cirq.LineQubit.range(WIDTH)
    template = sweep_template(qubits)
    params = [{"theta": 0.1 + 0.11 * i} for i in range(SWEEP_POINTS)]

    with PoolManager() as manager:
        warm_sim = make_sim(
            qubits,
            ProcessPoolExecutor(
                num_workers=2, start_method="fork", pool_manager=manager
            ),
        )
        # First call builds + initializes the workers once...
        warm_first = warm_sim.sample_bitstrings_sweep(
            template, params, repetitions=REPS, scope="points"
        )
        # ...then consecutive sweeps reuse them with zero re-inits.
        warm_seconds = wall_time(
            lambda: warm_sim.sample_bitstrings_sweep(
                template, params, repetitions=REPS, scope="points"
            ),
            repeats=3,
        )
        assert manager.stats["inits"] == 1, manager.stats
        assert manager.stats["reuses"] >= 3

    cold_sim = make_sim(
        qubits,
        ProcessPoolExecutor(num_workers=2, start_method="fork", reuse_pool=False),
    )
    # scope="repetitions" + cold pool = the PR-3 cost model: every sweep
    # point spins up (and tears down) its own fully-initialized pool.
    cold_seconds = wall_time(
        lambda: cold_sim.sample_bitstrings_sweep(
            template, params, repetitions=REPS, scope="repetitions"
        ),
        repeats=1,
    )

    serial = make_sim(qubits).sample_bitstrings_sweep(
        template, params, repetitions=REPS
    )
    warm_again = make_sim(
        qubits,
        ProcessPoolExecutor(num_workers=2, start_method="fork"),
    ).sample_bitstrings_sweep(template, params, repetitions=REPS, scope="points")
    for a, b, c in zip(serial, warm_first, warm_again):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)

    speedup = cold_seconds / warm_seconds
    print_series(
        "warm pool vs cold pool sweep",
        ["points", "reps", "warm_s", "cold_s", "speedup"],
        [(SWEEP_POINTS, REPS, warm_seconds, cold_seconds, speedup)],
    )
    # The acceptance bar is 1.5x, not just "faster".
    assert_timing_win(
        1.5 * warm_seconds, cold_seconds, "warm pool >= 1.5x over cold"
    )


def test_snapshot_payload_bytes():
    """Raw-word snapshot payloads vs pickled state objects, per backend."""
    rows = []
    for state_cls, label in (
        (CliffordTableauSimulationState, "clifford_tableau"),
        (StabilizerChFormSimulationState, "stabilizer_ch_form"),
    ):
        caps = capabilities_for(state_cls)
        for n in (63, 64, 65, 256):
            qubits = cirq.LineQubit.range(n)
            circuit = cirq.random_clifford_circuit(qubits, 6, random_state=n)
            state = state_cls(qubits)
            for op in circuit.all_operations():
                bgls.act_on(op, state)
            payload_bytes = len(pickle.dumps(caps.snapshot(state)))
            object_bytes = len(pickle.dumps(state))
            assert payload_bytes < object_bytes
            rows.append(
                (
                    label,
                    n,
                    payload_bytes,
                    object_bytes,
                    object_bytes / payload_bytes,
                )
            )
    print_series(
        "snapshot payload bytes",
        ["backend", "width", "payload_bytes", "pickled_state_bytes", "ratio"],
        rows,
    )
