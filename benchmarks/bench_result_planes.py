"""Shared-memory result planes: transport economy + streaming latency.

Two claims, two series:

* **Shm result planes vs pickled results** — a wide-repetition tableau
  sweep fanned point-wise across a warm pool, once with
  ``result_transport="shm"`` (workers write their sample rows into
  pre-allocated shared-memory planes and return a single integer) and
  once with ``result_transport="pickle"`` (each task pickles its full
  ``(records, bits)`` arrays through the pool's result queue, the PR-5
  behavior).  The series records the actual parent↔worker result bytes
  (via the executor's ``measure_result_bytes`` probe) alongside wall
  time.  Acceptance bar: >= 2x byte reduction, with a measured wall
  win and bit-for-bit equality against the serial path
  (``BENCH_shm_result_planes_vs_pickled_results.json``).
* **Streaming first-point latency** — ``run_sweep_iter`` yields each
  point's ``Result`` as its last chunk lands, so a consumer sees the
  first point after ~1/points of the sweep instead of waiting for the
  blocking ``run_sweep`` to return the full list
  (``BENCH_streaming_first_point_latency.json``).

Correctness stays pinned alongside the timings: shm, pickle, serial,
and streaming results are bit-for-bit identical.
"""

import time

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import PoolManager, ProcessPoolExecutor
from repro.states import CliffordTableauSimulationState

from conftest import assert_timing_win, print_series, wall_time

SWEEP_POINTS = 6
# (width, depth, repetitions): shallow, wide tableau sweeps where the
# per-point result arrays (reps x width x 2 planes, ~24-38 MB per
# sweep) dwarf the simulation cost — the regime the transport matters
# in, and the regime a streaming service tier runs in.
SWEEP_CONFIGS = ((20, 2, 100_000), (16, 1, 400_000))
STREAM_WIDTH = 12
STREAM_POINTS = 12
STREAM_REPS = 20_000
STREAM_DEPTH = 8


def tableau_sweep_circuit(qubits, depth):
    """A cheap-to-simulate, wide-output workload: the tableau backend
    samples hundreds of thousands of repetitions in parallel-front mode
    for pennies, so the result arrays — not the simulation — dominate."""
    circuit = cirq.random_clifford_circuit(qubits, depth, random_state=7)
    circuit.append(cirq.measure(*qubits, key="m"))
    return circuit


def make_tableau_sim(qubits, executor=None):
    return bgls.Simulator(
        CliffordTableauSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_tableau,
        seed=23,
        executor=executor,
    )


def assert_results_equal(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert sorted(a.measurements) == sorted(b.measurements)
        for key in a.measurements:
            np.testing.assert_array_equal(
                a.measurements[key], b.measurements[key]
            )


def test_shm_result_planes_vs_pickled_results():
    """Zero-copy shm planes vs pickled result tuples, same warm pool."""
    rows = []
    with PoolManager() as manager:
        for width, depth, reps in SWEEP_CONFIGS:
            qubits = cirq.LineQubit.range(width)
            circuit = tableau_sweep_circuit(qubits, depth)
            params = [None] * SWEEP_POINTS
            measured = {}
            for transport in ("pickle", "shm"):
                executor = ProcessPoolExecutor(
                    num_workers=2,
                    start_method="fork",
                    pool_manager=manager,
                    result_transport=transport,
                )
                sim = make_tableau_sim(qubits, executor)

                def sweep(sim=sim, reps=reps):
                    return sim.run_sweep(
                        circuit, params, repetitions=reps, scope="points"
                    )

                results = sweep()  # warm the pool outside the timing
                seconds = wall_time(sweep, repeats=3)
                # Bytes probe re-pickles every payload, so it runs in
                # its own untimed pass.
                executor.measure_result_bytes = True
                executor.last_result_bytes = 0
                sweep()
                executor.measure_result_bytes = False
                measured[transport] = (
                    results,
                    seconds,
                    executor.last_result_bytes,
                )

            serial = make_tableau_sim(qubits).run_sweep(
                circuit, params, repetitions=reps
            )
            assert_results_equal(serial, measured["pickle"][0])
            assert_results_equal(serial, measured["shm"][0])

            pickle_bytes = measured["pickle"][2]
            shm_bytes = measured["shm"][2]
            bytes_ratio = pickle_bytes / shm_bytes
            speedup = measured["pickle"][1] / measured["shm"][1]
            rows.append(
                (
                    SWEEP_POINTS,
                    reps,
                    width,
                    pickle_bytes,
                    shm_bytes,
                    bytes_ratio,
                    measured["pickle"][1],
                    measured["shm"][1],
                    speedup,
                    1,  # exact-equality column, asserted above
                )
            )

    print_series(
        "shm result planes vs pickled results",
        [
            "points",
            "reps",
            "width",
            "pickle_bytes",
            "shm_bytes",
            "bytes_ratio",
            "pickle_s",
            "shm_s",
            "speedup",
            "equal",
        ],
        rows,
    )
    for row in rows:
        # The acceptance bar: shm moves >= 2x fewer result bytes
        # through the pool's queue (in practice it is orders of
        # magnitude — each task returns one integer).
        assert row[5] >= 2.0, row
    widest = rows[-1]
    assert_timing_win(
        widest[7], widest[6], "shm result planes beat pickled results"
    )


def test_streaming_first_point_latency():
    """Time-to-first-result of ``run_sweep_iter`` vs blocking ``run_sweep``."""
    qubits = cirq.LineQubit.range(STREAM_WIDTH)
    circuit = tableau_sweep_circuit(qubits, STREAM_DEPTH)
    params = [None] * STREAM_POINTS

    with PoolManager() as manager:
        sim = make_tableau_sim(
            qubits,
            ProcessPoolExecutor(
                num_workers=2, start_method="fork", pool_manager=manager
            ),
        )
        def blocking():
            return sim.run_sweep(
                circuit, params, repetitions=STREAM_REPS, scope="points"
            )

        reference = blocking()  # warm the pool outside the timing
        full_seconds = wall_time(blocking, repeats=3)

        first_latencies = []
        for _ in range(3):
            start = time.perf_counter()
            stream = sim.run_sweep_iter(
                circuit, params, repetitions=STREAM_REPS, scope="points"
            )
            first = next(stream)
            first_latencies.append(time.perf_counter() - start)
            streamed = [first] + list(stream)  # drain outside the timing
        first_seconds = float(np.median(first_latencies))
        assert_results_equal(reference, streamed)

    speedup = full_seconds / first_seconds
    print_series(
        "streaming first point latency",
        ["points", "reps", "first_point_s", "full_sweep_s", "speedup"],
        [(STREAM_POINTS, STREAM_REPS, first_seconds, full_seconds, speedup)],
    )
    assert_timing_win(
        first_seconds,
        full_seconds,
        "first streamed point lands before the blocking sweep returns",
    )
