"""Named-index tensors (the quimb substitute).

A :class:`Tensor` couples an ndarray with one label per axis.  Contractions
are expressed by shared labels, slicing by ``isel`` (the operation the
paper's ``mps_bitstring_probability`` snippet uses), so the MPS code reads
almost identically to the quimb-based reference.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np


class Tensor:
    """An ndarray with named indices.

    Args:
        data: The underlying array.
        inds: One unique name per axis, ``len(inds) == data.ndim``.
    """

    __slots__ = ("data", "inds")

    def __init__(self, data: np.ndarray, inds: Sequence[str]):
        data = np.asarray(data)
        inds = tuple(inds)
        if data.ndim != len(inds):
            raise ValueError(
                f"{data.ndim}-d data needs {data.ndim} index names, got {inds}"
            )
        if len(set(inds)) != len(inds):
            raise ValueError(f"Duplicate index names in {inds}")
        self.data = data
        self.inds = inds

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def ind_size(self, ind: str) -> int:
        """Dimension of the axis labelled ``ind``."""
        return self.data.shape[self.inds.index(ind)]

    # -- transformations ----------------------------------------------------
    def isel(self, selectors: Mapping[str, int]) -> "Tensor":
        """Slice out the given indices at fixed positions (axes removed).

        ``T.isel({'i3': 1})`` is quimb's ``isel``: the tensor restricted to
        ``i3 = 1``.
        """
        index = []
        new_inds = []
        for name, dim in zip(self.inds, self.data.shape):
            if name in selectors:
                pos = int(selectors[name])
                if not 0 <= pos < dim:
                    raise IndexError(f"Index {pos} out of range for {name} ({dim})")
                index.append(pos)
            else:
                index.append(slice(None))
                new_inds.append(name)
        missing = set(selectors) - set(self.inds)
        if missing:
            raise KeyError(f"Tensor has no indices {sorted(missing)}")
        return Tensor(self.data[tuple(index)], new_inds)

    def reindex(self, mapping: Mapping[str, str]) -> "Tensor":
        """Rename indices (non-destructive)."""
        return Tensor(self.data, tuple(mapping.get(i, i) for i in self.inds))

    def transpose_to(self, order: Sequence[str]) -> "Tensor":
        """Permute axes into the given index order."""
        order = tuple(order)
        if set(order) != set(self.inds) or len(order) != len(self.inds):
            raise ValueError(f"Order {order} does not match indices {self.inds}")
        perm = [self.inds.index(name) for name in order]
        return Tensor(np.transpose(self.data, perm), order)

    def conj(self, suffix: str = "") -> "Tensor":
        """Complex conjugate; optionally suffix every index name."""
        inds = tuple(i + suffix for i in self.inds) if suffix else self.inds
        return Tensor(self.data.conj(), inds)

    def fuse(self, groups: Sequence[Sequence[str]]) -> np.ndarray:
        """Reshape to a matrix/array whose axes are the given index groups."""
        flat_order = [name for group in groups for name in group]
        t = self.transpose_to(flat_order)
        shape = []
        pos = 0
        for group in groups:
            dim = 1
            for _ in group:
                dim *= t.data.shape[pos]
                pos += 1
            shape.append(dim)
        return t.data.reshape(shape)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, inds={self.inds})"


def contract_pair(a: Tensor, b: Tensor) -> Tensor:
    """Contract two tensors over all shared indices (tensordot-based)."""
    shared = [i for i in a.inds if i in b.inds]
    if not shared:
        # Outer product.
        data = np.tensordot(a.data, b.data, axes=0)
        return Tensor(data, a.inds + b.inds)
    axes_a = [a.inds.index(i) for i in shared]
    axes_b = [b.inds.index(i) for i in shared]
    data = np.tensordot(a.data, b.data, axes=(axes_a, axes_b))
    rem_a = [i for i in a.inds if i not in shared]
    rem_b = [i for i in b.inds if i not in shared]
    return Tensor(data, rem_a + rem_b)
