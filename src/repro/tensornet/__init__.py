"""Minimal tensor-network engine (quimb substitute) backing the MPS state."""

from .tensor import Tensor, contract_pair
from .network import TensorNetwork

__all__ = ["Tensor", "contract_pair", "TensorNetwork"]
