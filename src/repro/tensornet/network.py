"""Tensor networks and greedy contraction.

The contraction cost model is the simple and effective greedy one: at each
step contract the pair of connected tensors whose *result* is smallest.
This reproduces the qualitative cost behaviour the paper leans on — cheap
contractions for low-entanglement networks, exponential blow-up for the
randomly-connected GHZ workload of Fig. 6.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from .tensor import Tensor, contract_pair


class TensorNetwork:
    """A collection of tensors contracted over shared index names.

    Every index name must appear in at most two tensors; names appearing
    once are free (output) indices.
    """

    def __init__(self, tensors: Iterable[Tensor]):
        self.tensors: List[Tensor] = list(tensors)
        counts: dict = {}
        for t in self.tensors:
            for ind in t.inds:
                counts[ind] = counts.get(ind, 0) + 1
        bad = [ind for ind, c in counts.items() if c > 2]
        if bad:
            raise ValueError(f"Indices appear more than twice: {bad}")

    def free_indices(self) -> List[str]:
        """Indices appearing exactly once (the output indices)."""
        counts: dict = {}
        for t in self.tensors:
            for ind in t.inds:
                counts[ind] = counts.get(ind, 0) + 1
        return [ind for ind, c in counts.items() if c == 1]

    def contract(
        self, output_inds: Optional[Sequence[str]] = None
    ) -> Union[complex, Tensor]:
        """Fully contract the network.

        Returns a scalar when no free indices remain, else a tensor with
        axes ordered by ``output_inds`` (default: discovery order).
        """
        if not self.tensors:
            raise ValueError("Empty network")
        pool = list(self.tensors)
        while len(pool) > 1:
            best = None
            best_cost = None
            # Prefer connected pairs; fall back to the smallest outer product.
            for i in range(len(pool)):
                for j in range(i + 1, len(pool)):
                    shared = set(pool[i].inds) & set(pool[j].inds)
                    result_size = 1
                    for t in (pool[i], pool[j]):
                        for ind, dim in zip(t.inds, t.shape):
                            if ind not in shared:
                                result_size *= dim
                    connected = bool(shared)
                    cost = (not connected, result_size)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best = (i, j)
            i, j = best
            merged = contract_pair(pool[i], pool[j])
            pool = [t for k, t in enumerate(pool) if k not in (i, j)]
            pool.append(merged)
        result = pool[0]
        if result.data.ndim == 0:
            return complex(result.data)
        if output_inds is not None:
            result = result.transpose_to(output_inds)
        return result

    def norm_squared(self) -> float:
        """<psi|psi> treating free indices as the ket's physical legs."""
        free = self.free_indices()
        bra = []
        rename = {}
        for t in self.tensors:
            # Internal (bond) indices get a bra-side suffix; free physical
            # indices stay shared so they are summed against the ket.
            mapping = {
                ind: (ind if ind in free else ind + "*") for ind in t.inds
            }
            bra.append(t.conj().reindex(mapping))
        value = TensorNetwork(self.tensors + bra).contract()
        return float(np.real(value))

    def __len__(self) -> int:
        return len(self.tensors)

    def __repr__(self) -> str:
        return f"TensorNetwork(num_tensors={len(self.tensors)})"
