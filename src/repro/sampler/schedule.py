"""Cost-weighted adaptive scheduling for warm-pool batches and sweeps.

Point-scope execution (PR 4) fans whole sweep points across the warm pool
— one task per point, submitted in point order.  That is optimal when
every point costs the same, and pathological when it does not: a
heterogeneous ``run_batch`` whose one deep circuit sits at the end of the
queue leaves ``workers - 1`` processes idle while the last task grinds,
and a 2-point sweep on an 8-worker pool uses a quarter of the machine.

This module is the scheduling seam between the executor and the pool:

* :func:`estimate_cost` gives every batch entry a static cost —
  ``qubits x resolved-op count x repetitions`` — computable from the
  compiled :class:`~repro.sampler.program.Program` alone (no
  specialization, no timing).  It is a *relative* model: doubling the
  depth doubles the cost, which is all ordering and splitting need.
* :class:`FifoScheduler` reproduces the PR-4 geometry exactly: one task
  per point, submission order, one stream seeded
  ``SeedSequence([seed, point])`` — the bit-for-bit serial contract.
* :class:`AdaptiveScheduler` orders the task queue **largest-first**
  (classic LPT list scheduling) and **splits oversized points** — those
  whose cost exceeds a worker's fair share of the batch — into
  repetition sub-chunks so one deep circuit spreads across every worker
  instead of serializing the tail.  Chunk ``c`` of split point ``i`` is
  seeded ``SeedSequence([seed, i, c])`` and chunks merge back in chunk
  order, so the output is a deterministic function of (batch, seed,
  scheduler config) alone — never of worker count, submission order, or
  timing.  Unsplit points keep the exact FIFO/serial seed recipe, so a
  batch with no oversized point is bit-for-bit identical to the serial
  path.
* An optional **first-task timing probe** (``probe=True``) measures the
  largest task alone before the rest of the queue is submitted and
  calibrates the cost model's scale (``seconds_per_cost``), turning the
  static costs into wall-clock estimates (``estimated_seconds`` in
  :attr:`AdaptiveScheduler.last_schedule`).  Calibration never changes
  the chunk geometry — only the *reporting* — because geometry must stay
  a deterministic function of the static model for reproducibility.

Determinism contract (pinned by ``tests/test_schedule.py``): for a fixed
scheduler configuration, the task set (point, chunk, size, seed recipe)
depends only on the batch's static costs — two runs of the same batch
produce identical samples on every backend, pooled or in-process.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def estimate_cost(program, repetitions: int) -> int:
    """Static relative cost of one batch entry: qubits x ops x reps.

    Reads only the compiled Program's structure counters (parameter slots
    count as one op each — their resolved records exist in every
    specialization), so costing a 24-point batch touches no plan builds.
    The unit is arbitrary; only ratios matter to the scheduler.  A timing
    probe (:meth:`AdaptiveScheduler.calibrate`) can anchor it to seconds.
    """
    ops = program.shared_record_count + program.param_slot_count
    return max(1, program.num_qubits) * max(1, ops) * max(1, int(repetitions))


class ScheduledTask:
    """One pool task of a scheduled batch: a point, or one chunk of it.

    ``num_chunks == 1`` means the whole point runs as one stream with the
    serial seed recipe ``SeedSequence([seed, point_index])``; split points
    carry ``chunk_index`` and use ``SeedSequence([seed, point_index,
    chunk_index])``.  ``repetitions`` is this task's share of the point's
    repetitions (chunk sizes follow the near-equal split of
    :func:`repro.sampler.service._chunk_sizes`).
    """

    __slots__ = (
        "program_index",
        "point_index",
        "resolver",
        "chunk_index",
        "num_chunks",
        "repetitions",
        "cost",
    )

    def __init__(
        self,
        program_index: int,
        point_index: int,
        resolver,
        chunk_index: int,
        num_chunks: int,
        repetitions: int,
        cost: float,
    ):
        self.program_index = program_index
        self.point_index = point_index
        self.resolver = resolver
        self.chunk_index = chunk_index
        self.num_chunks = num_chunks
        self.repetitions = repetitions
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        chunk = (
            f", chunk {self.chunk_index}/{self.num_chunks}"
            if self.num_chunks > 1
            else ""
        )
        return (
            f"ScheduledTask(point {self.point_index}{chunk}, "
            f"reps={self.repetitions}, cost={self.cost:g})"
        )


class BatchEntry:
    """One (program, resolver) pair of a heterogeneous batch, pre-costed."""

    __slots__ = ("program_index", "point_index", "resolver", "cost")

    def __init__(self, program_index: int, point_index: int, resolver, cost: float):
        self.program_index = program_index
        self.point_index = point_index
        self.resolver = resolver
        self.cost = cost


class Scheduler:
    """Maps a costed batch to an ordered list of pool tasks."""

    def schedule(
        self,
        entries: Sequence[BatchEntry],
        repetitions: int,
        num_workers: int,
    ) -> List[ScheduledTask]:
        raise NotImplementedError

    def calibrate(self, cost: float, seconds: float) -> None:
        """Record a measured (cost, seconds) sample; default: ignore."""

    @staticmethod
    def merge(
        tasks: Sequence[ScheduledTask], parts: Sequence, num_points: int
    ) -> List:
        """Reassemble per-task results into one result per point.

        ``parts[j]`` is the ``(records, bits)`` output of ``tasks[j]``.
        Split points merge their chunks in **chunk order** regardless of
        the order tasks ran in, so scheduling (and worker racing) can
        never change the output.
        """
        from .service import _merge_parts

        by_point: Dict[int, List[Tuple[int, object]]] = {}
        for task, part in zip(tasks, parts):
            by_point.setdefault(task.point_index, []).append(
                (task.chunk_index, part)
            )
        out = []
        for point in range(num_points):
            chunks = sorted(by_point[point], key=lambda item: item[0])
            out.append(_merge_parts([part for _, part in chunks]))
        return out


class FifoScheduler(Scheduler):
    """One task per point, submission order — the PR-4 point-scope shape.

    This is the default: it preserves the serial bit-for-bit contract
    (every point is one stream seeded ``SeedSequence([seed, point])``)
    and adds no scheduling assumptions.  Use
    :class:`AdaptiveScheduler` when per-point costs are uneven.
    """

    def schedule(self, entries, repetitions, num_workers):
        return [
            ScheduledTask(
                e.program_index,
                e.point_index,
                e.resolver,
                0,
                1,
                repetitions,
                e.cost,
            )
            for e in entries
        ]


class AdaptiveScheduler(Scheduler):
    """Largest-first ordering + repetition-splitting of oversized points.

    Args:
        oversubscribe: How many chunks a worker's fair share of the batch
            is divided into when splitting (default 4).  Higher values
            give smaller chunks — better load balance, more merge/seed
            overhead.
        min_chunk_repetitions: Never create chunks smaller than this many
            repetitions (default 4); a point also never splits unless it
            can yield at least two such chunks.
        probe: When True, the executor runs the first (largest) task
            alone, times it, and calls :meth:`calibrate` before
            submitting the rest — anchoring the relative cost model to
            wall-clock seconds for the ``estimated_seconds`` report.
            Never affects the chunk geometry (determinism).

    Splitting rule (deterministic, static): with ``total`` the summed
    batch cost and ``fair = total / num_workers``, a point of cost ``c >
    fair`` is split into ``ceil(c / (fair / oversubscribe))`` repetition
    chunks (bounded by ``repetitions // min_chunk_repetitions`` and by
    ``num_workers * oversubscribe``); every other point stays whole and
    keeps the serial seed recipe.  Tasks are then ordered by descending
    per-task cost, ties broken by (point, chunk) for stability.
    """

    def __init__(
        self,
        oversubscribe: int = 4,
        min_chunk_repetitions: int = 4,
        probe: bool = False,
    ):
        if oversubscribe < 1:
            raise ValueError(f"oversubscribe must be >= 1, got {oversubscribe}")
        if min_chunk_repetitions < 1:
            raise ValueError(
                "min_chunk_repetitions must be >= 1, got "
                f"{min_chunk_repetitions}"
            )
        self.oversubscribe = int(oversubscribe)
        self.min_chunk_repetitions = int(min_chunk_repetitions)
        self.probe = bool(probe)
        self.seconds_per_cost: Optional[float] = None
        self.last_schedule: Dict[str, object] = {}

    def chunk_count(
        self, cost: float, total: float, repetitions: int, num_workers: int
    ) -> int:
        """How many chunks one point splits into (1 = stays whole)."""
        if num_workers <= 1 or total <= 0:
            return 1
        fair = total / num_workers
        if cost <= fair:
            return 1
        by_reps = int(repetitions) // self.min_chunk_repetitions
        if by_reps < 2:
            return 1
        target = fair / self.oversubscribe
        wanted = math.ceil(cost / target) if target > 0 else 1
        return max(1, min(wanted, by_reps, num_workers * self.oversubscribe))

    def schedule(self, entries, repetitions, num_workers):
        from .service import _chunk_sizes

        total = float(sum(e.cost for e in entries))
        tasks: List[ScheduledTask] = []
        split_points = 0
        for e in entries:
            chunks = self.chunk_count(e.cost, total, repetitions, num_workers)
            if chunks == 1:
                tasks.append(
                    ScheduledTask(
                        e.program_index,
                        e.point_index,
                        e.resolver,
                        0,
                        1,
                        repetitions,
                        e.cost,
                    )
                )
                continue
            split_points += 1
            sizes = _chunk_sizes(repetitions, chunks)
            for chunk, size in enumerate(sizes):
                tasks.append(
                    ScheduledTask(
                        e.program_index,
                        e.point_index,
                        e.resolver,
                        chunk,
                        len(sizes),
                        size,
                        e.cost * size / repetitions,
                    )
                )
        tasks.sort(key=lambda t: (-t.cost, t.point_index, t.chunk_index))
        self.last_schedule = {
            "points": len(entries),
            "tasks": len(tasks),
            "split_points": split_points,
            "total_cost": total,
            "order": [(t.point_index, t.chunk_index) for t in tasks],
            "seconds_per_cost": self.seconds_per_cost,
            "_tasks": list(tasks),
        }
        self.last_schedule["estimated_seconds"] = self._estimates(tasks)
        return tasks

    def calibrate(self, cost: float, seconds: float) -> None:
        """Anchor the relative cost model to a measured task timing."""
        if cost > 0 and seconds >= 0:
            self.seconds_per_cost = seconds / cost
            self.last_schedule["seconds_per_cost"] = self.seconds_per_cost
            tasks = self.last_schedule.get("_tasks")
            if tasks is not None:
                self.last_schedule["estimated_seconds"] = self._estimates(tasks)

    def _estimates(self, tasks) -> Optional[List[float]]:
        if self.seconds_per_cost is None:
            return None
        return [t.cost * self.seconds_per_cost for t in tasks]


__all__ = [
    "AdaptiveScheduler",
    "BatchEntry",
    "FifoScheduler",
    "ScheduledTask",
    "Scheduler",
    "estimate_cost",
]
