"""Cost-weighted adaptive scheduling for warm-pool batches and sweeps.

Point-scope execution (PR 4) fans whole sweep points across the warm pool
— one task per point, submitted in point order.  That is optimal when
every point costs the same, and pathological when it does not: a
heterogeneous ``run_batch`` whose one deep circuit sits at the end of the
queue leaves ``workers - 1`` processes idle while the last task grinds,
and a 2-point sweep on an 8-worker pool uses a quarter of the machine.

This module is the scheduling seam between the executor and the pool:

* :func:`estimate_cost` gives every batch entry a static cost —
  ``qubits x resolved-op count x repetitions`` — computable from the
  compiled :class:`~repro.sampler.program.Program` alone (no
  specialization, no timing).  It is a *relative* model: doubling the
  depth doubles the cost, which is all ordering and splitting need.
* :class:`FifoScheduler` reproduces the PR-4 geometry exactly: one task
  per point, submission order, one stream seeded
  ``SeedSequence([seed, point])`` — the bit-for-bit serial contract.
* :class:`AdaptiveScheduler` orders the task queue **largest-first**
  (classic LPT list scheduling) and **splits oversized points** — those
  whose cost exceeds a worker's fair share of the batch — into
  repetition sub-chunks so one deep circuit spreads across every worker
  instead of serializing the tail.  Chunk ``c`` of split point ``i`` is
  seeded ``SeedSequence([seed, i, c])`` and chunks merge back in chunk
  order, so the output is a deterministic function of (batch, seed,
  scheduler config) alone — never of worker count, submission order, or
  timing.  Unsplit points keep the exact FIFO/serial seed recipe, so a
  batch with no oversized point is bit-for-bit identical to the serial
  path.
* An optional **first-task timing probe** (``probe=True``) measures the
  largest task alone before the rest of the queue is submitted and
  calibrates the cost model's scale (``seconds_per_cost``), turning the
  static costs into wall-clock estimates (``estimated_seconds`` in
  :attr:`AdaptiveScheduler.last_schedule`).  Calibration never changes
  the chunk geometry — only the *reporting* — because geometry must stay
  a deterministic function of the static model for reproducibility.

* :class:`WorkStealingScheduler` keeps the adaptive geometry rules but
  targets a **shared task queue**: every point is pre-split into a small
  deterministic number of chunks (``granularity``) and idle workers pull
  the next chunk at runtime, absorbing cost-model error and stragglers.
  Placement becomes dynamic; geometry and seeds stay static, so output
  is unchanged from running the same task list any other way.
* A :class:`~repro.sampler.calibration.CalibrationTable` (``calibration=
  "auto"`` or an explicit table) persists measured ``seconds_per_cost``
  per backend x width bucket across processes, weighting split/order
  decisions for mixed-backend batches and seeding ``estimated_seconds``
  without an in-run probe.  Calibration is opt-in precisely because a
  loaded table is an input to the (deterministic) geometry function.

Determinism contract (pinned by ``tests/test_schedule.py``): for a fixed
scheduler configuration, the task set (point, chunk, size, seed recipe)
depends only on the batch's static costs — two runs of the same batch
produce identical samples on every backend, pooled or in-process.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .calibration import MIN_CALIBRATION_SECONDS, resolve_calibration


#: Relative cost of one trajectory-mode repetition versus one
#: measurement-only resample of the same record.  Trajectory mode runs
#: every repetition through the full gate-by-gate loop (state mutation +
#: candidate resampling per record) where measurement-only mode evolves
#: the state once and resamples bits; 16x matches the measured order of
#: magnitude and, being uniform per entry, only matters for batches
#: mixing trajectory and non-trajectory entries.
TRAJECTORY_COST_MULTIPLIER = 16


def estimate_cost(program, repetitions: int) -> int:
    """Static relative cost of one batch entry: qubits x ops x reps.

    Reads only the compiled Program's structure counters (parameter slots
    count as one op each — their resolved records exist in every
    specialization), so costing a 24-point batch touches no plan builds.
    Trajectory-mode entries (``Program.needs_trajectories``) are weighted
    by :data:`TRAJECTORY_COST_MULTIPLIER`, since each repetition replays
    the whole circuit instead of resampling a single evolved state.
    The unit is arbitrary; only ratios matter to the scheduler.  A timing
    probe (:meth:`AdaptiveScheduler.calibrate`) can anchor it to seconds.
    """
    ops = program.shared_record_count + program.param_slot_count
    cost = max(1, program.num_qubits) * max(1, ops) * max(1, int(repetitions))
    if getattr(program, "needs_trajectories", False):
        cost *= TRAJECTORY_COST_MULTIPLIER
    return cost


def estimate_job_cost(program, num_points: int, repetitions: int) -> int:
    """Static cost of a whole sweep *job*: per-point cost x point count.

    The sampling service's accounting unit — one submitted job is a
    sweep of ``num_points`` resolvers over one compiled Program, each
    point running ``repetitions`` — read off the same structure counters
    as :func:`estimate_cost`, so quota fair-share and the scheduler
    price work in one currency.  An empty sweep still costs one point's
    worth (admission is never free).
    """
    return estimate_cost(program, repetitions) * max(1, int(num_points))


class ScheduledTask:
    """One pool task of a scheduled batch: a point, or one chunk of it.

    ``num_chunks == 1`` means the whole point runs as one stream with the
    serial seed recipe ``SeedSequence([seed, point_index])``; split points
    carry ``chunk_index`` and use ``SeedSequence([seed, point_index,
    chunk_index])``.  ``repetitions`` is this task's share of the point's
    repetitions (chunk sizes follow the near-equal split of
    :func:`repro.sampler.service._chunk_sizes`).
    """

    __slots__ = (
        "program_index",
        "point_index",
        "resolver",
        "chunk_index",
        "num_chunks",
        "repetitions",
        "cost",
    )

    def __init__(
        self,
        program_index: int,
        point_index: int,
        resolver,
        chunk_index: int,
        num_chunks: int,
        repetitions: int,
        cost: float,
    ):
        self.program_index = program_index
        self.point_index = point_index
        self.resolver = resolver
        self.chunk_index = chunk_index
        self.num_chunks = num_chunks
        self.repetitions = repetitions
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        chunk = (
            f", chunk {self.chunk_index}/{self.num_chunks}"
            if self.num_chunks > 1
            else ""
        )
        return (
            f"ScheduledTask(point {self.point_index}{chunk}, "
            f"reps={self.repetitions}, cost={self.cost:g})"
        )


class BatchEntry:
    """One (program, resolver) pair of a heterogeneous batch, pre-costed.

    ``backend`` (simulation-state type name) and ``num_qubits`` identify
    the calibration bucket this entry's timings belong to; both are
    optional — an entry without them simply never matches a calibration
    table and keeps its raw static cost.
    """

    __slots__ = (
        "program_index",
        "point_index",
        "resolver",
        "cost",
        "backend",
        "num_qubits",
    )

    def __init__(
        self,
        program_index: int,
        point_index: int,
        resolver,
        cost: float,
        backend: Optional[str] = None,
        num_qubits: Optional[int] = None,
    ):
        self.program_index = program_index
        self.point_index = point_index
        self.resolver = resolver
        self.cost = cost
        self.backend = backend
        self.num_qubits = num_qubits


class Scheduler:
    """Maps a costed batch to an ordered list of pool tasks."""

    #: True for schedulers whose tasks should be dispatched through the
    #: pool's shared work queue (idle workers pull the next task) instead
    #: of one-future-per-task submission.  Placement-only: the task list
    #: itself is identical either way.
    work_stealing = False

    def schedule(
        self,
        entries: Sequence[BatchEntry],
        repetitions: int,
        num_workers: int,
    ) -> List[ScheduledTask]:
        raise NotImplementedError

    def calibrate(
        self,
        cost: float,
        seconds: float,
        backend: Optional[str] = None,
        num_qubits: Optional[int] = None,
    ) -> None:
        """Record a measured (cost, seconds) sample; default: ignore."""

    @staticmethod
    def merge(
        tasks: Sequence[ScheduledTask], parts: Sequence, num_points: int
    ) -> List:
        """Reassemble per-task results into one result per point.

        ``parts[j]`` is the ``(records, bits)`` output of ``tasks[j]``.
        Split points merge their chunks in **chunk order** regardless of
        the order tasks ran in, so scheduling (and worker racing) can
        never change the output.
        """
        from .service import _merge_parts

        by_point: Dict[int, List[Tuple[int, object]]] = {}
        for task, part in zip(tasks, parts):
            by_point.setdefault(task.point_index, []).append(
                (task.chunk_index, part)
            )
        out = []
        for point in range(num_points):
            chunks = sorted(by_point[point], key=lambda item: item[0])
            out.append(_merge_parts([part for _, part in chunks]))
        return out


class FifoScheduler(Scheduler):
    """One task per point, submission order — the PR-4 point-scope shape.

    This is the default: it preserves the serial bit-for-bit contract
    (every point is one stream seeded ``SeedSequence([seed, point])``)
    and adds no scheduling assumptions.  Use
    :class:`AdaptiveScheduler` when per-point costs are uneven.
    """

    def schedule(self, entries, repetitions, num_workers):
        return [
            ScheduledTask(
                e.program_index,
                e.point_index,
                e.resolver,
                0,
                1,
                repetitions,
                e.cost,
            )
            for e in entries
        ]


class AdaptiveScheduler(Scheduler):
    """Largest-first ordering + repetition-splitting of oversized points.

    Args:
        oversubscribe: How many chunks a worker's fair share of the batch
            is divided into when splitting (default 4).  Higher values
            give smaller chunks — better load balance, more merge/seed
            overhead.
        min_chunk_repetitions: Never create chunks smaller than this many
            repetitions (default 4); a point also never splits unless it
            can yield at least two such chunks.
        probe: When True, the executor times the first (largest) task
            and calls :meth:`calibrate` on its completion — anchoring
            the relative cost model to wall-clock seconds for the
            ``estimated_seconds`` report (the remaining tasks are
            submitted immediately; the probe no longer serializes the
            pool).  Never affects the chunk geometry (determinism).
        calibration: ``None`` (default — geometry depends on static
            costs alone), ``"auto"`` (the process-wide persisted
            :func:`~repro.sampler.calibration.shared_calibration_table`),
            or an explicit
            :class:`~repro.sampler.calibration.CalibrationTable`.  With
            a table attached, entries whose (backend, width bucket) has
            a stored ``seconds_per_cost`` are weighted by it for
            ordering/splitting — correcting the static model's
            cross-backend bias — and measured timings are recorded back
            (keyed per backend x width) for future processes.  A
            uniform rate (same backend, same bucket across the batch)
            scales all weights equally and never changes geometry.

    Splitting rule (deterministic, static): with ``total`` the summed
    batch cost and ``fair = total / num_workers``, a point of cost ``c >
    fair`` is split into ``ceil(c / (fair / oversubscribe))`` repetition
    chunks (bounded by ``repetitions // min_chunk_repetitions`` and by
    ``num_workers * oversubscribe``); every other point stays whole and
    keeps the serial seed recipe.  Tasks are then ordered by descending
    per-task cost, ties broken by (point, chunk) for stability.
    """

    def __init__(
        self,
        oversubscribe: int = 4,
        min_chunk_repetitions: int = 4,
        probe: bool = False,
        calibration=None,
    ):
        if oversubscribe < 1:
            raise ValueError(f"oversubscribe must be >= 1, got {oversubscribe}")
        if min_chunk_repetitions < 1:
            raise ValueError(
                "min_chunk_repetitions must be >= 1, got "
                f"{min_chunk_repetitions}"
            )
        self.oversubscribe = int(oversubscribe)
        self.min_chunk_repetitions = int(min_chunk_repetitions)
        self.probe = bool(probe)
        self.calibration = resolve_calibration(calibration)
        self.seconds_per_cost: Optional[float] = None
        self.last_schedule: Dict[str, object] = {}

    def chunk_count(
        self, cost: float, total: float, repetitions: int, num_workers: int
    ) -> int:
        """How many chunks one point splits into (1 = stays whole)."""
        if num_workers <= 1 or total <= 0:
            return 1
        fair = total / num_workers
        if cost <= fair:
            return 1
        by_reps = int(repetitions) // self.min_chunk_repetitions
        if by_reps < 2:
            return 1
        target = fair / self.oversubscribe
        wanted = math.ceil(cost / target) if target > 0 else 1
        return max(1, min(wanted, by_reps, num_workers * self.oversubscribe))

    def _weights(self, entries) -> Tuple[List[float], bool]:
        """Per-entry scheduling weights, and whether they are calibrated.

        With a calibration table whose buckets cover *every* entry the
        weights are estimated seconds (``cost x stored rate``); otherwise
        raw static costs — mixing the two unit systems within one batch
        would rank miscalibrated entries arbitrarily, so coverage is
        all-or-nothing.  A batch of one backend and one width bucket gets
        one uniform rate, which scales every weight equally and leaves
        the geometry bit-for-bit unchanged from the uncalibrated case.
        """
        costs = [float(e.cost) for e in entries]
        if self.calibration is None or not entries:
            return costs, False
        weights = []
        for e, cost in zip(entries, costs):
            rate = self.calibration.seconds_per_cost_for(
                getattr(e, "backend", None), getattr(e, "num_qubits", None)
            )
            if rate is None:
                return costs, False
            weights.append(cost * rate)
        return weights, True

    def schedule(self, entries, repetitions, num_workers):
        from .service import _chunk_sizes

        weights, calibrated = self._weights(entries)
        total = float(sum(weights))
        keyed: List[Tuple[float, ScheduledTask]] = []
        split_points = 0
        for e, weight in zip(entries, weights):
            chunks = self.chunk_count(weight, total, repetitions, num_workers)
            if chunks == 1:
                keyed.append(
                    (
                        weight,
                        ScheduledTask(
                            e.program_index,
                            e.point_index,
                            e.resolver,
                            0,
                            1,
                            repetitions,
                            e.cost,
                        ),
                    )
                )
                continue
            split_points += 1
            sizes = _chunk_sizes(repetitions, chunks)
            for chunk, size in enumerate(sizes):
                keyed.append(
                    (
                        weight * size / repetitions,
                        ScheduledTask(
                            e.program_index,
                            e.point_index,
                            e.resolver,
                            chunk,
                            len(sizes),
                            size,
                            e.cost * size / repetitions,
                        ),
                    )
                )
        keyed.sort(
            key=lambda item: (-item[0], item[1].point_index, item[1].chunk_index)
        )
        tasks = [task for _, task in keyed]
        self.last_schedule = {
            "points": len(entries),
            "tasks": len(tasks),
            "split_points": split_points,
            "total_cost": float(sum(e.cost for e in entries)),
            "calibrated": calibrated,
            "order": [(t.point_index, t.chunk_index) for t in tasks],
            "seconds_per_cost": self.seconds_per_cost,
            "_tasks": list(tasks),
        }
        if calibrated:
            # Weights already are estimated seconds for each task.
            self.last_schedule["estimated_seconds"] = [w for w, _ in keyed]
        else:
            self.last_schedule["estimated_seconds"] = self._estimates(tasks)
        return tasks

    def calibrate(
        self,
        cost: float,
        seconds: float,
        backend: Optional[str] = None,
        num_qubits: Optional[int] = None,
    ) -> None:
        """Anchor the relative cost model to a measured task timing.

        Non-positive costs and negative durations are rejected outright;
        a measured ``seconds == 0`` (a task faster than the
        ``perf_counter`` resolution) is clamped to
        :data:`~repro.sampler.calibration.MIN_CALIBRATION_SECONDS` so a
        sub-resolution probe can never zero out ``seconds_per_cost`` and
        report every ``estimated_seconds`` as 0.  When a calibration
        table is attached and the sample names its (backend, width), the
        rate is also recorded there for future processes.
        """
        if cost <= 0 or seconds < 0:
            return
        seconds = max(float(seconds), MIN_CALIBRATION_SECONDS)
        self.seconds_per_cost = seconds / cost
        self.last_schedule["seconds_per_cost"] = self.seconds_per_cost
        tasks = self.last_schedule.get("_tasks")
        if tasks is not None:
            self.last_schedule["estimated_seconds"] = self._estimates(tasks)
        if self.calibration is not None and backend is not None:
            self.calibration.record(
                backend, num_qubits or 1, self.seconds_per_cost
            )

    def _estimates(self, tasks) -> Optional[List[float]]:
        if self.seconds_per_cost is None:
            return None
        return [t.cost * self.seconds_per_cost for t in tasks]


class WorkStealingScheduler(AdaptiveScheduler):
    """Adaptive geometry, dispatched through a shared pool work queue.

    The task *list* follows the same deterministic rules as
    :class:`AdaptiveScheduler` — largest-first order, fair-share
    splitting, the ``SeedSequence([seed, point, chunk])`` recipe — with
    one addition: every point is pre-split into at least ``granularity``
    repetition chunks (where its repetitions allow), because fine,
    uniform chunks are what lets an idle worker steal the tail of a
    straggling point.  The ``work_stealing`` flag then routes dispatch
    through the pool's shared queue: workers *pull* the next task when
    they finish the last one, so placement adapts to measured reality
    (cost-model error, co-tenant noise, one slow core) at runtime.

    Placement-vs-geometry contract: which worker runs a chunk is decided
    at runtime and may differ between runs; *what* the chunks are and
    which seed each one uses never does.  Chunks merge in chunk order,
    so stealing output is bit-for-bit identical to running the identical
    task list serially, in-process, or through future-per-task dispatch.

    Args:
        granularity: Minimum chunks per point (default 4), capped by
            ``repetitions // min_chunk_repetitions``.  ``granularity=1``
            reproduces :class:`AdaptiveScheduler` geometry exactly —
            only the dispatch mechanism differs.
        oversubscribe / min_chunk_repetitions / probe / calibration:
            As for :class:`AdaptiveScheduler`.
    """

    work_stealing = True

    def __init__(
        self,
        oversubscribe: int = 4,
        min_chunk_repetitions: int = 4,
        probe: bool = False,
        calibration=None,
        granularity: int = 4,
    ):
        super().__init__(
            oversubscribe=oversubscribe,
            min_chunk_repetitions=min_chunk_repetitions,
            probe=probe,
            calibration=calibration,
        )
        if granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {granularity}")
        self.granularity = int(granularity)

    def chunk_count(
        self, cost: float, total: float, repetitions: int, num_workers: int
    ) -> int:
        base = super().chunk_count(cost, total, repetitions, num_workers)
        if num_workers <= 1 or self.granularity <= 1:
            return base
        by_reps = int(repetitions) // self.min_chunk_repetitions
        if by_reps < 2:
            return base
        return max(base, min(self.granularity, by_reps))


__all__ = [
    "AdaptiveScheduler",
    "BatchEntry",
    "FifoScheduler",
    "ScheduledTask",
    "Scheduler",
    "WorkStealingScheduler",
    "estimate_cost",
    "estimate_job_cost",
]
