"""Zero-copy shared-memory result planes for pooled execution.

Pooled workers historically returned every chunk's sample arrays as a
pickled ``(records, bits)`` tuple through the pool's result queue — the
last serialization hop on the hot path, and the one that scales with
``repetitions x qubits`` instead of staying O(1) per task.  This module
moves those results into ``multiprocessing.shared_memory`` **planes**:

* The parent sizes one segment per sweep/batch *point* up front — chunk
  geometry is a deterministic function of the schedule
  (:mod:`repro.sampler.schedule`), so every chunk's row band is known
  before anything runs.  A segment holds one ``bits`` plane of shape
  ``(repetitions, num_qubits)`` plus one plane per measurement key of
  shape ``(repetitions, len(axes))``, all ``int8``, laid out by
  :func:`plane_layout`.
* Each task receives a tiny **slot descriptor** ``(segment_name,
  repetitions, row_offset)``; the worker derives the full plane layout
  from its shared plan's ``key_axes`` (the layout is a pure function of
  ``(key_axes, num_qubits, repetitions)``, computed identically on both
  sides) and writes its chunk's slice in place.  The task's *return*
  value shrinks to one integer — the rows written — regardless of
  repetition count.
* Once every chunk of a point has landed, the parent wraps the filled
  planes as **read-only zero-copy NumPy views** (:meth:`PointPlanes.views`)
  and immediately unlinks the segment: on POSIX the mapping stays valid
  until the last view dies (exactly like an unlinked open file), a
  ``weakref.finalize`` hook closes the mapping when the views are
  garbage-collected, and the early unlink guarantees the *name* can
  never leak even if the process is killed later.

Lifecycle contract (pinned by ``tests/test_result_planes.py`` and the
``BGLS_SHM_AUDIT`` hook in ``tests/conftest.py``):

* the parent allocates, the parent unlinks — workers only ever attach,
  write, and detach (unregistering from the ``resource_tracker`` so a
  worker exit can never unlink a segment behind the parent's back);
* :meth:`PointPlanes.release` is the error-path teardown — idempotent,
  safe before or after :meth:`~PointPlanes.views` — and every allocated
  segment is registered in a process-wide table
  (:func:`live_segment_names`) until its unlink, so leaked segments are
  detectable and collectable (:func:`release_leaked_segments`);
* shared memory is an optional *transport*: when the platform lacks it
  (:func:`shm_available` is False) executors fall back to the pickled
  ``(records, bits)`` tuples, bit-for-bit identical.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import failure is the exotic-platform path
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Every plane is int8: measurement records and bitstrings are bits.
PLANE_DTYPE = np.int8

#: A task's slot descriptor: ``(segment_name, repetitions, row_offset)``.
SlotDescriptor = Tuple[str, int, int]


def shm_available() -> bool:
    """Whether shared-memory result planes can be used on this platform.

    Probes one tiny create/close/unlink round-trip (memoized): importable
    ``multiprocessing.shared_memory`` alone does not guarantee a working
    ``/dev/shm``-style backing store.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        if _shared_memory is None:
            _SHM_AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
                _SHM_AVAILABLE = True
            except Exception:
                _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


_SHM_AVAILABLE: Optional[bool] = None


def plane_layout(
    key_axes: Dict[str, Tuple[int, ...]], num_qubits: int, rows: int
) -> Tuple[List[Tuple[Optional[str], int, Tuple[int, int]]], int]:
    """The deterministic plane layout of one point's result segment.

    Returns ``(specs, nbytes)`` where each spec is ``(key, byte_offset,
    shape)``; the ``bits`` plane comes first under key ``None``, then one
    plane per measurement key in ``key_axes`` iteration order (insertion
    order — the circuit's measurement order — which pickling preserves,
    so the parent and a worker holding the same plan always agree).
    """
    itemsize = np.dtype(PLANE_DTYPE).itemsize
    specs: List[Tuple[Optional[str], int, Tuple[int, int]]] = []
    offset = 0
    for key, shape in [(None, (rows, num_qubits))] + [
        (key, (rows, len(axes))) for key, axes in key_axes.items()
    ]:
        specs.append((key, offset, shape))
        offset += shape[0] * shape[1] * itemsize
    return specs, max(1, offset)


def _attach(name: str):
    """Worker-side attach to an existing segment, tracker-neutral.

    Attaching registers the segment with the resource tracker on
    Python < 3.13 (bpo-38119), which would let a *worker* exit unlink a
    segment the parent still reads — and under ``fork``, every worker
    shares one tracker daemon, so even register/unregister pairs race
    across workers.  Only the creating parent may own the name, so on
    interpreters without ``track=False`` the registration call itself is
    suppressed for the duration of the attach (workers run tasks
    serially; there is no concurrent attach in one process).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(res_name, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# Allocated-but-not-yet-unlinked segments, for the leak audit.  Entries
# are added at allocation and removed the moment the segment is unlinked
# (by views() or release()), so an empty table means no name can leak.
_LIVE: Dict[str, "PointPlanes"] = {}
_LIVE_LOCK = threading.Lock()


def live_segment_names() -> List[str]:
    """Names of result segments allocated but not yet unlinked."""
    with _LIVE_LOCK:
        return sorted(_LIVE)


def release_leaked_segments() -> List[str]:
    """Unlink every still-live segment (audit cleanup); returns the names."""
    with _LIVE_LOCK:
        leaked = list(_LIVE.values())
    for planes in leaked:
        planes.release()
    return sorted(p.name for p in leaked)


def _close_segment(shm) -> None:
    """Finalizer body: drop the parent's mapping once all views died."""
    try:  # pragma: no cover - interpreter-teardown ordering
        shm.close()
    except Exception:
        pass


class PointPlanes:
    """One point's shared-memory result segment, parent-side.

    Allocated by the executor before any task is submitted (the parent
    owns the name); workers fill row bands through
    :func:`write_chunk_to_slot`; :meth:`views` wraps the filled planes as
    read-only zero-copy arrays and unlinks; :meth:`release` is the
    error-path unlink.  Exactly one of ``views``/``release`` retires the
    registry entry, and both are safe to call afterwards.
    """

    __slots__ = ("key_axes", "num_qubits", "rows", "_specs", "nbytes",
                 "_shm", "_unlinked", "__weakref__")

    def __init__(
        self, key_axes: Dict[str, Tuple[int, ...]], num_qubits: int, rows: int
    ):
        if _shared_memory is None:  # pragma: no cover - exotic platforms
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.key_axes = dict(key_axes)
        self.num_qubits = int(num_qubits)
        self.rows = int(rows)
        self._specs, self.nbytes = plane_layout(
            self.key_axes, self.num_qubits, self.rows
        )
        self._shm = _shared_memory.SharedMemory(create=True, size=self.nbytes)
        self._unlinked = False
        with _LIVE_LOCK:
            _LIVE[self._shm.name] = self

    @property
    def name(self) -> str:
        return self._shm.name

    def slot(self, row_offset: int) -> SlotDescriptor:
        """The descriptor a task carries: 3 scalars, independent of size."""
        return (self._shm.name, self.rows, int(row_offset))

    def _unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        with _LIVE_LOCK:
            _LIVE.pop(self._shm.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass

    def views(self) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Read-only zero-copy ``(records, bits)`` over the filled planes.

        Unlinks the segment immediately — the mapping (and therefore
        every returned view) stays valid until the last view is
        garbage-collected, at which point a finalizer closes it.  The
        arrays are marked non-writeable: they alias one buffer, and
        results are immutable by contract.
        """
        shm = self._shm
        base = np.ndarray((self.nbytes,), dtype=np.uint8, buffer=shm.buf)
        bits: Optional[np.ndarray] = None
        records: Dict[str, np.ndarray] = {}
        for key, offset, shape in self._specs:
            count = shape[0] * shape[1]
            view = (
                base[offset : offset + count].view(PLANE_DTYPE).reshape(shape)
            )
            view.flags.writeable = False
            if key is None:
                bits = view
            else:
                records[key] = view
        # The finalizer holds the SharedMemory object alive until `base`
        # (kept alive by every sliced view) is collected, then closes the
        # mapping — views never dangle, and close never races an export.
        weakref.finalize(base, _close_segment, shm)
        self._unlink()
        return records, bits

    def release(self) -> None:
        """Error-path teardown: unlink now, close if no views were built.

        Idempotent, and a no-op after :meth:`views` (the views own the
        mapping's lifetime from then on).
        """
        already_viewed = self._unlinked
        self._unlink()
        if not already_viewed:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - views exist after all
                pass


def write_chunk_to_slot(
    plan,
    slot: SlotDescriptor,
    records: Dict[str, np.ndarray],
    bits: np.ndarray,
) -> int:
    """Worker-side: write one chunk's ``(records, bits)`` into its slot.

    Re-derives the plane layout from the worker's shared ``plan`` (same
    pure function as the parent), attaches to the named segment, copies
    the chunk's rows into the band starting at ``row_offset``, detaches,
    and returns the row count — the task's entire result payload.
    """
    name, rows, row_offset = slot
    size = int(bits.shape[0])
    specs, nbytes = plane_layout(plan.key_axes, plan.num_qubits, rows)
    shm = _attach(name)
    try:
        base = np.ndarray((nbytes,), dtype=np.uint8, buffer=shm.buf)
        for key, offset, shape in specs:
            count = shape[0] * shape[1]
            plane = base[offset : offset + count].view(PLANE_DTYPE)
            plane = plane.reshape(shape)
            chunk = bits if key is None else records[key]
            plane[row_offset : row_offset + size] = chunk
        del plane, base
    finally:
        shm.close()
    return size


__all__ = [
    "PLANE_DTYPE",
    "PointPlanes",
    "live_segment_names",
    "plane_layout",
    "release_leaked_segments",
    "shm_available",
    "write_chunk_to_slot",
]
