"""Noisy Clifford simulation: Pauli channels as stochastic Pauli gates.

Stabilizer states cannot apply general Kraus channels, but *Pauli*
channels (bit flip, phase flip, depolarizing) are classical mixtures of
Pauli unitaries — so a trajectory can draw one Pauli per channel
application and stay inside the stabilizer formalism.  This is the
standard trick behind scalable noisy-Clifford simulation (e.g. error-
correction studies), and it plugs straight into the BGLS trajectory mode
(paper Sec. 3.2.1).

Works with both stabilizer backends
(:class:`~repro.states.StabilizerChFormSimulationState` and
:class:`~repro.states.CliffordTableauSimulationState`) and composes with
:func:`~repro.sampler.act_on_near_clifford` for noisy Clifford+Rz
circuits via :func:`act_on_near_clifford_with_pauli_noise`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuits.channels import (
    BitFlipChannel,
    DepolarizingChannel,
    PhaseFlipChannel,
)
from ..circuits.operations import GateOperation
from ..protocols.act_on import act_on
from .near_clifford import act_on_near_clifford

# Channel type -> (pauli names, probability builder).
def _pauli_mixture(gate) -> Optional[List[Tuple[float, str]]]:
    """The channel as ``[(probability, pauli_name)]``, or None."""
    if isinstance(gate, BitFlipChannel):
        p = gate.probability
        return [(1.0 - p, "I"), (p, "X")]
    if isinstance(gate, PhaseFlipChannel):
        p = gate.probability
        return [(1.0 - p, "I"), (p, "Z")]
    if isinstance(gate, DepolarizingChannel):
        p = gate.probability
        return [(1.0 - p, "I"), (p / 3, "X"), (p / 3, "Y"), (p / 3, "Z")]
    return None


_PAULI_MATRICES = {
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def _apply_sampled_pauli(state, axis: int, name: str) -> None:
    if name == "I":
        return
    engine = getattr(state, "ch_form", None) or getattr(state, "tableau", None)
    if engine is None:
        # Non-stabilizer states (dense, MPS) take the generic unitary path,
        # so the same apply_op works across every backend.
        state.apply_unitary(_PAULI_MATRICES[name], [axis])
        return
    if name == "X":
        engine.apply_x(axis)
    elif name == "Y":
        engine.apply_y(axis)
    elif name == "Z":
        engine.apply_z(axis)


def _try_pauli_channel(op: GateOperation, state) -> bool:
    """Apply ``op`` as a sampled Pauli if it is a Pauli channel."""
    mixture = _pauli_mixture(op.gate)
    if mixture is None:
        return False
    probs = np.asarray([w for w, _ in mixture])
    names = [name for _, name in mixture]
    choice = int(state.rng.choice(len(names), p=probs / probs.sum()))
    axis = state.axes_of(op.qubits)[0]
    _apply_sampled_pauli(state, axis, names[choice])
    return True


def act_on_with_pauli_noise(op: GateOperation, state) -> None:
    """``act_on`` that additionally accepts Pauli channels on stabilizer
    states (sampling one Pauli per application)."""
    if _try_pauli_channel(op, state):
        return
    act_on(op, state)


def act_on_near_clifford_with_pauli_noise(op: GateOperation, state) -> None:
    """Sum-over-Cliffords gate application plus Pauli-channel sampling.

    The full noisy near-Clifford stack: Clifford gates exact, Rz gates
    expanded stochastically (Sec. 4.2), Pauli channels sampled.
    """
    if _try_pauli_channel(op, state):
        return
    act_on_near_clifford(op, state)


# Stochastic gate application: the Simulator must run per-shot
# trajectories, not the shared-wavefunction dict parallelization.  And the
# channel branch is chosen here (each branch is a unitary Pauli, so no
# bitstring conditioning is required) — the Simulator must not intercept.
act_on_with_pauli_noise._bgls_stochastic_ = True  # type: ignore[attr-defined]
act_on_with_pauli_noise._bgls_handles_channels_ = True  # type: ignore[attr-defined]
act_on_near_clifford_with_pauli_noise._bgls_stochastic_ = True  # type: ignore[attr-defined]
act_on_near_clifford_with_pauli_noise._bgls_handles_channels_ = True  # type: ignore[attr-defined]
