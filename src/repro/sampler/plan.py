"""Compiled execution plans for the BGLS sampler.

The sampler's hot loop historically re-derived per-operation metadata on
every gate application of every repetition: qubit-to-axis lookups, the
``_stabilizer_sequence_`` decomposition, the gate unitary, the
diagonal-unitary check (which rebuilds the matrix and runs ``allclose``),
and the Kraus-branching decision.  None of that depends on the run state —
only on the resolved circuit, the state *type*, and the ``apply_op``
function — so :func:`compile_plan` computes it once per execution into a
flat list of :class:`OpRecord` plain-data entries the run loops iterate
over with zero per-op protocol dispatch.

A plan also records which *fast application paths* are sound:

* ``fast_stab`` — ``apply_op`` is the default :func:`repro.protocols.act_on`
  and the state exposes ``apply_stabilizer_sequence``; Clifford records
  then apply their cached primitive sequence directly (no per-op
  decomposition, no axis lookups).
* ``fast_unitary`` — ``apply_op`` is the default ``act_on`` and the state
  uses the base ``SimulationState`` dispatch; unitary records then call
  ``state.apply_unitary`` with the cached matrix (gates never rebuild it).

Any other configuration (custom ``apply_op`` functions, user states with
their own ``_act_on_``) falls back to calling ``apply_op(op, state)``
exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..protocols.act_on import act_on
from ..states.base import SimulationState


class OpRecord:
    """One operation of a compiled plan, with all per-op metadata cached."""

    __slots__ = (
        "op",
        "support",
        "is_measurement",
        "measurement_key",
        "stab_seq",
        "unitary",
        "kraus",
        "needs_branching",
        "_diagonal",
    )

    def __init__(self, op, support: Tuple[int, ...]):
        self.op = op
        self.support = support
        self.is_measurement = op.is_measurement
        self.measurement_key = op.measurement_key
        self.needs_branching = False
        self._diagonal: Optional[bool] = None
        if self.is_measurement:
            self.stab_seq = None
            self.unitary = None
            self.kraus = None
        else:
            self.stab_seq = op._stabilizer_sequence_()
            self.unitary = op._unitary_()
            self.kraus = None if self.unitary is not None else op._kraus_()

    def is_diagonal(self) -> bool:
        """Whether the cached unitary is diagonal (computed once, lazily)."""
        if self._diagonal is None:
            u = self.unitary
            self._diagonal = bool(
                u is not None and np.allclose(u, np.diag(np.diagonal(u)))
            )
        return self._diagonal


class ExecutionPlan:
    """A resolved circuit flattened into :class:`OpRecord` tuples."""

    __slots__ = (
        "records",
        "key_axes",
        "num_qubits",
        "needs_trajectories",
        "fast_stab",
        "fast_unitary",
    )

    def __init__(
        self,
        records: List[OpRecord],
        key_axes: Dict[str, Tuple[int, ...]],
        num_qubits: int,
        needs_trajectories: bool,
        fast_stab: bool,
        fast_unitary: bool,
    ):
        self.records = records
        self.key_axes = key_axes
        self.num_qubits = num_qubits
        self.needs_trajectories = needs_trajectories
        self.fast_stab = fast_stab
        self.fast_unitary = fast_unitary

    def apply(self, rec: OpRecord, state, apply_op) -> None:
        """Apply a record to ``state`` through the fastest sound path."""
        if self.fast_stab and rec.stab_seq is not None:
            state.apply_stabilizer_sequence(rec.stab_seq, rec.support)
        elif self.fast_unitary and rec.unitary is not None:
            state.apply_unitary(rec.unitary, rec.support)
        else:
            apply_op(rec.op, state)


def compile_plan(circuit: Circuit, state, apply_op) -> ExecutionPlan:
    """Compile a resolved circuit into an :class:`ExecutionPlan`.

    Validates the circuit against the state register (unknown qubits,
    duplicate measurement keys) and decides up front whether execution
    needs trajectory mode (stochastic ``apply_op``, non-unitary operations,
    or non-terminal measurements).
    """
    qubit_index = state.qubit_index
    missing = [q for q in circuit.all_qubits() if q not in qubit_index]
    if missing:
        raise ValueError(f"Circuit qubits not in state register: {missing}")

    records: List[OpRecord] = []
    key_axes: Dict[str, Tuple[int, ...]] = {}
    handles_channels = getattr(apply_op, "_bgls_handles_channels_", False)
    exact_channels = getattr(state, "_exact_channels_", False)
    measured = set()
    all_unitary = True
    all_terminal = True
    for op in circuit.all_operations():
        rec = OpRecord(op, tuple(qubit_index[q] for q in op.qubits))
        if any(q in measured for q in op.qubits):
            all_terminal = False
        if rec.is_measurement:
            key = rec.measurement_key
            if key in key_axes:
                raise ValueError(f"Duplicate measurement key {key!r}")
            key_axes[key] = rec.support
            measured.update(op.qubits)
        else:
            if rec.unitary is None:
                all_unitary = False
            rec.needs_branching = (
                not handles_channels
                and not exact_channels
                and rec.unitary is None
                and rec.kraus is not None
            )
        records.append(rec)

    needs_trajectories = (
        getattr(apply_op, "_bgls_stochastic_", False)
        or not all_unitary
        or not all_terminal
    )
    default_apply = apply_op is act_on
    fast_stab = default_apply and hasattr(state, "apply_stabilizer_sequence")
    fast_unitary = (
        default_apply
        and getattr(type(state), "_act_on_", None) is SimulationState._act_on_
    )
    return ExecutionPlan(
        records,
        key_axes,
        len(state.qubits),
        needs_trajectories,
        fast_stab,
        fast_unitary,
    )
