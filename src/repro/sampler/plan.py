"""Compiled execution plans for the BGLS sampler.

The sampler's hot loop historically re-derived per-operation metadata on
every gate application of every repetition: qubit-to-axis lookups, the
``_stabilizer_sequence_`` decomposition, the gate unitary, the
diagonal-unitary check (which rebuilds the matrix and runs ``allclose``),
and the Kraus-branching decision.  None of that depends on the run state —
only on the resolved circuit, the state *type*, and the ``apply_op``
function — so :func:`compile_plan` computes it once per execution into a
flat list of :class:`OpRecord` plain-data entries the run loops iterate
over with zero per-op protocol dispatch.

A plan also records which *fast application paths* are sound:

* ``fast_stab`` — ``apply_op`` is the default :func:`repro.protocols.act_on`
  and the state exposes ``apply_stabilizer_sequence``; Clifford records
  then apply their cached primitive sequence directly (no per-op
  decomposition, no axis lookups).
* ``fast_unitary`` — ``apply_op`` is the default ``act_on`` and the state
  uses the base ``SimulationState`` dispatch; unitary records then call
  ``state.apply_unitary`` with the cached matrix (gates never rebuild it).

Any other configuration (custom ``apply_op`` functions, user states with
their own ``_act_on_``) falls back to calling ``apply_op(op, state)``
exactly as before.

**Moment fusion.**  When a moment holds several disjoint single-qubit
Clifford gates, compiling them as individual records leaves the run loops
paying the full per-gate constant — ~10 small NumPy calls for a one-column
tableau update plus one resampling round per gate.  :func:`compile_plan`
therefore fuses them (in groups of at most :data:`MAX_FUSED_SUPPORT`
qubits) into a single :class:`FusedOpRecord`: the state update becomes one
batched column pass over the packed GF(2) words
(``apply_single_qubit_moment``) and the sampler resamples the *union*
support once.  Treating the fused group as one ``k``-qubit gate is exactly
as sound as BGLS itself — the group only acts on its union support, so the
off-support marginals are untouched — and the candidate count stays small
because the union is capped.  Fusion only engages on the default
``act_on`` fast paths and can be disabled via ``fuse_moments=False``
(``Simulator(..., fuse_moments=False)``), which reproduces the historical
per-gate record stream (and its RNG draw sequence) exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Circuit


class OpRecord:
    """One operation of a compiled plan, with all per-op metadata cached."""

    __slots__ = (
        "op",
        "support",
        "is_measurement",
        "measurement_key",
        "stab_seq",
        "unitary",
        "kraus",
        "needs_branching",
        "_diagonal",
    )

    def __init__(self, op, support: Tuple[int, ...]):
        self.op = op
        self.support = support
        self.is_measurement = op.is_measurement
        self.measurement_key = op.measurement_key
        self.needs_branching = False
        self._diagonal: Optional[bool] = None
        if self.is_measurement:
            self.stab_seq = None
            self.unitary = None
            self.kraus = None
        else:
            self.stab_seq = op._stabilizer_sequence_()
            self.unitary = op._unitary_()
            self.kraus = None if self.unitary is not None else op._kraus_()

    def is_diagonal(self) -> bool:
        """Whether the cached unitary is diagonal (computed once, lazily)."""
        if self._diagonal is None:
            u = self.unitary
            self._diagonal = bool(
                u is not None and np.allclose(u, np.diag(np.diagonal(u)))
            )
        return self._diagonal


MAX_FUSED_SUPPORT = 6
"""Cap on a fused group's union support: resampling enumerates ``2^k``
candidates, so fusing beyond ~6 qubits trades a small constant for an
exponential candidate front."""

_FUSIBLE_PRIMS = frozenset({"H", "S", "SDG", "X", "Y", "Z"})


class FusedOpRecord:
    """One moment's disjoint single-qubit Clifford gates as a single step.

    Application runs as one batched column pass when the state implements
    ``apply_single_qubit_moment`` (both stabilizer backends do), or as a
    short unitary loop otherwise; the sampler resamples the union
    ``support`` once instead of once per gate.  Mirrors the parts of the
    :class:`OpRecord` interface the run loops consume.
    """

    __slots__ = (
        "records",
        "axes",
        "seqs",
        "support",
        "is_measurement",
        "measurement_key",
        "kraus",
        "needs_branching",
        "_diagonal",
    )

    def __init__(self, records: List["OpRecord"]):
        self.records = tuple(records)
        self.axes = [rec.support[0] for rec in self.records]
        self.support = tuple(sorted(self.axes))
        # Per-gate (phase, [primitive, ...]) for apply_single_qubit_moment.
        self.seqs = [
            (rec.stab_seq[0], [name for name, _ in rec.stab_seq[1]])
            for rec in self.records
        ]
        self.is_measurement = False
        self.measurement_key = None
        self.kraus = None
        self.needs_branching = False
        self._diagonal: Optional[bool] = None

    def is_diagonal(self) -> bool:
        """Whether every fused gate is diagonal (resampling skippable)."""
        if self._diagonal is None:
            self._diagonal = all(rec.is_diagonal() for rec in self.records)
        return self._diagonal


def _is_fusible(rec: "OpRecord") -> bool:
    """Single-qubit Clifford with both a unitary and batchable primitives."""
    if rec.is_measurement or len(rec.support) != 1:
        return False
    if rec.unitary is None or rec.stab_seq is None:
        return False
    return all(
        name in _FUSIBLE_PRIMS and len(local) == 1
        for name, local in rec.stab_seq[1]
    )


class ExecutionPlan:
    """A resolved circuit flattened into :class:`OpRecord` tuples."""

    __slots__ = (
        "records",
        "key_axes",
        "num_qubits",
        "needs_trajectories",
        "fast_stab",
        "fast_unitary",
    )

    def __init__(
        self,
        records: List[OpRecord],
        key_axes: Dict[str, Tuple[int, ...]],
        num_qubits: int,
        needs_trajectories: bool,
        fast_stab: bool,
        fast_unitary: bool,
    ):
        self.records = records
        self.key_axes = key_axes
        self.num_qubits = num_qubits
        self.needs_trajectories = needs_trajectories
        self.fast_stab = fast_stab
        self.fast_unitary = fast_unitary

    def apply(self, rec: OpRecord, state, apply_op) -> None:
        """Apply a record to ``state`` through the fastest sound path."""
        if type(rec) is FusedOpRecord:
            if self.fast_stab:
                state.apply_single_qubit_moment(rec.seqs, rec.axes)
            elif self.fast_unitary:
                for sub in rec.records:
                    state.apply_unitary(sub.unitary, sub.support)
            else:  # pragma: no cover - fusion compiles only on fast paths
                for sub in rec.records:
                    apply_op(sub.op, state)
            return
        if self.fast_stab and rec.stab_seq is not None:
            state.apply_stabilizer_sequence(rec.stab_seq, rec.support)
        elif self.fast_unitary and rec.unitary is not None:
            state.apply_unitary(rec.unitary, rec.support)
        else:
            apply_op(rec.op, state)


def compile_plan(
    circuit: Circuit, state, apply_op, *, fuse_moments: bool = True
) -> ExecutionPlan:
    """Compile a resolved circuit into an :class:`ExecutionPlan`.

    Validates the circuit against the state register (unknown qubits,
    duplicate measurement keys) and decides up front whether execution
    needs trajectory mode (stochastic ``apply_op``, non-unitary operations,
    or non-terminal measurements).  With ``fuse_moments`` (the default),
    each moment's disjoint single-qubit Clifford gates compile into
    :class:`FusedOpRecord` groups of at most :data:`MAX_FUSED_SUPPORT`
    qubits; groups of one stay plain records.

    All backend-shape questions (stabilizer-sequence dispatch, fused
    moments, base unitary dispatch, exact channels) are answered by the
    capability registry — the planner never probes the state object.  The
    compilation walk itself lives in :class:`repro.sampler.program.Program`;
    this function is the one-shot convenience for an already-resolved
    circuit (uncached, one specialization).
    """
    from .program import Program

    return Program(
        circuit, state, apply_op, fuse_moments=fuse_moments
    ).specialize(None)
