"""Measurement results (the Cirq-style ``Result`` object)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

import numpy as np


class Result:
    """Sampled measurement records.

    Attributes:
        measurements: Mapping from measurement key to an int8 array of shape
            ``(repetitions, num_measured_qubits)``; bit order follows the
            qubit order given to ``measure(...)``.

    Zero-copy contract: construction *adopts* int8 arrays as-is
    (``np.asarray`` on a matching dtype is the identity) — the
    shared-memory result planes of pooled execution hand ``Result``
    read-only views over an unlinked segment, and those views, their
    non-writeable flag, and the buffer lifetime they pin all survive
    construction untouched.  Every helper (:meth:`histogram`,
    :meth:`probabilities`, :meth:`merged_with`, :meth:`to_json`) only
    *reads* the stored arrays, so view-backed results behave identically
    to owned-array results; none makes a defensive copy of them.
    """

    def __init__(self, measurements: Dict[str, np.ndarray]):
        self.measurements = {
            key: np.asarray(value, dtype=np.int8)
            for key, value in measurements.items()
        }

    @property
    def repetitions(self) -> int:
        for value in self.measurements.values():
            return int(value.shape[0])
        return 0

    def histogram(self, key: str) -> Counter:
        """Counter of big-endian integer outcomes under ``key``.

        Mirrors ``cirq.Result.histogram``: bits are packed most-significant
        first, so the GHZ circuit of the paper's Fig. 1 yields only the
        values 0 and 3 on two qubits.
        """
        records = self.measurements[key]
        weights = 2 ** np.arange(records.shape[1] - 1, -1, -1, dtype=np.int64)
        return Counter((records.astype(np.int64) @ weights).tolist())

    def probabilities(self, key: str) -> Dict[int, float]:
        """Empirical outcome probabilities under ``key``."""
        hist = self.histogram(key)
        total = sum(hist.values())
        return {outcome: count / total for outcome, count in hist.items()}

    def merged_with(self, other: "Result") -> "Result":
        """Concatenate two results' repetitions (keys must match).

        The merge companion of the process-parallel sampler: chunked runs
        combine into one record set.
        """
        if set(self.measurements) != set(other.measurements):
            raise ValueError(
                f"Key mismatch: {sorted(self.measurements)} vs "
                f"{sorted(other.measurements)}"
            )
        return Result(
            {
                key: np.concatenate(
                    [self.measurements[key], other.measurements[key]], axis=0
                )
                for key in self.measurements
            }
        )

    def to_json(self) -> str:
        """Serialize records to a JSON string (ints, portable)."""
        import json

        payload = {
            key: value.tolist() for key, value in self.measurements.items()
        }
        return json.dumps({"measurements": payload})

    @classmethod
    def from_json(cls, text: str) -> "Result":
        """Inverse of :meth:`to_json`."""
        import json

        data = json.loads(text)
        if "measurements" not in data:
            raise ValueError("JSON payload is not a serialized Result")
        return cls(
            {
                key: np.asarray(rows, dtype=np.int8)
                for key, rows in data["measurements"].items()
            }
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Result):
            return NotImplemented
        if set(self.measurements) != set(other.measurements):
            return False
        return all(
            np.array_equal(self.measurements[k], other.measurements[k])
            for k in self.measurements
        )

    def __repr__(self) -> str:
        shapes = {k: v.shape for k, v in self.measurements.items()}
        return f"Result(measurements={shapes})"


def plot_state_histogram(result: Result, key: Optional[str] = None) -> str:
    """Text rendition of ``cirq.plot_state_histogram`` (no display here).

    Returns (and prints) an ASCII bar chart of outcome counts, the textual
    equivalent of the paper's Fig. 1.
    """
    if key is None:
        if len(result.measurements) != 1:
            raise ValueError("Multiple keys present; specify one")
        key = next(iter(result.measurements))
    hist = result.histogram(key)
    width = result.measurements[key].shape[1]
    peak = max(hist.values())
    lines = [f"histogram for key {key!r} ({result.repetitions} repetitions)"]
    for outcome in sorted(hist):
        label = format(outcome, f"0{width}b")
        bar = "#" * max(1, round(40 * hist[outcome] / peak))
        lines.append(f"  {label} | {bar} {hist[outcome]}")
    text = "\n".join(lines)
    print(text)
    return text
