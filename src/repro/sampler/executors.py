"""Pluggable execution strategies: serial, chunked, and process-pooled.

The :class:`~repro.sampler.simulator.Simulator` owns the *algorithm*
(parallel-front evolution or quantum trajectories over a compiled
:class:`~repro.sampler.plan.ExecutionPlan`); an :class:`Executor` owns the
*strategy* — where and in how many pieces that algorithm runs:

* :class:`SerialExecutor` — in-process.  With ``chunks > 1`` the
  repetitions split into deterministic chunks whose RNGs derive from
  ``SeedSequence([base_seed, chunk_index])`` (the PR-2 worker-seed
  scheme), which makes its output bit-for-bit identical to a pooled run
  with the same chunk count — the executor-parity contract the test suite
  pins.
* :class:`ProcessPoolExecutor` — the same chunk geometry fanned out over
  a process pool.  The compiled plan, a packed snapshot of the initial
  state, and the simulator configuration ship to each worker exactly once
  through the pool *initializer* (with the ``fork`` start method they are
  inherited copy-on-write and not pickled at all); each task then carries
  only ``(chunk_size, chunk_seed)`` — two integers — so trajectory
  workers start in O(1) instead of re-pickling the circuit and state per
  task, closing the ROADMAP "process-pool shared-state startup" item.

Chunk seeding is deterministic: with an integer simulator seed, chunk
``i`` always receives ``SeedSequence([seed, i])`` regardless of pool
geometry or scheduling, so identically-seeded runs reproduce bit-for-bit
(and repeated ``run`` calls on one simulator return identical samples —
the same contract as :func:`repro.sampler.parallel.sample_trajectories_parallel`).

Pooled execution requires picklable components: a module-level
``apply_op`` and ``compute_probability`` (the shipped ``act_on`` and
``born`` functions qualify) and a state whose registry descriptor either
pickles directly or provides ``snapshot``/``restore`` hooks.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent import futures as _cf
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..states.registry import capabilities_for
from .plan import ExecutionPlan

RunParts = Tuple[Dict[str, np.ndarray], np.ndarray]


# ----------------------------------------------------------------------
# chunk geometry and deterministic seeding (shared by every strategy)
# ----------------------------------------------------------------------

def _chunk_sizes(repetitions: int, num_chunks: int) -> List[int]:
    """Split ``repetitions`` into at most ``num_chunks`` near-equal parts."""
    num_chunks = min(num_chunks, repetitions)
    base, extra = divmod(repetitions, num_chunks)
    return [base + (1 if i < extra else 0) for i in range(num_chunks)]


def _chunk_seeds(
    seed: Union[int, np.random.Generator, None], num_chunks: int
) -> List[int]:
    """Per-chunk seeds derived deterministically from the user seed.

    Chunk ``i`` receives the first word of ``SeedSequence([base, i])`` —
    a stable function of the user seed and the chunk *index* alone, so
    identically seeded runs hand every chunk the same stream, streams of
    different chunks are statistically independent, and chunk ``i``'s
    seed does not shift when the total chunk count changes.  ``None``
    draws a fresh entropy base; passing a Generator consumes one draw
    from it for the base.
    """
    base = _base_seed(seed)
    return [
        int(np.random.SeedSequence([base, i]).generate_state(1, np.uint64)[0])
        >> 2
        for i in range(num_chunks)
    ]


def _base_seed(seed: Union[int, np.random.Generator, None]) -> int:
    """Collapse a user seed argument to one non-negative integer base."""
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(2**62))
    if seed is None:
        return int(np.random.SeedSequence().entropy) % 2**62
    return int(seed)


def _merge_parts(parts: List[RunParts]) -> RunParts:
    """Concatenate per-chunk (records, bits) outputs in chunk order."""
    if len(parts) == 1:
        return parts[0]
    all_bits = np.concatenate([bits for _, bits in parts], axis=0)
    keys = parts[0][0].keys()
    records = {
        key: np.concatenate([rec[key] for rec, _ in parts], axis=0)
        for key in keys
    }
    return records, all_bits


def _dispatch(simulator, plan: ExecutionPlan, repetitions: int, rng) -> RunParts:
    """Run one chunk through the plan's required mode."""
    if plan.needs_trajectories:
        return simulator._run_trajectories(plan, repetitions, rng=rng)
    return simulator._run_parallel(plan, repetitions, rng=rng)


def _main_is_importable() -> bool:
    """Whether ``__main__`` can be re-imported by a forkserver/spawn child.

    Both start methods replay the parent's ``__main__`` from its file
    path; interactive sessions and stdin scripts have none (or a
    placeholder like ``<stdin>``), which kills the worker at startup.
    """
    import sys

    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    return path is not None and os.path.exists(path)


def _pool_context(start_method: Optional[str]):
    """A multiprocessing context, preferring the requested start method.

    Falls back to ``fork`` (when available) if the requested method is
    unavailable on the platform, or if it would need to re-import an
    un-importable ``__main__`` (REPL / stdin parents).
    """
    available = multiprocessing.get_all_start_methods()
    if (
        start_method in ("forkserver", "spawn")
        and "fork" in available
        and not _main_is_importable()
    ):
        return multiprocessing.get_context("fork")
    if start_method is not None and start_method in available:
        return multiprocessing.get_context(start_method)
    if "fork" in available:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# the executor interface
# ----------------------------------------------------------------------

class Executor(abc.ABC):
    """Strategy object deciding where a compiled plan's repetitions run."""

    @abc.abstractmethod
    def execute(
        self,
        simulator,
        plan: ExecutionPlan,
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> RunParts:
        """Produce ``(records, bits)`` for ``repetitions`` of ``plan``."""


class SerialExecutor(Executor):
    """In-process execution, optionally in deterministic seeded chunks.

    ``chunks=1`` (default) runs exactly like a bare simulator — one
    stream off the simulator's own RNG.  ``chunks=k`` reproduces the
    pooled executor's chunk geometry in-process: the output for a given
    (seed, chunk count) is bit-for-bit identical to
    :class:`ProcessPoolExecutor` with the same total chunk count.
    """

    def __init__(self, chunks: int = 1):
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks

    def execute(self, simulator, plan, repetitions, rng=None):
        if self.chunks == 1:
            return _dispatch(
                simulator, plan, repetitions, rng if rng is not None else simulator._rng
            )
        sizes = _chunk_sizes(repetitions, self.chunks)
        seeds = _chunk_seeds(simulator.seed if rng is None else rng, len(sizes))
        parts = [
            _dispatch(simulator, plan, size, np.random.default_rng(seed))
            for size, seed in zip(sizes, seeds)
        ]
        return _merge_parts(parts)


# ----------------------------------------------------------------------
# pooled execution with one-time worker initialization
# ----------------------------------------------------------------------

class _WorkerPayload:
    """Everything a pool worker needs, shipped once per worker.

    The initial state travels as its registry ``snapshot`` payload when
    the backend declares one (restored via the matching ``restore``
    hook), else as the state object itself; either way it is pickled once
    per *worker* by the pool initializer — never per task.
    """

    __slots__ = (
        "plan",
        "state_payload",
        "restore",
        "apply_op",
        "compute_probability",
        "user_candidates",
        "skip_diagonal_updates",
        "fuse_moments",
    )

    def __init__(self, simulator, plan: ExecutionPlan):
        caps = capabilities_for(type(simulator.initial_state))
        if caps.snapshot is not None:
            self.state_payload = caps.snapshot(simulator.initial_state)
            self.restore = caps.restore
        else:
            self.state_payload = simulator.initial_state
            self.restore = None
        self.plan = plan
        self.apply_op = simulator.apply_op
        self.compute_probability = simulator.compute_probability
        self.user_candidates = simulator.user_candidate_function
        self.skip_diagonal_updates = simulator.skip_diagonal_updates
        self.fuse_moments = simulator.fuse_moments

    def build_simulator(self):
        from .simulator import Simulator

        state = (
            self.restore(self.state_payload)
            if self.restore is not None
            else self.state_payload
        )
        return Simulator(
            state,
            self.apply_op,
            self.compute_probability,
            compute_candidate_probabilities=self.user_candidates,
            skip_diagonal_updates=self.skip_diagonal_updates,
            fuse_moments=self.fuse_moments,
        )


_WORKER: Optional[Tuple[object, ExecutionPlan]] = None


def _init_pool_worker(payload: _WorkerPayload) -> None:
    """Pool initializer: build the worker-local simulator + shared plan."""
    global _WORKER
    _WORKER = (payload.build_simulator(), payload.plan)


def _run_pool_chunk(size: int, seed: int) -> RunParts:
    """Worker task body: two integers in, one chunk of samples out."""
    simulator, plan = _WORKER
    return _dispatch(simulator, plan, size, np.random.default_rng(seed))


class ProcessPoolExecutor(Executor):
    """Fan a plan's repetitions over a process pool with O(1) task payloads.

    Args:
        num_workers: Pool size; defaults to ``os.cpu_count()``.
        chunks_per_worker: >1 gives smaller tasks (better load balance).
        start_method: ``"forkserver"`` (default), ``"fork"``, or
            ``"spawn"``; falls back to the platform default when the
            requested method is unavailable.  With ``fork`` the shared
            plan and packed state are inherited copy-on-write; with
            ``forkserver``/``spawn`` they are pickled once per worker by
            the initializer.

    The total chunk count is ``num_workers * chunks_per_worker``; given
    the same simulator seed and total chunk count,
    :class:`SerialExecutor` produces bit-for-bit identical output.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        chunks_per_worker: int = 1,
        start_method: Optional[str] = "forkserver",
    ):
        self.num_workers = max(1, int(num_workers or (os.cpu_count() or 1)))
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.start_method = start_method

    def execute(self, simulator, plan, repetitions, rng=None):
        num_chunks = self.num_workers * self.chunks_per_worker
        sizes = _chunk_sizes(repetitions, num_chunks)
        seeds = _chunk_seeds(simulator.seed if rng is None else rng, len(sizes))
        if self.num_workers == 1 or len(sizes) == 1:
            # In-process fallback with identical chunk geometry/seeding.
            parts = [
                _dispatch(simulator, plan, size, np.random.default_rng(seed))
                for size, seed in zip(sizes, seeds)
            ]
            return _merge_parts(parts)
        payload = _WorkerPayload(simulator, plan)
        workers = min(self.num_workers, len(sizes))
        with _cf.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(self.start_method),
            initializer=_init_pool_worker,
            initargs=(payload,),
        ) as pool:
            pending = [
                pool.submit(_run_pool_chunk, size, seed)
                for size, seed in zip(sizes, seeds)
            ]
            parts = [f.result() for f in pending]
        return _merge_parts(parts)


# ----------------------------------------------------------------------
# legacy factory-based fan-out (sampler/parallel.py compatibility)
# ----------------------------------------------------------------------

def run_factory_chunks(
    factory: Callable,
    circuit,
    sizes: List[int],
    seeds: List[int],
    num_workers: int,
    start_method: Optional[str] = None,
) -> List[RunParts]:
    """The pre-executor cost model: one (factory, circuit) pickle per task.

    Each task rebuilds its simulator via ``factory(seed)`` and recompiles
    the circuit in the worker.  Kept as the engine behind the legacy
    :func:`repro.sampler.parallel.sample_trajectories_parallel` API (whose
    factories may close over unpicklable pieces and rely on ``fork``);
    new code should prefer :class:`ProcessPoolExecutor`, which ships the
    compiled plan and packed state once per worker instead of per task.
    """
    if num_workers == 1 or len(sizes) == 1:
        return [
            _run_factory_chunk(factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
    with _cf.ProcessPoolExecutor(
        max_workers=num_workers, mp_context=_pool_context(start_method)
    ) as pool:
        pending = [
            pool.submit(_run_factory_chunk, factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
        return [f.result() for f in pending]


def _run_factory_chunk(factory, circuit, repetitions: int, seed: int) -> RunParts:
    """Worker body: build a simulator and run one chunk of repetitions."""
    simulator = factory(seed)
    return simulator._execute(circuit, repetitions, None)


__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "run_factory_chunks",
]
