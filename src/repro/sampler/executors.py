"""Pluggable execution strategies: serial, chunked, and process-pooled.

The :class:`~repro.sampler.simulator.Simulator` owns the *algorithm*
(parallel-front evolution or quantum trajectories over a compiled
:class:`~repro.sampler.plan.ExecutionPlan`); an :class:`Executor` owns the
*strategy* — where and in how many pieces that algorithm runs:

* :class:`SerialExecutor` — in-process.  With ``chunks > 1`` the
  repetitions split into deterministic chunks whose RNGs derive from
  ``SeedSequence([base_seed, chunk_index])`` (the PR-2 worker-seed
  scheme), which makes its output bit-for-bit identical to a pooled run
  with the same chunk count — the executor-parity contract the test suite
  pins.
* :class:`ProcessPoolExecutor` — the same chunk geometry fanned out over
  a process pool.  The compiled plan (or, for point-scope sweeps, the
  whole parameterized Program), a packed snapshot of the initial state,
  and the simulator configuration ship to each worker exactly once
  through the pool *initializer*; each repetition-chunk task then carries
  only ``(chunk_size, chunk_seed)`` — two integers — and each sweep-point
  task only ``(index, resolver, repetitions, base)``.  By default
  (``reuse_pool=True``) the pool itself is **warm**: a
  :class:`~repro.sampler.service.PoolManager` keeps the workers alive
  across ``execute``/``run_sweep``/``run_batch`` calls and re-initializes
  them only when the execution key — compiled unit, initial-state
  payload, simulator config, pool geometry — changes.  ``reuse_pool=False``
  restores the PR-3 cold behavior (one pool per call).

Point-scope sweeps: ``ProcessPoolExecutor.execute_sweep`` fans whole
sweep points (not repetition chunks) across the warm pool; each point is
one stream seeded from ``SeedSequence([seed, index])``, making pooled
point-scope output bit-for-bit identical to a serial ``run_sweep``.  The
base :class:`Executor` ``execute_sweep`` preserves each executor's own
repetition geometry per point, which is what ``run_sweep`` used before
point scope existed.

Chunk seeding is deterministic: with an integer simulator seed, chunk
``i`` always receives ``SeedSequence([seed, i])`` regardless of pool
geometry or scheduling, so identically-seeded runs reproduce bit-for-bit
(and repeated ``run`` calls on one simulator return identical samples —
the same contract as :func:`repro.sampler.parallel.sample_trajectories_parallel`).

Pooled execution requires picklable components: a module-level
``apply_op`` and ``compute_probability`` (the shipped ``act_on`` and
``born`` functions qualify) and a state whose registry descriptor either
pickles directly or provides ``snapshot``/``restore`` hooks (the packed
tableau/CH backends ship raw ``uint64`` words this way).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent import futures as _cf
from typing import Callable, List, Optional

import numpy as np

from .service import (
    PoolManager,
    RunParts,
    _WorkerPayload,
    _base_seed,
    _chunk_seeds,
    _chunk_sizes,
    _dispatch,
    _init_pool_worker,
    _main_is_importable,
    _merge_parts,
    _pool_context,
    _run_pool_chunk,
    _run_pool_point,
    execution_key,
    shared_pool_manager,
)


# ----------------------------------------------------------------------
# the executor interface
# ----------------------------------------------------------------------

class Executor(abc.ABC):
    """Strategy object deciding where a compiled plan's repetitions run."""

    #: Whether :meth:`execute_sweep` fans whole sweep points across
    #: parallel workers (single stream per point).  Executors that leave
    #: this False run sweeps point-by-point with their own repetition
    #: geometry, exactly like ``run_sweep`` before point scope existed.
    supports_point_scope = False

    @abc.abstractmethod
    def execute(
        self,
        simulator,
        plan,
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> RunParts:
        """Produce ``(records, bits)`` for ``repetitions`` of ``plan``."""

    def execute_sweep(
        self, simulator, program, resolvers, repetitions: int
    ) -> List[RunParts]:
        """One ``(records, bits)`` per resolver of a parameter sweep.

        Default: specialize and :meth:`execute` each point in order with
        this executor's own repetition geometry, point ``i`` seeded from
        ``SeedSequence([seed, i])`` — identical to the pre-point-scope
        ``run_sweep`` loop.
        """
        base = _base_seed(simulator.seed)
        parts = []
        for index, resolver in enumerate(resolvers):
            plan = program.specialize(resolver)
            rng = np.random.default_rng(np.random.SeedSequence([base, index]))
            parts.append(self.execute(simulator, plan, repetitions, rng=rng))
        return parts


class SerialExecutor(Executor):
    """In-process execution, optionally in deterministic seeded chunks.

    ``chunks=1`` (default) runs exactly like a bare simulator — one
    stream off the simulator's own RNG.  ``chunks=k`` reproduces the
    pooled executor's chunk geometry in-process: the output for a given
    (seed, chunk count) is bit-for-bit identical to
    :class:`ProcessPoolExecutor` with the same total chunk count.
    """

    def __init__(self, chunks: int = 1):
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks

    def execute(self, simulator, plan, repetitions, rng=None):
        if self.chunks == 1:
            return _dispatch(
                simulator, plan, repetitions, rng if rng is not None else simulator._rng
            )
        sizes = _chunk_sizes(repetitions, self.chunks)
        seeds = _chunk_seeds(simulator.seed if rng is None else rng, len(sizes))
        parts = [
            _dispatch(simulator, plan, size, np.random.default_rng(seed))
            for size, seed in zip(sizes, seeds)
        ]
        return _merge_parts(parts)


# ----------------------------------------------------------------------
# pooled execution with one-time worker initialization and warm reuse
# ----------------------------------------------------------------------

class ProcessPoolExecutor(Executor):
    """Fan repetition chunks or whole sweep points over a process pool.

    Args:
        num_workers: Pool size; defaults to ``os.cpu_count()``.
        chunks_per_worker: >1 gives smaller tasks (better load balance).
        start_method: ``"fork"``, ``"forkserver"``, or ``"spawn"``.  An
            *explicitly requested* method the platform does not provide
            raises at pool construction (no silent substitution; see
            :func:`repro.sampler.service._pool_context`).  The default
            sentinel ``"auto"`` resolves to ``forkserver`` where
            available and the platform default elsewhere (Windows has
            only ``spawn``), so default-configured executors work on
            every platform.  With ``fork`` the shared plan and packed
            state are inherited copy-on-write; with
            ``forkserver``/``spawn`` they are pickled once per worker by
            the initializer.
        reuse_pool: True (default) keeps the pool **warm** through a
            :class:`~repro.sampler.service.PoolManager`: consecutive
            calls with an unchanged execution key submit straight to the
            already-initialized workers.  False rebuilds a pool per call
            (the PR-3 cold behavior) — same output, more startup cost.
        pool_manager: The manager owning the warm pool.  None (default)
            uses the process-wide shared manager; pass a dedicated
            :class:`~repro.sampler.service.PoolManager` for scoped
            lifetimes or isolated init counters.

    The total chunk count is ``num_workers * chunks_per_worker``; given
    the same simulator seed and total chunk count,
    :class:`SerialExecutor` produces bit-for-bit identical output.  Warm
    and cold pools are bit-for-bit identical too — reuse changes only
    where the startup cost is paid.
    """

    supports_point_scope = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        chunks_per_worker: int = 1,
        start_method: Optional[str] = "auto",
        reuse_pool: bool = True,
        pool_manager: Optional[PoolManager] = None,
    ):
        self.num_workers = max(1, int(num_workers or (os.cpu_count() or 1)))
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        if start_method == "auto":
            available = multiprocessing.get_all_start_methods()
            start_method = "forkserver" if "forkserver" in available else None
        self.start_method = start_method
        self.reuse_pool = reuse_pool
        self._pool_manager = pool_manager

    @property
    def pool_manager(self) -> PoolManager:
        """The manager owning this executor's warm pool."""
        if self._pool_manager is None:
            self._pool_manager = shared_pool_manager()
        return self._pool_manager

    def execute(self, simulator, plan, repetitions, rng=None):
        num_chunks = self.num_workers * self.chunks_per_worker
        sizes = _chunk_sizes(repetitions, num_chunks)
        seeds = _chunk_seeds(simulator.seed if rng is None else rng, len(sizes))
        if self.num_workers == 1 or len(sizes) == 1:
            # In-process fallback with identical chunk geometry/seeding.
            parts = [
                _dispatch(simulator, plan, size, np.random.default_rng(seed))
                for size, seed in zip(sizes, seeds)
            ]
            return _merge_parts(parts)
        workers = min(self.num_workers, len(sizes))
        argses = list(zip(sizes, seeds))
        if self.reuse_pool:
            parts = self.pool_manager.run(
                execution_key(simulator, plan=plan),
                workers,
                self.start_method,
                lambda: _WorkerPayload(simulator, plan=plan),
                _run_pool_chunk,
                argses,
            )
        else:
            parts = self._run_cold(
                _WorkerPayload(simulator, plan=plan),
                workers,
                _run_pool_chunk,
                argses,
            )
        return _merge_parts(parts)

    def execute_sweep(self, simulator, program, resolvers, repetitions):
        """Fan whole sweep points across the (warm) pool.

        Each point runs as one stream seeded from
        ``SeedSequence([seed, index])`` — bit-for-bit identical to a
        serial ``run_sweep`` — and specializes the shared Program inside
        the worker (memoized, so optimizer loops revisiting a point skip
        the param-slot rebuild).  Consecutive sweeps over the same
        compiled Program and initial-state payload reuse the warm workers
        with zero re-initializations.
        """
        resolvers = list(resolvers)
        base = _base_seed(simulator.seed)
        if self.num_workers == 1 or len(resolvers) <= 1:
            # In-process fallback with the *point-scope* recipe (one
            # stream per point off SeedSequence([base, i])), not the
            # chunked execute() path: point-scope output must not depend
            # on worker count or sweep length.
            return [
                _dispatch(
                    simulator,
                    program.specialize(resolver),
                    repetitions,
                    np.random.default_rng(np.random.SeedSequence([base, index])),
                )
                for index, resolver in enumerate(resolvers)
            ]
        workers = min(self.num_workers, len(resolvers))
        argses = [
            (index, resolver, repetitions, base)
            for index, resolver in enumerate(resolvers)
        ]
        if self.reuse_pool:
            return self.pool_manager.run(
                execution_key(simulator, program=program),
                workers,
                self.start_method,
                lambda: _WorkerPayload(simulator, program=program),
                _run_pool_point,
                argses,
            )
        return self._run_cold(
            _WorkerPayload(simulator, program=program),
            workers,
            _run_pool_point,
            argses,
        )

    def _run_cold(self, payload, workers, fn, argses):
        """One fresh pool for this call only (the pre-warm cost model)."""
        with _cf.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(self.start_method),
            initializer=_init_pool_worker,
            initargs=(payload,),
        ) as pool:
            pending = [pool.submit(fn, *args) for args in argses]
            return [f.result() for f in pending]


# ----------------------------------------------------------------------
# legacy factory-based fan-out (sampler/parallel.py compatibility)
# ----------------------------------------------------------------------

def run_factory_chunks(
    factory: Callable,
    circuit,
    sizes: List[int],
    seeds: List[int],
    num_workers: int,
    start_method: Optional[str] = None,
) -> List[RunParts]:
    """The pre-executor cost model: one (factory, circuit) pickle per task.

    Each task rebuilds its simulator via ``factory(seed)`` and recompiles
    the circuit in the worker.  Kept as the engine behind the legacy
    :func:`repro.sampler.parallel.sample_trajectories_parallel` API (whose
    factories may close over unpicklable pieces and rely on ``fork``);
    new code should prefer :class:`ProcessPoolExecutor`, which ships the
    compiled plan and packed state once per worker instead of per task.
    """
    if num_workers == 1 or len(sizes) == 1:
        return [
            _run_factory_chunk(factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
    with _cf.ProcessPoolExecutor(
        max_workers=num_workers, mp_context=_pool_context(start_method)
    ) as pool:
        pending = [
            pool.submit(_run_factory_chunk, factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
        return [f.result() for f in pending]


def _run_factory_chunk(factory, circuit, repetitions: int, seed: int) -> RunParts:
    """Worker body: build a simulator and run one chunk of repetitions."""
    simulator = factory(seed)
    return simulator._execute(circuit, repetitions, None)


__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "PoolManager",
    "run_factory_chunks",
    "shared_pool_manager",
]
