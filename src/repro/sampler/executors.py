"""Pluggable execution strategies: serial, chunked, and process-pooled.

The :class:`~repro.sampler.simulator.Simulator` owns the *algorithm*
(parallel-front evolution or quantum trajectories over a compiled
:class:`~repro.sampler.plan.ExecutionPlan`); an :class:`Executor` owns the
*strategy* — where and in how many pieces that algorithm runs:

* :class:`SerialExecutor` — in-process.  With ``chunks > 1`` the
  repetitions split into deterministic chunks whose RNGs derive from
  ``SeedSequence([base_seed, chunk_index])`` (the PR-2 worker-seed
  scheme), which makes its output bit-for-bit identical to a pooled run
  with the same chunk count — the executor-parity contract the test suite
  pins.
* :class:`ProcessPoolExecutor` — the same chunk geometry fanned out over
  a process pool.  The compiled plan (or, for point/batch scope, the
  whole **program table** — every distinct compiled Program of a
  heterogeneous batch), a packed snapshot of the initial state, and the
  simulator configuration ship to each worker exactly once through the
  pool *initializer*; each repetition-chunk task then carries only
  ``(chunk_size, chunk_seed)`` — two integers — and each scheduled batch
  task only ``(program_index, point_index, resolver, reps, chunk info,
  base)``.  By default (``reuse_pool=True``) the pool itself is
  **warm**: a :class:`~repro.sampler.service.PoolManager` keeps the
  workers alive across ``execute``/``run_sweep``/``run_batch`` calls and
  re-initializes them only when the execution key — compiled unit(s),
  initial-state payload, simulator config, pool geometry — changes.
  ``reuse_pool=False`` restores the PR-3 cold behavior (one pool per
  call).

Point/batch scope: ``ProcessPoolExecutor.execute_sweep`` and
``execute_batch`` fan whole sweep/batch points (not repetition chunks)
across the warm pool through the configured scheduler
(:mod:`repro.sampler.schedule`).  Under the default FIFO scheduler each
point is one stream seeded from ``SeedSequence([seed, index])``, making
pooled output bit-for-bit identical to a serial
``run_sweep``/``run_batch``; an
:class:`~repro.sampler.schedule.AdaptiveScheduler` reorders the queue
largest-first and splits oversized points into deterministic repetition
sub-chunks.  The base :class:`Executor` ``execute_sweep`` preserves each
executor's own repetition geometry per point, which is what ``run_sweep``
used before point scope existed.

Chunk seeding is deterministic: with an integer simulator seed, chunk
``i`` always receives ``SeedSequence([seed, i])`` regardless of pool
geometry or scheduling, so identically-seeded runs reproduce bit-for-bit
(and repeated ``run`` calls on one simulator return identical samples —
the same contract as :func:`repro.sampler.parallel.sample_trajectories_parallel`).

Pooled execution requires picklable components: a module-level
``apply_op`` and ``compute_probability`` (the shipped ``act_on`` and
``born`` functions qualify) and a state whose registry descriptor either
pickles directly or provides ``snapshot``/``restore`` hooks (the packed
tableau/CH backends ship raw ``uint64`` words this way).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import time
from concurrent import futures as _cf
from typing import Callable, List, Optional, Sequence

import numpy as np

from .schedule import BatchEntry, FifoScheduler, Scheduler, estimate_cost
from .service import (
    PoolManager,
    RunParts,
    _WorkerPayload,
    _base_seed,
    _chunk_seeds,
    _chunk_sizes,
    _dispatch,
    _init_pool_worker,
    _merge_parts,
    _pool_context,
    _run_pool_chunk,
    _run_pool_task,
    _task_rng,
    _warm_worker,
    execution_key,
    shared_pool_manager,
)


# ----------------------------------------------------------------------
# the executor interface
# ----------------------------------------------------------------------

class Executor(abc.ABC):
    """Strategy object deciding where a compiled plan's repetitions run."""

    #: Whether :meth:`execute_sweep` fans whole sweep points across
    #: parallel workers (single stream per point).  Executors that leave
    #: this False run sweeps point-by-point with their own repetition
    #: geometry, exactly like ``run_sweep`` before point scope existed.
    supports_point_scope = False

    @abc.abstractmethod
    def execute(
        self,
        simulator,
        plan,
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> RunParts:
        """Produce ``(records, bits)`` for ``repetitions`` of ``plan``."""

    def execute_sweep(
        self, simulator, program, resolvers, repetitions: int
    ) -> List[RunParts]:
        """One ``(records, bits)`` per resolver of a parameter sweep.

        Default: specialize and :meth:`execute` each point in order with
        this executor's own repetition geometry, point ``i`` seeded from
        ``SeedSequence([seed, i])`` — identical to the pre-point-scope
        ``run_sweep`` loop.
        """
        base = _base_seed(simulator.seed)
        parts = []
        for index, resolver in enumerate(resolvers):
            plan = program.specialize(resolver)
            rng = np.random.default_rng(np.random.SeedSequence([base, index]))
            parts.append(self.execute(simulator, plan, repetitions, rng=rng))
        return parts

    def execute_batch(
        self,
        simulator,
        programs: Sequence,
        resolvers: Sequence,
        repetitions: int,
    ) -> List[RunParts]:
        """One ``(records, bits)`` per (program, resolver) batch entry.

        Default: specialize and :meth:`execute` each entry in order with
        this executor's own repetition geometry, entry ``i`` seeded from
        ``SeedSequence([seed, i])`` — identical to the serial
        ``run_batch`` loop.
        """
        base = _base_seed(simulator.seed)
        parts = []
        for index, (program, resolver) in enumerate(zip(programs, resolvers)):
            plan = program.specialize(resolver)
            rng = np.random.default_rng(np.random.SeedSequence([base, index]))
            parts.append(self.execute(simulator, plan, repetitions, rng=rng))
        return parts


class SerialExecutor(Executor):
    """In-process execution, optionally in deterministic seeded chunks.

    ``chunks=1`` (default) runs exactly like a bare simulator — one
    stream off the simulator's own RNG.  ``chunks=k`` reproduces the
    pooled executor's chunk geometry in-process: the output for a given
    (seed, chunk count) is bit-for-bit identical to
    :class:`ProcessPoolExecutor` with the same total chunk count.
    """

    def __init__(self, chunks: int = 1):
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks

    def execute(self, simulator, plan, repetitions, rng=None):
        if self.chunks == 1:
            return _dispatch(
                simulator, plan, repetitions, rng if rng is not None else simulator._rng
            )
        sizes = _chunk_sizes(repetitions, self.chunks)
        seeds = _chunk_seeds(simulator.seed if rng is None else rng, len(sizes))
        parts = [
            _dispatch(simulator, plan, size, np.random.default_rng(seed))
            for size, seed in zip(sizes, seeds)
        ]
        return _merge_parts(parts)


# ----------------------------------------------------------------------
# pooled execution with one-time worker initialization and warm reuse
# ----------------------------------------------------------------------

class ProcessPoolExecutor(Executor):
    """Fan repetition chunks or whole sweep points over a process pool.

    Args:
        num_workers: Pool size; defaults to ``os.cpu_count()``.
        chunks_per_worker: >1 gives smaller tasks (better load balance).
        start_method: ``"fork"``, ``"forkserver"``, or ``"spawn"``.  An
            *explicitly requested* method the platform does not provide
            raises at pool construction (no silent substitution; see
            :func:`repro.sampler.service._pool_context`).  The default
            sentinel ``"auto"`` resolves to ``forkserver`` where
            available and the platform default elsewhere (Windows has
            only ``spawn``), so default-configured executors work on
            every platform.  With ``fork`` the shared plan and packed
            state are inherited copy-on-write; with
            ``forkserver``/``spawn`` they are pickled once per worker by
            the initializer.
        reuse_pool: True (default) keeps the pool **warm** through a
            :class:`~repro.sampler.service.PoolManager`: consecutive
            calls with an unchanged execution key submit straight to the
            already-initialized workers.  False rebuilds a pool per call
            (the PR-3 cold behavior) — same output, more startup cost.
        pool_manager: The manager owning the warm pool.  None (default)
            uses the process-wide shared manager; pass a dedicated
            :class:`~repro.sampler.service.PoolManager` for scoped
            lifetimes or isolated init counters.
        scheduler: How batch/sweep points map to pool tasks.  None
            (default) is FIFO — one task per point, submission order,
            bit-for-bit identical to the serial path.  Pass an
            :class:`~repro.sampler.schedule.AdaptiveScheduler` to order
            tasks largest-first by the static cost model and split
            oversized points into repetition sub-chunks (seeds
            ``SeedSequence([seed, point, chunk])``, merged in chunk
            order) so mixed-depth batches keep every worker busy.

    The total chunk count is ``num_workers * chunks_per_worker``; given
    the same simulator seed and total chunk count,
    :class:`SerialExecutor` produces bit-for-bit identical output.  Warm
    and cold pools are bit-for-bit identical too — reuse changes only
    where the startup cost is paid.
    """

    supports_point_scope = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        chunks_per_worker: int = 1,
        start_method: Optional[str] = "auto",
        reuse_pool: bool = True,
        pool_manager: Optional[PoolManager] = None,
        scheduler: Optional[Scheduler] = None,
    ):
        self.num_workers = max(1, int(num_workers or (os.cpu_count() or 1)))
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        if start_method == "auto":
            available = multiprocessing.get_all_start_methods()
            start_method = "forkserver" if "forkserver" in available else None
        self.start_method = start_method
        self.reuse_pool = reuse_pool
        self._pool_manager = pool_manager
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()

    @property
    def pool_manager(self) -> PoolManager:
        """The manager owning this executor's warm pool."""
        if self._pool_manager is None:
            self._pool_manager = shared_pool_manager()
        return self._pool_manager

    def execute(self, simulator, plan, repetitions, rng=None):
        num_chunks = self.num_workers * self.chunks_per_worker
        sizes = _chunk_sizes(repetitions, num_chunks)
        seeds = _chunk_seeds(simulator.seed if rng is None else rng, len(sizes))
        if self.num_workers == 1 or len(sizes) == 1:
            # In-process fallback with identical chunk geometry/seeding.
            parts = [
                _dispatch(simulator, plan, size, np.random.default_rng(seed))
                for size, seed in zip(sizes, seeds)
            ]
            return _merge_parts(parts)
        workers = min(self.num_workers, len(sizes))
        argses = list(zip(sizes, seeds))
        if self.reuse_pool:
            parts = self.pool_manager.run(
                execution_key(simulator, plan=plan),
                workers,
                self.start_method,
                lambda: _WorkerPayload(simulator, plan=plan),
                _run_pool_chunk,
                argses,
            )
        else:
            parts = self._run_cold(
                _WorkerPayload(simulator, plan=plan),
                workers,
                _run_pool_chunk,
                argses,
            )
        return _merge_parts(parts)

    def execute_sweep(self, simulator, program, resolvers, repetitions):
        """Fan whole sweep points across the (warm) pool.

        A sweep is a one-program batch: each point runs as one stream
        seeded from ``SeedSequence([seed, index])`` — bit-for-bit
        identical to a serial ``run_sweep`` — and specializes the shared
        Program inside the worker (memoized, so optimizer loops
        revisiting a point skip the param-slot rebuild).  Consecutive
        sweeps over the same compiled Program and initial-state payload
        reuse the warm workers with zero re-initializations.  An
        :class:`~repro.sampler.schedule.AdaptiveScheduler` additionally
        splits points across workers when the sweep has fewer points
        than the pool has workers.
        """
        resolvers = list(resolvers)
        return self.execute_batch(
            simulator, [program] * len(resolvers), resolvers, repetitions
        )

    def execute_batch(self, simulator, programs, resolvers, repetitions):
        """Fan a (possibly heterogeneous) batch across the (warm) pool.

        The batch's distinct compiled Programs form one **program
        table** shipped to every worker by the pool initializer — the
        execution key covers the whole table, so ``run_batch`` over N
        different circuits performs **one** pool initialization instead
        of N, and repeated identical batches reuse the warm workers with
        zero re-initializations (the process-wide Program cache hands
        the manager the same table objects).  The configured scheduler
        maps entries to tasks: FIFO (default) is one task per point in
        order, bit-for-bit identical to the serial ``run_batch``;
        adaptive scheduling reorders largest-first and splits oversized
        points into deterministic repetition sub-chunks.
        """
        resolvers = list(resolvers)
        programs = list(programs)
        if len(programs) != len(resolvers):
            raise ValueError(
                f"Got {len(programs)} programs but {len(resolvers)} resolvers"
            )
        base = _base_seed(simulator.seed)
        # Dedupe by identity: a batch repeating a circuit (the Program
        # cache returns the same object) ships each distinct Program once.
        table: List = []
        table_index = {}
        entries = []
        for point, (program, resolver) in enumerate(zip(programs, resolvers)):
            index = table_index.get(id(program))
            if index is None:
                index = len(table)
                table.append(program)
                table_index[id(program)] = index
            entries.append(
                BatchEntry(
                    index, point, resolver, estimate_cost(program, repetitions)
                )
            )
        tasks = self.scheduler.schedule(entries, repetitions, self.num_workers)
        argses = [
            (
                t.program_index,
                t.point_index,
                t.resolver,
                t.repetitions,
                t.num_chunks,
                t.chunk_index,
                base,
            )
            for t in tasks
        ]
        if self.num_workers == 1 or len(argses) <= 1:
            # In-process fallback with the exact scheduled-task recipe
            # (same specialization, same per-task seed streams): batch
            # output must not depend on worker count or batch length.
            parts = [_run_task_in_process(simulator, table, args) for args in argses]
        else:
            parts = self._run_pool_argses(simulator, table, argses)
        return self.scheduler.merge(tasks, parts, len(entries))

    def _run_pool_argses(self, simulator, table, argses):
        """Submit scheduled task args to the warm (or cold) pool.

        When the scheduler asks for a timing probe, every worker is
        spawned and initialized *before* the timing window opens (no-op
        warm tasks), then the first (largest) task runs alone and its
        wall time calibrates the scheduler's cost model before the rest
        of the queue is submitted — so the probe measures the task, not
        pool startup.  The probe never changes task geometry or seeds,
        so output is unaffected.
        """
        workers = min(self.num_workers, len(argses))
        probe = getattr(self.scheduler, "probe", False) and len(argses) > 1

        def payload_factory():
            return _WorkerPayload(simulator, programs=tuple(table))

        if self.reuse_pool:
            key = execution_key(simulator, programs=tuple(table))

            def submit(fn, batch):
                return self.pool_manager.run(
                    key, workers, self.start_method, payload_factory, fn, batch
                )

            return self._submit_scheduled(submit, table, argses, probe)
        pool = _cf.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(self.start_method),
            initializer=_init_pool_worker,
            initargs=(payload_factory(),),
        )
        try:

            def submit(fn, batch):
                pending = [pool.submit(fn, *args) for args in batch]
                return [f.result() for f in pending]

            return self._submit_scheduled(submit, table, argses, probe)
        finally:
            pool.shutdown(wait=True)

    def _submit_scheduled(self, submit, table, argses, probe):
        workers = min(self.num_workers, len(argses))
        if probe:
            submit(_warm_worker, [()] * workers)
            start = time.perf_counter()
            first = submit(_run_pool_task, argses[:1])
            self.scheduler.calibrate(
                _args_cost(argses[0], table), time.perf_counter() - start
            )
            return first + submit(_run_pool_task, argses[1:])
        return submit(_run_pool_task, argses)

    def _run_cold(self, payload, workers, fn, argses):
        """One fresh pool for this call only (the pre-warm cost model)."""
        with _cf.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(self.start_method),
            initializer=_init_pool_worker,
            initargs=(payload,),
        ) as pool:
            pending = [pool.submit(fn, *args) for args in argses]
            return [f.result() for f in pending]


def _run_task_in_process(simulator, table, args) -> RunParts:
    """The scheduled-task body run in the parent process (fallbacks).

    Mirrors :func:`repro.sampler.service._run_pool_task` exactly — same
    program selection, memoized specialization, and per-task seed stream
    — so single-worker and single-task fallbacks are bit-for-bit
    identical to the pooled fan-out.
    """
    program_index, point_index, resolver, size, num_chunks, chunk_index, base = args
    plan = table[program_index].specialize(resolver)
    rng = _task_rng(base, point_index, num_chunks, chunk_index)
    return _dispatch(simulator, plan, size, rng)


def _args_cost(args, table) -> int:
    """The static cost of one scheduled-task args tuple (probe input)."""
    program_index, _, _, size, _, _, _ = args
    return estimate_cost(table[program_index], size)


# ----------------------------------------------------------------------
# legacy factory-based fan-out (sampler/parallel.py compatibility)
# ----------------------------------------------------------------------

def run_factory_chunks(
    factory: Callable,
    circuit,
    sizes: List[int],
    seeds: List[int],
    num_workers: int,
    start_method: Optional[str] = None,
) -> List[RunParts]:
    """The pre-executor cost model: one (factory, circuit) pickle per task.

    Each task rebuilds its simulator via ``factory(seed)`` and recompiles
    the circuit in the worker.  Kept as the engine behind the legacy
    :func:`repro.sampler.parallel.sample_trajectories_parallel` API (whose
    factories may close over unpicklable pieces and rely on ``fork``);
    new code should prefer :class:`ProcessPoolExecutor`, which ships the
    compiled plan and packed state once per worker instead of per task.
    """
    if num_workers == 1 or len(sizes) == 1:
        return [
            _run_factory_chunk(factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
    with _cf.ProcessPoolExecutor(
        max_workers=num_workers, mp_context=_pool_context(start_method)
    ) as pool:
        pending = [
            pool.submit(_run_factory_chunk, factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
        return [f.result() for f in pending]


def _run_factory_chunk(factory, circuit, repetitions: int, seed: int) -> RunParts:
    """Worker body: build a simulator and run one chunk of repetitions."""
    simulator = factory(seed)
    return simulator._execute(circuit, repetitions, None)


__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "PoolManager",
    "run_factory_chunks",
    "shared_pool_manager",
]
