"""Pluggable execution strategies: serial, chunked, and process-pooled.

The :class:`~repro.sampler.simulator.Simulator` owns the *algorithm*
(parallel-front evolution or quantum trajectories over a compiled
:class:`~repro.sampler.plan.ExecutionPlan`); an :class:`Executor` owns the
*strategy* — where and in how many pieces that algorithm runs:

* :class:`SerialExecutor` — in-process.  With ``chunks > 1`` the
  repetitions split into deterministic chunks whose RNGs derive from
  ``SeedSequence([base_seed, chunk_index])`` (the PR-2 worker-seed
  scheme), which makes its output bit-for-bit identical to a pooled run
  with the same chunk count — the executor-parity contract the test suite
  pins.
* :class:`ProcessPoolExecutor` — the same chunk geometry fanned out over
  a process pool.  The compiled plan (or, for point/batch scope, the
  whole **program table** — every distinct compiled Program of a
  heterogeneous batch), a packed snapshot of the initial state, and the
  simulator configuration ship to each worker exactly once through the
  pool *initializer*; each repetition-chunk task then carries only
  ``(chunk_size, chunk_seed)`` — two integers — and each scheduled batch
  task only ``(program_index, point_index, resolver, reps, chunk info,
  base)``.  By default (``reuse_pool=True``) the pool itself is
  **warm**: a :class:`~repro.sampler.service.PoolManager` keeps the
  workers alive across ``execute``/``run_sweep``/``run_batch`` calls and
  re-initializes them only when the execution key — compiled unit(s),
  initial-state payload, simulator config, pool geometry — changes.
  ``reuse_pool=False`` restores the PR-3 cold behavior (one pool per
  call).

Point/batch scope: ``ProcessPoolExecutor.execute_sweep`` and
``execute_batch`` fan whole sweep/batch points (not repetition chunks)
across the warm pool through the configured scheduler
(:mod:`repro.sampler.schedule`).  Under the default FIFO scheduler each
point is one stream seeded from ``SeedSequence([seed, index])``, making
pooled output bit-for-bit identical to a serial
``run_sweep``/``run_batch``; an
:class:`~repro.sampler.schedule.AdaptiveScheduler` reorders the queue
largest-first and splits oversized points into deterministic repetition
sub-chunks.  The base :class:`Executor` ``execute_sweep`` preserves each
executor's own repetition geometry per point, which is what ``run_sweep``
used before point scope existed.

Chunk seeding is deterministic: with an integer simulator seed, chunk
``i`` always receives ``SeedSequence([seed, i])`` regardless of pool
geometry or scheduling, so identically-seeded runs reproduce bit-for-bit
(and repeated ``run`` calls on one simulator return identical samples —
the same contract as :func:`repro.sampler.parallel.sample_trajectories_parallel`).

Pooled execution requires picklable components: a module-level
``apply_op`` and ``compute_probability`` (the shipped ``act_on`` and
``born`` functions qualify) and a state whose registry descriptor either
pickles directly or provides ``snapshot``/``restore`` hooks (the packed
tableau/CH backends ship raw ``uint64`` words this way).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
import queue as _queue
import time
from concurrent import futures as _cf
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .requests import normalize_repetitions
from .result_planes import PointPlanes, shm_available
from .schedule import BatchEntry, FifoScheduler, Scheduler, estimate_cost
from .service import (
    PoolManager,
    RunParts,
    _WorkerPayload,
    _base_seed,
    _chunk_seeds,
    _chunk_seeds_from_base,
    _chunk_sizes,
    _dispatch,
    _init_pool_worker,
    _merge_parts,
    _pool_context,
    _run_pool_chunk,
    _run_pool_chunk_shm,
    _run_pool_task,
    _run_pool_task_shm,
    _steal_task_loop,
    _task_rng,
    _warm_worker,
    execution_key,
    shared_pool_manager,
)


class TaskTimeoutError(RuntimeError):
    """No pool task completed within the executor's ``task_timeout``.

    Raised by the pooled batch/sweep paths when the completion *gap* —
    the time since the last task finished (or since submission) —
    exceeds ``ProcessPoolExecutor(task_timeout=...)``.  A wedged worker
    cannot be cancelled (``Future.cancel`` only stops not-yet-started
    tasks), so before raising, the executor **poisons the pool**: worker
    processes are killed, the pool is torn down, and every in-flight
    shared-memory result plane is released.  The next pooled call
    rebuilds a fresh pool.
    """


# ----------------------------------------------------------------------
# the executor interface
# ----------------------------------------------------------------------

class Executor(abc.ABC):
    """Strategy object deciding where a compiled plan's repetitions run."""

    #: Whether :meth:`execute_sweep` fans whole sweep points across
    #: parallel workers (single stream per point).  Executors that leave
    #: this False run sweeps point-by-point with their own repetition
    #: geometry, exactly like ``run_sweep`` before point scope existed.
    supports_point_scope = False

    @abc.abstractmethod
    def execute(
        self,
        simulator,
        plan,
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
        ctx: Optional[Tuple[int, int, int]] = None,
    ) -> RunParts:
        """Produce ``(records, bits)`` for ``repetitions`` of ``plan``.

        ``ctx = (base_seed, point_index, rep_base)`` is the batched
        trajectory engine's seeding anchor (see
        :mod:`repro.sampler.trajectory_batch`); executors offset
        ``rep_base`` per repetition chunk so batched output never
        depends on chunk geometry.  Serial mode ignores it.
        """

    def execute_sweep_iter(
        self, simulator, program, resolvers, repetitions: int
    ) -> Iterator[RunParts]:
        """Lazily yield one ``(records, bits)`` per resolver, in order.

        Default: specialize and :meth:`execute` each point with this
        executor's own repetition geometry, point ``i`` seeded from
        ``SeedSequence([seed, i])`` — identical to the pre-point-scope
        ``run_sweep`` loop, but one point at a time, so a consumer sees
        point 0 before point 1 has run.
        """
        base = _base_seed(simulator.seed)
        resolvers = list(resolvers)

        def stream():
            for index, resolver in enumerate(resolvers):
                plan = program.specialize(resolver)
                rng = np.random.default_rng(
                    np.random.SeedSequence([base, index])
                )
                yield self.execute(
                    simulator, plan, repetitions, rng=rng,
                    ctx=(base, index, 0),
                )

        return stream()

    def execute_sweep(
        self, simulator, program, resolvers, repetitions: int
    ) -> List[RunParts]:
        """One ``(records, bits)`` per resolver of a parameter sweep.

        ``list(...)`` over :meth:`execute_sweep_iter` — same geometry,
        same seeds, collected eagerly.
        """
        return list(
            self.execute_sweep_iter(simulator, program, resolvers, repetitions)
        )

    def execute_batch_iter(
        self,
        simulator,
        programs: Sequence,
        resolvers: Sequence,
        repetitions: int,
    ) -> Iterator[RunParts]:
        """Lazily yield one ``(records, bits)`` per batch entry, in order.

        Default: specialize and :meth:`execute` each entry with this
        executor's own repetition geometry, entry ``i`` seeded from
        ``SeedSequence([seed, i])`` — identical to the serial
        ``run_batch`` loop, streamed one entry at a time.
        """
        base = _base_seed(simulator.seed)
        pairs = list(zip(programs, resolvers))

        def stream():
            for index, (program, resolver) in enumerate(pairs):
                plan = program.specialize(resolver)
                rng = np.random.default_rng(
                    np.random.SeedSequence([base, index])
                )
                yield self.execute(
                    simulator, plan, repetitions, rng=rng,
                    ctx=(base, index, 0),
                )

        return stream()

    def execute_batch(
        self,
        simulator,
        programs: Sequence,
        resolvers: Sequence,
        repetitions: int,
    ) -> List[RunParts]:
        """One ``(records, bits)`` per (program, resolver) batch entry.

        ``list(...)`` over :meth:`execute_batch_iter` — same geometry,
        same seeds, collected eagerly.
        """
        return list(
            self.execute_batch_iter(simulator, programs, resolvers, repetitions)
        )


class SerialExecutor(Executor):
    """In-process execution, optionally in deterministic seeded chunks.

    ``chunks=1`` (default) runs exactly like a bare simulator — one
    stream off the simulator's own RNG.  ``chunks=k`` reproduces the
    pooled executor's chunk geometry in-process: the output for a given
    (seed, chunk count) is bit-for-bit identical to
    :class:`ProcessPoolExecutor` with the same total chunk count.
    """

    def __init__(self, chunks: int = 1):
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks

    def execute(self, simulator, plan, repetitions, rng=None, ctx=None):
        normalize_repetitions(repetitions)
        if self.chunks == 1:
            return _dispatch(
                simulator,
                plan,
                repetitions,
                rng if rng is not None else simulator._rng,
                ctx,
            )
        sizes = _chunk_sizes(repetitions, self.chunks)
        base = _base_seed(simulator.seed if rng is None else rng)
        seeds = _chunk_seeds_from_base(base, len(sizes))
        if ctx is None:
            ctx = (base, 0, 0)
        parts, offset = [], 0
        for size, seed in zip(sizes, seeds):
            parts.append(
                _dispatch(
                    simulator,
                    plan,
                    size,
                    np.random.default_rng(seed),
                    (ctx[0], ctx[1], ctx[2] + offset),
                )
            )
            offset += size
        return _merge_parts(parts)


# ----------------------------------------------------------------------
# pooled execution with one-time worker initialization and warm reuse
# ----------------------------------------------------------------------

class ProcessPoolExecutor(Executor):
    """Fan repetition chunks or whole sweep points over a process pool.

    Args:
        num_workers: Pool size; defaults to ``os.cpu_count()``.
        chunks_per_worker: >1 gives smaller tasks (better load balance).
        start_method: ``"fork"``, ``"forkserver"``, or ``"spawn"``.  An
            *explicitly requested* method the platform does not provide
            raises at pool construction (no silent substitution; see
            :func:`repro.sampler.service._pool_context`).  The default
            sentinel ``"auto"`` resolves to ``forkserver`` where
            available and the platform default elsewhere (Windows has
            only ``spawn``), so default-configured executors work on
            every platform.  With ``fork`` the shared plan and packed
            state are inherited copy-on-write; with
            ``forkserver``/``spawn`` they are pickled once per worker by
            the initializer.
        reuse_pool: True (default) keeps the pool **warm** through a
            :class:`~repro.sampler.service.PoolManager`: consecutive
            calls with an unchanged execution key submit straight to the
            already-initialized workers.  False rebuilds a pool per call
            (the PR-3 cold behavior) — same output, more startup cost.
        pool_manager: The manager owning the warm pool.  None (default)
            uses the process-wide shared manager; pass a dedicated
            :class:`~repro.sampler.service.PoolManager` for scoped
            lifetimes or isolated init counters.
        scheduler: How batch/sweep points map to pool tasks.  None
            (default) is FIFO — one task per point, submission order,
            bit-for-bit identical to the serial path.  Pass an
            :class:`~repro.sampler.schedule.AdaptiveScheduler` to order
            tasks largest-first by the static cost model and split
            oversized points into repetition sub-chunks (seeds
            ``SeedSequence([seed, point, chunk])``, merged in chunk
            order) so mixed-depth batches keep every worker busy.  A
            :class:`~repro.sampler.schedule.WorkStealingScheduler`
            additionally dispatches those tasks through the pool's
            shared work queue: idle workers *pull* the next chunk at
            runtime, absorbing cost-model error and stragglers, while
            the task list itself (geometry + seeds, and therefore the
            output) is exactly what the scheduler produced.
        task_timeout: Optional liveness bound (seconds) for pooled
            batch/sweep execution: if no task completes for this long,
            the executor assumes a wedged worker, kills the pool
            (running tasks cannot be cancelled), releases all in-flight
            result planes, and raises :class:`TaskTimeoutError`.  It is
            a completion-*gap* bound, not a per-task or total bound —
            set it above the longest expected single task.  ``None``
            (default) waits indefinitely, the pre-timeout behavior.
        result_transport: How worker results travel back to the parent.
            ``"shm"`` writes samples into pre-allocated
            :mod:`~repro.sampler.result_planes` shared-memory segments —
            each task returns only a row count, and the parent's results
            are read-only zero-copy views over the filled planes.
            ``"pickle"`` is the documented fallback: each task returns
            its ``(records, bits)`` tuple through the pool's result
            queue, exactly the pre-plane behavior.  ``"auto"``
            (default) resolves to ``"shm"`` where
            ``multiprocessing.shared_memory`` works, else ``"pickle"``;
            requesting ``"shm"`` explicitly on a platform without it
            raises.  The two transports are bit-for-bit identical —
            only the number of bytes crossing the result queue changes.

    The total chunk count is ``num_workers * chunks_per_worker``; given
    the same simulator seed and total chunk count,
    :class:`SerialExecutor` produces bit-for-bit identical output.  Warm
    and cold pools are bit-for-bit identical too — reuse changes only
    where the startup cost is paid.

    Attributes:
        measure_result_bytes: When True, every parent↔worker result
            payload is serialized once more in the parent and its size
            accumulated into ``last_result_bytes`` — benchmark
            instrumentation for the transport comparison, off by
            default (it re-pickles results).  Reset
            ``last_result_bytes`` to 0 between measured sections.
    """

    supports_point_scope = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        chunks_per_worker: int = 1,
        start_method: Optional[str] = "auto",
        reuse_pool: bool = True,
        pool_manager: Optional[PoolManager] = None,
        scheduler: Optional[Scheduler] = None,
        result_transport: str = "auto",
        task_timeout: Optional[float] = None,
    ):
        self.num_workers = max(1, int(num_workers or (os.cpu_count() or 1)))
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        if start_method == "auto":
            available = multiprocessing.get_all_start_methods()
            start_method = "forkserver" if "forkserver" in available else None
        self.start_method = start_method
        self.reuse_pool = reuse_pool
        self._pool_manager = pool_manager
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        if result_transport not in ("auto", "shm", "pickle"):
            raise ValueError(
                "result_transport must be 'auto', 'shm', or 'pickle', got "
                f"{result_transport!r}"
            )
        if result_transport == "auto":
            result_transport = "shm" if shm_available() else "pickle"
        elif result_transport == "shm" and not shm_available():
            raise ValueError(
                "result_transport='shm' requested but shared memory is not "
                "functional on this platform; use 'pickle' or 'auto'."
            )
        self.result_transport = result_transport
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {task_timeout}"
            )
        self.task_timeout = task_timeout
        self.measure_result_bytes = False
        self.last_result_bytes = 0

    @property
    def pool_manager(self) -> PoolManager:
        """The manager owning this executor's warm pool."""
        if self._pool_manager is None:
            self._pool_manager = shared_pool_manager()
        return self._pool_manager

    def _record_result_bytes(self, payloads) -> None:
        """Accumulate the pickled size of result payloads (bench probe)."""
        if self.measure_result_bytes:
            self.last_result_bytes += sum(
                len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL))
                for p in payloads
            )

    def execute(self, simulator, plan, repetitions, rng=None, ctx=None):
        normalize_repetitions(repetitions)
        num_chunks = self.num_workers * self.chunks_per_worker
        sizes = _chunk_sizes(repetitions, num_chunks)
        base = _base_seed(simulator.seed if rng is None else rng)
        seeds = _chunk_seeds_from_base(base, len(sizes))
        if ctx is None:
            ctx = (base, 0, 0)
        # Each chunk's batched-engine anchor offsets rep_base by the
        # chunk's global starting row, so batched output is a pure
        # function of (base, point, global repetition index) — invariant
        # under worker count and chunk geometry.
        ctxs, offset = [], 0
        for size in sizes:
            ctxs.append((ctx[0], ctx[1], ctx[2] + offset))
            offset += size
        if self.num_workers == 1 or len(sizes) == 1:
            # In-process fallback with identical chunk geometry/seeding.
            parts = [
                _dispatch(
                    simulator, plan, size, np.random.default_rng(seed), c
                )
                for size, seed, c in zip(sizes, seeds, ctxs)
            ]
            return _merge_parts(parts)
        workers = min(self.num_workers, len(sizes))

        def run_pool(fn, argses, planes=()):
            if self.reuse_pool:
                return self.pool_manager.run(
                    execution_key(simulator, plan=plan),
                    workers,
                    self.start_method,
                    lambda: _WorkerPayload(simulator, plan=plan),
                    fn,
                    argses,
                    planes=planes,
                )
            return self._run_cold(
                _WorkerPayload(simulator, plan=plan), workers, fn, argses
            )

        if self.result_transport == "shm":
            # Chunk row bands are prefix sums of the deterministic chunk
            # sizes, so the whole plane is sized and sliced before any
            # task runs; the views ARE the merged result — no
            # concatenation, no copy.
            planes = PointPlanes(plan.key_axes, plan.num_qubits, repetitions)
            try:
                argses, offset = [], 0
                for size, seed, c in zip(sizes, seeds, ctxs):
                    argses.append((size, seed, planes.slot(offset), c))
                    offset += size
                counts = run_pool(_run_pool_chunk_shm, argses, planes=(planes,))
                self._record_result_bytes(counts)
                return planes.views()
            except BaseException:
                planes.release()
                raise
        parts = run_pool(_run_pool_chunk, list(zip(sizes, seeds, ctxs)))
        self._record_result_bytes(parts)
        return _merge_parts(parts)

    def execute_sweep_iter(self, simulator, program, resolvers, repetitions):
        """Fan whole sweep points across the (warm) pool, streaming.

        A sweep is a one-program batch: each point runs as one stream
        seeded from ``SeedSequence([seed, index])`` — bit-for-bit
        identical to a serial ``run_sweep`` — and specializes the shared
        Program inside the worker (memoized, so optimizer loops
        revisiting a point skip the param-slot rebuild).  Consecutive
        sweeps over the same compiled Program and initial-state payload
        reuse the warm workers with zero re-initializations.  An
        :class:`~repro.sampler.schedule.AdaptiveScheduler` additionally
        splits points across workers when the sweep has fewer points
        than the pool has workers.

        Results stream strictly in point order: point ``i`` is yielded
        as soon as its last chunk lands *and* every earlier point has
        been yielded, so ``list(...)`` equals the blocking sweep and a
        lazy consumer sees early points while later ones still run.
        """
        resolvers = list(resolvers)
        return self.execute_batch_iter(
            simulator, [program] * len(resolvers), resolvers, repetitions
        )

    def execute_batch_iter(self, simulator, programs, resolvers, repetitions):
        """Fan a (possibly heterogeneous) batch across the (warm) pool.

        The batch's distinct compiled Programs form one **program
        table** shipped to every worker by the pool initializer — the
        execution key covers the whole table, so ``run_batch`` over N
        different circuits performs **one** pool initialization instead
        of N, and repeated identical batches reuse the warm workers with
        zero re-initializations (the process-wide Program cache hands
        the manager the same table objects).  The configured scheduler
        maps entries to tasks: FIFO (default) is one task per point in
        order, bit-for-bit identical to the serial ``run_batch``;
        adaptive scheduling reorders largest-first and splits oversized
        points into deterministic repetition sub-chunks.

        Collection is **completion-ordered** (out-of-order completion
        is safe — chunks merge by chunk index, never by arrival) and
        the yields are **point-ordered**: each point's ``(records,
        bits)`` is released once its last chunk lands and all earlier
        points are out.  Validation and scheduling happen eagerly, at
        call time; only the execution is lazy.
        """
        resolvers = list(resolvers)
        programs = list(programs)
        if len(programs) != len(resolvers):
            raise ValueError(
                f"Got {len(programs)} programs but {len(resolvers)} resolvers"
            )
        normalize_repetitions(repetitions)
        base = _base_seed(simulator.seed)
        # Dedupe by identity: a batch repeating a circuit (the Program
        # cache returns the same object) ships each distinct Program once.
        table: List = []
        table_index = {}
        entries = []
        backend = type(simulator.initial_state).__name__
        for point, (program, resolver) in enumerate(zip(programs, resolvers)):
            index = table_index.get(id(program))
            if index is None:
                index = len(table)
                table.append(program)
                table_index[id(program)] = index
            entries.append(
                BatchEntry(
                    index,
                    point,
                    resolver,
                    estimate_cost(program, repetitions),
                    backend=backend,
                    num_qubits=program.num_qubits,
                )
            )
        tasks = self.scheduler.schedule(entries, repetitions, self.num_workers)
        if self.num_workers == 1 or len(tasks) <= 1:
            return self._stream_in_process(
                simulator, table, tasks, entries, repetitions, base
            )
        return self._stream_pooled(
            simulator, table, tasks, entries, repetitions, base
        )

    def execute_batch(self, simulator, programs, resolvers, repetitions):
        """Eager :meth:`execute_batch_iter`: one ``RunParts`` per entry."""
        return list(
            self.execute_batch_iter(simulator, programs, resolvers, repetitions)
        )

    def _stream_in_process(
        self, simulator, table, tasks, entries, repetitions, base
    ):
        """Single-worker/single-task fallback, streamed lazily.

        Runs the exact scheduled-task recipe in the parent (same
        specialization, same per-task seed streams — batch output must
        not depend on worker count), in schedule order, releasing each
        point through the same order-preserving collector as the pooled
        path.  No pool, no result queue: shared-memory transport would
        only add copies here, so results stay direct in-process arrays.
        """
        collector = _PointCollector(tasks)

        def finalize(point, chunks):
            return _merge_parts([part for _, part in sorted(chunks)])

        def stream():
            for task in tasks:
                part = _run_task_in_process(
                    simulator, table, _task_args(task, base, repetitions)
                )
                yield from collector.feed(task, part, finalize)

        return stream()

    def _stream_pooled(self, simulator, table, tasks, entries, repetitions, base):
        """Pooled fan-out with completion-ordered collection.

        Shared-memory transport allocates one
        :class:`~repro.sampler.result_planes.PointPlanes` per point up
        front (row bands from the scheduler's deterministic chunk
        geometry) and turns each finished point into zero-copy views;
        pickle transport accumulates chunk tuples and merges in chunk
        order.  Either way the generator yields points in point order.

        When the scheduler asks for a timing probe, every worker is
        spawned and initialized *before* the timing window opens (no-op
        warm tasks), then **all** tasks are submitted together — probe
        (largest task) first — and the probe's completion callback
        calibrates the scheduler's cost model.  The probe never blocks
        the queue: the other workers chew through the remaining tasks
        while it runs.  Neither the probe nor the transport changes task
        geometry or seeds, so output is unaffected.

        A ``work_stealing`` scheduler swaps future-per-task dispatch for
        the pool's shared task queue: workers pull ``(task_id, use_shm,
        args)`` items as they free up and report each result with a
        worker-side duration, which feeds :meth:`Scheduler.calibrate`
        (and, when attached, the persisted calibration table) for
        *every* task instead of one probe.  Same task bodies, same
        seeds, same output — only placement is dynamic.

        Error paths: an abandoned iterator (``close()``) cancels what
        it can and releases every unviewed plane; a task failure also
        shuts the warm pool down (fail-safe against poisoned pools) —
        and the manager's own shutdown backstop unlinks any plane it
        adopted, so segments never outlive their pool.  A completion gap
        exceeding ``task_timeout`` kills the (unresponsive) pool and
        raises :class:`TaskTimeoutError`.
        """
        transport = self.result_transport
        workers = min(self.num_workers, len(tasks))
        stealing = getattr(self.scheduler, "work_stealing", False)
        probe = (
            not stealing
            and getattr(self.scheduler, "probe", False)
            and len(tasks) > 1
        )
        collector = _PointCollector(tasks)
        entry_by_point = {e.point_index: e for e in entries}

        planes: Dict[int, PointPlanes] = {}
        if transport == "shm":
            for e in entries:
                program = table[e.program_index]
                planes[e.point_index] = PointPlanes(
                    program.key_axes, program.num_qubits, repetitions
                )

        def task_args(task):
            args = _task_args(task, base, repetitions)
            if transport == "shm":
                # A split point's chunk c starts after chunks 0..c-1 of
                # the same deterministic near-equal split — the same
                # offset _task_args shipped as the task's rep_base.
                args += (planes[task.point_index].slot(args[-1]),)
            return args

        fn = _run_pool_task_shm if transport == "shm" else _run_pool_task
        argses = [task_args(t) for t in tasks]

        def payload_factory():
            return _WorkerPayload(simulator, programs=tuple(table))

        def finalize(point, chunks):
            if transport == "shm":
                return planes.pop(point).views()
            return _merge_parts([part for _, part in sorted(chunks)])

        def calibrate_task(task, seconds):
            entry = entry_by_point.get(task.point_index)
            self.scheduler.calibrate(
                task.cost,
                seconds,
                backend=getattr(entry, "backend", None),
                num_qubits=getattr(entry, "num_qubits", None),
            )

        def flush_calibration():
            calibration = getattr(self.scheduler, "calibration", None)
            if calibration is not None:
                calibration.flush()

        def teardown_failed_pool(exc, cold_pool):
            """Poison-path cleanup: timeout kills, anything else joins."""
            wedged = isinstance(exc, TaskTimeoutError)
            if self.reuse_pool:
                if wedged:
                    self.pool_manager.terminate()
                else:
                    # Fail-safe parity with PoolManager.run: a task
                    # failure poisons the pool; shut it down (which also
                    # releases its adopted planes) before propagating.
                    self.pool_manager.shutdown()
            elif wedged and cold_pool is not None:
                _kill_pool_processes(cold_pool)

        def stream():
            cold_pool = None
            if self.reuse_pool:
                key = execution_key(simulator, programs=tuple(table))
                # The first submission hands the manager every plane of
                # this batch to backstop; later ones re-adopt no-ops.
                adopt = tuple(planes.values())

                def submit(task_fn, batch):
                    return self.pool_manager.submit(
                        key,
                        workers,
                        self.start_method,
                        payload_factory,
                        task_fn,
                        batch,
                        planes=adopt,
                    )

            else:
                cold_pool = _cf.ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=_pool_context(self.start_method),
                    initializer=_init_pool_worker,
                    initargs=(payload_factory(),),
                )

                def submit(task_fn, batch):
                    return [cold_pool.submit(task_fn, *args) for args in batch]

            pending: Dict[_cf.Future, object] = {}
            try:
                if probe:
                    # Warm every worker before the timing window opens so
                    # the probe measures the task, not pool startup.
                    for future in submit(_warm_worker, [()] * workers):
                        future.result()
                start = time.perf_counter()
                pending = dict(zip(submit(fn, argses), tasks))
                if probe:
                    # One submission covers the whole queue — the probe
                    # (largest task, first in the queue) calibrates from
                    # its completion callback while the other workers
                    # are already busy with the remaining tasks.
                    probe_task = tasks[0]

                    def on_probe_done(future):
                        if future.cancelled() or future.exception():
                            return
                        calibrate_task(
                            probe_task, time.perf_counter() - start
                        )

                    next(iter(pending)).add_done_callback(on_probe_done)
                while pending:
                    done, _ = _cf.wait(
                        list(pending),
                        timeout=self.task_timeout,
                        return_when=_cf.FIRST_COMPLETED,
                    )
                    if not done:
                        raise TaskTimeoutError(
                            f"no pool task completed within task_timeout="
                            f"{self.task_timeout}s ({len(pending)} of "
                            f"{len(tasks)} tasks outstanding); killing the "
                            "worker pool"
                        )
                    for future in done:
                        payload = future.result()
                        self._record_result_bytes([payload])
                        yield from collector.feed(
                            pending.pop(future), payload, finalize
                        )
                flush_calibration()
            except GeneratorExit:
                # Abandoned mid-iteration: drop what never started; the
                # finally block unlinks the planes (in-flight writers
                # keep their already-attached mappings, harmlessly).
                for future in pending:
                    future.cancel()
                raise
            except BaseException as exc:
                for future in pending:
                    future.cancel()
                teardown_failed_pool(exc, cold_pool)
                raise
            finally:
                if cold_pool is not None:
                    cold_pool.shutdown(wait=True)
                for plane in planes.values():
                    plane.release()

        def steal_stream():
            items = [
                (task_id, transport == "shm", args)
                for task_id, args in enumerate(argses)
            ]
            cold_pool = None
            cold_queues = None
            pullers: List[_cf.Future] = []
            try:
                if self.reuse_pool:
                    key = execution_key(simulator, programs=tuple(table))
                    pullers, result_queue = self.pool_manager.steal(
                        key,
                        workers,
                        self.start_method,
                        payload_factory,
                        items,
                        planes=tuple(planes.values()),
                    )
                else:
                    ctx = _pool_context(self.start_method)
                    cold_queues = (ctx.Queue(), ctx.Queue())
                    cold_pool = _cf.ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=ctx,
                        initializer=_init_pool_worker,
                        initargs=(payload_factory(), cold_queues),
                    )
                    task_queue, result_queue = cold_queues
                    for item in items:
                        task_queue.put(item)
                    for _ in range(workers):
                        task_queue.put(None)
                    pullers = [
                        cold_pool.submit(_steal_task_loop)
                        for _ in range(workers)
                    ]
                received = 0
                last_completion = time.monotonic()
                while received < len(tasks):
                    try:
                        task_id, seconds, error, payload = result_queue.get(
                            timeout=_STEAL_POLL_SECONDS
                        )
                    except _queue.Empty:
                        # No result yet: distinguish "still computing"
                        # from "a worker died" (queue would starve
                        # silently) and from "wedged past the timeout".
                        for puller in pullers:
                            if puller.done() and puller.exception():
                                puller.result()  # raises (BrokenPool &c)
                        gap = time.monotonic() - last_completion
                        if (
                            self.task_timeout is not None
                            and gap > self.task_timeout
                        ):
                            raise TaskTimeoutError(
                                "no stolen task completed within "
                                f"task_timeout={self.task_timeout}s "
                                f"({len(tasks) - received} of {len(tasks)} "
                                "tasks outstanding); killing the worker "
                                "pool"
                            )
                        continue
                    last_completion = time.monotonic()
                    if error is not None:
                        raise error
                    task = tasks[task_id]
                    calibrate_task(task, seconds)
                    self._record_result_bytes([payload])
                    yield from collector.feed(task, payload, finalize)
                    received += 1
                for puller in pullers:
                    puller.result()
                flush_calibration()
            except GeneratorExit:
                # Abandoned mid-drain: the shared queues still hold this
                # run's items/sentinels, so the pool cannot be reused —
                # retire it (workers finish what they already pulled).
                if self.reuse_pool:
                    self.pool_manager.shutdown()
                raise
            except BaseException as exc:
                teardown_failed_pool(exc, cold_pool)
                raise
            finally:
                if cold_pool is not None:
                    cold_pool.shutdown(wait=True)
                    for q in cold_queues:
                        q.close()
                        q.cancel_join_thread()
                for plane in planes.values():
                    plane.release()

        return steal_stream() if stealing else stream()

    def _run_cold(self, payload, workers, fn, argses):
        """One fresh pool for this call only (the pre-warm cost model)."""
        with _cf.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(self.start_method),
            initializer=_init_pool_worker,
            initargs=(payload,),
        ) as pool:
            pending = [pool.submit(fn, *args) for args in argses]
            return [f.result() for f in pending]


#: How often the stealing drain loop wakes to check for dead workers and
#: the task_timeout gap while the result queue is empty.  Purely a
#: liveness poll — results are picked up the moment they arrive.
_STEAL_POLL_SECONDS = 0.05


def _kill_pool_processes(pool) -> None:
    """Kill a cold pool's workers (timeout escalation; cannot cancel)."""
    processes = dict(getattr(pool, "_processes", None) or {})
    for proc in processes.values():
        proc.kill()
    for proc in processes.values():
        proc.join()


def _task_args(task, base: int, repetitions: int) -> Tuple:
    """The picklable args tuple of one scheduled task (sans transport).

    The trailing ``rep_base`` is the task's global starting repetition
    within its point — 0 for unsplit points, else the prefix sum of the
    deterministic near-equal chunk split.  It anchors the batched
    trajectory engine's per-repetition seed streams (and doubles as the
    shm row offset), so split points produce the same batched output as
    unsplit ones.
    """
    rep_base = (
        0
        if task.num_chunks == 1
        else sum(_chunk_sizes(repetitions, task.num_chunks)[: task.chunk_index])
    )
    return (
        task.program_index,
        task.point_index,
        task.resolver,
        task.repetitions,
        task.num_chunks,
        task.chunk_index,
        base,
        rep_base,
    )


class _PointCollector:
    """Completion-ordered input, point-ordered output.

    Tasks finish in any order; :meth:`feed` banks each task's payload
    under its point, finalizes a point the moment its last chunk lands,
    and releases finished points **strictly in point order** — so a
    streaming consumer sees exactly the list API's sequence, one point
    early instead of all points late.
    """

    def __init__(self, tasks):
        self._remaining: Dict[int, int] = {}
        for task in tasks:
            self._remaining[task.point_index] = (
                self._remaining.get(task.point_index, 0) + 1
            )
        self._chunks: Dict[int, List[Tuple[int, object]]] = {}
        self._ready: Dict[int, object] = {}
        self._next = 0

    def feed(self, task, payload, finalize) -> List:
        """Bank one task's payload; return the newly releasable points.

        ``finalize(point_index, [(chunk_index, payload), ...])`` turns a
        completed point's banked payloads into its ``(records, bits)``
        (merge for pickled chunks, zero-copy views for planes).
        """
        point = task.point_index
        self._chunks.setdefault(point, []).append((task.chunk_index, payload))
        self._remaining[point] -= 1
        if self._remaining[point] == 0:
            self._ready[point] = finalize(point, self._chunks.pop(point))
        out = []
        while self._next in self._ready:
            out.append(self._ready.pop(self._next))
            self._next += 1
        return out


def _run_task_in_process(simulator, table, args) -> RunParts:
    """The scheduled-task body run in the parent process (fallbacks).

    Mirrors :func:`repro.sampler.service._run_pool_task` exactly — same
    program selection, memoized specialization, and per-task seed stream
    — so single-worker and single-task fallbacks are bit-for-bit
    identical to the pooled fan-out.
    """
    (
        program_index,
        point_index,
        resolver,
        size,
        num_chunks,
        chunk_index,
        base,
        *rest,
    ) = args
    rep_base = rest[0] if rest else 0
    plan = table[program_index].specialize(resolver)
    rng = _task_rng(base, point_index, num_chunks, chunk_index)
    return _dispatch(
        simulator, plan, size, rng, (base, point_index, rep_base)
    )


# ----------------------------------------------------------------------
# legacy factory-based fan-out (sampler/parallel.py compatibility)
# ----------------------------------------------------------------------

def run_factory_chunks(
    factory: Callable,
    circuit,
    sizes: List[int],
    seeds: List[int],
    num_workers: int,
    start_method: Optional[str] = None,
) -> List[RunParts]:
    """The pre-executor cost model: one (factory, circuit) pickle per task.

    Each task rebuilds its simulator via ``factory(seed)`` and recompiles
    the circuit in the worker.  Kept as the engine behind the legacy
    :func:`repro.sampler.parallel.sample_trajectories_parallel` API (whose
    factories may close over unpicklable pieces and rely on ``fork``);
    new code should prefer :class:`ProcessPoolExecutor`, which ships the
    compiled plan and packed state once per worker instead of per task.
    """
    if num_workers == 1 or len(sizes) == 1:
        return [
            _run_factory_chunk(factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
    with _cf.ProcessPoolExecutor(
        max_workers=num_workers, mp_context=_pool_context(start_method)
    ) as pool:
        pending = [
            pool.submit(_run_factory_chunk, factory, circuit, size, seed)
            for size, seed in zip(sizes, seeds)
        ]
        return [f.result() for f in pending]


def _run_factory_chunk(factory, circuit, repetitions: int, seed: int) -> RunParts:
    """Worker body: build a simulator and run one chunk of repetitions."""
    simulator = factory(seed)
    return simulator._execute(circuit, repetitions, None)


__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "PoolManager",
    "TaskTimeoutError",
    "run_factory_chunks",
    "shared_pool_manager",
]
