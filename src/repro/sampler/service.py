"""Warm-pool execution service: persistent workers across sampling calls.

PR 3's :class:`~repro.sampler.executors.ProcessPoolExecutor` already shipped
the compiled plan and packed initial state to each worker exactly once —
but once per *pool*, and it built a fresh pool (and re-initialized every
worker) on every ``execute`` call.  A parameter sweep therefore paid the
full worker-startup cost at every sweep point, which is exactly the
overhead the paper's gate-by-gate scaling argument says should be paid
once.

This module is the missing lifecycle layer:

* :class:`PoolManager` owns one process pool and keeps it — workers,
  shipped plan/Program, restored initial state and all — alive across
  ``execute`` / ``run_sweep`` / ``run_batch`` calls.  Workers are
  re-initialized **only when the execution key changes**: the key combines
  the identity of the compiled unit (a specialized
  :class:`~repro.sampler.plan.ExecutionPlan` or a parameterized
  :class:`~repro.sampler.program.Program`), the initial-state payload (the
  registry ``snapshot`` payload for backends that declare one, object
  identity otherwise), the simulator configuration, and the pool geometry.
  Because :meth:`Program.specialize` memoizes per resolved parameter tuple
  and the Program cache is process-wide, repeated runs of the same circuit
  reach the manager with the *same* unit object and reuse the warm pool
  with zero re-initializations.
* Module-level worker plumbing (:func:`_init_pool_worker`,
  :func:`_run_pool_chunk`, :func:`_run_pool_task`) gives pooled tasks two
  shapes: repetition *chunks* — two integers ``(size, seed)`` against the
  worker's shared plan — and scheduled *batch tasks* —
  ``(program_index, point_index, resolver, size, num_chunks, chunk_index,
  base, rep_base)`` against the worker's shared **program table** (the compiled
  Programs of a whole heterogeneous batch, shipped once by the
  initializer).  Whole points rebuild their generator from
  ``SeedSequence([base, point])`` so pooled point/batch output is
  bit-for-bit identical to a serial ``run_sweep``/``run_batch``; chunks
  of a point split by the adaptive scheduler use ``SeedSequence([base,
  point, chunk])`` and merge back in chunk order
  (:mod:`repro.sampler.schedule`).
* :func:`shared_pool_manager` is the default process-wide manager used by
  ``ProcessPoolExecutor(reuse_pool=True)``; it is shut down automatically
  at interpreter exit (``atexit``), and :class:`PoolManager` doubles as a
  context manager for scoped lifetimes.  ``shutdown()`` joins every
  worker, so no child processes outlive the manager.

Determinism contracts (pinned by ``tests/test_pool_service.py``):

* chunk ``i`` always receives ``SeedSequence([seed, i])`` — warm, cold,
  and serial chunked runs of equal geometry are bit-for-bit identical;
* sweep point ``i`` always receives ``SeedSequence([seed, i])`` and runs
  as one stream — pooled point scope reproduces a serial ``run_sweep``
  exactly, on every backend;
* batched trajectory mode (``trajectory_mode="batched"``) anchors
  trajectory ``r`` of point ``p`` to ``SeedSequence([base, p, rep_base +
  r])``, where ``rep_base`` is the task's global repetition offset (the
  prefix sum of earlier chunks) — pooled batched output is a pure
  function of the global repetition index, invariant to worker count and
  chunk geometry (``tests/test_trajectory_batch.py``);
* the initial state is treated as immutable (the sampler only ever copies
  it); mutating it in place between calls is outside the contract.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from concurrent import futures as _cf
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..states.registry import capabilities_for
from .result_planes import SlotDescriptor, write_chunk_to_slot

RunParts = Tuple[Dict[str, np.ndarray], np.ndarray]


# ----------------------------------------------------------------------
# chunk geometry and deterministic seeding (shared by every strategy)
# ----------------------------------------------------------------------

def _chunk_sizes(repetitions: int, num_chunks: int) -> List[int]:
    """Split ``repetitions`` into at most ``num_chunks`` near-equal parts.

    ``repetitions == 0`` yields no chunks (``[]``) rather than dividing
    by the zero-clamped chunk count; negative repetitions and a
    non-positive ``num_chunks`` are caller errors and raise ``ValueError``
    naming the offending argument (the service tier feeds this geometry
    straight off user input).
    """
    if repetitions < 0:
        raise ValueError(f"repetitions must be >= 0, got {repetitions}")
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    if repetitions == 0:
        return []
    num_chunks = min(num_chunks, repetitions)
    base, extra = divmod(repetitions, num_chunks)
    return [base + (1 if i < extra else 0) for i in range(num_chunks)]


def _chunk_seeds(
    seed: Union[int, np.random.Generator, None], num_chunks: int
) -> List[int]:
    """Per-chunk seeds derived deterministically from the user seed.

    Chunk ``i`` receives the first word of ``SeedSequence([base, i])`` —
    a stable function of the user seed and the chunk *index* alone, so
    identically seeded runs hand every chunk the same stream, streams of
    different chunks are statistically independent, and chunk ``i``'s
    seed does not shift when the total chunk count changes.  ``None``
    draws a fresh entropy base; passing a Generator consumes one draw
    from it for the base.
    """
    return _chunk_seeds_from_base(_base_seed(seed), num_chunks)


def _chunk_seeds_from_base(base: int, num_chunks: int) -> List[int]:
    """:func:`_chunk_seeds` with the integer base already collapsed.

    Split out so callers that also need ``base`` itself (the batched
    engine's ctx anchor) derive seeds and ctx from one draw instead of
    consuming the source generator twice.
    """
    return [
        int(np.random.SeedSequence([base, i]).generate_state(1, np.uint64)[0])
        >> 2
        for i in range(num_chunks)
    ]


def _base_seed(seed: Union[int, np.random.Generator, None]) -> int:
    """Collapse a user seed argument to one non-negative integer base.

    A negative integer seed would surface much later as an opaque NumPy
    error from ``SeedSequence([base, i])`` inside a worker, so it is
    rejected here (the backstop behind the ``Simulator`` constructor's
    own boundary check) with a ``ValueError`` naming ``seed``.
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(2**62))
    if seed is None:
        return int(np.random.SeedSequence().entropy) % 2**62
    base = int(seed)
    if base < 0:
        raise ValueError(f"seed must be non-negative, got seed={base}")
    return base


def _merge_parts(parts: List[RunParts]) -> RunParts:
    """Concatenate per-chunk (records, bits) outputs in chunk order."""
    if len(parts) == 1:
        return parts[0]
    all_bits = np.concatenate([bits for _, bits in parts], axis=0)
    keys = parts[0][0].keys()
    records = {
        key: np.concatenate([rec[key] for rec, _ in parts], axis=0)
        for key in keys
    }
    return records, all_bits


def _dispatch(simulator, plan, repetitions: int, rng, ctx=None) -> RunParts:
    """Run one chunk through the plan's required mode.

    ``ctx = (base_seed, point_index, rep_base)`` anchors the batched
    trajectory engine's per-repetition seed streams (ignored in serial
    mode); threading it here keeps pooled chunks of one point on the
    same global repetition indices regardless of chunk geometry.
    """
    return simulator._run_plan(plan, repetitions, rng, ctx)


def _main_is_importable() -> bool:
    """Whether ``__main__`` can be re-imported by a forkserver/spawn child.

    Both start methods replay the parent's ``__main__`` from its file
    path; interactive sessions and stdin scripts have none (or a
    placeholder like ``<stdin>``), which kills the worker at startup.
    """
    import sys

    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    return path is not None and os.path.exists(path)


def _pool_context(start_method: Optional[str]):
    """A multiprocessing context for the requested start method.

    A requested method that the platform does not provide raises a
    ``ValueError`` naming it and the available alternatives — silently
    substituting a different method would mask platform differences (a
    ``forkserver`` config "passing" on a fork-only box tests nothing).
    The one deliberate substitution that remains: ``forkserver``/``spawn``
    fall back to ``fork`` (when available) if ``__main__`` cannot be
    re-imported (REPL / stdin parents), because those methods *cannot*
    work there at all.  ``None`` selects ``fork`` when available, else the
    platform default.
    """
    available = multiprocessing.get_all_start_methods()
    if start_method is not None and start_method not in available:
        raise ValueError(
            f"Start method {start_method!r} is not available on this "
            f"platform (available: {', '.join(available)}); pass one of "
            "those or start_method=None for the platform default."
        )
    if (
        start_method in ("forkserver", "spawn")
        and "fork" in available
        and not _main_is_importable()
    ):
        return multiprocessing.get_context("fork")
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if "fork" in available:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# worker-side plumbing: payload shipped once, O(1) task bodies
# ----------------------------------------------------------------------

class _WorkerPayload:
    """Everything a pool worker needs, shipped once per worker.

    The initial state travels as its registry ``snapshot`` payload when
    the backend declares one *for exactly this type* (restored via the
    matching ``restore`` hook; a subclass inheriting its parent's
    descriptor falls back to object pickling so the worker state keeps
    the subclass type), else as the state object itself; either way it is
    pickled once per *worker* by the pool initializer — never per task.
    ``plan`` fuels repetition-chunk tasks; ``programs`` is the worker's
    *program table* — the compiled Programs of a whole (possibly
    heterogeneous) batch, shipped once so tasks can select a program by
    index in-worker.  A single-program sweep is just a one-entry table.
    Tasks specialize per resolver inside the worker (memoized, so
    revisited grid points skip even the param-slot rebuild).
    """

    __slots__ = (
        "plan",
        "programs",
        "state_payload",
        "restore",
        "apply_op",
        "compute_probability",
        "user_candidates",
        "skip_diagonal_updates",
        "fuse_moments",
        "trajectory_mode",
        "trajectory_tile",
    )

    def __init__(self, simulator, plan=None, *, program=None, programs=None):
        caps = capabilities_for(type(simulator.initial_state))
        if (
            caps.snapshot is not None
            and caps.state_type is type(simulator.initial_state)
        ):
            self.state_payload = _snapshot_payload(
                simulator.initial_state, caps
            )
            self.restore = caps.restore
        else:
            self.state_payload = simulator.initial_state
            self.restore = None
        if program is not None and programs is not None:
            raise ValueError("Pass either program or programs, not both")
        self.plan = plan
        self.programs = (
            tuple(programs)
            if programs is not None
            else ((program,) if program is not None else None)
        )
        self.apply_op = simulator.apply_op
        self.compute_probability = simulator.compute_probability
        self.user_candidates = simulator.user_candidate_function
        self.skip_diagonal_updates = simulator.skip_diagonal_updates
        self.fuse_moments = simulator.fuse_moments
        self.trajectory_mode = simulator.trajectory_mode
        self.trajectory_tile = simulator.trajectory_tile

    def build_simulator(self):
        from .simulator import Simulator

        state = (
            self.restore(self.state_payload)
            if self.restore is not None
            else self.state_payload
        )
        return Simulator(
            state,
            self.apply_op,
            self.compute_probability,
            compute_candidate_probabilities=self.user_candidates,
            skip_diagonal_updates=self.skip_diagonal_updates,
            fuse_moments=self.fuse_moments,
            trajectory_mode=self.trajectory_mode,
            trajectory_tile=self.trajectory_tile,
        )


_WORKER: Optional[Tuple[object, object, object]] = None

# The worker's end of the pool's shared work queues — ``(task_queue,
# result_queue)`` — shipped by the initializer alongside the payload.
# Queues ride the *process-creation* channel (Process args), which is the
# one place multiprocessing.Queue is picklable, so this works identically
# under fork, forkserver, and spawn.
_WORKER_QUEUES: Optional[Tuple[object, object]] = None


def _init_pool_worker(payload: _WorkerPayload, queues=None) -> None:
    """Pool initializer: build the worker-local simulator + shared unit."""
    global _WORKER, _WORKER_QUEUES
    _WORKER = (payload.build_simulator(), payload.plan, payload.programs)
    _WORKER_QUEUES = queues


def _run_pool_chunk(size: int, seed: int, ctx=None) -> RunParts:
    """Worker task body: two integers in, one chunk of samples out.

    ``ctx`` is the batched engine's ``(base, point, rep_base)`` anchor —
    ``None`` outside batched trajectory mode, so the classic contract
    (two integers in) is unchanged where it applies.
    """
    simulator, plan, _ = _WORKER
    return _dispatch(simulator, plan, size, np.random.default_rng(seed), ctx)


def _run_pool_chunk_shm(
    size: int, seed: int, slot: SlotDescriptor, ctx=None
) -> int:
    """Shm-transport sibling of :func:`_run_pool_chunk`.

    Identical simulation (same plan, same seed, same stream) — the only
    difference is where the samples go: into the parent's shared-memory
    result plane at this chunk's row band, with just the row count
    returned through the queue.
    """
    simulator, plan, _ = _WORKER
    records, bits = _dispatch(
        simulator, plan, size, np.random.default_rng(seed), ctx
    )
    return write_chunk_to_slot(plan, slot, records, bits)


def _warm_worker() -> bool:
    """No-op task forcing worker spawn + initialization (timing probes)."""
    return _WORKER is not None


def _task_rng(
    base: int, point_index: int, num_chunks: int, chunk_index: int
) -> np.random.Generator:
    """The deterministic generator of one scheduled task.

    Whole points (``num_chunks == 1``) keep the serial ``run_sweep`` /
    ``run_batch`` recipe — one stream off ``SeedSequence([base, point])``
    — so unsplit scheduling is bit-for-bit identical to the serial path.
    Chunks of a split point draw from ``SeedSequence([base, point,
    chunk])``: a stable function of the indices alone, so the output
    never depends on worker count, submission order, or timing.
    """
    if num_chunks == 1:
        seq = np.random.SeedSequence([base, point_index])
    else:
        seq = np.random.SeedSequence([base, point_index, chunk_index])
    return np.random.default_rng(seq)


def _run_pool_task(
    program_index: int,
    point_index: int,
    resolver,
    size: int,
    num_chunks: int,
    chunk_index: int,
    base: int,
    rep_base: int = 0,
) -> RunParts:
    """Worker task body for one scheduled task of a (possibly
    heterogeneous) batch: select the program from the worker's table,
    specialize for the task's resolver (memoized — revisited grid points
    skip the rebuild), and run this task's repetitions off the
    deterministic :func:`_task_rng` stream.

    ``rep_base`` is the task's global repetition offset within its point
    (0 for unsplit points) — the batched trajectory engine seeds
    repetition ``r`` from ``SeedSequence([base, point, rep_base + r])``,
    which is what makes batched output independent of how the scheduler
    split the point.
    """
    simulator, _, programs = _WORKER
    plan = programs[program_index].specialize(resolver)
    rng = _task_rng(base, point_index, num_chunks, chunk_index)
    return _dispatch(
        simulator, plan, size, rng, (base, point_index, rep_base)
    )


def _run_pool_task_shm(
    program_index: int,
    point_index: int,
    resolver,
    size: int,
    num_chunks: int,
    chunk_index: int,
    base: int,
    rep_base: int,
    slot: SlotDescriptor,
) -> int:
    """Shm-transport sibling of :func:`_run_pool_task`.

    Same program selection, specialization, and deterministic stream —
    the samples land in the point's shared result plane instead of the
    result queue, and only the row count travels back.
    """
    simulator, _, programs = _WORKER
    plan = programs[program_index].specialize(resolver)
    rng = _task_rng(base, point_index, num_chunks, chunk_index)
    records, bits = _dispatch(
        simulator, plan, size, rng, (base, point_index, rep_base)
    )
    return write_chunk_to_slot(plan, slot, records, bits)


def _picklable_error(exc: BaseException) -> BaseException:
    """An exception safe to send through a multiprocessing queue.

    An unpicklable exception would kill the queue's feeder thread
    silently and the parent would never hear about the failure, so probe
    the pickle round-trip here and degrade to a RuntimeError carrying the
    repr."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            f"work-stealing task failed with unpicklable "
            f"{type(exc).__name__}: {exc!r}"
        )


def _steal_task_loop() -> int:
    """Worker body of the work-stealing mode: pull tasks until poisoned.

    Each pool worker runs exactly one of these.  It pulls ``(task_id,
    use_shm, args)`` items off the shared task queue — *placement* is
    whichever worker gets there first — runs the task body
    (:func:`_run_pool_task` / :func:`_run_pool_task_shm`, so geometry,
    seeds, and output are identical to future-per-task dispatch), and
    reports ``(task_id, seconds, error, payload)`` on the result queue
    with a worker-side ``perf_counter`` duration for calibration.  A
    ``None`` sentinel (one per worker, enqueued after all tasks) ends the
    loop; the return value is how many tasks this worker ran.  Task
    errors are reported per-task, never raised — the parent decides
    whether to abandon the run.
    """
    task_queue, result_queue = _WORKER_QUEUES
    ran = 0
    while True:
        item = task_queue.get()
        if item is None:
            return ran
        task_id, use_shm, args = item
        start = time.perf_counter()
        error = None
        payload = None
        try:
            if use_shm:
                payload = _run_pool_task_shm(*args)
            else:
                payload = _run_pool_task(*args)
        except BaseException as exc:
            error = _picklable_error(exc)
        seconds = time.perf_counter() - start
        result_queue.put((task_id, seconds, error, payload))
        ran += 1


# ----------------------------------------------------------------------
# execution keys: when may a warm pool be reused?
# ----------------------------------------------------------------------

# Snapshot payloads memoized per state object: building the execution key
# on every pooled call must not re-serialize the state each time.  Keyed
# weakly — a collected state drops its entry — and sound because the
# initial state is immutable by contract while in sampler hands (the
# sampler only ever copies it).
_SNAPSHOT_CACHE: "weakref.WeakKeyDictionary[object, Tuple]" = (
    weakref.WeakKeyDictionary()
)


def _snapshot_payload(state, caps) -> Tuple:
    """``caps.snapshot(state)``, computed once per state object."""
    try:
        payload = _SNAPSHOT_CACHE.get(state)
    except TypeError:  # unhashable/unweakrefable state: just recompute
        return caps.snapshot(state)
    if payload is None:
        payload = caps.snapshot(state)
        try:
            _SNAPSHOT_CACHE[state] = payload
        except TypeError:  # pragma: no cover - unweakrefable state
            pass
    return payload


def _state_token(state) -> Tuple:
    """The initial-state component of an execution key.

    Backends with registry ``snapshot`` hooks key on the payload *content*
    (two equal-content states share a warm pool); everything else keys on
    object identity.  Identity is safe from id-reuse aliasing because the
    manager holds the keyed payload — and therefore the state — alive for
    as long as the key is current.
    """
    caps = capabilities_for(type(state))
    if caps.snapshot is not None and caps.state_type is type(state):
        return ("payload", type(state), _snapshot_payload(state, caps))
    return ("object", id(state))


def execution_key(simulator, *, plan=None, program=None, programs=None) -> Tuple:
    """The warm-pool reuse key for one simulator + compiled unit(s).

    Combines the compiled unit's identity (the memoized ``specialize`` /
    Program caches make repeated identical work arrive as the *same*
    object), the initial-state payload token, and every simulator knob
    the worker payload ships.  ``programs`` keys a whole *program table*
    — the execution key of a heterogeneous batch covers every compiled
    Program in it, so ``run_batch`` over N circuits is one key (one pool
    init) and re-initializes only when the table's content changes.  Any
    change re-initializes workers; equal keys reuse them untouched.
    """
    units = [u for u in (plan, program, programs) if u is not None]
    if len(units) != 1:
        raise ValueError("Provide exactly one of plan, program, or programs")
    if programs is not None:
        kind = "batch"
        identity: Union[int, Tuple[int, ...]] = tuple(id(p) for p in programs)
    else:
        kind = "chunks" if plan is not None else "points"
        identity = id(units[0])
    return (
        kind,
        identity,
        _state_token(simulator.initial_state),
        simulator.apply_op,
        simulator.compute_probability,
        simulator.user_candidate_function,
        simulator.skip_diagonal_updates,
        simulator.fuse_moments,
        simulator.trajectory_mode,
        simulator.trajectory_tile,
    )


# ----------------------------------------------------------------------
# the warm pool itself
# ----------------------------------------------------------------------

class PoolManager:
    """Owns one process pool and reuses its initialized workers.

    The manager lazily builds a pool for the first execution key it sees
    and keeps it warm: subsequent calls with an equal key submit straight
    to the live workers (``stats["reuses"]``), while a different key —
    new compiled unit, new initial-state payload, changed simulator
    config or pool geometry — shuts the old pool down cleanly and builds
    a fresh one (``stats["key_changes"]`` + ``stats["inits"]``).  The
    worker-initialization counter the lifecycle tests pin is
    ``stats["inits"]``: two consecutive ``run_sweep`` calls over one
    compiled Program must leave it at 1.

    Lifecycle: use as a context manager for scoped pools, call
    :meth:`shutdown` explicitly, or rely on the shared manager's
    ``atexit`` hook.  ``shutdown`` joins every worker (no leaked
    processes) and is idempotent; the manager is reusable afterwards (the
    next call simply builds a new pool).  Any task failure — including a
    broken pool — shuts the pool down before the exception propagates, so
    a poisoned pool is never reused.
    """

    def __init__(self):
        self._pool: Optional[_cf.ProcessPoolExecutor] = None
        self._key: Optional[Tuple] = None
        self._payload: Optional[_WorkerPayload] = None
        self._queues: Optional[Tuple] = None
        self._last_pids: List[int] = []
        # One batch at a time: without the lock, a second thread's key
        # change could shut the pool down between another thread's
        # _ensure and submit.  Concurrent different-key callers therefore
        # serialize (and alternate keys still thrash pool rebuilds —
        # give such threads their own managers).
        self._lock = threading.RLock()
        # Shared-memory result planes currently in flight on this pool.
        # The manager is the lifecycle backstop the executor's own
        # try/finally cannot cover: a poisoned pool shuts down through
        # here, and any plane not yet retired (viewed or released) is
        # unlinked with it — no segment survives a pool reset.  WeakSet:
        # retired planes just fall out.
        self._planes: "weakref.WeakSet" = weakref.WeakSet()
        self.stats = {"inits": 0, "reuses": 0, "key_changes": 0}

    # -- lifecycle ---------------------------------------------------------
    @property
    def init_count(self) -> int:
        """How many times a pool (and its workers) was initialized."""
        return self.stats["inits"]

    def worker_pids(self) -> List[int]:
        """PIDs of the current pool's workers (last pool's if shut down)."""
        if self._pool is not None and getattr(self._pool, "_processes", None):
            return sorted(self._pool._processes)
        return list(self._last_pids)

    def shutdown(self) -> None:
        """Join all workers and drop the pool; idempotent, reusable after.

        Also the segment backstop: any adopted, still-live shared-memory
        result plane is released once the workers are gone (after the
        join, so no in-flight task writes to an already-unlinked name).
        """
        with self._lock:
            pool, self._pool = self._pool, None
            queues, self._queues = self._queues, None
            self._key = None
            self._payload = None
            if pool is not None:
                if getattr(pool, "_processes", None):
                    self._last_pids = sorted(pool._processes)
                pool.shutdown(wait=True)
            if queues is not None:
                # After the join: no worker is left to read or write them.
                # cancel_join_thread so undelivered items (an abandoned
                # stealing run) cannot block interpreter exit on the
                # feeder thread.
                for q in queues:
                    q.close()
                    q.cancel_join_thread()
            planes, self._planes = list(self._planes), weakref.WeakSet()
            for plane in planes:
                plane.release()

    def terminate(self) -> None:
        """Kill the pool's workers, then clean up as :meth:`shutdown`.

        The escalation path for a *wedged* pool: ``shutdown`` joins
        workers, which blocks forever behind a hung task, so the
        task-timeout path kills the worker processes first and then runs
        the normal teardown (queue close, plane release) against the
        already-dead pool.  Pending futures surface
        ``BrokenProcessPool``.
        """
        with self._lock:
            pool = self._pool
            if pool is not None:
                processes = dict(getattr(pool, "_processes", None) or {})
                if processes:
                    self._last_pids = sorted(processes)
                for proc in processes.values():
                    proc.kill()
                for proc in processes.values():
                    proc.join()
            self.shutdown()

    def __enter__(self) -> "PoolManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- execution ---------------------------------------------------------
    def run(
        self,
        key: Tuple,
        num_workers: int,
        start_method: Optional[str],
        payload_factory: Callable[[], _WorkerPayload],
        fn: Callable,
        argses: Sequence[Tuple],
        planes: Sequence = (),
    ) -> List:
        """Run ``fn(*args)`` for every args tuple on the (warm) pool.

        Results come back in submission order.  On any failure the pool
        is shut down before the exception propagates (fail-safe against
        broken/poisoned pools); the next call rebuilds it.

        ``planes`` are this call's shared-memory result planes: the
        manager **adopts** them — becomes their lifecycle backstop — so
        that if this pool is ever shut down (poisoned pool, key change,
        explicit reset) before a plane is retired, :meth:`shutdown`
        releases it and no segment outlives the pool filling it.
        Adoption happens after :meth:`_ensure` (still under the lock):
        a key change tears the *previous* pool and its leftovers down
        without touching this call's fresh planes.
        """
        with self._lock:
            pool = self._ensure(key, num_workers, start_method, payload_factory)
            self._planes.update(planes)
            try:
                pending = [pool.submit(fn, *args) for args in argses]
                results = [f.result() for f in pending]
            except BaseException:
                self.shutdown()
                raise
            if getattr(pool, "_processes", None):
                self._last_pids = sorted(pool._processes)
            return results

    def submit(
        self,
        key: Tuple,
        num_workers: int,
        start_method: Optional[str],
        payload_factory: Callable[[], _WorkerPayload],
        fn: Callable,
        argses: Sequence[Tuple],
        planes: Sequence = (),
    ) -> List[_cf.Future]:
        """Submit ``fn(*args)`` tasks to the (warm) pool, returning futures.

        The completion-ordered sibling of :meth:`run`: the caller
        collects with ``concurrent.futures.as_completed`` (streaming
        results as they land) instead of blocking for submission order.
        The lock covers only ensure + submit — collection happens outside
        it, which is safe because a later key change's ``shutdown``
        waits for every queued future before tearing the pool down.  A
        submission failure still shuts the pool down fail-safe; result
        failures are the caller's to handle (shut the manager down
        before propagating, as :meth:`run` does).  ``planes`` are
        adopted exactly as in :meth:`run`.
        """
        with self._lock:
            pool = self._ensure(key, num_workers, start_method, payload_factory)
            self._planes.update(planes)
            try:
                pending = [pool.submit(fn, *args) for args in argses]
            except BaseException:
                self.shutdown()
                raise
            if getattr(pool, "_processes", None):
                self._last_pids = sorted(pool._processes)
            return pending

    def steal(
        self,
        key: Tuple,
        num_workers: int,
        start_method: Optional[str],
        payload_factory: Callable[[], _WorkerPayload],
        items: Sequence[Tuple],
        planes: Sequence = (),
    ) -> Tuple[List[_cf.Future], object]:
        """Dispatch ``(task_id, use_shm, args)`` items work-stealing style.

        All items are enqueued on the pool's shared task queue, followed
        by one ``None`` sentinel per worker, and every worker is handed
        one :func:`_steal_task_loop` future — workers then *pull* tasks
        as they free up, so placement adapts to measured runtime while
        the task list (geometry + seeds) stays exactly what the caller
        scheduled.  Returns ``(puller_futures, result_queue)``: the
        caller drains ``len(items)`` results — ``(task_id, seconds,
        error, payload)`` — off the queue in completion order.

        Queue-hygiene contract: a clean run consumes every item and
        every sentinel, leaving both queues empty for warm reuse.  A
        caller abandoning a run mid-drain MUST :meth:`shutdown` (or
        :meth:`terminate`) this manager — stale items on a reused queue
        would corrupt the next run.  The executor's stealing path does
        exactly that on every failure.
        """
        with self._lock:
            pool = self._ensure(key, num_workers, start_method, payload_factory)
            self._planes.update(planes)
            try:
                task_queue, result_queue = self._queues
                for item in items:
                    task_queue.put(item)
                for _ in range(num_workers):
                    task_queue.put(None)
                pullers = [
                    pool.submit(_steal_task_loop) for _ in range(num_workers)
                ]
            except BaseException:
                self.shutdown()
                raise
            if getattr(pool, "_processes", None):
                self._last_pids = sorted(pool._processes)
            return pullers, result_queue

    def _ensure(
        self, key, num_workers, start_method, payload_factory
    ) -> _cf.ProcessPoolExecutor:
        full_key = (key, num_workers, start_method)
        if self._pool is not None:
            if full_key == self._key:
                self.stats["reuses"] += 1
                return self._pool
            self.stats["key_changes"] += 1
            self.shutdown()
        payload = payload_factory()
        ctx = _pool_context(start_method)
        # Work queues are born with the pool (same mp context, shipped
        # through the initializer — the one channel Queues may travel)
        # so a warm pool can serve future-per-task and stealing dispatch
        # interchangeably without a rebuild.  Unused queues cost two fd
        # pairs; feeder threads start only on first put.
        self._queues = (ctx.Queue(), ctx.Queue())
        self._pool = _cf.ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=ctx,
            initializer=_init_pool_worker,
            initargs=(payload, self._queues),
        )
        # The payload ref keeps every id()-keyed object (plan, every
        # Program of the table, initial state) alive while the key is
        # current, so ids in the key cannot alias recycled addresses.
        self._payload = payload
        self._key = full_key
        self.stats["inits"] += 1
        return self._pool


_SHARED: Optional[PoolManager] = None


def shared_pool_manager() -> PoolManager:
    """The process-wide default :class:`PoolManager`.

    Created on first use and registered with ``atexit`` so its workers
    are joined at interpreter exit even when no one calls ``shutdown``.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = PoolManager()
        atexit.register(_SHARED.shutdown)
    return _SHARED


def shutdown_shared_pool() -> None:
    """Shut the shared manager's pool down now (tests, session teardown)."""
    if _SHARED is not None:
        _SHARED.shutdown()


__all__ = [
    "PoolManager",
    "execution_key",
    "shared_pool_manager",
    "shutdown_shared_pool",
]
