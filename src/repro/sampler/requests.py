"""Shared request normalization for the public ``Simulator.run*`` surface.

Six entry points feed user input into the execution stack — ``run``,
``run_sweep``, ``run_sweep_iter``, ``run_batch``, ``run_batch_iter``, and
``sample_bitstrings_sweep`` — and historically each re-implemented the
same ``scope``/``seed``/``repetitions``/``trajectory_mode`` validation
and defaults inline.  This module is the single source of truth for
those checks: every error message and default below is part of the API
contract pinned by ``tests/test_error_contracts.py``, so the service
tier (and any other caller feeding untrusted input into a Simulator)
sees one typed, named error per bad argument regardless of which entry
point it hit.

Nothing here changes behavior relative to the historical inline checks —
the messages, exception types, and accepted values are identical; only
the duplication is gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

SCOPES = ("auto", "points", "repetitions")
TRAJECTORY_MODES = ("serial", "batched", "auto")


def normalize_seed(
    seed: Union[int, np.random.Generator, None],
) -> Union[int, np.random.Generator, None]:
    """Validate a user seed at the API boundary; returns it unchanged.

    Every execution path (serial, chunked, sweep, pooled) ultimately
    feeds the seed into ``numpy.random.SeedSequence``, which requires
    non-negative integers — fail here with a clear message instead of a
    deep NumPy error mid-run (or inside a pool worker).
    """
    if isinstance(seed, (int, np.integer)) and seed < 0:
        raise ValueError(
            f"seed must be a non-negative integer, a numpy Generator, "
            f"or None; got seed={int(seed)}"
        )
    return seed


def normalize_repetitions(repetitions: int) -> int:
    """Reject non-positive repetition counts with the documented error."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    return repetitions


def normalize_scope(scope: str) -> str:
    """Reject unknown ``scope`` values with the documented error."""
    if scope not in SCOPES:
        raise ValueError(
            f"scope must be 'auto', 'points', or 'repetitions', got {scope!r}"
        )
    return scope


def normalize_trajectory_mode(trajectory_mode: str) -> str:
    """Reject unknown ``trajectory_mode`` values with the documented error."""
    if trajectory_mode not in TRAJECTORY_MODES:
        raise ValueError(
            "trajectory_mode must be 'serial', 'batched', or 'auto', "
            f"got {trajectory_mode!r}"
        )
    return trajectory_mode


def normalize_trajectory_tile(trajectory_tile: Optional[int]) -> Optional[int]:
    """Validate the batched-engine tile cap; returns ``None`` or an int."""
    if trajectory_tile is None:
        return None
    if int(trajectory_tile) < 1:
        raise ValueError(
            f"trajectory_tile must be >= 1, got {trajectory_tile}"
        )
    return int(trajectory_tile)


@dataclass(frozen=True)
class RunRequest:
    """A validated, normalized multi-point run request.

    Attributes:
        repetitions: Validated per-point repetition count (``>= 1``).
        scope: One of ``"auto" | "points" | "repetitions"``.
        point_capable: Whether the simulator's executor can fan whole
            points across a pool (``supports_point_scope``).
    """

    repetitions: int
    scope: str
    point_capable: bool

    @property
    def fan_points(self) -> bool:
        """Route through the executor's point-scope fan-out?

        True exactly when the caller allows point scope (``"auto"`` or
        ``"points"``) *and* the executor can fan points.  An explicit
        ``scope="points"`` without a point-capable executor degrades to
        the serial one-stream-per-point recipe instead (see
        :attr:`serial_point_streams`).
        """
        return self.scope in ("auto", "points") and self.point_capable

    @property
    def serial_point_streams(self) -> bool:
        """Explicit point scope with no point-fanning executor.

        The degraded contract: one in-process stream per point — exactly
        what pooled point scope reproduces bit-for-bit — never the
        executor's own repetition-chunk geometry.
        """
        return self.scope == "points" and not self.point_capable


def normalize_run_request(
    executor, repetitions: int, scope: str = "auto"
) -> RunRequest:
    """Validate and normalize one sweep/batch request.

    The shared front door of every multi-point ``Simulator.run*`` entry
    point: validates ``scope`` and ``repetitions`` (with the documented
    error messages) and resolves the executor's point-scope capability
    once, so the entry points never duplicate the routing conditions.
    """
    return RunRequest(
        repetitions=normalize_repetitions(repetitions),
        scope=normalize_scope(scope),
        point_capable=bool(
            executor is not None
            and getattr(executor, "supports_point_scope", False)
        ),
    )
