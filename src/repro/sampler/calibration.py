"""Persisted per-backend timing calibration for adaptive scheduling.

The :class:`~repro.sampler.schedule.AdaptiveScheduler`'s static cost
model (``qubits x ops x reps``) is *relative*: it ranks entries of one
batch correctly when they share a backend and width, but it knows
nothing about absolute speed — and its cross-width/cross-backend ratios
are systematically wrong (a state-vector op costs ``2^n`` work, a
tableau op ``n^2``; the model charges both ``n``).  Every process also
used to start **cold**: the first-task timing probe re-measured
``seconds_per_cost`` from scratch on every run.

This module closes that loop across processes:

* :class:`CalibrationTable` is a keyed store of measured
  ``seconds_per_cost`` samples — keyed by **backend type name x
  qubit-width bucket** (buckets are powers of two via
  :func:`width_bucket`, so widths 13 and 16 share an entry and sparse
  measurements generalize).  Samples blend by exponential moving
  average, so a stale entry converges to current hardware within a few
  runs.
* The table persists as JSON under a cache directory
  (``$BGLS_CALIBRATION_DIR``, else ``$XDG_CACHE_HOME/bgls``, else
  ``~/.cache/bgls``) — **load-on-construct** with an in-memory
  fallback: a missing, corrupt, or unreadable file yields an empty
  table and never raises, and write failures are swallowed (calibration
  is an optimization, never a correctness dependency).  Writes are
  atomic (temp file + ``os.replace``), so a crashed process cannot
  leave a torn file behind.
* :func:`shared_calibration_table` is the process-wide default used by
  schedulers constructed with ``calibration="auto"``.  Set
  ``BGLS_CALIBRATION=0`` to keep the shared table memory-only
  (hermetic test runs, read-only filesystems).

Determinism note: a loaded table may change *scheduling geometry* for
mixed-backend/mixed-width batches (calibrated costs reweight the
fair-share split decisions), which changes the deterministic seed
recipe exactly like any other scheduler configuration change.  Output
remains a pure function of (batch, seed, scheduler config, table
content) — never of runtime timing; measurements recorded *during* a
run only affect later ``schedule()`` calls, never the one in flight.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Optional, Tuple

#: Sub-resolution clamp for timing samples: ``time.perf_counter`` deltas
#: on tiny tasks can quantize to exactly 0.0, and a zero sample would
#: poison ``seconds_per_cost`` (every estimate becomes 0).  One hundred
#: nanoseconds is below any real task and above every clock resolution.
MIN_CALIBRATION_SECONDS = 1e-7

#: EMA blend factor for new samples (0 < alpha <= 1): the first sample
#: is taken verbatim, later ones move the stored value 30% of the way.
EMA_ALPHA = 0.3

_FILENAME = "calibration.json"
_VERSION = 1


def default_calibration_path() -> str:
    """The JSON path the shared table persists to.

    ``$BGLS_CALIBRATION_DIR`` overrides the directory; otherwise the
    XDG cache convention applies (``$XDG_CACHE_HOME/bgls``, defaulting
    to ``~/.cache/bgls``).
    """
    root = os.environ.get("BGLS_CALIBRATION_DIR")
    if not root:
        cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        root = os.path.join(cache_home, "bgls")
    return os.path.join(root, _FILENAME)


def width_bucket(num_qubits: int) -> int:
    """The qubit-width bucket of a measurement: the next power of two.

    Bucketing keeps the table dense (widths 9-16 share one entry) while
    still separating the regimes where per-cost-unit time genuinely
    differs (a 4-qubit state vector and a 32-qubit one are different
    machines as far as ``seconds_per_cost`` is concerned).
    """
    n = max(1, int(num_qubits))
    return 1 << (n - 1).bit_length()


class CalibrationTable:
    """Keyed ``seconds_per_cost`` store: backend type x width bucket.

    Args:
        path: JSON file backing the table.  ``None`` uses
            :func:`default_calibration_path`.
        persist: When False the table is memory-only — :meth:`flush`
            becomes a no-op and nothing is read from or written to disk.

    Thread-safe: recording from an executor's collection loop and
    reading from a scheduler in another thread serialize on one lock.
    """

    def __init__(self, path: Optional[str] = None, persist: bool = True):
        self.path = path if path is not None else default_calibration_path()
        self.persist = bool(persist)
        self.load_error: Optional[str] = None
        self._lock = threading.Lock()
        # (backend, bucket) -> {"seconds_per_cost": float, "samples": int}
        self._entries: Dict[Tuple[str, int], Dict[str, float]] = {}
        self._dirty = False
        if self.persist:
            self._load()

    # -- persistence -------------------------------------------------------
    def _load(self) -> None:
        """Read the backing JSON; any failure leaves an empty table."""
        try:
            with open(self.path) as f:
                raw = json.load(f)
            entries = {}
            for backend, buckets in raw["entries"].items():
                for bucket, entry in buckets.items():
                    spc = float(entry["seconds_per_cost"])
                    if spc <= 0:
                        raise ValueError(f"non-positive sample for {backend}")
                    entries[(str(backend), int(bucket))] = {
                        "seconds_per_cost": spc,
                        "samples": int(entry.get("samples", 1)),
                    }
            self._entries = entries
        except FileNotFoundError:
            pass
        except Exception as exc:  # corrupt/unreadable: in-memory fallback
            self.load_error = f"{type(exc).__name__}: {exc}"

    def flush(self) -> bool:
        """Atomically write the table if it changed; True on a write.

        Failures (read-only filesystem, missing permissions) are
        swallowed: a table that cannot persist still calibrates the
        current process.
        """
        with self._lock:
            if not (self.persist and self._dirty):
                return False
            payload = {
                "version": _VERSION,
                "entries": self._serialize(),
            }
            self._dirty = False
        try:
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".calibration-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f, indent=2, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return True
        except OSError:
            return False

    def _serialize(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (backend, bucket), entry in sorted(self._entries.items()):
            out.setdefault(backend, {})[str(bucket)] = {
                "seconds_per_cost": entry["seconds_per_cost"],
                "samples": int(entry["samples"]),
            }
        return out

    # -- recording and lookup ----------------------------------------------
    def record(
        self, backend: str, num_qubits: int, seconds_per_cost: float
    ) -> None:
        """Blend one measured ``seconds_per_cost`` sample into the table.

        Non-finite or non-positive samples are rejected (the
        sub-resolution clamp belongs to the *measurement* site —
        :meth:`AdaptiveScheduler.calibrate` — which never hands a zero
        down here).
        """
        spc = float(seconds_per_cost)
        if not (spc > 0.0) or spc != spc or spc == float("inf"):
            return
        key = (str(backend), width_bucket(num_qubits))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = {"seconds_per_cost": spc, "samples": 1}
            else:
                blended = (
                    (1.0 - EMA_ALPHA) * entry["seconds_per_cost"]
                    + EMA_ALPHA * spc
                )
                entry["seconds_per_cost"] = blended
                entry["samples"] = int(entry["samples"]) + 1
            self._dirty = True

    def seconds_per_cost_for(
        self, backend: Optional[str], num_qubits: Optional[int]
    ) -> Optional[float]:
        """The stored rate for (backend, width), or None.

        Falls back to the nearest bucket of the *same backend* (cost
        rates drift smoothly with width within one backend), never
        across backends.
        """
        if backend is None or num_qubits is None:
            return None
        bucket = width_bucket(num_qubits)
        with self._lock:
            entry = self._entries.get((str(backend), bucket))
            if entry is not None:
                return entry["seconds_per_cost"]
            same_backend = [
                (abs(b - bucket), b, e)
                for (name, b), e in self._entries.items()
                if name == str(backend)
            ]
        if not same_backend:
            return None
        _, _, nearest = min(same_backend, key=lambda item: (item[0], item[1]))
        return nearest["seconds_per_cost"]

    def sample_count(self, backend: str, num_qubits: int) -> int:
        """How many samples the exact (backend, bucket) entry has seen."""
        key = (str(backend), width_bucket(num_qubits))
        with self._lock:
            entry = self._entries.get(key)
            return int(entry["samples"]) if entry is not None else 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"CalibrationTable(path={self.path!r}, entries={len(self)}, "
            f"persist={self.persist})"
        )


_SHARED: Optional[CalibrationTable] = None
_SHARED_LOCK = threading.Lock()


def shared_calibration_table() -> CalibrationTable:
    """The process-wide default table (``calibration="auto"``).

    Created on first use; persistence follows ``BGLS_CALIBRATION``
    (``0``/``false``/``off`` keeps it memory-only).  The path is
    resolved once — point ``BGLS_CALIBRATION_DIR`` somewhere hermetic
    *before* the first scheduler is built (the test suite does).
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            persist = os.environ.get("BGLS_CALIBRATION", "1").lower() not in (
                "0",
                "false",
                "off",
            )
            _SHARED = CalibrationTable(persist=persist)
        return _SHARED


def reset_shared_calibration_table() -> None:
    """Drop the shared table (tests); the next use rebuilds and reloads."""
    global _SHARED
    with _SHARED_LOCK:
        _SHARED = None


def resolve_calibration(spec) -> Optional[CalibrationTable]:
    """Normalize a scheduler's ``calibration`` argument.

    ``None`` disables calibration, ``"auto"`` selects the shared table,
    and a :class:`CalibrationTable` is used as-is.
    """
    if spec is None:
        return None
    if spec == "auto":
        return shared_calibration_table()
    if isinstance(spec, CalibrationTable):
        return spec
    raise ValueError(
        "calibration must be None, 'auto', or a CalibrationTable, got "
        f"{spec!r}"
    )


__all__ = [
    "CalibrationTable",
    "MIN_CALIBRATION_SECONDS",
    "default_calibration_path",
    "reset_shared_calibration_table",
    "resolve_calibration",
    "shared_calibration_table",
    "width_bucket",
]
