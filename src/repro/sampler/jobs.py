"""Sampling-as-a-service: a multi-tenant job tier over the warm pool.

Everything below the service layer is a blocking library call in one
caller's hands: ``Simulator.run_sweep`` owns its executor, the executor
owns (or shares) a :class:`~repro.sampler.service.PoolManager`, and two
independent callers with different circuits thrash each other's warm
workers by alternating execution keys.  This module is the ROADMAP's
"millions of users" tier: many independent clients (*tenants*) submit
sampling jobs against **one** warm pool, and a single dispatcher decides
what runs next so that

* tenants share fairly — per-tenant FIFO queues drained by quota-weighted
  fair share (the tenant with the least *served cost per quota unit*
  runs next; equal quotas and equal job costs degenerate to round-robin
  across tenants with jobs pending, and a higher ``quota`` buys a
  proportionally larger share),
* the pool stays warm — the dispatcher groups same-execution-key jobs
  (within a small per-tenant lookahead window it may run a later job of
  the *chosen* tenant first when its key matches the currently warm
  pool) so interleaved submissions of K distinct circuits cost K pool
  initializations, not one per job,
* one bad job hurts only itself — a job that poisons the pool (a task
  failing in a worker) is marked ``FAILED``, its shared-memory result
  planes are released through the executor/manager lifecycle backstops,
  and the manager's reset path rebuilds the pool for the next job.

Job lifecycle: ``submit(...)`` returns a :class:`JobHandle` in state
``QUEUED``; the dispatcher moves it to ``RUNNING``, then exactly one of
``DONE`` / ``FAILED`` / ``CANCELLED``.  Results stream per sweep point:
:meth:`JobHandle.stream` yields each point's :class:`Result` the moment
it lands (riding ``run_sweep_iter``, so pooled transport stays
zero-copy), :meth:`JobHandle.result` blocks for the full list.  Finished
results live in a bounded LRU store (``max_result_entries`` /
``max_result_bytes``); once evicted, ``result()`` raises
:class:`ResultExpired` — clients that need results forever should copy
them out.

Determinism: each job runs on its own :class:`Simulator` seeded with the
job's ``seed`` (drawn at submit when not given, recorded on the handle),
so every streamed ``Result`` is bit-for-bit equal to a direct
``run_sweep`` of the same ``(circuit, params, repetitions, seed)`` —
regardless of tenant interleaving, grouping, or pool resets.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .executors import ProcessPoolExecutor
from .results import Result
from .schedule import estimate_job_cost
from .service import PoolManager, execution_key
from .simulator import Simulator

#: Job states (a job visits QUEUED, then RUNNING, then one terminal state;
#: a QUEUED job cancelled before dispatch skips RUNNING).
QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

_TERMINAL = (DONE, FAILED, CANCELLED)


class ResultExpired(LookupError):
    """The job finished but its results were evicted from the store.

    The service keeps finished results in a bounded LRU store
    (``max_result_entries`` / ``max_result_bytes``); under memory
    pressure the least-recently-read job's results are dropped.  The job
    handle still reports ``DONE`` — only the payload is gone.
    """


class JobCancelled(RuntimeError):
    """``result()``/``stream()`` on a job that was cancelled."""


class _Tenant:
    """One tenant's queue, quota, and accounting."""

    __slots__ = (
        "name",
        "quota",
        "queue",
        "served_cost",
        "last_served",
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
        "jobs_cancelled",
        "repetitions",
        "estimated_cost",
        "queue_wait_seconds",
        "reinits",
    )

    def __init__(self, name: str, quota: float):
        self.name = name
        self.quota = quota
        self.queue: "deque[JobHandle]" = deque()
        self.served_cost = 0.0
        self.last_served = -1
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.repetitions = 0
        self.estimated_cost = 0
        self.queue_wait_seconds = 0.0
        self.reinits = 0


class JobHandle:
    """Client-side view of one submitted job.

    All mutation happens under the owning service's condition variable;
    the public methods only read state or wait on it.  ``job_id``,
    ``tenant``, ``seed``, ``repetitions``, and ``num_points`` are plain
    public attributes — ``seed`` in particular is what a client replays
    through a direct ``run_sweep`` to reproduce the job bit-for-bit.
    """

    def __init__(
        self,
        service: "SamplingService",
        job_id: str,
        tenant: str,
        circuit,
        params: List,
        repetitions: int,
        seed: int,
        cost: int,
        exec_key: Tuple,
        simulator: Simulator,
    ):
        self._service = service
        self.job_id = job_id
        self.tenant = tenant
        self.circuit = circuit
        self.params = params
        self.repetitions = repetitions
        self.seed = seed
        self.num_points = len(params)
        self.cost = cost
        self._exec_key = exec_key
        self._simulator = simulator
        self._state = QUEUED
        self._results: List[Result] = []
        self._result_count: Optional[int] = None
        self._error: Optional[BaseException] = None
        self._evicted = False
        self._cancel = threading.Event()
        self._submitted = time.monotonic()
        self._nbytes = 0
        # Monotone dispatch ordinal, assigned when the dispatcher picks
        # this job; lets tests and diagnostics reconstruct fair-share
        # dispatch order after the fact.
        self._finished_seq = -1

    # -- public API --------------------------------------------------------
    def status(self) -> str:
        """The job's current state (one of the module-level constants)."""
        with self._service._cond:
            return self._state

    def exception(self) -> Optional[BaseException]:
        """The error of a ``FAILED`` job, else ``None``."""
        with self._service._cond:
            return self._error

    def result(self, timeout: Optional[float] = None) -> List[Result]:
        """Block until terminal and return the per-point ``Result`` list.

        Raises the job's own error for ``FAILED``, :class:`JobCancelled`
        for ``CANCELLED``, :class:`ResultExpired` if the finished results
        were evicted from the bounded store, and ``TimeoutError`` if the
        job is not terminal within ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cond = self._service._cond
        with cond:
            while self._state not in _TERMINAL:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"Job {self.job_id} still {self._state} after "
                        f"{timeout}s"
                    )
                cond.wait(remaining)
            return self._collect_locked()

    def stream(self) -> Iterator[Result]:
        """Yield each sweep point's :class:`Result` as soon as it lands.

        The iterator ends when the job is ``DONE`` and every point has
        been yielded; it raises like :meth:`result` for failed/cancelled
        jobs (after yielding whatever landed first).  Streaming does not
        protect the results from store eviction — a consumer that falls
        behind an evicted job gets :class:`ResultExpired` for the points
        it missed.
        """
        index = 0
        cond = self._service._cond
        while True:
            with cond:
                while True:
                    if self._evicted and index < (self._result_count or 0):
                        raise ResultExpired(
                            f"Job {self.job_id} results were evicted from "
                            "the bounded store before this stream consumed "
                            "them"
                        )
                    if index < len(self._results):
                        item = self._results[index]
                        index += 1
                        break
                    if self._state == FAILED:
                        raise self._error
                    if self._state == CANCELLED:
                        raise JobCancelled(
                            f"Job {self.job_id} was cancelled"
                        )
                    if self._state == DONE:
                        return
                    cond.wait()
            yield item

    def cancel(self) -> bool:
        """Request cancellation; ``True`` if the request was accepted.

        A ``QUEUED`` job is removed from its tenant's queue and moves to
        ``CANCELLED`` immediately.  A ``RUNNING`` job is cancelled at its
        next point boundary (best effort — a job on its last point may
        still finish ``DONE``).  Terminal jobs return ``False``.
        """
        service = self._service
        with service._cond:
            if self._state == QUEUED:
                tenant = service._tenants[self.tenant]
                try:
                    tenant.queue.remove(self)
                except ValueError:  # pragma: no cover - dispatch race
                    return False
                self._state = CANCELLED
                tenant.jobs_cancelled += 1
                service._cond.notify_all()
                return True
            if self._state == RUNNING:
                self._cancel.set()
                return True
            return False

    # -- internal ----------------------------------------------------------
    def _collect_locked(self) -> List[Result]:
        if self._state == FAILED:
            raise self._error
        if self._state == CANCELLED:
            raise JobCancelled(f"Job {self.job_id} was cancelled")
        if self._evicted:
            raise ResultExpired(
                f"Job {self.job_id} finished but its results were evicted "
                "from the bounded store (max_result_entries/max_result_bytes)"
            )
        self._service._touch_locked(self)
        return list(self._results)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"JobHandle({self.job_id!r}, tenant={self.tenant!r}, "
            f"state={self.status()})"
        )


class SamplingService:
    """Multi-tenant async sampling jobs over one shared warm pool.

    The service owns a backend configuration — ``initial_state``,
    ``apply_op``, ``compute_probability``, plus any ``Simulator`` keyword
    options — and one pooled executor (built over its own
    :class:`PoolManager` unless an ``executor`` is injected).  Each
    submitted job gets its own ``Simulator`` (its own seed) sharing that
    executor, so jobs with equal circuits land on equal execution keys
    and reuse the warm workers.

    One dispatcher thread drains the tenant queues; see the module
    docstring for the fair-share and key-grouping semantics.  The
    service is a context manager; :meth:`shutdown` cancels queued jobs,
    joins the dispatcher, and shuts the owned pool manager down.
    """

    def __init__(
        self,
        initial_state,
        apply_op,
        compute_probability,
        *,
        executor=None,
        num_workers: Optional[int] = None,
        start_method: Optional[str] = "auto",
        max_result_entries: int = 256,
        max_result_bytes: int = 256 * 2**20,
        key_window: int = 8,
        default_quota: float = 1.0,
        simulator_options: Optional[dict] = None,
    ):
        if max_result_entries < 1:
            raise ValueError(
                f"max_result_entries must be >= 1, got {max_result_entries}"
            )
        if max_result_bytes < 1:
            raise ValueError(
                f"max_result_bytes must be >= 1, got {max_result_bytes}"
            )
        if key_window < 0:
            raise ValueError(f"key_window must be >= 0, got {key_window}")
        if default_quota <= 0:
            raise ValueError(
                f"default_quota must be > 0, got {default_quota}"
            )
        self._initial_state = initial_state
        self._apply_op = apply_op
        self._compute_probability = compute_probability
        self._simulator_options = dict(simulator_options or {})
        self._owns_executor = executor is None
        if executor is None:
            executor = ProcessPoolExecutor(
                num_workers=num_workers,
                start_method=start_method,
                pool_manager=PoolManager(),
            )
        self.executor = executor
        self.max_result_entries = max_result_entries
        self.max_result_bytes = max_result_bytes
        self.key_window = key_window
        self.default_quota = default_quota

        self._cond = threading.Condition()
        self._tenants: "OrderedDict[str, _Tenant]" = OrderedDict()
        self._store: "OrderedDict[str, JobHandle]" = OrderedDict()
        self._store_bytes = 0
        self._evictions = 0
        self._warm_key: Optional[Tuple] = None
        self._serial = itertools.count()
        self._seq = itertools.count()
        self._virtual_time = 0.0
        self._dispatcher: Optional[threading.Thread] = None
        self._shutdown = False

    # -- tenancy -----------------------------------------------------------
    def register_tenant(self, name: str, quota: float = 1.0) -> None:
        """Register (or re-weight) a tenant.

        ``quota`` scales the tenant's fair share: against a quota-1
        tenant, a quota-2 tenant's jobs are charged half their estimated
        cost in the fair-share ledger, so it gets roughly twice the
        dispatch bandwidth under contention.  Unregistered tenants are
        created on first ``submit`` with ``default_quota``.
        """
        if not name:
            raise ValueError("tenant name must be a non-empty string")
        if quota <= 0:
            raise ValueError(f"quota must be > 0, got {quota}")
        with self._cond:
            tenant = self._tenants.get(name)
            if tenant is None:
                self._tenants[name] = _Tenant(name, float(quota))
            else:
                tenant.quota = float(quota)

    # -- submission --------------------------------------------------------
    def submit(
        self,
        circuit,
        params: Optional[Sequence] = None,
        *,
        tenant: str = "default",
        repetitions: int = 1,
        seed: Optional[int] = None,
    ) -> JobHandle:
        """Enqueue one sampling job; returns immediately with a handle.

        A job is a parameter sweep: ``params`` is one resolver per sweep
        point (``None`` means a single unresolved point, i.e. a plain
        ``run``; an empty list completes with no results).  Validation is
        eager and service-boundary-shaped: bad ``repetitions``/``seed``
        raise ``ValueError`` here, a bare backend state or an
        unmeasurable circuit raises before anything is queued.  ``seed``
        must be a non-negative integer or ``None`` (one is drawn and
        recorded on the handle), so every job is replayable.
        """
        if self._shutdown:
            raise RuntimeError("SamplingService is shut down")
        if not tenant:
            raise ValueError("tenant name must be a non-empty string")
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) % 2**62
        elif not isinstance(seed, (int, np.integer)):
            raise ValueError(
                "seed must be a non-negative integer or None (the service "
                f"records one integer per job), got {type(seed).__name__}"
            )
        resolved_params = [None] if params is None else list(params)
        # The per-job simulator validates the seed at its own boundary
        # and shares the service executor (one warm pool for all jobs).
        simulator = Simulator(
            self._initial_state,
            self._apply_op,
            self._compute_probability,
            seed=int(seed),
            executor=self.executor,
            **self._simulator_options,
        )
        # Compile eagerly: bare states and uncompilable circuits fail the
        # submit call, not some later tenant's dispatch turn.  The handle
        # keeps the Program alive so the id-based execution key cannot
        # alias a recycled address while the job is queued.
        program = simulator.compile(circuit)
        if not program.key_axes:
            raise ValueError(
                "Circuit has no measurements; add measure(...) operations "
                "before submitting a sampling job."
            )
        exec_key = execution_key(simulator, programs=(program,))
        cost = estimate_job_cost(program, len(resolved_params), repetitions)
        with self._cond:
            if self._shutdown:
                raise RuntimeError("SamplingService is shut down")
            record = self._tenants.get(tenant)
            if record is None:
                record = _Tenant(tenant, self.default_quota)
                self._tenants[tenant] = record
            if not record.queue:
                # Start-time fair queueing with a one-job latency slack:
                # a tenant (re)entering the system joins one job-cost
                # *below* the current virtual time instead of cashing in
                # credit banked while idle.  The slack bounds queueing
                # delay for an interactive tenant at roughly the job in
                # service (instead of one full round of every backlogged
                # tenant) while leaving throughput untouched — the
                # ledger still charges the job's full cost on dispatch,
                # so a tenant submitting back-to-back re-enters at (or
                # above) the frontier and cannot compound the slack into
                # banked credit or monopolize the pool.
                record.served_cost = max(
                    record.served_cost,
                    self._virtual_time * record.quota - cost,
                )
            job_id = f"job-{next(self._serial)}"
            job = JobHandle(
                self,
                job_id,
                tenant,
                circuit,
                resolved_params,
                repetitions,
                int(seed),
                cost,
                exec_key,
                simulator,
            )
            job._program = program  # keep the keyed Program alive
            record.queue.append(job)
            record.jobs_submitted += 1
            record.repetitions += repetitions * max(1, len(resolved_params))
            record.estimated_cost += cost
            self._ensure_dispatcher_locked()
            self._cond.notify_all()
            return job

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Per-tenant accounting: jobs, reps, cost, waits, reinits."""
        with self._cond:
            return {
                t.name: {
                    "quota": t.quota,
                    "jobs_submitted": t.jobs_submitted,
                    "jobs_completed": t.jobs_completed,
                    "jobs_failed": t.jobs_failed,
                    "jobs_cancelled": t.jobs_cancelled,
                    "jobs_queued": len(t.queue),
                    "repetitions": t.repetitions,
                    "estimated_cost": t.estimated_cost,
                    "queue_wait_seconds": t.queue_wait_seconds,
                    "reinits": t.reinits,
                }
                for t in self._tenants.values()
            }

    def pool_stats(self) -> Dict[str, int]:
        """The shared manager's ``{"inits", "reuses", "key_changes"}``."""
        manager = getattr(self.executor, "pool_manager", None)
        return dict(manager.stats) if manager is not None else {}

    @property
    def result_store_entries(self) -> int:
        with self._cond:
            return len(self._store)

    @property
    def result_store_bytes(self) -> int:
        with self._cond:
            return self._store_bytes

    @property
    def evictions(self) -> int:
        with self._cond:
            return self._evictions

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self, *, cancel_pending: bool = True) -> None:
        """Stop the service: cancel queued jobs, join, release the pool.

        The running job (if any) finishes its current point stream; with
        ``cancel_pending=False`` the dispatcher first drains every queue.
        Idempotent.  The owned pool manager is shut down (workers joined,
        adopted planes released); an injected executor's manager is left
        to its owner.
        """
        with self._cond:
            self._shutdown = True
            if cancel_pending:
                for tenant in self._tenants.values():
                    while tenant.queue:
                        job = tenant.queue.popleft()
                        job._state = CANCELLED
                        tenant.jobs_cancelled += 1
            self._cond.notify_all()
            dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join()
        if self._owns_executor:
            self.executor.pool_manager.shutdown()

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- dispatcher --------------------------------------------------------
    def _ensure_dispatcher_locked(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="sampling-service-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()

    def _select_locked(self) -> Optional[JobHandle]:
        """Pick the next job: fair share first, key affinity second.

        The tenant with the least served cost per quota unit goes next
        (ties break toward the least recently served).  Within *that*
        tenant's FIFO queue, the first job among the front ``key_window``
        whose execution key matches the warm pool runs early — a bounded
        reordering of independent, individually-seeded jobs, so output
        is unaffected; only pool re-inits are.  Affinity never overrides
        the tenant choice: fairness beats warmth.
        """
        candidates = [t for t in self._tenants.values() if t.queue]
        if not candidates:
            return None
        tenant = min(
            candidates,
            key=lambda t: (t.served_cost / t.quota, t.last_served, t.name),
        )
        self._virtual_time = max(
            self._virtual_time, tenant.served_cost / tenant.quota
        )
        pick = 0
        if self._warm_key is not None and self.key_window:
            for offset, job in enumerate(
                itertools.islice(tenant.queue, self.key_window)
            ):
                if job._exec_key == self._warm_key:
                    pick = offset
                    break
        if pick:
            tenant.queue.rotate(-pick)
            job = tenant.queue.popleft()
            tenant.queue.rotate(pick)
        else:
            job = tenant.queue.popleft()
        tenant.served_cost += job.cost
        tenant.last_served = next(self._seq)
        job._finished_seq = tenant.last_served
        return job

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                job = self._select_locked()
                while job is None:
                    if self._shutdown:
                        return
                    self._cond.wait()
                    job = self._select_locked()
                job._state = RUNNING
                tenant = self._tenants[job.tenant]
                tenant.queue_wait_seconds += time.monotonic() - job._submitted
                self._warm_key = job._exec_key
                self._cond.notify_all()
            self._run_job(job, tenant)

    def _run_job(self, job: JobHandle, tenant: _Tenant) -> None:
        manager = getattr(self.executor, "pool_manager", None)
        inits_before = manager.stats["inits"] if manager is not None else 0
        error: Optional[BaseException] = None
        cancelled = False
        stream = None
        try:
            stream = job._simulator.run_sweep_iter(
                job.circuit, job.params, job.repetitions
            )
            for result in stream:
                with self._cond:
                    if job._cancel.is_set():
                        cancelled = True
                        break
                    job._results.append(result)
                    self._cond.notify_all()
        except Exception as exc:
            error = exc
        finally:
            if stream is not None and hasattr(stream, "close"):
                # Abandoned iterators (cancellation, failure) cancel
                # pending work and release their shm planes here.
                stream.close()
        with self._cond:
            if manager is not None:
                tenant.reinits += manager.stats["inits"] - inits_before
            if cancelled or (error is None and job._cancel.is_set()):
                job._state = CANCELLED
                job._results = []
                tenant.jobs_cancelled += 1
            elif error is not None:
                job._state = FAILED
                job._error = error
                tenant.jobs_failed += 1
            else:
                job._state = DONE
                job._result_count = len(job._results)
                tenant.jobs_completed += 1
                self._bank_locked(job)
            self._cond.notify_all()

    # -- bounded result store ----------------------------------------------
    @staticmethod
    def _result_nbytes(results: List[Result]) -> int:
        return sum(
            sum(int(arr.nbytes) for arr in result.measurements.values())
            for result in results
        )

    def _bank_locked(self, job: JobHandle) -> None:
        job._nbytes = self._result_nbytes(job._results)
        self._store[job.job_id] = job
        self._store_bytes += job._nbytes
        # Evict least-recently-read finished jobs past either budget.
        # The newest entry is always admitted (even a single oversized
        # job), so a fresh result can never be evicted by its own
        # arrival alone.
        while len(self._store) > 1 and (
            len(self._store) > self.max_result_entries
            or self._store_bytes > self.max_result_bytes
        ):
            _, victim = self._store.popitem(last=False)
            self._store_bytes -= victim._nbytes
            victim._evicted = True
            victim._results = []
            self._evictions += 1

    def _touch_locked(self, job: JobHandle) -> None:
        if job.job_id in self._store:
            self._store.move_to_end(job.job_id)


__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobCancelled",
    "JobHandle",
    "QUEUED",
    "RUNNING",
    "ResultExpired",
    "SamplingService",
]
