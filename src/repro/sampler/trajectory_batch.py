"""Batched trajectory engine: a repetition stack as one NumPy computation.

:meth:`Simulator._run_trajectories` walks the compiled plan once per
repetition — a pure Python loop whose per-gate constants (state copy,
candidate query, one scalar multinomial) dominate trajectory-mode cost.
This module runs a whole chunk of repetitions as **one stacked
computation** instead:

* the state is a stack of ``B`` trajectory states — the dense backend as a
  ``(B, 2, ..., 2)`` amplitude tile, the stabilizer backends as
  ``(B, rows, words)`` packed GF(2) word stacks
  (:class:`~repro.states.tableau.StackedCliffordTableaus`,
  :class:`~repro.states.chform.StackedChForms`);
* every plan record applies across the batch axis in one call: unitaries
  broadcast via ``tensordot``, Clifford primitives as stacked column
  passes, candidate probabilities as one batched gather;
* bit resampling replaces ``B`` scalar multinomials with one vectorized
  cumulative-sum/searchsorted pass over a ``(B, 2^k)`` probability matrix;
* Kraus branching draws all ``B`` branch choices at once and applies each
  Kraus operator to its boolean-masked sub-stack — one call per *branch*,
  not per trajectory.

**Determinism contract.**  A stacked engine cannot reproduce the serial
loop's interleaved RNG draw order, so batched mode pins its own contract:
trajectory ``r`` of sweep point ``p`` consumes uniforms drawn from
``default_rng(SeedSequence([base_seed, p, rep_base + r]))``, and the
number of uniforms each plan record consumes is a *static* function of
the plan (branching records: 2; resampled records: 1; measurements and
skipped diagonals: 0).  Output is therefore a pure function of
``(base_seed, point, rep_base + r)`` per trajectory — bit-for-bit
identical across tile sizes, chunk geometries, and worker counts.

Backends advertise support through the ``batched_trajectories``
capability (:mod:`repro.states.registry`); the value is an adapter class
(or a zero-argument factory returning one) implementing the small
interface at the top of :class:`BatchedStateVector`.  Unsupported
backends, custom ``apply_op`` functions, and user candidate functions
fall back to the serial loop unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..states.base import candidate_index_matrix
from .plan import ExecutionPlan, FusedOpRecord, OpRecord

#: Soft cap on the dense tile's amplitude memory (bytes).  The engine
#: splits a repetition chunk into tiles no larger than this; Kraus
#: probing holds ~2 tiles live, hence the factor in :meth:`tile_size`.
DENSE_TILE_BUDGET_BYTES = 128 << 20

#: Stacked stabilizer states are cheap; cap the tile only to bound the
#: per-tile uniforms matrix and bit front.
STABILIZER_TILE_CAP = 1 << 16


def categorical_rows(probs: np.ndarray, u: np.ndarray) -> np.ndarray:
    """One categorical draw per row of ``probs`` from uniforms ``u``.

    The vectorized equivalent of ``np.searchsorted(np.cumsum(p), u)`` per
    row: row ``b``'s choice is the first index whose cumulative
    (normalized) probability reaches ``u[b]``.  Rows are clipped of float
    dust and normalized; a vanished row raises like
    :meth:`Simulator._normalize_probs`.
    """
    probs = np.clip(np.asarray(probs, dtype=float), 0.0, None)
    totals = probs.sum(axis=1)
    if not np.all(np.isfinite(totals)) or np.any(totals <= 0):
        raise ValueError(
            "All candidate probabilities vanished; state and bitstring "
            "are inconsistent (is compute_probability correct?)"
        )
    cum = np.cumsum(probs, axis=1)
    cum /= cum[:, -1:]
    u = np.asarray(u, dtype=float)
    choice = (u[:, None] > cum).sum(axis=1)
    return np.minimum(choice, probs.shape[1] - 1)


def _assign_support_rows(
    bits: np.ndarray, support: Sequence[int], choice: np.ndarray
) -> None:
    """Decode big-endian candidate indices into the support columns."""
    k = len(support)
    for pos, axis in enumerate(support):
        bits[:, axis] = (choice >> (k - 1 - pos)) & 1


def record_draws(plan: ExecutionPlan, skip_diagonal: bool) -> List[int]:
    """Per-record uniform consumption — static in the plan.

    Branching records consume 2 uniforms (branch choice + bit
    resampling), resampled records 1, measurements and skipped diagonal
    records 0.  Static scheduling is what makes batched output
    independent of tiling: trajectory ``r`` reads its own pre-drawn
    uniform row at fixed offsets regardless of who shares its tile.
    """
    draws = []
    for rec in plan.records:
        if rec.is_measurement:
            draws.append(0)
        elif rec.needs_branching:
            draws.append(2)
        elif skip_diagonal and rec.is_diagonal():
            draws.append(0)
        else:
            draws.append(1)
    return draws


class BatchedStateVector:
    """Dense ``(B, 2, ..., 2)`` amplitude tile for the batched engine.

    Adapter interface (shared by all ``batched_trajectories`` adapters):

    * ``supports_plan(plan)`` — classmethod; static plan eligibility.
    * ``from_state(state, batch)`` — classmethod; stack ``batch`` copies
      of a scalar simulation state.
    * ``tile_size(state, repetitions, override)`` — classmethod; the
      memory-budgeted tile width.
    * ``apply_record(plan, rec)`` — apply one non-branching,
      non-measurement record across the batch.
    * ``candidate_probabilities(bits, support)`` — ``(B, 2^k)`` Born
      probabilities of each trajectory's candidates.
    * ``project(support, outcomes)`` — collapse each trajectory onto its
      own ``(B, k)`` outcome rows.
    * ``apply_kraus(kraus, support, bits, u_branch)`` — branch the whole
      stack (only reached when ``supports_plan`` accepts branching).
    """

    def __init__(self, tensor: np.ndarray, num_qubits: int):
        self.tensor = tensor
        self.n = num_qubits
        self.batch = tensor.shape[0]

    # -- adapter classmethods ---------------------------------------------
    @classmethod
    def supports_plan(cls, plan: ExecutionPlan) -> bool:
        if not plan.fast_unitary:
            return False
        for rec in plan.records:
            if rec.is_measurement or type(rec) is FusedOpRecord:
                continue
            if rec.needs_branching:
                if rec.kraus is None:
                    return False
            elif rec.unitary is None:
                return False
        return True

    @classmethod
    def from_state(cls, state, batch: int) -> "BatchedStateVector":
        tensor = np.broadcast_to(
            state.tensor[None], (batch,) + state.tensor.shape
        ).copy()
        return cls(tensor, state.num_qubits)

    @classmethod
    def tile_size(
        cls, state, repetitions: int, override: Optional[int]
    ) -> int:
        if override is not None:
            return max(1, min(int(override), repetitions))
        per_rep = 16 * (2**state.num_qubits)
        # Kraus probing keeps a transient branch tile alive next to the
        # stack itself, so budget two tiles.
        tile = max(1, DENSE_TILE_BUDGET_BYTES // (2 * per_rep))
        return min(tile, repetitions)

    # -- stacked mutations -------------------------------------------------
    def _applied(
        self, tensor: np.ndarray, u: np.ndarray, support: Sequence[int]
    ) -> np.ndarray:
        """``u`` applied to the support axes of a ``(B, ...)`` tile."""
        k = len(support)
        u = np.asarray(u, dtype=np.complex128).reshape((2,) * (2 * k))
        axes = [a + 1 for a in support]
        moved = np.tensordot(u, tensor, axes=(range(k, 2 * k), axes))
        return np.moveaxis(moved, range(k), axes)

    def apply_record(self, plan: ExecutionPlan, rec) -> None:
        if type(rec) is FusedOpRecord:
            for sub in rec.records:
                self.tensor = self._applied(
                    self.tensor, sub.unitary, sub.support
                )
        else:
            self.tensor = self._applied(self.tensor, rec.unitary, rec.support)

    def candidate_probabilities(
        self, bits: np.ndarray, support: Sequence[int]
    ) -> np.ndarray:
        idx = candidate_index_matrix(bits, support, self.n)
        flat = self.tensor.reshape(self.batch, -1)
        return np.abs(flat[np.arange(self.batch)[:, None], idx]) ** 2

    def project(self, support: Sequence[int], outcomes: np.ndarray) -> None:
        """Collapse each trajectory onto its own support outcome."""
        flat = self.tensor.reshape(self.batch, -1)
        keep = np.ones((self.batch, flat.shape[1]), dtype=bool)
        basis = np.arange(flat.shape[1], dtype=np.int64)
        for pos, axis in enumerate(support):
            axis_bits = (basis >> (self.n - 1 - axis)) & 1
            keep &= axis_bits[None, :] == outcomes[:, pos, None]
        flat = np.where(keep, flat, 0.0)
        norms = np.linalg.norm(flat, axis=1)
        if np.any(norms == 0):
            raise ValueError("Projected onto a zero-probability outcome")
        flat /= norms[:, None]
        self.tensor = flat.reshape(self.tensor.shape)

    def apply_kraus(
        self,
        kraus: Sequence[np.ndarray],
        support: Sequence[int],
        bits: np.ndarray,
        u_branch: np.ndarray,
    ) -> np.ndarray:
        """Two-pass masked Kraus branching across the whole stack.

        Pass 1 applies every Kraus operator to the full stack transiently
        and gathers each branch's candidate probabilities; branch ``i`` of
        trajectory ``b`` is weighted by its candidate mass (exactly the
        serial :meth:`Simulator._apply_channel_branch` weights).  All ``B``
        branch choices come from one uniform column, then pass 2 applies
        each *chosen* operator to its boolean-masked sub-stack.  Returns
        the chosen-branch candidate probabilities for bit resampling.
        """
        nk = len(kraus)
        idx = candidate_index_matrix(bits, support, self.n)
        rows = np.arange(self.batch)
        probses = np.empty((nk, self.batch, idx.shape[1]))
        for i, k_op in enumerate(kraus):
            trial = self._applied(self.tensor, k_op, support)
            flat = trial.reshape(self.batch, -1)
            probses[i] = np.abs(flat[rows[:, None], idx]) ** 2
        weights = probses.sum(axis=2).T  # (B, nk)
        try:
            choice = categorical_rows(weights, u_branch)
        except ValueError as exc:
            raise ValueError(
                "Channel branches all annihilated the tracked bitstring; "
                "the state and bitstring are inconsistent."
            ) from exc
        out = np.empty_like(self.tensor)
        for j in range(nk):
            mask = choice == j
            if not mask.any():
                continue
            out[mask] = self._applied(self.tensor[mask], kraus[j], support)
        self.tensor = out
        flat = self.tensor.reshape(self.batch, -1)
        norms = np.linalg.norm(flat, axis=1)
        if np.any(norms == 0):  # pragma: no cover - weights exclude this
            raise ValueError("Channel annihilated the state")
        flat /= norms[:, None]
        self.tensor = flat.reshape(self.tensor.shape)
        return probses[choice, rows]


class _StackedStabilizerAdapter:
    """Shared shape of the two stacked stabilizer adapters.

    Clifford word passes and fused moments broadcast over the batch in
    one call; measurement-adjacent operations (projection chains,
    candidate recursions for the tableau) branch per trajectory and run
    through zero-copy scalar views.
    """

    def __init__(self, stack, num_qubits: int):
        self.stack = stack
        self.n = num_qubits
        self.batch = stack.batch

    @classmethod
    def supports_plan(cls, plan: ExecutionPlan) -> bool:
        if not plan.fast_stab:
            return False
        for rec in plan.records:
            if rec.is_measurement or type(rec) is FusedOpRecord:
                continue
            if rec.needs_branching or rec.stab_seq is None:
                return False
        return True

    @classmethod
    def tile_size(
        cls, state, repetitions: int, override: Optional[int]
    ) -> int:
        if override is not None:
            return max(1, min(int(override), repetitions))
        return min(STABILIZER_TILE_CAP, repetitions)

    def apply_record(self, plan: ExecutionPlan, rec) -> None:
        if type(rec) is FusedOpRecord:
            self.stack.apply_single_qubit_moment(rec.seqs, rec.axes)
        else:
            self.stack.apply_stabilizer_sequence(rec.stab_seq, rec.support)

    def apply_kraus(self, kraus, support, bits, u_branch):
        raise NotImplementedError(  # pragma: no cover - supports_plan gates
            "Stabilizer stacks cannot branch Kraus channels"
        )


class BatchedTableaus(_StackedStabilizerAdapter):
    """Stacked Aaronson-Gottesman tableaus for the batched engine."""

    @classmethod
    def from_state(cls, state, batch: int) -> "BatchedTableaus":
        return cls(state.tableau.stack(batch), state.num_qubits)

    def candidate_probabilities(
        self, bits: np.ndarray, support: Sequence[int]
    ) -> np.ndarray:
        # Candidate chains replay measurement recursions per trajectory;
        # the word-op gate passes stay batched.
        out = np.empty((self.batch, 2 ** len(support)))
        for b in range(self.batch):
            out[b] = self.stack.view(b).candidate_probabilities(
                bits[b], support
            )
        return out

    def project(self, support: Sequence[int], outcomes: np.ndarray) -> None:
        for b in range(self.batch):
            view = self.stack.view(b)
            for pos, axis in enumerate(support):
                if view.project_measurement(
                    axis, int(outcomes[b, pos])
                ) == 0.0:
                    raise ValueError(
                        f"Projection of qubit axis {axis} onto "
                        f"{int(outcomes[b, pos])} has zero probability"
                    )


class BatchedChForms(_StackedStabilizerAdapter):
    """Stacked CH forms for the batched engine."""

    @classmethod
    def from_state(cls, state, batch: int) -> "BatchedChForms":
        return cls(state.ch_form.stack(batch), state.num_qubits)

    def candidate_probabilities(
        self, bits: np.ndarray, support: Sequence[int]
    ) -> np.ndarray:
        return self.stack.candidate_probabilities(bits, support)

    def project(self, support: Sequence[int], outcomes: np.ndarray) -> None:
        # The scalar CH kernels rebind sw/omega, so each per-trajectory
        # projection writes those two back into the stack.
        for b in range(self.batch):
            view = self.stack.view(b)
            for pos, axis in enumerate(support):
                view.project_measurement(axis, int(outcomes[b, pos]))
            self.stack.store(b, view)


def run_batched_trajectories(
    simulator,
    plan: ExecutionPlan,
    repetitions: int,
    ctx: Tuple[int, int, int],
    adapter_cls,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Run ``repetitions`` trajectories of ``plan`` as stacked tiles.

    ``ctx = (base_seed, point_index, rep_base)`` anchors the
    deterministic contract: trajectory ``r`` (globally,
    ``rep_base + start + r`` within its tile) consumes uniforms from
    ``default_rng(SeedSequence([base_seed, point_index, rep_base + r]))``
    at plan-static offsets.  Returns the same ``(records, all_bits)``
    shapes as :meth:`Simulator._run_trajectories`.
    """
    base, point, rep_base = (int(v) for v in ctx)
    n = plan.num_qubits
    skip_diagonal = simulator.skip_diagonal_updates
    draws = record_draws(plan, skip_diagonal)
    total_draws = sum(draws)

    # Measurement outcome planes, indexed (key, occurrence): the serial
    # loop appends rep-major, so occurrence planes interleave at the end.
    key_meta: Dict[str, List[int]] = {}
    planes: Dict[Tuple[str, int], np.ndarray] = {}
    for rec in plan.records:
        if not rec.is_measurement:
            continue
        occ = len(key_meta.setdefault(rec.measurement_key, []))
        key_meta[rec.measurement_key].append(len(rec.support))
        planes[(rec.measurement_key, occ)] = np.empty(
            (repetitions, len(rec.support)), dtype=np.int8
        )

    all_bits = np.empty((repetitions, n), dtype=np.int8)
    tile = adapter_cls.tile_size(
        simulator.initial_state, repetitions, simulator.trajectory_tile
    )

    for start in range(0, repetitions, tile):
        batch = min(tile, repetitions - start)
        uniforms = np.stack(
            [
                np.random.default_rng(
                    np.random.SeedSequence(
                        [base, point, rep_base + start + r]
                    )
                ).random(total_draws)
                for r in range(batch)
            ]
        )
        adapter = adapter_cls.from_state(simulator.initial_state, batch)
        bits = np.zeros((batch, n), dtype=np.int8)
        col = 0
        occ_counts: Dict[str, int] = {}
        for rec, n_draws in zip(plan.records, draws):
            support = rec.support
            if rec.is_measurement:
                occ = occ_counts.get(rec.measurement_key, 0)
                occ_counts[rec.measurement_key] = occ + 1
                outcome = bits[:, list(support)].copy()
                planes[(rec.measurement_key, occ)][
                    start : start + batch
                ] = outcome
                adapter.project(support, outcome)
                continue
            if rec.needs_branching:
                probs = adapter.apply_kraus(
                    rec.kraus, support, bits, uniforms[:, col]
                )
                u_bits = uniforms[:, col + 1]
            else:
                adapter.apply_record(plan, rec)
                if n_draws == 0:  # skipped diagonal record
                    continue
                probs = adapter.candidate_probabilities(bits, support)
                u_bits = uniforms[:, col]
            col += n_draws
            choice = categorical_rows(probs, u_bits)
            _assign_support_rows(bits, support, choice)
        all_bits[start : start + batch] = bits

    records: Dict[str, np.ndarray] = {}
    for key, lengths in key_meta.items():
        occs = [planes[(key, occ)] for occ in range(len(lengths))]
        if len(occs) == 1:
            records[key] = occs[0]
        else:
            # Rep-major interleave of this key's occurrences, matching
            # the serial append order.
            records[key] = np.stack(occs, axis=1).reshape(-1, lengths[0])
    return records, all_bits
