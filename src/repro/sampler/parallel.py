"""Process-parallel trajectory sampling.

Quantum-trajectory mode (noisy circuits, mid-circuit measurement,
sum-over-Cliffords) runs one independent walk per repetition — an
embarrassingly parallel loop.  This module fans those walks out over a
process pool, the standard Python answer to CPU-bound parallelism (the
GIL rules out threads for the NumPy-light per-gate bookkeeping).

The cost model matters: each task ships the circuit and re-builds the
simulator in the worker, so parallelism pays off when per-trajectory work
is substantial (many gates, stabilizer branching) and loses below that.
``chunk`` sizing amortizes the dispatch overhead; the ablation benchmark
``bench_ablations.py`` quantifies the crossover.

Factories must be importable (module-level) callables: workers receive
them by pickling.  Closures and lambdas work only with the ``fork`` start
method, which is the default used here when the platform provides it.

Seeding is deterministic: chunk ``i``'s worker seed is derived from
``SeedSequence([user_seed, i])`` (see :func:`_chunk_seeds`), never from
ambient entropy or sequential draws whose position depends on pool
geometry, so identically seeded runs with the same worker/chunk
configuration reproduce bit-for-bit on any platform.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from .results import Result
from .simulator import Simulator

SimulatorFactory = Callable[[int], Simulator]
"""``(seed) -> Simulator``; called once per worker chunk."""


def _run_chunk(
    factory: SimulatorFactory,
    circuit: Circuit,
    repetitions: int,
    seed: int,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Worker body: build a simulator and run one chunk of repetitions."""
    simulator = factory(seed)
    records, bits = simulator._execute(circuit, repetitions, None)
    return records, bits


def _chunk_sizes(repetitions: int, num_chunks: int) -> List[int]:
    num_chunks = min(num_chunks, repetitions)
    base, extra = divmod(repetitions, num_chunks)
    return [base + (1 if i < extra else 0) for i in range(num_chunks)]


def _chunk_seeds(
    seed: Union[int, np.random.Generator, None], num_chunks: int
) -> List[int]:
    """Per-chunk worker seeds derived deterministically from the user seed.

    Chunk ``i`` receives the first word of ``SeedSequence([base, i])`` —
    a stable function of the user seed and the chunk *index* alone, so
    identically seeded runs hand every worker the same stream, streams of
    different chunks are statistically independent (unlike raw sequential
    ``integers()`` draws), and chunk ``i``'s seed does not shift when the
    total chunk count changes.  ``None`` draws a fresh entropy base;
    passing a Generator consumes one draw from it for the base.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(2**62))
    elif seed is None:
        base = int(np.random.SeedSequence().entropy) % 2**62
    else:
        base = int(seed)
    return [
        int(np.random.SeedSequence([base, i]).generate_state(1, np.uint64)[0])
        >> 2
        for i in range(num_chunks)
    ]


def sample_trajectories_parallel(
    factory: SimulatorFactory,
    circuit: Circuit,
    repetitions: int,
    *,
    num_workers: Optional[int] = None,
    chunks_per_worker: int = 1,
    seed: Union[int, np.random.Generator, None] = None,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Run ``repetitions`` independent trajectories across a process pool.

    Args:
        factory: Picklable ``(seed) -> Simulator`` builder.
        circuit: The circuit to sample (must be parameter-free).
        repetitions: Total repetitions, split across workers.
        num_workers: Pool size; defaults to ``os.cpu_count()``.
        chunks_per_worker: >1 gives smaller tasks (better load balance,
            more dispatch overhead).
        seed: Seeds the per-chunk seed stream.  Worker seeds are derived
            per chunk index via ``SeedSequence([seed, index])``, so two
            identically seeded runs with the same worker/chunk
            configuration produce identical histograms on any platform
            (no dependence on process scheduling or ambient entropy).

    Returns:
        ``(records, bits)`` with the same layout as ``Simulator._execute``:
        keyed measurement records and the full ``(repetitions, n)`` array.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = max(1, int(num_workers))

    sizes = _chunk_sizes(repetitions, num_workers * max(1, chunks_per_worker))
    seeds = _chunk_seeds(seed, len(sizes))

    if num_workers == 1 or len(sizes) == 1:
        parts = [
            _run_chunk(factory, circuit, size, s)
            for size, s in zip(sizes, seeds)
        ]
    else:
        context = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_context()
        )
        with ProcessPoolExecutor(
            max_workers=num_workers, mp_context=context
        ) as pool:
            futures = [
                pool.submit(_run_chunk, factory, circuit, size, s)
                for size, s in zip(sizes, seeds)
            ]
            parts = [f.result() for f in futures]

    all_bits = np.concatenate([bits for _, bits in parts], axis=0)
    keys = parts[0][0].keys()
    records = {
        key: np.concatenate([rec[key] for rec, _ in parts], axis=0)
        for key in keys
    }
    return records, all_bits


def run_parallel(
    factory: SimulatorFactory,
    circuit: Circuit,
    repetitions: int,
    **kwargs,
) -> Result:
    """Parallel :meth:`Simulator.run`: keyed measurement records."""
    records, _ = sample_trajectories_parallel(
        factory, circuit, repetitions, **kwargs
    )
    if not records:
        raise ValueError(
            "Circuit has no measurements; use sample_trajectories_parallel "
            "for raw bitstrings."
        )
    return Result(records)
