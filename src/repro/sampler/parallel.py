"""Process-parallel trajectory sampling (legacy factory-based API).

Quantum-trajectory mode (noisy circuits, mid-circuit measurement,
sum-over-Cliffords) runs one independent walk per repetition — an
embarrassingly parallel loop.  This module fans those walks out over a
process pool through the shared machinery in
:mod:`repro.sampler.executors`.

This is the *factory* cost model: each task ships ``(factory, circuit)``
and re-builds the simulator (and recompiles the plan) in the worker, so
factories may close over unpicklable pieces only under the ``fork`` start
method.  New code should prefer
``Simulator(..., executor=ProcessPoolExecutor(...))``, which compiles the
plan once, ships it with a packed initial-state snapshot per *worker*
(not per task), and hands each task just ``(chunk_size, chunk_seed)``.
This wrapper is kept because its seeding contract is pinned: chunk ``i``'s
worker seed is ``SeedSequence([user_seed, i])`` — a pure function of the
user seed and chunk index — so identically seeded runs with the same
worker/chunk configuration reproduce bit-for-bit on any platform.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from .executors import (
    _chunk_seeds,
    _chunk_sizes,
    _merge_parts,
    run_factory_chunks,
)
from .results import Result
from .simulator import Simulator

SimulatorFactory = Callable[[int], Simulator]
"""``(seed) -> Simulator``; called once per worker chunk."""


def sample_trajectories_parallel(
    factory: SimulatorFactory,
    circuit: Circuit,
    repetitions: int,
    *,
    num_workers: Optional[int] = None,
    chunks_per_worker: int = 1,
    seed: Union[int, np.random.Generator, None] = None,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Run ``repetitions`` independent trajectories across a process pool.

    Args:
        factory: Picklable ``(seed) -> Simulator`` builder.
        circuit: The circuit to sample (must be parameter-free).
        repetitions: Total repetitions, split across workers.
        num_workers: Pool size; defaults to ``os.cpu_count()``.
        chunks_per_worker: >1 gives smaller tasks (better load balance,
            more dispatch overhead).
        seed: Seeds the per-chunk seed stream.  Worker seeds are derived
            per chunk index via ``SeedSequence([seed, index])``, so two
            identically seeded runs with the same worker/chunk
            configuration produce identical histograms on any platform
            (no dependence on process scheduling or ambient entropy).

    Returns:
        ``(records, bits)`` with the same layout as ``Simulator._execute``:
        keyed measurement records and the full ``(repetitions, n)`` array.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = max(1, int(num_workers))

    sizes = _chunk_sizes(repetitions, num_workers * max(1, chunks_per_worker))
    seeds = _chunk_seeds(seed, len(sizes))
    parts = run_factory_chunks(factory, circuit, sizes, seeds, num_workers)
    return _merge_parts(parts)


def run_parallel(
    factory: SimulatorFactory,
    circuit: Circuit,
    repetitions: int,
    **kwargs,
) -> Result:
    """Parallel :meth:`Simulator.run`: keyed measurement records."""
    records, _ = sample_trajectories_parallel(
        factory, circuit, repetitions, **kwargs
    )
    if not records:
        raise ValueError(
            "Circuit has no measurements; use sample_trajectories_parallel "
            "for raw bitstrings."
        )
    return Result(records)
