"""Baseline samplers the paper compares against.

* :class:`QubitByQubitSimulator` — the *conventional* algorithm (paper
  Sec. 2): fully evolve the circuit once, then for each repetition measure
  qubits sequentially, computing each qubit's marginal conditioned on the
  bits already fixed.  This is the ``f(n, 2d)``-cost comparator.
* :class:`ExactDistributionSampler` — samples directly from the exact final
  probability vector (dense states only); the "ideal distribution" used for
  the overlap analyses of Figs. 4-5.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from .results import Result


class QubitByQubitSimulator:
    """Conventional qubit-by-qubit sampling over any simulation state.

    Uses the state's own ``measure`` (marginal + collapse) machinery: one
    full circuit evolution, then ``n`` sequential marginal computations per
    repetition, each on a fresh copy of the final state.
    """

    def __init__(
        self,
        initial_state,
        apply_op: Callable,
        *,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        self.initial_state = initial_state
        self.apply_op = apply_op
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    def run(
        self,
        circuit: Circuit,
        repetitions: int = 1,
        param_resolver: Union[ParamResolver, dict, None] = None,
    ) -> Result:
        records = self._records(circuit, repetitions, param_resolver)
        if not records:
            raise ValueError("Circuit has no measurements")
        return Result(records)

    def sample_bitstrings(
        self,
        circuit: Circuit,
        repetitions: int = 1,
        param_resolver=None,
    ) -> np.ndarray:
        """Final full-register bitstrings, shape ``(repetitions, n)``."""
        resolved = circuit.resolve_parameters(param_resolver)
        final = self._evolve(resolved)
        n = len(final.qubits)
        out = np.empty((repetitions, n), dtype=np.int8)
        for rep in range(repetitions):
            state = final.copy(seed=int(self._rng.integers(2**62)))
            # Sequential single-qubit measurements: each call computes the
            # marginal given previously collapsed qubits.
            for axis in range(n):
                out[rep, axis] = state.measure([axis])[0]
        return out

    def _evolve(self, circuit: Circuit):
        state = self.initial_state.copy(seed=int(self._rng.integers(2**62)))
        for op in circuit.all_operations():
            if op.is_measurement:
                continue
            self.apply_op(op, state)
        return state

    def _records(self, circuit, repetitions, param_resolver) -> Dict[str, np.ndarray]:
        resolved = circuit.resolve_parameters(param_resolver)
        if not resolved.are_all_measurements_terminal():
            raise ValueError(
                "QubitByQubitSimulator only supports terminal measurements"
            )
        bits = self.sample_bitstrings(resolved, repetitions)
        state = self.initial_state
        records: Dict[str, np.ndarray] = {}
        for op in resolved.all_operations():
            if op.is_measurement:
                cols = [state.qubit_index[q] for q in op.qubits]
                records[op.measurement_key] = bits[:, cols].copy()
        return records


class ExactDistributionSampler:
    """Samples bitstrings from the exact final distribution.

    Only works with states exposing the full probability vector (dense
    state vector / density matrix); used as the ground-truth reference for
    overlap computations.
    """

    def __init__(
        self,
        initial_state,
        apply_op: Callable,
        *,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        self.initial_state = initial_state
        self.apply_op = apply_op
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    def final_distribution(self, circuit: Circuit, param_resolver=None) -> np.ndarray:
        """Exact Born probabilities of all ``2**n`` outcomes."""
        resolved = circuit.resolve_parameters(param_resolver)
        state = self.initial_state.copy(seed=int(self._rng.integers(2**62)))
        for op in resolved.all_operations():
            if op.is_measurement:
                continue
            self.apply_op(op, state)
        if hasattr(state, "state_vector"):
            probs = np.abs(np.asarray(state.state_vector())) ** 2
        elif hasattr(state, "diagonal_probabilities"):
            probs = state.diagonal_probabilities()
        else:
            raise TypeError(
                f"{type(state).__name__} exposes no full distribution"
            )
        return probs / probs.sum()

    def sample_bitstrings(
        self, circuit: Circuit, repetitions: int = 1, param_resolver=None
    ) -> np.ndarray:
        """IID samples from the exact distribution, shape ``(reps, n)``."""
        probs = self.final_distribution(circuit, param_resolver)
        n = int(np.log2(probs.shape[0]))
        outcomes = self._rng.choice(probs.shape[0], size=repetitions, p=probs)
        out = np.empty((repetitions, n), dtype=np.int8)
        for j in range(n):
            out[:, j] = (outcomes >> (n - 1 - j)) & 1
        return out
