"""The BGLS sampler: gate-by-gate sampling, baselines, sum-over-Cliffords,
cached Programs, pluggable executors, process-parallel trajectories."""

from .baseline import ExactDistributionSampler, QubitByQubitSimulator
from .calibration import (
    CalibrationTable,
    shared_calibration_table,
    width_bucket,
)
from .executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    TaskTimeoutError,
)
from .jobs import (
    JobCancelled,
    JobHandle,
    ResultExpired,
    SamplingService,
)
from .schedule import (
    AdaptiveScheduler,
    FifoScheduler,
    ScheduledTask,
    Scheduler,
    WorkStealingScheduler,
    estimate_cost,
    estimate_job_cost,
)
from .service import PoolManager, shared_pool_manager, shutdown_shared_pool
from .near_clifford import (
    act_on_near_clifford,
    count_non_clifford_gates,
    rotation_branch_weights,
    stabilizer_extent_circuit,
    stabilizer_extent_rz,
)
from .parallel import run_parallel, sample_trajectories_parallel
from .plan import ExecutionPlan, OpRecord, compile_plan
from .result_planes import (
    PointPlanes,
    live_segment_names,
    plane_layout,
    release_leaked_segments,
    shm_available,
)
from .program import (
    Program,
    circuit_fingerprint,
    clear_program_cache,
    compiled_program,
    program_cache_info,
)
from .results import Result, plot_state_histogram
from .simulator import Simulator
from .stabilizer_noise import (
    act_on_near_clifford_with_pauli_noise,
    act_on_with_pauli_noise,
)

__all__ = [
    "Simulator",
    "ExecutionPlan",
    "OpRecord",
    "compile_plan",
    "Program",
    "circuit_fingerprint",
    "compiled_program",
    "program_cache_info",
    "clear_program_cache",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "TaskTimeoutError",
    "Scheduler",
    "FifoScheduler",
    "AdaptiveScheduler",
    "WorkStealingScheduler",
    "ScheduledTask",
    "estimate_cost",
    "estimate_job_cost",
    "SamplingService",
    "JobHandle",
    "JobCancelled",
    "ResultExpired",
    "CalibrationTable",
    "shared_calibration_table",
    "width_bucket",
    "PoolManager",
    "shared_pool_manager",
    "shutdown_shared_pool",
    "PointPlanes",
    "plane_layout",
    "shm_available",
    "live_segment_names",
    "release_leaked_segments",
    "Result",
    "plot_state_histogram",
    "QubitByQubitSimulator",
    "ExactDistributionSampler",
    "act_on_near_clifford",
    "rotation_branch_weights",
    "stabilizer_extent_rz",
    "stabilizer_extent_circuit",
    "count_non_clifford_gates",
    "run_parallel",
    "sample_trajectories_parallel",
    "act_on_with_pauli_noise",
    "act_on_near_clifford_with_pauli_noise",
]
