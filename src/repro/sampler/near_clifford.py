"""Sum-over-Cliffords gate application (paper Sec. 4.2).

Any diagonal rotation ``R(theta) = exp(-i Z theta / 2)`` decomposes exactly
into Clifford terms (Bravyi et al. 2019):

    R(theta) = (cos(theta/2) - sin(theta/2)) I
             + sqrt(2) exp(-i pi/4) sin(theta/2) S

``act_on_near_clifford`` applies Clifford gates exactly and, for each
``Rz``-like gate (incl. T = R(pi/4)), substitutes I or S stochastically
with probability proportional to the magnitude of its coefficient.  A
single trajectory therefore explores one of the ``2^{#R}`` branches, which
is why the sampler must rerun per repetition and why the attained overlap
lags for non-Clifford circuits (Figs. 4-5).
"""

from __future__ import annotations

import math
from typing import Tuple


from ..circuits.gates import ZPowGate
from ..circuits.operations import GateOperation
from ..protocols.stabilizer import has_stabilizer_effect, stabilizer_sequence
from ..states.stabilizer import StabilizerChFormSimulationState


def rotation_branch_weights(theta: float) -> Tuple[float, float]:
    """(|c_I|, |c_S|) for the sum-over-Cliffords split of R(theta)."""
    c_i = abs(math.cos(theta / 2.0) - math.sin(theta / 2.0))
    c_s = abs(math.sqrt(2.0) * math.sin(theta / 2.0))
    return c_i, c_s


def stabilizer_extent_rz(theta: float) -> float:
    """Stabilizer extent ``zeta`` of R(theta): squared 1-norm of the ideal
    decomposition — the paper's heuristic for "how non-Clifford" a gate is."""
    c_i, c_s = rotation_branch_weights(theta)
    return (c_i + c_s) ** 2


def count_non_clifford_gates(circuit) -> int:
    """Number of operations sum-over-Cliffords must expand stochastically."""
    count = 0
    for op in circuit.all_operations():
        if op.is_measurement:
            continue
        if op._stabilizer_sequence_() is None:
            count += 1
    return count


def stabilizer_extent_circuit(circuit) -> float:
    """Multiplicative stabilizer-extent estimate of a Clifford+Rz circuit.

    The extent is multiplicative over tensor products and submultiplicative
    over composition, so the product of per-gate extents upper-bounds the
    circuit extent (Bravyi et al. 2019).  It governs the sampling overhead
    of sum-over-Cliffords: ~``zeta`` trajectories are needed per effective
    sample.  Raises for gates that are neither Clifford nor ZPowGate.
    """
    total = 1.0
    for op in circuit.all_operations():
        if op.is_measurement or op._stabilizer_sequence_() is not None:
            continue
        gate = op.gate
        if isinstance(gate, ZPowGate) and not gate._is_parameterized_():
            total *= stabilizer_extent_rz(float(gate.exponent) * math.pi)
            continue
        raise ValueError(
            f"No extent formula for non-Clifford operation {op!r}; "
            "only ZPowGate rotations are supported."
        )
    return total


def act_on_near_clifford(
    op: GateOperation, state: StabilizerChFormSimulationState
) -> None:
    """Apply ``op`` to a stabilizer state, expanding Rz gates stochastically.

    Clifford operations (checked via :func:`has_stabilizer_effect`) apply
    exactly; ``ZPowGate`` rotations choose I or S following the relative
    coefficient magnitudes; anything else raises ``ValueError``.
    """
    if op.is_measurement:
        state.measure(state.axes_of(op.qubits))
        return
    seq = stabilizer_sequence(op)
    if seq is not None:
        state.apply_stabilizer_sequence(seq, state.axes_of(op.qubits))
        return
    gate = op.gate
    if isinstance(gate, ZPowGate) and not gate._is_parameterized_():
        theta = float(gate.exponent) * math.pi  # R(theta) up to global phase
        c_i, c_s = rotation_branch_weights(theta)
        total = c_i + c_s
        axis = state.axes_of(op.qubits)[0]
        if state.rng.random() < c_s / total:
            state.ch_form.apply_s(axis)
        # I branch: nothing to apply.
        return
    if has_stabilizer_effect(op):
        raise ValueError(
            f"{op!r} is Clifford but provides no stabilizer decomposition; "
            "express it through H/S/CNOT-family gates."
        )
    raise ValueError(
        f"Cannot apply non-Clifford operation {op!r}; only Clifford gates "
        "and Rz(theta)/ZPowGate rotations are supported."
    )


# The Simulator checks this flag: stochastic gate application means samples
# cannot share a wavefunction, so the dict parallelization is disabled.
act_on_near_clifford._bgls_stochastic_ = True  # type: ignore[attr-defined]
