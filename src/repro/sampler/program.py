"""Cached, parameter-aware compiled Programs (compile once / run many).

``compile_plan`` gives one resolved circuit one :class:`ExecutionPlan`; this
module adds the layer above it: a :class:`Program` compiles a (possibly
parameterized) circuit's *structure* exactly once — qubit validation,
support axes, measurement keys, unitary/stabilizer-sequence/Kraus caches,
the diagonal flags, moment-fusion grouping — and then *specializes* per
parameter resolver, rebuilding only the records whose gates actually
depend on the resolver.  A 20-point QAOA sweep therefore pays the full
compilation cost once; each sweep point re-derives only its ``Rz``/``Rx``
unitaries, while every Hadamard, CNOT and measurement record (and every
fully parameter-free moment, pre-fused) is shared by all 20 plans.

Programs are cached process-wide, keyed by (circuit fingerprint, qubit
register, state type, ``apply_op``, fuse flag).  The fingerprint is
structural — every gate and qubit of every moment — so mutating a circuit
in place or toggling ``fuse_moments`` misses the cache and recompiles,
while re-running an identical circuit (even a separately-built equal one)
hits.  Cache traffic is observable through :func:`program_cache_info`,
which the plan-cache tests and ``benchmarks/bench_program_cache.py`` use
to assert the compile-once behavior.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..protocols.act_on import act_on
from ..states.registry import capabilities_for
from .plan import (
    MAX_FUSED_SUPPORT,
    ExecutionPlan,
    FusedOpRecord,
    OpRecord,
    _is_fusible,
)


def _gate_key(gate):
    """A cache-exact key for one gate.

    Most gates key on themselves (their equality is exact on the defining
    parameters).  ``MatrixGate`` equality is ``np.allclose`` and its hash
    covers only the shape, which would alias nearly-equal matrices (e.g.
    finite-difference perturbations) onto one cached Program — so matrix
    gates key on their exact bytes instead, recursively through controls.
    """
    matrix = getattr(gate, "_matrix", None)
    if matrix is not None:
        return (type(gate).__name__, matrix.shape, matrix.tobytes())
    sub = getattr(gate, "sub_gate", None)
    if sub is not None:
        return (
            type(gate).__name__,
            getattr(gate, "num_controls", None),
            _gate_key(sub),
        )
    return gate


def circuit_fingerprint(circuit: Circuit) -> Tuple:
    """A hashable structural key of a circuit: every (gate, qubits) pair of
    every moment, in order.  Equal circuits fingerprint equal; any in-place
    mutation (appended op, swapped gate, perturbed matrix) changes the
    fingerprint."""
    return tuple(
        tuple((_gate_key(op.gate), op.qubits) for op in moment.operations)
        for moment in circuit.moments
    )


# Bounded size of each Program's per-resolver specialization cache.
_SPECIALIZE_CACHE_MAX = 128
_CACHE_STATS_ZERO = {"hits": 0, "misses": 0, "evictions": 0, "uncachable": 0}


def _resolver_cache_key(resolver) -> Optional[Tuple]:
    """A hashable key for one resolver's assignments, or None.

    :class:`~repro.circuits.parameters.ParamResolver` exposes its
    (name -> float) assignments, which key exactly.  Anything that cannot
    be keyed — a custom resolver object without ``_assignments``, or
    assignments holding unhashable values such as arrays — returns None,
    and ``specialize`` falls back to an uncached rebuild instead of
    guessing at equality.
    """
    assignments = getattr(resolver, "_assignments", None)
    if not isinstance(assignments, dict):
        return None
    try:
        key = tuple(sorted(assignments.items()))
        hash(key)
    except TypeError:
        return None
    return key


class _ParamSlot:
    """A parameterized operation's placeholder in a compiled Program."""

    __slots__ = ("op", "support")

    def __init__(self, op, support: Tuple[int, ...]):
        self.op = op
        self.support = support


class Program:
    """A circuit compiled once against a backend, specializable per resolver.

    The constructor performs all resolver-independent work: register
    validation, measurement-key collection, per-op record construction
    (cached unitaries, stabilizer sequences, Kraus forms, branching
    decisions), fast-path selection through the backend capability
    registry, and moment fusion for every parameter-free moment.
    Parameterized operations compile into :class:`_ParamSlot` placeholders;
    :meth:`specialize` fills them per resolver and re-runs only the fusion
    grouping of the moments that contain them, so the record stream is
    identical to compiling the resolved circuit directly.

    Specializations are memoized per resolved parameter tuple in a
    bounded LRU (``_SPECIALIZE_CACHE_MAX`` entries): an optimizer loop or
    grid refinement revisiting a point gets the *same* plan object back
    without touching the param slots — which also makes that plan a
    stable identity key for the warm process pool
    (:mod:`repro.sampler.service`).  Resolvers whose assignments cannot
    be keyed (custom resolver objects, array-valued assignments) fall
    back to an uncached rebuild — always correct, never cached.

    Counters: ``specializations`` increments per specialize call;
    ``shared_record_count``/``param_slot_count`` say how much of the
    circuit is compiled once versus per point;
    :meth:`specialize_cache_info` exposes the memoization traffic
    (hits/misses/evictions/uncachable) for the benchmarks and tests.
    """

    __slots__ = (
        "num_qubits",
        "state_type",
        "apply_op",
        "fuse_moments",
        "key_axes",
        "fast_stab",
        "fast_unitary",
        "shared_record_count",
        "param_slot_count",
        "specializations",
        "_can_fuse",
        "_handles_channels",
        "_exact_channels",
        "_structural_traj",
        "_nonparam_all_unitary",
        "_segments",
        "_base_plan",
        "_plan_cache",
        "_plan_cache_stats",
    )

    def __init__(self, circuit: Circuit, state, apply_op, *, fuse_moments: bool = True):
        _require_register(state)
        qubit_index = state.qubit_index
        missing = [q for q in circuit.all_qubits() if q not in qubit_index]
        if missing:
            raise ValueError(f"Circuit qubits not in state register: {missing}")
        caps = capabilities_for(state)
        self.num_qubits = len(state.qubits)
        self.state_type = type(state)
        self.apply_op = apply_op
        self.fuse_moments = fuse_moments
        self._handles_channels = getattr(apply_op, "_bgls_handles_channels_", False)
        self._exact_channels = caps.exact_channels
        default_apply = apply_op is act_on
        self.fast_stab = default_apply and caps.stabilizer_sequences
        self.fast_unitary = default_apply and caps.base_unitary_dispatch
        self._can_fuse = fuse_moments and (
            (self.fast_stab and caps.fused_moments)
            or (not self.fast_stab and self.fast_unitary)
        )

        key_axes: Dict[str, Tuple[int, ...]] = {}
        measured = set()
        all_terminal = True
        nonparam_all_unitary = True
        # Segments: ("fixed", [records...]) stretches are fully compiled
        # (fused) here and shared verbatim by every specialization;
        # ("moment", [entry...]) stretches contain at least one _ParamSlot
        # and re-assemble per resolver.
        segments: List[Tuple[str, list]] = []
        shared_records = 0
        param_slots = 0
        for moment in circuit.moments:
            entries: list = []
            has_param = False
            for op in moment.operations:
                support = tuple(qubit_index[q] for q in op.qubits)
                if any(q in measured for q in op.qubits):
                    all_terminal = False
                if op.is_measurement:
                    key = op.measurement_key
                    if key in key_axes:
                        raise ValueError(f"Duplicate measurement key {key!r}")
                    key_axes[key] = support
                    measured.update(op.qubits)
                    entries.append(OpRecord(op, support))
                    shared_records += 1
                elif op._is_parameterized_():
                    entries.append(_ParamSlot(op, support))
                    has_param = True
                    param_slots += 1
                else:
                    rec = self._finish_record(OpRecord(op, support))
                    if rec.unitary is None:
                        nonparam_all_unitary = False
                    entries.append(rec)
                    shared_records += 1
            if has_param:
                segments.append(("moment", entries))
            else:
                assembled = self._assemble_moment(entries)
                if segments and segments[-1][0] == "fixed":
                    segments[-1][1].extend(assembled)
                else:
                    segments.append(("fixed", assembled))

        self.key_axes = key_axes
        self._segments = segments
        self._structural_traj = (
            getattr(apply_op, "_bgls_stochastic_", False) or not all_terminal
        )
        self._nonparam_all_unitary = nonparam_all_unitary
        self.shared_record_count = shared_records
        self.param_slot_count = param_slots
        self.specializations = 0
        self._base_plan: Optional[ExecutionPlan] = None
        self._plan_cache: "OrderedDict[Tuple, ExecutionPlan]" = OrderedDict()
        self._plan_cache_stats = dict(_CACHE_STATS_ZERO)

    def __getstate__(self):
        """Pickle everything except the per-process specialize cache.

        Programs ship to pool workers inside the warm-pool payload; the
        worker rebuilds its own (initially empty) memoization state
        rather than inheriting — and re-shipping — the parent's cached
        plans.
        """
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_plan_cache", "_plan_cache_stats")
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._plan_cache = OrderedDict()
        self._plan_cache_stats = dict(_CACHE_STATS_ZERO)

    # ------------------------------------------------------------------
    def _finish_record(self, rec: OpRecord) -> OpRecord:
        """Attach the resolver-independent branching decision."""
        rec.needs_branching = (
            not self._handles_channels
            and not self._exact_channels
            and rec.unitary is None
            and rec.kraus is not None
        )
        return rec

    def _assemble_moment(self, records: list) -> list:
        """One moment's records in final plan order (fused groups first).

        Matches ``compile_plan`` exactly: fusible single-qubit Clifford
        records group into :class:`FusedOpRecord` chunks of at most
        ``MAX_FUSED_SUPPORT`` qubits ahead of the remaining records
        (operations within a moment are disjoint, so reordering is sound);
        groups of one stay plain.
        """
        if not self._can_fuse:
            return list(records)
        fusible: List[OpRecord] = []
        rest: list = []
        for rec in records:
            (fusible if _is_fusible(rec) else rest).append(rec)
        out: list = []
        for start in range(0, len(fusible), MAX_FUSED_SUPPORT):
            group = fusible[start : start + MAX_FUSED_SUPPORT]
            out.append(group[0] if len(group) == 1 else FusedOpRecord(group))
        out.extend(rest)
        return out

    @property
    def is_parameterized(self) -> bool:
        return self.param_slot_count > 0

    @property
    def needs_trajectories(self) -> bool:
        """Whether specializations of this Program run in trajectory mode.

        Computed from compile-time structure alone (no plan build): a
        stochastic ``apply_op``, a mid-circuit measurement, or any
        non-unitary fixed record forces trajectories.  Parameter slots
        resolve to eigen-gate unitaries, so they never flip this after
        specialization; the cost model reads it without specializing.
        """
        return self._structural_traj or not self._nonparam_all_unitary

    def specialize(
        self, param_resolver: Union[ParamResolver, dict, None] = None
    ) -> ExecutionPlan:
        """The :class:`ExecutionPlan` for one resolver assignment.

        Parameter-free programs return one cached plan regardless of the
        resolver (resolution cannot change them).  Parameterized programs
        rebuild only their ``_ParamSlot`` records — everything else,
        including whole pre-fused parameter-free moments, is shared with
        every other specialization of this Program — and the result is
        memoized per resolved parameter tuple, so re-specializing an
        already-seen assignment returns the identical plan object without
        rebuilding anything.
        """
        resolver = (
            ParamResolver(param_resolver)
            if isinstance(param_resolver, dict)
            else param_resolver
        )
        self.specializations += 1
        if self.param_slot_count == 0:
            if self._base_plan is None:
                records: list = []
                for _, entries in self._segments:
                    records.extend(entries)
                self._base_plan = ExecutionPlan(
                    records,
                    self.key_axes,
                    self.num_qubits,
                    self._structural_traj or not self._nonparam_all_unitary,
                    self.fast_stab,
                    self.fast_unitary,
                )
            return self._base_plan
        if resolver is None:
            raise ValueError("Circuit still has unresolved parameters")
        key = _resolver_cache_key(resolver)
        if key is None:
            self._plan_cache_stats["uncachable"] += 1
            return self._build_plan(resolver)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache_stats["hits"] += 1
            self._plan_cache.move_to_end(key)
            return cached
        self._plan_cache_stats["misses"] += 1
        plan = self._build_plan(resolver)
        self._plan_cache[key] = plan
        if len(self._plan_cache) > _SPECIALIZE_CACHE_MAX:
            self._plan_cache.popitem(last=False)
            self._plan_cache_stats["evictions"] += 1
        return plan

    def specialize_cache_info(self) -> Dict[str, int]:
        """Memoization counters: hits, misses, evictions, uncachable, size."""
        return {**self._plan_cache_stats, "size": len(self._plan_cache)}

    def clear_specialize_cache(self) -> None:
        """Drop the memoized plans and reset the counters (tests)."""
        self._plan_cache.clear()
        self._plan_cache_stats = dict(_CACHE_STATS_ZERO)

    def _build_plan(self, resolver) -> ExecutionPlan:
        """Rebuild the ``_ParamSlot`` records for one resolver (uncached)."""
        all_unitary = self._nonparam_all_unitary
        records = []
        for kind, entries in self._segments:
            if kind == "fixed":
                records.extend(entries)
                continue
            moment_records = []
            for entry in entries:
                if type(entry) is _ParamSlot:
                    rec = self._finish_record(
                        OpRecord(entry.op._resolve_parameters_(resolver), entry.support)
                    )
                    if rec.unitary is None:
                        all_unitary = False
                    moment_records.append(rec)
                else:
                    moment_records.append(entry)
            records.extend(self._assemble_moment(moment_records))
        return ExecutionPlan(
            records,
            self.key_axes,
            self.num_qubits,
            self._structural_traj or not all_unitary,
            self.fast_stab,
            self.fast_unitary,
        )


def _require_register(state) -> None:
    """Reject bare backend states (no qubit register) with a typed error.

    Raw engine states like ``StabilizerChForm(num_qubits=2)`` carry
    amplitudes but no qubit register, so the Program path — which keys
    the cache on ``state.qubits`` and maps circuit qubits through
    ``state.qubit_index`` — cannot compile against them.  Instead of the
    opaque ``AttributeError`` that used to escape here, raise a
    ``TypeError`` naming the fix: wrap the engine in its registered
    ``*SimulationState`` sibling, which carries the register (and the
    ``_act_on_`` dispatch every run API needs).
    """
    if not hasattr(state, "qubits") or not hasattr(state, "qubit_index"):
        raise TypeError(
            f"{type(state).__name__} has no qubit register (missing "
            "'qubits'/'qubit_index'), so it cannot be compiled into a "
            "Program. Wrap the bare engine state in its SimulationState "
            f"sibling (e.g. {type(state).__name__}SimulationState(qubits)) "
            "before constructing a Simulator."
        )


# ----------------------------------------------------------------------
# process-wide Program cache
# ----------------------------------------------------------------------

_PROGRAM_CACHE: "OrderedDict[Tuple, Program]" = OrderedDict()
_PROGRAM_CACHE_MAX = 128
_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def compiled_program(
    circuit: Circuit, state, apply_op, fuse_moments: bool = True
) -> Program:
    """The cached :class:`Program` for (circuit, backend, apply_op, fuse).

    The key is (structural fingerprint, qubit register, state type,
    ``apply_op``, fuse flag): any in-place circuit mutation, backend swap,
    or fuse toggle misses and recompiles; identical re-runs and sweeps hit.
    Entries are evicted least-recently-used beyond ``_PROGRAM_CACHE_MAX``.

    A bare backend state without a qubit register raises ``TypeError``
    (see :func:`_require_register`) before the cache key is built.
    """
    _require_register(state)
    key = (
        circuit_fingerprint(circuit),
        tuple(state.qubits),
        type(state),
        apply_op,
        fuse_moments,
    )
    program = _PROGRAM_CACHE.get(key)
    if program is not None:
        _STATS["hits"] += 1
        _PROGRAM_CACHE.move_to_end(key)
        return program
    _STATS["misses"] += 1
    program = Program(circuit, state, apply_op, fuse_moments=fuse_moments)
    _PROGRAM_CACHE[key] = program
    if len(_PROGRAM_CACHE) > _PROGRAM_CACHE_MAX:
        _PROGRAM_CACHE.popitem(last=False)
        _STATS["evictions"] += 1
    return program


def program_cache_info() -> Dict[str, int]:
    """Cache counters: hits, misses, evictions, current size."""
    return {**_STATS, "size": len(_PROGRAM_CACHE)}


def clear_program_cache() -> None:
    """Drop all cached Programs and reset the counters (tests)."""
    _PROGRAM_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0


__all__ = [
    "Program",
    "circuit_fingerprint",
    "compiled_program",
    "program_cache_info",
    "clear_program_cache",
]
