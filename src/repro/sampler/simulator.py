"""The BGLS Simulator: gate-by-gate sampling (paper Secs. 2-3).

The algorithm (Bravyi-Gosset-Liu, PRL 128, 220503 (2022)):

1. Start with bitstring ``b = 0...0`` and the initial state.
2. For each gate: apply it to the state; enumerate all *candidate*
   bitstrings that agree with ``b`` off the gate's support; resample the
   support bits of ``b`` from the candidates' Born probabilities.
3. After the last gate, ``b`` is a sample of the final distribution.

It substitutes bitstring-probability queries (cost ``f(n, d)``) for the
marginal computations of the conventional qubit-by-qubit sampler (cost
``~f(n, 2d)``).

Implemented features from the paper:

* **Automatic sample parallelization** (Sec. 3.2.3): all repetitions evolve
  together as a dict ``{bitstring: multiplicity}``, bounded by ``2^n``
  unique entries — runtime saturates at large repetition counts (Fig. 2).
* **Quantum trajectories** (Sec. 3.2.1): circuits with channels, mid-circuit
  measurements, or stochastic ``apply_op`` functions (sum-over-Cliffords)
  fall back to one independent walk per repetition.
* **Pluggable states** (Sec. 3.1): any object with ``copy``/``qubit_index``
  works; ``apply_op`` and ``compute_probability`` are user-supplied
  functions, exactly like the reference API.  Backends registered through
  :func:`repro.states.registry.register_backend` additionally get the
  batched candidate fast paths, exactly like the shipped states.

Execution is layered:

* the **backend registry** answers every capability question (batched
  oracles, stabilizer fast paths, renormalization, snapshots) once per
  backend type;
* :meth:`Simulator.compile` returns a process-wide cached
  :class:`~repro.sampler.program.Program` — the circuit's structure
  compiled once; per-resolver :meth:`~repro.sampler.program.Program.specialize`
  rebuilds only resolver-dependent records, which is what makes
  :meth:`run_sweep` and :meth:`run_batch` cheap parameter-scan APIs;
* an optional **executor** (:mod:`repro.sampler.executors`) decides where
  the specialized plan's repetitions run — in-process (default), in
  deterministic seeded chunks, or across a **warm** process pool
  (:mod:`repro.sampler.service`) whose workers receive the compiled
  plan/Program and a packed initial-state snapshot once and stay alive
  across calls; :meth:`Simulator.run_sweep` can additionally fan whole
  sweep points (``scope="points"``) across those workers, bit-for-bit
  identical to the serial sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..born import candidate_function_for, many_candidate_function_for
from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..states.registry import capabilities_for
from .plan import ExecutionPlan, OpRecord
from .program import Program, compiled_program
from .requests import (
    normalize_repetitions,
    normalize_run_request,
    normalize_seed,
    normalize_trajectory_mode,
    normalize_trajectory_tile,
)
from .results import Result

BitTuple = Tuple[int, ...]


class Simulator:
    """Gate-by-gate sampler over a pluggable quantum state.

    Args:
        initial_state: The state object (e.g.
            :class:`~repro.states.StateVectorSimulationState`); must expose
            ``qubits``, ``qubit_index`` and ``copy``.
        apply_op: Function ``(operation, state) -> None`` updating the state
            in place; usually :func:`repro.protocols.act_on`.
        compute_probability: Function ``(state, bitstring) -> float``
            returning the Born probability of a full bitstring, e.g. the
            functions in :mod:`repro.born`.
        compute_candidate_probabilities: Optional batched version
            ``(state, bitstring, support) -> ndarray`` of all ``2^k``
            candidate probabilities.  Defaults to the registered sibling of
            a known ``compute_probability``, else a per-candidate loop.
        seed: RNG seed/generator for all sampling decisions.  An integer
            seed also anchors the deterministic per-point streams of
            :meth:`run_sweep`/:meth:`run_batch` and chunked executors.
        skip_diagonal_updates: When True, candidate resampling is skipped
            for gates whose unitary is diagonal (their conditional output
            distribution is unchanged); an optimization ablation.
        fuse_moments: When True (default), moments of disjoint single-qubit
            Clifford gates compile into fused records: one batched state
            update and one union-support resampling round per group.  The
            sampled distribution is identical; the RNG draw sequence is
            not, so pass False to reproduce historical per-gate streams.
        executor: Optional :class:`~repro.sampler.executors.Executor`
            deciding where repetitions run (serial chunks, process pool).
            None (default) runs in-process off this simulator's RNG.
        trajectory_mode: How trajectory-mode plans (channels, mid-circuit
            measurement) execute their repetitions.  ``"serial"`` (the
            default) walks the plan once per repetition — the historical
            loop with its pinned RNG draw order.  ``"batched"``/``"auto"``
            run repetition stacks through the vectorized engine
            (:mod:`repro.sampler.trajectory_batch`) when the backend
            advertises the ``batched_trajectories`` capability and the
            plan qualifies, falling back to the serial loop otherwise.
            Batched mode is a separately-pinned deterministic contract:
            trajectory ``r`` of point ``p`` draws from
            ``SeedSequence([base_seed, p, rep_base + r])``, so output is
            bit-for-bit reproducible and independent of tile size and
            worker count — but (by construction) not bit-for-bit equal to
            serial mode's interleaved draw order.
        trajectory_tile: Optional cap on the batched engine's tile width
            (trajectories simulated per stacked pass).  None uses the
            built-in memory budget; output never depends on the tile.
    """

    def __init__(
        self,
        initial_state,
        apply_op: Callable,
        compute_probability: Callable,
        *,
        compute_candidate_probabilities: Optional[Callable] = None,
        seed: Union[int, np.random.Generator, None] = None,
        skip_diagonal_updates: bool = False,
        fuse_moments: bool = True,
        executor=None,
        trajectory_mode: str = "serial",
        trajectory_tile: Optional[int] = None,
    ):
        self.initial_state = initial_state
        self.apply_op = apply_op
        self.compute_probability = compute_probability
        self.user_candidate_function = compute_candidate_probabilities
        if compute_candidate_probabilities is None:
            compute_candidate_probabilities = candidate_function_for(
                compute_probability
            )
        # Resolve the candidate backend once; the run loops never branch on
        # "is there a batched function?" per gate.
        self._candidates = (
            compute_candidate_probabilities
            if compute_candidate_probabilities is not None
            else self._candidate_loop
        )
        # Cross-bitstring batching: one call per gate answers the whole
        # {bitstring: multiplicity} front of parallel mode.  Only used for
        # registered backends, and never overrides a user candidate fn.
        self._candidates_many = (
            None
            if self.user_candidate_function is not None
            else many_candidate_function_for(compute_probability)
        )
        # All argument validation lives in sampler.requests — one shared
        # normalizer for the whole run* surface, pinned by
        # tests/test_error_contracts.py.
        self.seed = normalize_seed(seed)
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.skip_diagonal_updates = skip_diagonal_updates
        self.fuse_moments = fuse_moments
        self.executor = executor
        self.trajectory_mode = normalize_trajectory_mode(trajectory_mode)
        self.trajectory_tile = normalize_trajectory_tile(trajectory_tile)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        repetitions: int = 1,
        param_resolver: Union[ParamResolver, dict, None] = None,
    ) -> Result:
        """Sample measurement records, Cirq-style.

        Requires at least one keyed measurement in the circuit.
        """
        records, _ = self._execute(circuit, repetitions, param_resolver)
        if not records:
            raise ValueError(
                "Circuit has no measurements; add measure(...) operations "
                "or use sample_bitstrings for raw final bitstrings."
            )
        return Result(records)

    def sample(self, circuit: Circuit, repetitions: int = 1, **kw) -> Result:
        """Alias of :meth:`run`."""
        return self.run(circuit, repetitions, **kw)

    def compile(self, circuit: Circuit) -> Program:
        """The cached :class:`Program` for ``circuit`` on this backend.

        Keyed by (circuit fingerprint, qubit register, backend type,
        ``apply_op``, fuse flag) in a process-wide LRU cache
        (:func:`repro.sampler.program.program_cache_info` exposes the
        counters).  Mutating the circuit, switching backend type, or
        toggling ``fuse_moments`` misses and recompiles; repeated runs and
        sweeps of an identical circuit hit and share all
        resolver-independent op records.
        """
        return compiled_program(
            circuit, self.initial_state, self.apply_op, self.fuse_moments
        )

    def run_sweep(
        self,
        circuit: Circuit,
        params: Sequence[Union[ParamResolver, dict, None]],
        repetitions: int = 1,
        scope: str = "auto",
    ) -> List["Result"]:
        """Run the circuit once per parameter resolver (Cirq-style sweep).

        The QAOA example (paper Sec. 4.4) is exactly this pattern: one
        parameterized template, many (gamma, beta) assignments.  The
        template compiles **once**; each sweep point re-specializes only
        the resolver-dependent records (cost: a few small matrix builds,
        memoized per resolved parameter tuple) instead of recompiling the
        whole circuit.

        ``scope`` chooses the unit of parallelism:

        * ``"points"`` — fan whole sweep points across the executor's
          (warm) process pool, one single-seeded stream per point.  Sweep
          points are independent, so this parallelizes the sweep itself —
          not just each point's repetitions — while staying bit-for-bit
          identical to a serial executor-free ``run_sweep``.  Without a
          point-capable executor it degrades to that serial loop.
        * ``"repetitions"`` — the pre-point-scope behavior: each point
          runs through :meth:`the executor's execute <Executor.execute>`
          with its own repetition-chunk geometry.
        * ``"auto"`` (default) — ``"points"`` when the executor fans
          points (:class:`~repro.sampler.executors.ProcessPoolExecutor`),
          else ``"repetitions"``.

        Seeding is deterministic in every scope: point ``i`` draws from a
        fresh generator seeded with ``SeedSequence([user_seed, i])`` — the
        PR-2 worker-seed scheme — so two identically seeded simulators
        produce bit-for-bit identical sweeps, a point's stream does not
        depend on how many points precede it, and repeated ``run_sweep``
        calls on one integer-seeded simulator return identical results
        (matching :func:`repro.sampler.parallel.sample_trajectories_parallel`).
        """
        return list(self.run_sweep_iter(circuit, params, repetitions, scope))

    def run_sweep_iter(
        self,
        circuit: Circuit,
        params: Sequence[Union[ParamResolver, dict, None]],
        repetitions: int = 1,
        scope: str = "auto",
    ):
        """Streaming :meth:`run_sweep`: yield each point's :class:`Result`
        as soon as it completes.

        Same compiled Program, same deterministic per-point seeding, same
        ``scope`` semantics — ``list(run_sweep_iter(...))`` equals
        ``run_sweep(...)`` bit-for-bit.  The difference is *when* results
        surface: with a point-capable pooled executor, point ``i`` is
        yielded the moment its last chunk lands (and all earlier points
        are out) while later points are still running in the workers;
        serially, each point is yielded before the next one starts.
        Argument validation and compilation happen eagerly at call time;
        only the execution is lazy.

        An abandoned iterator (``close()``, early ``break``) cancels
        what it can and releases every shared-memory result plane —
        streaming never leaks segments.  A pooled executor configured
        with ``task_timeout`` raises
        :class:`~repro.sampler.executors.TaskTimeoutError` from the
        iterator if no task completes within the bound (a wedged
        worker); the pool is killed and its planes released before the
        error surfaces, so the next call starts from a fresh pool.
        """
        parts = self._sweep_parts(circuit, params, repetitions, scope)

        def stream():
            for records, _ in parts:
                if not records:
                    raise ValueError(
                        "Circuit has no measurements; add measure(...) "
                        "operations before run_sweep."
                    )
                yield Result(records)

        return stream()

    def sample_bitstrings_sweep(
        self,
        circuit: Circuit,
        params: Sequence[Union[ParamResolver, dict, None]],
        repetitions: int = 1,
        scope: str = "auto",
    ) -> List[np.ndarray]:
        """Per-point final full-register bitstrings for a parameter sweep.

        The raw-bitstring sibling of :meth:`run_sweep` (same shared
        compiled Program, same deterministic per-point seeding, same
        ``scope`` semantics); returns one ``(repetitions, n)`` array per
        resolver.
        """
        return [
            bits
            for _, bits in self._sweep_parts(circuit, params, repetitions, scope)
        ]

    def _sweep_parts(
        self,
        circuit: Circuit,
        params: Sequence[Union[ParamResolver, dict, None]],
        repetitions: int,
        scope: str,
    ):
        """Shared sweep engine: one ``(records, bits)`` pair per resolver.

        Returns an *iterator* that yields points lazily in point order
        (the streaming substrate of :meth:`run_sweep_iter`); validation
        and compilation are eager.
        """
        request = normalize_run_request(self.executor, repetitions, scope)
        params = list(params)
        if not params:
            # An empty sweep has nothing to run — and nothing to compile.
            # Matching run_batch([]), it returns no points instead of
            # compiling (and later specializing) the still-parameterized
            # circuit, which cannot be resolved without a resolver.
            return iter(())
        program = self.compile(circuit)
        if request.fan_points:
            return self.executor.execute_sweep_iter(
                self, program, params, repetitions
            )
        if request.serial_point_streams:
            # Explicit point scope without a point-fanning executor: one
            # in-process stream per point — the serial contract pooled
            # point scope reproduces bit-for-bit.
            from .executors import _dispatch

            return (
                _dispatch(self, plan, repetitions, rng, ctx)
                for plan, rng, ctx in self._sweep_plans(program, params)
            )
        return (
            self._execute_plan(plan, repetitions, rng, ctx)
            for plan, rng, ctx in self._sweep_plans(program, params)
        )

    def run_batch(
        self,
        circuits: Sequence[Circuit],
        params: Optional[Sequence[Union[ParamResolver, dict, None]]] = None,
        repetitions: int = 1,
        scope: str = "auto",
    ) -> List["Result"]:
        """Run many circuits, one :class:`Result` each.

        ``params`` optionally gives one resolver per circuit.  Circuits
        share the process-wide Program cache, so a batch containing
        repeated (or structurally identical) circuits compiles each
        distinct one once.  Per-circuit seeds derive from
        ``SeedSequence([user_seed, index])`` exactly like :meth:`run_sweep`.

        ``scope`` mirrors :meth:`run_sweep`: with a point-capable
        executor, ``"points"``/``"auto"`` treat the whole heterogeneous
        batch as **one schedulable unit** — every distinct compiled
        Program ships to the warm pool's workers in a single program
        table, so N different circuits cost one worker initialization
        instead of N, tasks select their program in-worker, and the
        executor's scheduler may reorder or split points
        (:mod:`repro.sampler.schedule`).  With the default FIFO
        scheduler the output is bit-for-bit identical to the serial
        (executor-free) ``run_batch``; an
        :class:`~repro.sampler.schedule.AdaptiveScheduler` or
        :class:`~repro.sampler.schedule.WorkStealingScheduler` changes
        only *where* (and for split points, in how many deterministic
        chunks) each entry runs — the output stays a pure function of
        (batch, seed, scheduler config), never of placement or timing.
        ``"repetitions"`` runs each circuit through the executor's own
        repetition geometry — the pre-multi-program behavior, one
        execution key per circuit.
        """
        return list(self.run_batch_iter(circuits, params, repetitions, scope))

    def run_batch_iter(
        self,
        circuits: Sequence[Circuit],
        params: Optional[Sequence[Union[ParamResolver, dict, None]]] = None,
        repetitions: int = 1,
        scope: str = "auto",
    ):
        """Streaming :meth:`run_batch`: yield each circuit's
        :class:`Result` as soon as it completes.

        Same compiled Programs, deterministic seeding, and ``scope``
        semantics as :meth:`run_batch` — ``list(run_batch_iter(...))``
        equals ``run_batch(...)`` bit-for-bit; results stream strictly
        in batch order as points finish (see :meth:`run_sweep_iter` for
        the streaming and cleanup contract).  Validation and compilation
        are eager; execution is lazy.
        """
        if params is not None and len(params) != len(circuits):
            raise ValueError(
                f"Got {len(circuits)} circuits but {len(params)} resolvers"
            )
        request = normalize_run_request(self.executor, repetitions, scope)
        resolvers = list(params) if params is not None else [None] * len(circuits)
        if request.fan_points and circuits:
            programs = [self.compile(circuit) for circuit in circuits]
            parts = self.executor.execute_batch_iter(
                self, programs, resolvers, repetitions
            )
            return (self._batch_result(records) for records, _ in parts)
        base = self._sweep_base_seed()

        def stream():
            for index, circuit in enumerate(circuits):
                plan = self.compile(circuit).specialize(resolvers[index])
                rng = np.random.default_rng(
                    np.random.SeedSequence([base, index])
                )
                ctx = (base, index, 0)
                if request.serial_point_streams:
                    # Explicit point scope without a point-fanning
                    # executor: one in-process stream per circuit — the
                    # serial contract pooled batches reproduce
                    # bit-for-bit (mirrors the same branch in
                    # _sweep_parts), never the executor's own
                    # repetition-chunk geometry.
                    from .executors import _dispatch

                    records, _ = _dispatch(self, plan, repetitions, rng, ctx)
                else:
                    records, _ = self._execute_plan(
                        plan, repetitions, rng, ctx
                    )
                yield self._batch_result(records)

        return stream()

    @staticmethod
    def _batch_result(records: Dict[str, np.ndarray]) -> "Result":
        if not records:
            raise ValueError(
                "Circuit has no measurements; add measure(...) "
                "operations before run_batch."
            )
        return Result(records)

    def sample_bitstrings(
        self,
        circuit: Circuit,
        repetitions: int = 1,
        param_resolver: Union[ParamResolver, dict, None] = None,
    ) -> np.ndarray:
        """Final full-register bitstrings of shape ``(repetitions, n)``.

        Measurement operations are ignored for output purposes (mid-circuit
        ones still collapse the state in trajectory mode).
        """
        _, bits = self._execute(circuit, repetitions, param_resolver)
        return bits

    # ------------------------------------------------------------------
    # execution core
    # ------------------------------------------------------------------
    def _execute(
        self,
        circuit: Circuit,
        repetitions: int,
        param_resolver,
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        normalize_repetitions(repetitions)
        plan = self.compile(circuit).specialize(param_resolver)
        return self._execute_plan(plan, repetitions, None)

    def _execute_plan(
        self,
        plan: ExecutionPlan,
        repetitions: int,
        rng: Optional[np.random.Generator],
        ctx: Optional[Tuple[int, int, int]] = None,
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Hand a specialized plan to the configured execution strategy."""
        if self.executor is not None:
            return self.executor.execute(
                self, plan, repetitions, rng=rng, ctx=ctx
            )
        return self._run_plan(plan, repetitions, rng, ctx)

    def _run_plan(
        self,
        plan: ExecutionPlan,
        repetitions: int,
        rng: Optional[np.random.Generator],
        ctx: Optional[Tuple[int, int, int]] = None,
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Run a plan in-process, routing trajectory plans by mode.

        ``ctx = (base_seed, point_index, rep_base)`` is the batched
        engine's seeding anchor, threaded down by executors so pooled
        chunks of one point share ``base_seed`` and offset ``rep_base`` —
        which is exactly what makes batched output independent of chunk
        geometry and worker count.  When ``ctx`` is None (a plain
        ``run()``), a base seed is drawn from ``rng`` — only on the
        batched path, so serial mode's draw sequence is untouched.
        """
        if plan.needs_trajectories:
            if self.trajectory_mode != "serial":
                adapter_cls = self._batched_adapter(plan)
                if adapter_cls is not None:
                    if ctx is None:
                        source = rng if rng is not None else self._rng
                        ctx = (int(source.integers(2**62)), 0, 0)
                    from .trajectory_batch import run_batched_trajectories

                    return run_batched_trajectories(
                        self, plan, repetitions, ctx, adapter_cls
                    )
            return self._run_trajectories(plan, repetitions, rng=rng)
        return self._run_parallel(plan, repetitions, rng=rng)

    def _batched_adapter(self, plan: ExecutionPlan):
        """The batched-trajectory adapter class, or None to run serially.

        Eligibility is all-static: the default ``act_on`` dispatch (a
        custom ``apply_op`` could observe per-repetition state), no user
        candidate function, a backend advertising the
        ``batched_trajectories`` capability, and a plan the adapter
        declares supported.
        """
        from ..protocols.act_on import act_on

        if self.apply_op is not act_on:
            return None
        if self.user_candidate_function is not None:
            return None
        cap = capabilities_for(type(self.initial_state)).batched_trajectories
        if cap is None:
            return None
        adapter_cls = cap if hasattr(cap, "from_state") else cap()
        if not adapter_cls.supports_plan(plan):
            return None
        return adapter_cls

    def _sweep_base_seed(self) -> int:
        """The integer base anchoring per-point/per-circuit seed streams.

        Shares the executor layer's derivation so sweep seeding and chunk
        seeding stay one contract (serial-vs-pooled parity depends on it).
        """
        from .executors import _base_seed

        return _base_seed(self.seed)

    def _sweep_plans(self, program: Program, params):
        """Yield (plan, per-point rng, batched ctx) triples for a sweep.

        ``ctx = (base, point, 0)`` matches the pooled point-scope recipe,
        so serial and pooled sweeps agree bit-for-bit in batched mode
        exactly as they do in serial mode.
        """
        base = self._sweep_base_seed()
        for index, resolver in enumerate(params):
            plan = program.specialize(resolver)
            rng = np.random.default_rng(np.random.SeedSequence([base, index]))
            yield plan, rng, (base, index, 0)

    def _candidate_loop(
        self, state, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """Per-candidate fallback for user-supplied probability functions."""
        k = len(support)
        candidate = list(bits)
        out = np.empty(2**k)
        for idx in range(2**k):
            for pos, axis in enumerate(support):
                candidate[axis] = (idx >> (k - 1 - pos)) & 1
            out[idx] = self.compute_probability(state, candidate)
        return out

    def _candidate_probabilities(
        self, state, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """All ``2^k`` candidate probabilities for ``bits`` over ``support``."""
        return np.asarray(self._candidates(state, bits, support), dtype=float)

    @staticmethod
    def _normalize_probs(probs: np.ndarray) -> np.ndarray:
        """Clean float dust (tiny negatives, off-by-eps sums) and normalize."""
        probs = np.clip(np.asarray(probs, dtype=float), 0.0, None)
        total = probs.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError(
                "All candidate probabilities vanished; state and bitstring "
                "are inconsistent (is compute_probability correct?)"
            )
        probs /= total
        return probs

    @staticmethod
    def _normalize_prob_rows(probs: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`_normalize_probs` for a ``(B, 2^k)`` matrix."""
        probs = np.clip(np.asarray(probs, dtype=float), 0.0, None)
        totals = probs.sum(axis=1, keepdims=True)
        if not np.all(np.isfinite(totals)) or np.any(totals <= 0):
            raise ValueError(
                "All candidate probabilities vanished; state and bitstring "
                "are inconsistent (is compute_probability correct?)"
            )
        return probs / totals

    # -- parallel (dict-of-bitstrings) mode --------------------------------
    def _run_parallel(
        self,
        plan: ExecutionPlan,
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        rng = rng if rng is not None else self._rng
        state = self.initial_state.copy(seed=int(rng.integers(2**62)))
        n = plan.num_qubits
        counts: Dict[BitTuple, int] = {(0,) * n: repetitions}
        candidates = self._candidates
        apply_op = self.apply_op
        skip_diagonal = self.skip_diagonal_updates

        candidates_many = self._candidates_many
        for rec in plan.records:
            if rec.is_measurement:
                continue
            plan.apply(rec, state, apply_op)
            if skip_diagonal and rec.is_diagonal():
                continue
            support = rec.support
            k = len(support)
            bit_keys = list(counts.keys())
            if candidates_many is not None:
                prob_rows = candidates_many(state, bit_keys, support)
            else:
                prob_rows = [candidates(state, bits, support) for bits in bit_keys]
            prob_rows = self._normalize_prob_rows(np.asarray(prob_rows, dtype=float))
            mults = np.fromiter(
                (counts[bits] for bits in bit_keys), dtype=np.int64
            )
            # One vectorized multinomial resamples every tracked bitstring.
            draws = rng.multinomial(mults, prob_rows)
            new_counts: Dict[BitTuple, int] = {}
            for row, idx in zip(*np.nonzero(draws)):
                candidate = list(bit_keys[row])
                for pos, axis in enumerate(support):
                    candidate[axis] = (int(idx) >> (k - 1 - pos)) & 1
                key = tuple(candidate)
                new_counts[key] = new_counts.get(key, 0) + int(draws[row, idx])
            counts = new_counts

        all_bits = np.empty((repetitions, n), dtype=np.int8)
        row = 0
        for bits, mult in counts.items():
            all_bits[row : row + mult] = bits
            row += mult
        rng.shuffle(all_bits, axis=0)

        records = {}
        for key, axes in plan.key_axes.items():
            records[key] = all_bits[:, list(axes)].copy()
        return records, all_bits

    # -- trajectory mode -----------------------------------------------------
    def _run_trajectories(
        self,
        plan: ExecutionPlan,
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        rng = rng if rng is not None else self._rng
        n = plan.num_qubits
        per_key: Dict[str, List[List[int]]] = {}
        all_bits = np.empty((repetitions, n), dtype=np.int8)
        candidates = self._candidates
        apply_op = self.apply_op
        skip_diagonal = self.skip_diagonal_updates

        for rep in range(repetitions):
            state = self.initial_state.copy(seed=int(rng.integers(2**62)))
            bits = [0] * n
            for rec in plan.records:
                support = rec.support
                if rec.is_measurement:
                    outcome = [bits[axis] for axis in support]
                    per_key.setdefault(rec.measurement_key, []).append(outcome)
                    state.project(support, outcome)
                    continue
                if rec.needs_branching:
                    state, probs = self._apply_channel_branch(
                        rec, state, bits, support, rng
                    )
                else:
                    plan.apply(rec, state, apply_op)
                    if skip_diagonal and rec.is_diagonal():
                        continue
                    probs = candidates(state, bits, support)
                self._assign_support(bits, support, probs, rng)
            all_bits[rep] = bits

        records = {
            key: np.asarray(rows, dtype=np.int8) for key, rows in per_key.items()
        }
        return records, all_bits

    def _assign_support(
        self,
        bits: List[int],
        support: Sequence[int],
        probs: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Resample the support bits of ``bits`` from candidate ``probs``."""
        draws = rng.multinomial(1, self._normalize_probs(probs))
        idx = int(np.flatnonzero(draws)[0])
        for pos, axis in enumerate(support):
            bits[axis] = (idx >> (len(support) - 1 - pos)) & 1

    def _apply_channel_branch(
        self,
        rec: OpRecord,
        state,
        bits: Sequence[int],
        support: Sequence[int],
        rng: np.random.Generator,
    ):
        """Conditional Kraus-branch selection (quantum trajectories).

        Branch k is chosen with weight ``||P_rest K_k psi||^2`` (the summed
        candidate probabilities), which makes the final bitstring exactly a
        sample of the channel output's diagonal: the off-support marginal
        is preserved by trace preservation, and within the branch the
        candidates are resampled from the correct conditional.

        Only pure-state representations reach this path: the plan marks a
        record ``needs_branching`` when neither the state (density
        matrices apply channels exactly) nor ``apply_op`` (flagged
        ``_bgls_handles_channels_``) owns the branch choice.  A global
        (state-side) choice could land on a branch under which the tracked
        bitstring has probability zero — exact zeros are common in
        stabilizer-like states — breaking the trajectory.
        """
        kraus = rec.kraus
        trials = []
        probses = []
        weights = []
        for k_op in kraus:
            trial = state.copy(seed=int(rng.integers(2**62)))
            trial.apply_unitary(np.asarray(k_op), support)  # linear map
            probs = self._candidate_probabilities(trial, bits, support)
            trials.append(trial)
            probses.append(probs)
            weights.append(float(probs.sum()))
        try:
            branch_probs = self._normalize_probs(np.asarray(weights))
        except ValueError as exc:
            raise ValueError(
                "Channel branches all annihilated the tracked bitstring; "
                "the state and bitstring are inconsistent."
            ) from exc
        choice = int(rng.choice(len(kraus), p=branch_probs))
        chosen = trials[choice]
        # Registry capability, not a hasattr probe: backends declare
        # renormalization support once.
        if capabilities_for(type(chosen)).renormalize:
            chosen.renormalize()
        return chosen, probses[choice]
