"""Matrix-product-state simulation (paper Sec. 4.3) and observables."""

from .observables import (
    bond_dimension_profile,
    entanglement_entropy,
    inner_product,
    pauli_expectation,
    schmidt_values,
    truncation_infidelity,
)
from .options import MPSOptions
from .state import MPSState

__all__ = [
    "MPSOptions",
    "MPSState",
    "inner_product",
    "pauli_expectation",
    "schmidt_values",
    "entanglement_entropy",
    "bond_dimension_profile",
    "truncation_infidelity",
]
