"""Matrix-product-state simulation state (paper Sec. 4.3).

Mirrors ``cirq.contrib.quimb.MPSState``: one tensor per qubit; two-qubit
gates contract the two site tensors with the gate and split the result by
SVD, creating/merging a bond between the two sites.  No global
re-canonicalization is performed, so sites accumulate one bond per distinct
partner — exactly the structure whose contraction cost the paper studies
(cheap at low entanglement, exponential for the random GHZ workload).

Bitstring amplitudes follow the paper's ``mps_bitstring_probability``:
``isel`` every physical index down to the bit value and contract the small
remaining network.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.qubits import Qid
from ..states.base import SimulationState
from ..tensornet import Tensor, TensorNetwork
from .options import MPSOptions


class MPSState(SimulationState):
    """MPS/tensor-network simulation state.

    Args:
        qubits: Ordered qubit register.
        options: SVD truncation policy (:class:`MPSOptions`).
        initial_state: Computational-basis index to start from.
        seed: RNG for stochastic branches.
    """

    def __init__(
        self,
        qubits: Sequence[Qid],
        options: Optional[MPSOptions] = None,
        initial_state: int = 0,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        super().__init__(qubits, seed)
        self.options = options or MPSOptions()
        n = self.num_qubits
        self.tensors: List[Tensor] = []
        for k in range(n):
            bit = (int(initial_state) >> (n - 1 - k)) & 1
            vec = np.zeros(2, dtype=np.complex128)
            vec[bit] = 1.0
            self.tensors.append(Tensor(vec, (self.i_str(k),)))
        self._bond_counter = 0
        self.estimated_fidelity = 1.0
        self._init_env_caches()

    # -- environment caches (live across gates of one run) -------------------
    _ENV_CACHE_MAX = 8192
    """Safety cap on cached environment tensors; a full clear past this
    bound keeps memory proportional to the tracked front, not the run."""

    def _init_env_caches(self) -> None:
        # Left entries are keyed by the bit prefix (b_0..b_{L-1}) and hold
        # the contraction of sites 0..L-1 sliced to those bits; right
        # entries mirror that from the chain's other end.  Both depend only
        # on the *tensors* of the sites they cover, so they stay valid
        # across gates — and across whole candidate_probabilities_many
        # calls — until a gate touches a covered site.
        self._left_env_cache: Dict[Tuple[int, ...], Tensor] = {}
        self._right_env_cache: Dict[Tuple[int, ...], Tensor] = {}
        self.env_cache_hits = 0
        self.env_cache_misses = 0

    def _invalidate_envs(self, lo_axis: int, hi_axis: int) -> None:
        """Drop environments covering any site in ``[lo_axis, hi_axis]``.

        A left entry of key length ``L`` covers sites ``0..L-1`` — stale
        iff ``L > lo_axis``; a right entry of length ``L`` covers sites
        ``n-L..n-1`` — stale iff ``L >= n - hi_axis``.  Everything else
        (prefixes strictly left of the gate, suffixes strictly right of
        it) survives, which is the whole point: a two-qubit gate on bond
        ``(j, j+1)`` keeps all environments outside that bond alive.
        """
        if self._left_env_cache:
            self._left_env_cache = {
                key: env
                for key, env in self._left_env_cache.items()
                if len(key) <= lo_axis
            }
        if self._right_env_cache:
            keep = self.num_qubits - hi_axis
            self._right_env_cache = {
                key: env
                for key, env in self._right_env_cache.items()
                if len(key) < keep
            }

    # -- index bookkeeping ---------------------------------------------------
    def i_str(self, k: int) -> str:
        """Physical index name of site ``k`` (mirrors quimb MPSState)."""
        return f"i{k}"

    def _new_bond(self) -> str:
        self._bond_counter += 1
        return f"b{self._bond_counter}"

    def bond_dimension(self, k: int) -> int:
        """Product of all bond dimensions attached to site ``k``."""
        t = self.tensors[k]
        dims = [d for ind, d in zip(t.inds, t.shape) if ind != self.i_str(k)]
        return int(np.prod(dims)) if dims else 1

    def max_bond_dimension(self) -> int:
        """Largest single bond dimension in the network."""
        best = 1
        for k, t in enumerate(self.tensors):
            for ind, d in zip(t.inds, t.shape):
                if ind != self.i_str(k):
                    best = max(best, d)
        return best

    # -- gate application -----------------------------------------------------
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        if len(axes) == 1:
            self._apply_one_qubit(np.asarray(u, dtype=np.complex128), axes[0])
        elif len(axes) == 2:
            self._apply_two_qubit(np.asarray(u, dtype=np.complex128), axes[0], axes[1])
        else:
            raise ValueError(
                f"MPSState supports 1- and 2-qubit gates, got {len(axes)} "
                "qubits; decompose larger gates first."
            )

    def _apply_one_qubit(self, u: np.ndarray, axis: int) -> None:
        self._invalidate_envs(axis, axis)
        phys = self.i_str(axis)
        gate = Tensor(u.reshape(2, 2), (phys + "'", phys))
        site = self.tensors[axis]
        merged = self._contract_pair(gate, site)
        self.tensors[axis] = merged.reindex({phys + "'": phys})

    def _apply_two_qubit(self, u: np.ndarray, a: int, b: int) -> None:
        self._invalidate_envs(min(a, b), max(a, b))
        pa, pb = self.i_str(a), self.i_str(b)
        gate = Tensor(u.reshape(2, 2, 2, 2), (pa + "'", pb + "'", pa, pb))
        ta, tb = self.tensors[a], self.tensors[b]
        bonds_a = [i for i in ta.inds if i != pa and i not in tb.inds]
        bonds_b = [i for i in tb.inds if i != pb and i not in ta.inds]
        merged = self._contract_pair(self._contract_pair(ta, tb), gate)
        merged = merged.reindex({pa + "'": pa, pb + "'": pb})

        left_inds = [pa] + bonds_a
        right_inds = [pb] + bonds_b
        matrix = merged.fuse([left_inds, right_inds])
        u_mat, s, v_mat = np.linalg.svd(matrix, full_matrices=False)

        keep = s > self.options.cutoff * (s[0] if s.size else 1.0)
        keep_count = max(1, int(np.count_nonzero(keep)))
        if self.options.max_bond is not None:
            keep_count = min(keep_count, self.options.max_bond)
        kept_norm = float(np.linalg.norm(s[:keep_count]))
        total_norm = float(np.linalg.norm(s))
        if total_norm > 0:
            self.estimated_fidelity *= (kept_norm / total_norm) ** 2
        s = s[:keep_count]
        if self.options.renormalize and kept_norm > 0:
            s = s * (total_norm / kept_norm)
        u_mat = u_mat[:, :keep_count]
        v_mat = v_mat[:keep_count, :]

        sqrt_s = np.sqrt(s)
        bond = self._new_bond()
        left_shape = [merged.ind_size(i) for i in left_inds] + [keep_count]
        right_shape = [keep_count] + [merged.ind_size(i) for i in right_inds]
        new_a = Tensor(
            (u_mat * sqrt_s).reshape(left_shape), left_inds + [bond]
        )
        new_b = Tensor(
            (sqrt_s[:, None] * v_mat).reshape(right_shape), [bond] + right_inds
        )
        self.tensors[a] = new_a
        self.tensors[b] = new_b

    @staticmethod
    def _contract_pair(x: Tensor, y: Tensor) -> Tensor:
        from ..tensornet.tensor import contract_pair

        return contract_pair(x, y)

    # -- channels & measurement -------------------------------------------------
    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        """Quantum-trajectory Kraus selection (norms via full contraction)."""
        branches = []
        weights = []
        for op in kraus:
            trial = self.copy(seed=self._rng)
            trial.apply_unitary(op, axes)  # not unitary; norm handled below
            weight = trial.norm_squared()
            branches.append(trial)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise ValueError("Channel annihilated the state")
        probs = np.asarray(weights) / total
        choice = int(self._rng.choice(len(kraus), p=probs))
        chosen = branches[choice]
        self.tensors = chosen.tensors
        self._bond_counter = chosen._bond_counter
        self.estimated_fidelity = chosen.estimated_fidelity
        # The whole tensor list was swapped out; no environment survives.
        self._left_env_cache.clear()
        self._right_env_cache.clear()
        # Renormalize by the branch weight.
        self.tensors[0] = Tensor(
            self.tensors[0].data / math.sqrt(weights[choice]),
            self.tensors[0].inds,
        )

    def measure(self, axes: Sequence[int]) -> List[int]:
        bits: List[int] = []
        for axis in axes:
            p0 = self._outcome_weight(axis, 0)
            p1 = self._outcome_weight(axis, 1)
            total = p0 + p1
            bit = int(self._rng.random() < p1 / total)
            proj = np.zeros((2, 2), dtype=np.complex128)
            proj[bit, bit] = 1.0 / math.sqrt((p0, p1)[bit] / total)
            self._apply_one_qubit(proj, axis)
            bits.append(bit)
        return bits

    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        """Collapse ``axes`` onto known outcome ``bits`` (renormalized)."""
        for axis, bit in zip(axes, bits):
            weight = self._outcome_weight(axis, int(bit))
            if weight <= 0:
                raise ValueError("Projected onto a zero-probability outcome")
            total = self.norm_squared()
            proj = np.zeros((2, 2), dtype=np.complex128)
            proj[int(bit), int(bit)] = math.sqrt(total / weight)
            self._apply_one_qubit(proj, axis)

    def _outcome_weight(self, axis: int, bit: int) -> float:
        reduced = [
            t.isel({self.i_str(axis): bit}) if k == axis else t
            for k, t in enumerate(self.tensors)
        ]
        return TensorNetwork(reduced).norm_squared()

    # -- amplitudes (the paper's core MPS contribution) ----------------------------
    @staticmethod
    def _contract_in_site_order(tensors) -> Tensor:
        """Fold tensors left to right.

        For site-ordered MPS-like networks this is near-optimal (the running
        frontier holds only the bonds crossing the current cut) and avoids
        the O(T^2) pair search of the generic greedy contractor — the
        difference between MPS beating or losing to the dense state vector
        at moderate widths (Fig. 7).
        """
        from ..tensornet.tensor import contract_pair

        result = tensors[0]
        for t in tensors[1:]:
            result = contract_pair(result, t)
        return result

    def amplitude_of(self, bits: Sequence[int]) -> complex:
        """Amplitude ``<bits|psi>`` by slicing then contracting (Sec. 4.3.2)."""
        m_sub = []
        for k, tensor in enumerate(self.tensors):
            qindx = self.i_str(k)
            m_sub.append(tensor.isel({qindx: int(bits[k])}))
        value = self._contract_in_site_order(m_sub)
        return complex(value.data.reshape(-1)[0])

    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring."""
        return float(abs(self.amplitude_of(bits)) ** 2)

    def candidate_amplitudes(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """Amplitudes of all ``2^k`` candidates varying over ``support``.

        Slices every non-support physical index and contracts once, keeping
        the support's physical legs free — one contraction instead of 2^k.
        """
        support = list(support)
        reduced = []
        for k, tensor in enumerate(self.tensors):
            if k in support:
                reduced.append(tensor)
            else:
                reduced.append(tensor.isel({self.i_str(k): int(bits[k])}))
        out_inds = [self.i_str(k) for k in support]
        result = self._contract_in_site_order(reduced)
        if result.data.ndim == 0:
            return result.data.reshape(1)
        result = result.transpose_to(out_inds)
        return result.data.reshape(-1)

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """Born probabilities of candidates over ``support`` (unnormalized)."""
        return np.abs(self.candidate_amplitudes(bits, support)) ** 2

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """A ``(B, 2^k)`` candidate-probability matrix for ``B`` bitstrings.

        The parallel-mode front shares its sliced-network contractions
        through left/right *environment caches*: the partial contraction of
        the sites left (right) of the support is keyed by the bit prefix
        (suffix) that produced it, so bitstrings agreeing on a prefix reuse
        the same environment tensor instead of re-contracting the chain,
        and the ``2^k`` candidates of each off-support pattern come from a
        single contraction with the support legs kept free (as in
        :meth:`candidate_amplitudes`).  Identical off-support patterns are
        deduplicated outright.

        The caches live on the state and survive *across gates of one
        run*: an environment depends only on the tensors of the sites it
        covers, so applying a gate invalidates just the prefixes reaching
        into the gate's site range (:meth:`_invalidate_envs`) and every
        other entry is reused by later gates' fronts — e.g. a gate at the
        right end of the chain re-pays none of its left environments.
        ``env_cache_hits``/``env_cache_misses`` count lookups for the
        regression tests and the environment-cache benchmark.
        """
        from ..tensornet.tensor import contract_pair

        n = self.num_qubits
        support = [int(a) for a in support]
        k = len(support)
        base = np.asarray(bits_list, dtype=np.int8)
        if base.ndim != 2 or base.shape[1] != n:
            raise ValueError(f"Expected (B, {n}) bitstrings, got {base.shape}")
        support_set = set(support)
        off_axes = [a for a in range(n) if a not in support_set]
        off_bits = base[:, off_axes] if off_axes else base[:, :0]
        uniq, inverse = np.unique(off_bits, axis=0, return_inverse=True)
        lo, hi = min(support), max(support)
        out_inds = [self.i_str(a) for a in support]

        if (
            len(self._left_env_cache) > self._ENV_CACHE_MAX
            or len(self._right_env_cache) > self._ENV_CACHE_MAX
        ):
            self._left_env_cache.clear()
            self._right_env_cache.clear()
        left_cache = self._left_env_cache
        right_cache = self._right_env_cache

        def left_env(bits: np.ndarray) -> Optional[Tensor]:
            env: Optional[Tensor] = None
            key: Tuple[int, ...] = ()
            for j in range(lo):
                key = key + (int(bits[j]),)
                cached = left_cache.get(key)
                if cached is None:
                    self.env_cache_misses += 1
                    sliced = self.tensors[j].isel({self.i_str(j): int(bits[j])})
                    cached = sliced if env is None else contract_pair(env, sliced)
                    left_cache[key] = cached
                else:
                    self.env_cache_hits += 1
                env = cached
            return env

        def right_env(bits: np.ndarray) -> Optional[Tensor]:
            env: Optional[Tensor] = None
            key: Tuple[int, ...] = ()
            for j in range(n - 1, hi, -1):
                key = (int(bits[j]),) + key
                cached = right_cache.get(key)
                if cached is None:
                    self.env_cache_misses += 1
                    sliced = self.tensors[j].isel({self.i_str(j): int(bits[j])})
                    cached = sliced if env is None else contract_pair(sliced, env)
                    right_cache[key] = cached
                else:
                    self.env_cache_hits += 1
                env = cached
            return env

        out_uniq = np.empty((uniq.shape[0], 2**k))
        full = np.zeros(n, dtype=np.int8)
        for row, pattern in enumerate(uniq):
            full[off_axes] = pattern
            parts: List[Tensor] = []
            env_l = left_env(full)
            if env_l is not None:
                parts.append(env_l)
            for j in range(lo, hi + 1):
                t = self.tensors[j]
                parts.append(
                    t if j in support_set else t.isel({self.i_str(j): int(full[j])})
                )
            env_r = right_env(full)
            if env_r is not None:
                parts.append(env_r)
            result = self._contract_in_site_order(parts)
            if result.data.ndim > 0:
                result = result.transpose_to(out_inds)
            out_uniq[row] = np.abs(result.data.reshape(-1)) ** 2
        return out_uniq[inverse]

    def renormalize(self) -> None:
        """Rescale to unit norm (after non-unitary linear maps)."""
        norm_sq = self.norm_squared()
        if norm_sq <= 0:
            raise ValueError("Cannot renormalize the zero state")
        self._invalidate_envs(0, 0)
        self.tensors[0] = Tensor(
            self.tensors[0].data / math.sqrt(norm_sq), self.tensors[0].inds
        )

    # -- global queries ----------------------------------------------------------
    def norm_squared(self) -> float:
        """<psi|psi> of the current (possibly truncated) network."""
        return TensorNetwork(list(self.tensors)).norm_squared()

    def state_vector(self) -> np.ndarray:
        """Dense wavefunction (exponential; for small-n verification)."""
        out_inds = [self.i_str(k) for k in range(self.num_qubits)]
        result = TensorNetwork(list(self.tensors)).contract(output_inds=out_inds)
        if isinstance(result, complex):  # pragma: no cover - n >= 1 always
            return np.asarray([result])
        return result.data.reshape(-1)

    # -- packed snapshot payloads (warm-pool worker shipping) ----------------
    def to_payload(self) -> Tuple:
        """``(bond_counter, fidelity, tensors)`` — the network as raw bytes.

        The tensor-network equivalent of the stabilizer backends'
        ``to_words``: each site tensor ships as ``(index names, shape,
        complex128 bytes)`` plus the bond metadata needed to keep
        evolving the restored state (the bond-name counter, so new bonds
        never collide with shipped ones, and the truncation-fidelity
        estimate).  Every component is a plain hashable value, so whole
        payloads compare with ``==`` — the property the warm-pool
        execution key relies on.  Environment caches are per-run scratch
        and intentionally do not ship.
        """
        tensors = tuple(
            (
                t.inds,
                t.shape,
                np.ascontiguousarray(t.data, dtype=np.complex128).tobytes(),
            )
            for t in self.tensors
        )
        return (self._bond_counter, float(self.estimated_fidelity), tensors)

    def restore_payload(self, payload: Tuple) -> None:
        """Inverse of :meth:`to_payload`: adopt a packed network in place.

        The restored tensors are writable copies (``frombuffer`` views
        are read-only), and the environment caches restart empty.
        """
        bond_counter, fidelity, tensors = payload
        self.tensors = [
            Tensor(
                np.frombuffer(raw, dtype=np.complex128).reshape(shape).copy(),
                inds,
            )
            for inds, shape, raw in tensors
        ]
        self._bond_counter = int(bond_counter)
        self.estimated_fidelity = float(fidelity)
        self._init_env_caches()

    def copy(self, seed=None) -> "MPSState":
        out = type(self).__new__(type(self))  # preserve subclasses
        SimulationState.__init__(out, self.qubits, seed)
        out.options = self.options
        out.tensors = [Tensor(t.data.copy(), t.inds) for t in self.tensors]
        out._bond_counter = self._bond_counter
        out.estimated_fidelity = self.estimated_fidelity
        out._init_env_caches()
        return out

    def __repr__(self) -> str:
        return (
            f"MPSState(num_qubits={self.num_qubits}, "
            f"max_bond_dim={self.max_bond_dimension()})"
        )


def snapshot_mps_state(state: MPSState) -> Tuple:
    """Registry ``snapshot`` hook: the MPS as raw tensor bytes.

    ``("mps", qubits, (max_bond, cutoff, renormalize), *to_payload())`` —
    smaller than pickling the state object (which drags along the RNG
    state, the qubit-index dict, and one ndarray envelope per tensor)
    and directly ``==``-comparable, which is how the warm pool decides
    whether already-initialized workers can be reused.  Restored states
    get a fresh RNG; the sampler's determinism never depends on the
    initial state's own generator (copies are re-seeded).
    """
    opts = state.options
    return (
        "mps",
        tuple(state.qubits),
        (opts.max_bond, opts.cutoff, opts.renormalize),
    ) + state.to_payload()


def restore_mps_state(payload: Tuple) -> MPSState:
    """Registry ``restore`` hook, inverse of :func:`snapshot_mps_state`."""
    tag, qubits, (max_bond, cutoff, renormalize) = payload[:3]
    if tag != "mps":  # pragma: no cover - defensive
        raise ValueError(f"Not an MPS snapshot payload: {tag!r}")
    state = MPSState.__new__(MPSState)
    SimulationState.__init__(state, qubits, None)
    state.options = MPSOptions(
        max_bond=max_bond, cutoff=cutoff, renormalize=renormalize
    )
    state.restore_payload(payload[3:])
    return state
