"""Truncation options for the MPS simulation state.

Plays the role of ``cirq.contrib.quimb.MPSOptions`` — including the paper's
QAOA customization (Sec. 4.4): a hard cap ``max_bond`` on the bond
dimension chi, which bounds the degree of entanglement representable and
keeps tensor contractions cheap for wide, shallow circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class MPSOptions:
    """SVD truncation policy applied after every two-qubit gate.

    Attributes:
        max_bond: Maximum bond dimension chi kept per bond (None = exact).
        cutoff: Relative singular-value threshold; values below
            ``cutoff * s_max`` are discarded.
        renormalize: Whether to rescale kept singular values so the state
            stays normalized after truncation.
    """

    max_bond: Optional[int] = None
    cutoff: float = 1e-12
    renormalize: bool = True

    def __post_init__(self) -> None:
        if self.max_bond is not None and self.max_bond < 1:
            raise ValueError(f"max_bond must be >= 1, got {self.max_bond}")
        if self.cutoff < 0:
            raise ValueError(f"cutoff must be >= 0, got {self.cutoff}")
