"""Observables and diagnostics on MPS states.

Inner products and Pauli-string expectations are genuine tensor-network
computations (polynomial at bounded bond dimension); the Schmidt-spectrum
helpers densify the state first and are small-``n`` verification tools —
the package-wide convention for anything exponential.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

import numpy as np

from ..circuits.qubits import Qid
from ..tensornet import Tensor, TensorNetwork
from .state import MPSState

_PAULIS: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def _physical_inds(state: MPSState) -> set:
    return {state.i_str(k) for k in range(state.num_qubits)}


def inner_product(a: MPSState, b: MPSState) -> complex:
    """``<a|b>`` contracted without densifying either network.

    Both states must share the same qubit register.  Bond indices are
    renamed per side so equal bond names never cross-contract; physical
    indices are shared and summed.
    """
    if a.qubits != b.qubits:
        raise ValueError("States must share the same qubit register")
    phys = _physical_inds(a)
    tensors: List[Tensor] = []
    for t in a.tensors:
        mapping = {i: (i if i in phys else i + "#a") for i in t.inds}
        tensors.append(t.conj().reindex(mapping))
    for t in b.tensors:
        mapping = {i: (i if i in phys else i + "#b") for i in t.inds}
        tensors.append(t.reindex(mapping))
    value = TensorNetwork(tensors).contract()
    return complex(value)


def pauli_expectation(
    state: MPSState, pauli_string: Mapping[Qid, str]
) -> float:
    """``<psi|P|psi> / <psi|psi>`` for a tensor-product Pauli ``P``.

    Args:
        state: The MPS.
        pauli_string: Map from qubit to 'X', 'Y' or 'Z' ('I' allowed and
            ignored); unlisted qubits are identity.
    """
    ket = state.copy(seed=0)
    for qubit, name in pauli_string.items():
        name = name.upper()
        if name not in _PAULIS:
            raise ValueError(f"Unknown Pauli {name!r} (want I/X/Y/Z)")
        if name == "I":
            continue
        axis = state.qubit_index[qubit]
        ket._apply_one_qubit(_PAULIS[name], axis)
    numerator = inner_product(state, ket)
    denominator = state.norm_squared()
    if denominator <= 0:
        raise ValueError("State has zero norm")
    value = numerator / denominator
    if abs(value.imag) > 1e-8:
        raise ValueError(
            f"Pauli expectation came out non-real ({value}); "
            "the state or string is inconsistent"
        )
    return float(value.real)


def schmidt_values(state: MPSState, cut: int) -> np.ndarray:
    """Schmidt coefficients across the bipartition ``[0, cut) | [cut, n)``.

    Densifies the state (exponential; small-``n`` verification only) and
    returns the singular values of the ``2^cut x 2^(n-cut)`` reshape,
    normalized to a unit vector.
    """
    n = state.num_qubits
    if not 1 <= cut <= n - 1:
        raise ValueError(f"cut must be in [1, {n - 1}], got {cut}")
    psi = state.state_vector()
    norm = np.linalg.norm(psi)
    if norm <= 0:
        raise ValueError("State has zero norm")
    matrix = (psi / norm).reshape(2**cut, 2 ** (n - cut))
    return np.linalg.svd(matrix, compute_uv=False)


def entanglement_entropy(
    state: MPSState, cut: int, base: float = 2.0
) -> float:
    """Von Neumann entropy of the reduced state left of ``cut``.

    0 for product states; ``min(cut, n-cut)`` bits at most; 1 bit for a
    Bell pair split down the middle.  Densifies (small-``n`` diagnostic).
    """
    lam = schmidt_values(state, cut) ** 2
    lam = lam[lam > 1e-15]
    return float(-(lam * np.log(lam)).sum() / math.log(base))


def bond_dimension_profile(state: MPSState) -> List[int]:
    """Per-site product bond dimension — the memory/entanglement footprint.

    This is what saturates exponentially in the random-GHZ workload of
    Fig. 6 and stays bounded in the fixed-entanglement workload of Fig. 7.
    """
    return [state.bond_dimension(k) for k in range(state.num_qubits)]


def truncation_infidelity(state: MPSState) -> float:
    """``1 - prod(kept fraction)`` accumulated over every SVD truncation."""
    return 1.0 - state.estimated_fidelity
