"""Linear cross-entropy benchmarking (XEB) estimators with error bars.

The paper's introduction frames bitstring sampling from random circuits —
certified by linear XEB — as the motivating workload.  This module is the
verification half of that workload: batched per-circuit and ensemble
fidelity estimators with standard errors, the speckle-purity estimator,
and empirical Porter-Thomas convergence checks layered on
:mod:`repro.analysis.porter_thomas`.

Estimator contract
------------------

For one circuit with exact output distribution ``p`` over ``N = 2^n``
bitstrings and ``M`` samples ``b_1 .. b_M``:

* the **per-sample score** is ``s_i = N p(b_i) - 1``;
* the **raw linear XEB** is the sample mean ``<s>`` (1 for an ideal
  sampler of a Porter-Thomas distribution, 0 for a uniform sampler), with
  standard error ``std(s) / sqrt(M)``;
* the **fidelity** normalizes the raw score by the circuit's own ideal
  value ``N sum_b p(b)^2 - 1`` (what a perfect sampler of ``p`` would
  attain), so a noiseless sampler scores 1.0 per circuit regardless of
  how converged ``p`` is to Porter-Thomas, and a sampler at global
  depolarizing fidelity ``f`` scores ``f`` in expectation — linear XEB is
  linear in the sampled distribution.

Ensemble estimates over many random circuits report two error bars: the
propagated per-sample error (sampling noise at fixed circuits) and the
circuit-to-circuit scatter error (which additionally sees the ensemble's
finite size).  Both shrink as the workload scales; the scatter error is
the honest one to quote for supremacy-style batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .overlap import empirical_distribution
from .porter_thomas import (
    expected_linear_xeb,
    porter_thomas_test,
    pt_collision_ratio,
)

__all__ = [
    "XEBEstimate",
    "XEBResult",
    "PTConvergence",
    "xeb_sample_scores",
    "linear_xeb_estimate",
    "ensemble_xeb",
    "batched_xeb_estimate",
    "speckle_purity",
    "porter_thomas_convergence",
    "empirical_pt_convergence",
    "per_circuit_fidelities",
]


@dataclass(frozen=True)
class XEBEstimate:
    """One circuit's linear-XEB estimate.

    Attributes:
        fidelity: Raw XEB normalized by the circuit's ideal value —
            1.0 for a noiseless sampler, ~0 for uniform samples.  ``nan``
            when the ideal value is non-positive (a distribution too
            close to uniform to certify against).
        std_err: Standard error of ``fidelity`` (propagated from the
            per-sample scores).
        raw_xeb: Un-normalized ``N <p(b)> - 1`` sample mean.
        raw_std_err: Standard error of ``raw_xeb``.
        ideal_xeb: The circuit's ideal value ``N sum p^2 - 1`` (the
            normalization denominator; ~1 once converged to PT).
        num_samples: Number of bitstring samples scored.
    """

    fidelity: float
    std_err: float
    raw_xeb: float
    raw_std_err: float
    ideal_xeb: float
    num_samples: int


@dataclass(frozen=True)
class XEBResult:
    """Ensemble linear-XEB over a batch of random circuits.

    Attributes:
        per_circuit: One :class:`XEBEstimate` per circuit, batch order.
        fidelity: Mean of the per-circuit fidelities.
        std_err: Propagated sampling error
            ``sqrt(sum std_err_i^2) / K``.
        scatter_err: Circuit-to-circuit scatter ``std(f_i)/sqrt(K)``
            (``nan`` for a single circuit).
        num_circuits: K.
        num_samples: Total samples across the ensemble.
    """

    per_circuit: Tuple[XEBEstimate, ...]
    fidelity: float
    std_err: float
    scatter_err: float
    num_circuits: int
    num_samples: int


def xeb_sample_scores(samples: np.ndarray, p_ideal: np.ndarray) -> np.ndarray:
    """Per-sample linear-XEB scores ``N p_ideal(b_i) - 1``.

    Args:
        samples: ``(M, n)`` array of 0/1 bitstring rows.
        p_ideal: Exact output distribution, length ``2^n``, most
            significant qubit first (the convention of
            :func:`repro.analysis.linear_xeb`).
    """
    samples = np.asarray(samples)
    if samples.ndim != 2 or samples.shape[0] < 1:
        raise ValueError(
            f"Expected a (samples, n) bitstring array, got shape "
            f"{samples.shape}"
        )
    p_ideal = np.asarray(p_ideal, dtype=float)
    n = samples.shape[1]
    if p_ideal.shape != (2**n,):
        raise ValueError(
            f"Expected 2^{n} = {2**n} ideal probabilities for {n}-qubit "
            f"samples, got shape {p_ideal.shape}"
        )
    weights = 2 ** np.arange(n - 1, -1, -1, dtype=np.int64)
    outcomes = samples.astype(np.int64) @ weights
    return 2**n * p_ideal[outcomes] - 1.0


def linear_xeb_estimate(
    samples: np.ndarray, p_ideal: np.ndarray
) -> XEBEstimate:
    """Per-circuit linear-XEB fidelity with standard errors.

    The point estimate agrees with :func:`repro.analysis.linear_xeb`
    (the raw score) up to the documented normalization; the errors are
    plain SEMs of the per-sample scores, which are i.i.d. draws.
    """
    scores = xeb_sample_scores(samples, p_ideal)
    m = scores.size
    raw = float(scores.mean())
    raw_err = float(scores.std(ddof=1) / np.sqrt(m)) if m > 1 else float("nan")
    ideal = expected_linear_xeb(p_ideal)
    if ideal > 0.0:
        fidelity, err = raw / ideal, raw_err / ideal
    else:
        # Too close to uniform to certify: the normalization denominator
        # vanishes.  Keep the raw score; flag the fidelity as undefined.
        fidelity, err = float("nan"), float("nan")
    return XEBEstimate(
        fidelity=fidelity,
        std_err=err,
        raw_xeb=raw,
        raw_std_err=raw_err,
        ideal_xeb=float(ideal),
        num_samples=int(m),
    )


def ensemble_xeb(estimates: Sequence[XEBEstimate]) -> XEBResult:
    """Combine per-circuit estimates into one ensemble fidelity.

    Circuits are weighted equally (the supremacy-batch convention: every
    circuit contributes the same number of samples; an unequal-weight
    scheme would couple the estimate to scheduler geometry).
    """
    estimates = tuple(estimates)
    if not estimates:
        raise ValueError("Need at least one per-circuit estimate")
    fidelities = np.array([e.fidelity for e in estimates], dtype=float)
    errs = np.array([e.std_err for e in estimates], dtype=float)
    k = len(estimates)
    scatter = (
        float(fidelities.std(ddof=1) / np.sqrt(k)) if k > 1 else float("nan")
    )
    return XEBResult(
        per_circuit=estimates,
        fidelity=float(fidelities.mean()),
        std_err=float(np.sqrt(np.sum(errs**2)) / k),
        scatter_err=scatter,
        num_circuits=k,
        num_samples=int(sum(e.num_samples for e in estimates)),
    )


def batched_xeb_estimate(
    samples_per_circuit: Sequence[np.ndarray],
    probabilities_per_circuit: Sequence[np.ndarray],
) -> XEBResult:
    """Ensemble XEB for a batch: one sample array + distribution per circuit."""
    samples_per_circuit = list(samples_per_circuit)
    probabilities_per_circuit = list(probabilities_per_circuit)
    if len(samples_per_circuit) != len(probabilities_per_circuit):
        raise ValueError(
            f"Got {len(samples_per_circuit)} sample arrays but "
            f"{len(probabilities_per_circuit)} distributions"
        )
    return ensemble_xeb(
        linear_xeb_estimate(samples, probs)
        for samples, probs in zip(
            samples_per_circuit, probabilities_per_circuit
        )
    )


def speckle_purity(probabilities: np.ndarray) -> float:
    """Speckle-purity estimate from the variance of output probabilities.

    Speckle-purity benchmarking reads the state purity off the *contrast*
    of the output distribution: a Haar-random pure state has
    ``Var(p) = (N-1) / (N^2 (N+1))`` over its ``N`` bitstring
    probabilities, while decoherence flattens the speckle pattern toward
    uniform (variance 0) linearly in the purity.  Returns
    ``Var(p) / Var_PT``: ~1 for a Porter-Thomas distribution, 0 for
    uniform.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size < 2:
        raise ValueError("Need a 1-D distribution with >= 2 entries")
    n = probs.size
    var_pt = (n - 1.0) / (n**2 * (n + 1.0))
    return float(probs.var() / var_pt)


@dataclass(frozen=True)
class PTConvergence:
    """Empirical Porter-Thomas convergence diagnostics for one circuit.

    Attributes:
        ks_statistic, p_value: Kolmogorov-Smirnov test of ``N p`` against
            Exp(1) (:func:`repro.analysis.porter_thomas_test`).
        collision_ratio: ``N sum p^2`` — ~2 under PT, ~1 for uniform.
        speckle_purity: Contrast-based purity estimate (~1 under PT).
        dim: ``N = 2^n``.
    """

    ks_statistic: float
    p_value: float
    collision_ratio: float
    speckle_purity: float
    dim: int

    def is_converged(
        self, significance: float = 1e-3, collision_tol: float = 0.25
    ) -> bool:
        """PT-consistent: KS not rejected and collision ratio near 2."""
        return (
            self.p_value >= significance
            and abs(self.collision_ratio - 2.0) <= collision_tol
        )


def porter_thomas_convergence(
    probabilities: np.ndarray, *, renormalize: bool = False
) -> PTConvergence:
    """All PT diagnostics for one output distribution in one call.

    Args:
        probabilities: A full output distribution (ideal, or an empirical
            estimate with ``renormalize=True`` — forwarded to
            :func:`repro.analysis.porter_thomas_test`).
        renormalize: Accept un-normalized/empirical estimates by scaling
            to unit mass first.
    """
    probs = np.asarray(probabilities, dtype=float)
    statistic, p_value = porter_thomas_test(probs, renormalize=renormalize)
    if renormalize and probs.sum() > 0:
        probs = probs / probs.sum()
    return PTConvergence(
        ks_statistic=statistic,
        p_value=p_value,
        collision_ratio=pt_collision_ratio(probs),
        speckle_purity=speckle_purity(probs),
        dim=probs.size,
    )


def empirical_pt_convergence(
    bitstrings: np.ndarray, num_qubits: int
) -> PTConvergence:
    """PT diagnostics of a raw ``(reps, n)`` sample array.

    Convenience wrapper: histogram the samples over all ``2^n`` outcomes
    (:func:`repro.analysis.empirical_distribution`) and run the
    renormalizing convergence checks on the estimate.  Needs
    ``reps >> 2^n`` to resolve the speckle pattern — at supremacy scale
    this is only meaningful per-circuit on small verification slices.
    """
    return porter_thomas_convergence(
        empirical_distribution(bitstrings, num_qubits), renormalize=True
    )


# Re-exported for workload modules that report both estimators side by
# side; the list form keeps apps/supremacy free of numpy plumbing.
def per_circuit_fidelities(result: XEBResult) -> List[float]:
    """The per-circuit fidelity column of an :class:`XEBResult`."""
    return [e.fidelity for e in result.per_circuit]
