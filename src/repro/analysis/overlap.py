"""Distribution-comparison metrics.

The paper's Figs. 4-5 plot the "fractional overlap with the ideal
distribution": we use the standard histogram intersection
``sum_b min(p_emp(b), p_ideal(b))``, which is 1 for a perfect match and
decreases both with sampling noise and with the systematic error of the
stochastic sum-over-Cliffords branches.
"""

from __future__ import annotations


import numpy as np


def empirical_distribution(bitstrings: np.ndarray, num_qubits: int) -> np.ndarray:
    """Empirical probabilities over all ``2**n`` outcomes.

    Args:
        bitstrings: Array of shape ``(reps, n)`` with 0/1 entries.
        num_qubits: n (fixes the output length ``2**n``).
    """
    bitstrings = np.asarray(bitstrings)
    if bitstrings.ndim != 2 or bitstrings.shape[1] != num_qubits:
        raise ValueError(
            f"Expected shape (reps, {num_qubits}), got {bitstrings.shape}"
        )
    weights = 2 ** np.arange(num_qubits - 1, -1, -1, dtype=np.int64)
    outcomes = bitstrings.astype(np.int64) @ weights
    counts = np.bincount(outcomes, minlength=2**num_qubits)
    return counts / counts.sum()


def fractional_overlap(p_emp: np.ndarray, p_ideal: np.ndarray) -> float:
    """Histogram intersection ``sum_b min(p_emp, p_ideal)`` in [0, 1]."""
    p_emp = np.asarray(p_emp, dtype=float)
    p_ideal = np.asarray(p_ideal, dtype=float)
    if p_emp.shape != p_ideal.shape:
        raise ValueError(f"Shape mismatch: {p_emp.shape} vs {p_ideal.shape}")
    return float(np.minimum(p_emp, p_ideal).sum())


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``0.5 * sum_b |p - q|`` in [0, 1]."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"Shape mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def linear_xeb(samples: np.ndarray, p_ideal: np.ndarray) -> float:
    """Linear cross-entropy benchmark fidelity ``2^n <p_ideal(b)> - 1``.

    The random-circuit-sampling figure of merit referenced in the paper's
    introduction (quantum supremacy classification).
    """
    samples = np.asarray(samples)
    n = samples.shape[1]
    weights = 2 ** np.arange(n - 1, -1, -1, dtype=np.int64)
    outcomes = samples.astype(np.int64) @ weights
    return float(2**n * p_ideal[outcomes].mean() - 1.0)
