"""ASCII histograms for distributions (no plotting backend available)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def ascii_histogram(
    probs: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 40,
    min_prob: float = 0.0,
) -> str:
    """Render a probability vector as an ASCII bar chart.

    Args:
        probs: Probabilities (any nonnegative weights).
        labels: Per-entry labels; defaults to binary bitstrings.
        width: Max bar width in characters.
        min_prob: Entries below this value are omitted.
    """
    probs = np.asarray(probs, dtype=float)
    if labels is None:
        n = max(1, int(np.ceil(np.log2(max(probs.shape[0], 2)))))
        labels = [format(i, f"0{n}b") for i in range(probs.shape[0])]
    peak = probs.max() if probs.size else 1.0
    if peak <= 0:
        peak = 1.0
    lines = []
    for label, p in zip(labels, probs):
        if p < min_prob:
            continue
        bar = "#" * max(0, round(width * p / peak))
        lines.append(f"  {label} | {bar} {p:.4f}")
    return "\n".join(lines)
