"""Porter-Thomas statistics of random-circuit output distributions.

Deep random circuits produce bitstring probabilities distributed as
``Pr(p) = N e^{-N p}`` (exponential with mean ``1/N``, ``N = 2^n``) — the
Porter-Thomas law underpinning the XEB certification discussed in the
paper's introduction.  These helpers test whether a distribution (ideal
or empirical) has converged to that law.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
import scipy.stats


def porter_thomas_pdf(p: np.ndarray, dim: int) -> np.ndarray:
    """The PT density ``N e^{-N p}`` over probabilities ``p``."""
    p = np.asarray(p, dtype=float)
    return dim * np.exp(-dim * p)


def porter_thomas_test(
    probabilities: np.ndarray,
    *,
    renormalize: bool = False,
    atol: float = 1e-6,
) -> Tuple[float, float]:
    """Kolmogorov-Smirnov test of probabilities against Porter-Thomas.

    Args:
        probabilities: A full output distribution (length ``2^n``).  By
            default it must sum to 1 within ``atol``; empirical
            estimates (histogram counts, truncated or sampled
            distributions) whose mass drifts further are accepted by
            passing ``renormalize=True``.
        renormalize: When True, scale the distribution to unit mass
            before testing instead of rejecting it.  The KS statistic is
            scale-invariant only after this normalization, so an
            un-normalized empirical estimate must opt in explicitly.
        atol: Tolerance on ``sum(probabilities) - 1`` before the
            distribution is considered un-normalized.

    Returns:
        ``(ks_statistic, p_value)``; a large p-value means consistent
        with Porter-Thomas.

    Raises:
        ValueError: If the input is not a 1-D distribution with at least
            two entries, has negative/non-finite entries, or (without
            ``renormalize=True``) does not sum to 1 within ``atol``.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size < 2:
        raise ValueError("Need a 1-D distribution with >= 2 entries")
    if not np.all(np.isfinite(probs)) or np.any(probs < 0):
        raise ValueError(
            "Probabilities must be finite and non-negative"
        )
    total = float(probs.sum())
    if abs(total - 1.0) > atol:
        if not renormalize:
            raise ValueError(
                f"Probabilities sum to {total}, expected 1 within "
                f"atol={atol}; pass renormalize=True to accept an "
                "empirical/unnormalized estimate (it is scaled to unit "
                "mass before testing)"
            )
        if total <= 0:
            raise ValueError(
                f"Cannot renormalize a distribution with total mass {total}"
            )
        probs = probs / total
    dim = probs.size
    # Under PT, N*p is Exp(1).
    statistic, p_value = scipy.stats.kstest(dim * probs, "expon")
    return float(statistic), float(p_value)


def collision_probability(probabilities: np.ndarray) -> float:
    """``sum_b p(b)^2`` — 2/N for Porter-Thomas, 1/N for uniform."""
    probs = np.asarray(probabilities, dtype=float)
    return float(np.sum(probs**2))


def pt_collision_ratio(probabilities: np.ndarray) -> float:
    """Collision probability in units of 1/N: ~2 for PT, ~1 for uniform."""
    probs = np.asarray(probabilities, dtype=float)
    return collision_probability(probs) * probs.size


def expected_linear_xeb(probabilities: np.ndarray) -> float:
    """The XEB score an ideal sampler of this distribution would attain.

    ``N sum_b p(b)^2 - 1``: 1 for Porter-Thomas, 0 for uniform.  Useful as
    the reference line when scoring the BGLS sampler's empirical XEB.
    """
    return pt_collision_ratio(probabilities) - 1.0


def shannon_entropy(probabilities: np.ndarray, base: float = 2.0) -> float:
    """Entropy of a distribution; ``n`` bits for uniform over ``2^n``."""
    probs = np.asarray(probabilities, dtype=float)
    nonzero = probs[probs > 0]
    return float(-(nonzero * np.log(nonzero)).sum() / math.log(base))


def pt_expected_entropy(dim: int) -> float:
    """Porter-Thomas entropy ``log2(N) - (1 - gamma)/ln 2`` bits."""
    return math.log2(dim) - (1.0 - np.euler_gamma) / math.log(2.0)
