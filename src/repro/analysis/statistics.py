"""Statistical machinery for sampling experiments.

The paper's Figs. 4-5 report single overlap numbers per configuration;
this module adds the error-bar layer a careful reproduction needs:
bootstrap confidence intervals over resampled bitstrings and convergence
curves of any metric versus sample count.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np

MetricFn = Callable[[np.ndarray], float]
"""A statistic of a ``(reps, n)`` bitstring sample array."""


def bootstrap_confidence_interval(
    samples: np.ndarray,
    metric: MetricFn,
    *,
    n_resamples: int = 200,
    confidence: float = 0.95,
    rng: Union[int, np.random.Generator, None] = None,
) -> Tuple[float, float, float]:
    """Percentile bootstrap of a sample-array statistic.

    Args:
        samples: ``(reps, n)`` bitstring array.
        metric: Statistic mapping a sample array to a float (e.g. overlap
            with an ideal distribution, XEB fidelity, mean energy).
        n_resamples: Bootstrap resample count.
        confidence: Central interval mass.

    Returns:
        ``(point_estimate, lower, upper)``.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2 or samples.shape[0] < 1:
        raise ValueError(f"Expected a (reps, n) array, got shape {samples.shape}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    reps = samples.shape[0]
    point = float(metric(samples))
    stats = np.empty(n_resamples)
    for k in range(n_resamples):
        rows = rng.integers(0, reps, size=reps)
        stats[k] = metric(samples[rows])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(stats, [alpha, 1.0 - alpha])
    return point, float(lower), float(upper)


def convergence_curve(
    samples: np.ndarray,
    metric: MetricFn,
    sample_counts: Sequence[int],
) -> np.ndarray:
    """The metric evaluated on growing prefixes of the sample array.

    This is how the paper's Fig. 4a "overlap with increasing runtime"
    series is produced: one long run, sliced at increasing counts.
    """
    samples = np.asarray(samples)
    out = np.empty(len(sample_counts))
    for i, count in enumerate(sample_counts):
        if not 1 <= count <= samples.shape[0]:
            raise ValueError(
                f"sample count {count} outside [1, {samples.shape[0]}]"
            )
        out[i] = metric(samples[:count])
    return out


def standard_error_of_mean(values: Sequence[float]) -> float:
    """Plain SEM of a sequence of scalar measurements."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ValueError("Need at least two values for a standard error")
    return float(values.std(ddof=1) / np.sqrt(values.size))


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used for pass/fail statistics like the quantum-volume heavy-output
    threshold, where the normal approximation misbehaves near 0 and 1.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    margin = (
        z * np.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2)) / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)
