"""Analysis utilities: overlap metrics, histograms, statistics, PT law."""

from .histogram import ascii_histogram
from .overlap import (
    empirical_distribution,
    fractional_overlap,
    linear_xeb,
    total_variation_distance,
)
from .porter_thomas import (
    collision_probability,
    expected_linear_xeb,
    porter_thomas_pdf,
    porter_thomas_test,
    pt_collision_ratio,
    pt_expected_entropy,
    shannon_entropy,
)
from .statistics import (
    bootstrap_confidence_interval,
    convergence_curve,
    standard_error_of_mean,
    wilson_interval,
)

__all__ = [
    "empirical_distribution",
    "fractional_overlap",
    "total_variation_distance",
    "linear_xeb",
    "ascii_histogram",
    "bootstrap_confidence_interval",
    "convergence_curve",
    "standard_error_of_mean",
    "wilson_interval",
    "porter_thomas_pdf",
    "porter_thomas_test",
    "collision_probability",
    "pt_collision_ratio",
    "expected_linear_xeb",
    "shannon_entropy",
    "pt_expected_entropy",
]
