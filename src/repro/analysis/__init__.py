"""Analysis utilities: overlap metrics, histograms, statistics, PT law."""

from .histogram import ascii_histogram
from .overlap import (
    empirical_distribution,
    fractional_overlap,
    linear_xeb,
    total_variation_distance,
)
from .porter_thomas import (
    collision_probability,
    expected_linear_xeb,
    porter_thomas_pdf,
    porter_thomas_test,
    pt_collision_ratio,
    pt_expected_entropy,
    shannon_entropy,
)
from .statistics import (
    bootstrap_confidence_interval,
    convergence_curve,
    standard_error_of_mean,
    wilson_interval,
)
from .xeb import (
    PTConvergence,
    XEBEstimate,
    XEBResult,
    batched_xeb_estimate,
    empirical_pt_convergence,
    ensemble_xeb,
    linear_xeb_estimate,
    per_circuit_fidelities,
    porter_thomas_convergence,
    speckle_purity,
    xeb_sample_scores,
)

__all__ = [
    "empirical_distribution",
    "fractional_overlap",
    "total_variation_distance",
    "linear_xeb",
    "ascii_histogram",
    "bootstrap_confidence_interval",
    "convergence_curve",
    "standard_error_of_mean",
    "wilson_interval",
    "porter_thomas_pdf",
    "porter_thomas_test",
    "collision_probability",
    "pt_collision_ratio",
    "expected_linear_xeb",
    "shannon_entropy",
    "pt_expected_entropy",
    "XEBEstimate",
    "XEBResult",
    "PTConvergence",
    "xeb_sample_scores",
    "linear_xeb_estimate",
    "ensemble_xeb",
    "batched_xeb_estimate",
    "speckle_purity",
    "porter_thomas_convergence",
    "empirical_pt_convergence",
    "per_circuit_fidelities",
]
