"""Moments: sets of operations acting on disjoint qubits at the same step."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from .operations import GateOperation
from .qubits import Qid


class Moment:
    """A time slice of a circuit.

    All operations in a moment act on disjoint qubits (they could execute
    simultaneously on hardware).  Circuit depth is the number of moments.
    """

    __slots__ = ("_operations", "_qubits")

    def __init__(self, operations: Iterable[GateOperation] = ()):
        ops = tuple(operations)
        seen: set = set()
        for op in ops:
            for q in op.qubits:
                if q in seen:
                    raise ValueError(
                        f"Overlapping operations on qubit {q} in one moment"
                    )
                seen.add(q)
        self._operations = ops
        self._qubits: FrozenSet[Qid] = frozenset(seen)

    @property
    def operations(self) -> Tuple[GateOperation, ...]:
        return self._operations

    @property
    def qubits(self) -> FrozenSet[Qid]:
        return self._qubits

    def operates_on(self, qubits: Iterable[Qid]) -> bool:
        """Whether any operation in this moment touches any of ``qubits``."""
        return any(q in self._qubits for q in qubits)

    def operation_at(self, qubit: Qid) -> Optional[GateOperation]:
        """The operation acting on ``qubit``, or None."""
        for op in self._operations:
            if qubit in op.qubits:
                return op
        return None

    def with_operation(self, op: GateOperation) -> "Moment":
        """A new moment with ``op`` added (must not overlap)."""
        return Moment(self._operations + (op,))

    def __iter__(self) -> Iterator[GateOperation]:
        return iter(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __bool__(self) -> bool:
        return bool(self._operations)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Moment):
            return NotImplemented
        return sorted(map(repr, self._operations)) == sorted(
            map(repr, other._operations)
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted(map(repr, self._operations))))

    def __repr__(self) -> str:
        return f"Moment({list(self._operations)!r})"
