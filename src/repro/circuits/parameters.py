"""Symbolic parameters and parameter resolution.

A tiny sympy-free symbolic layer sufficient for parametric circuits: a
``Symbol`` supports the affine arithmetic (``a*s + b``) that QAOA-style
parameterized circuits need, and ``ParamResolver`` substitutes numeric
values at simulation time (mirroring ``cirq.ParamResolver``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

Numeric = Union[int, float]


class Symbol:
    """A named free parameter, optionally scaled and shifted.

    ``Symbol('t')`` represents the free variable ``t``;  arithmetic returns
    new affine expressions ``coefficient * t + offset``.  Only affine
    expressions in a single symbol are supported, which covers gate
    exponents/angles of the form used in the paper's examples.
    """

    __slots__ = ("name", "coefficient", "offset")

    def __init__(
        self, name: str, coefficient: float = 1.0, offset: float = 0.0
    ) -> None:
        self.name = name
        self.coefficient = float(coefficient)
        self.offset = float(offset)

    # -- arithmetic ------------------------------------------------------
    def __mul__(self, other: Numeric) -> "Symbol":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return Symbol(self.name, self.coefficient * other, self.offset * other)

    __rmul__ = __mul__

    def __truediv__(self, other: Numeric) -> "Symbol":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return Symbol(self.name, self.coefficient / other, self.offset / other)

    def __add__(self, other: Numeric) -> "Symbol":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return Symbol(self.name, self.coefficient, self.offset + other)

    __radd__ = __add__

    def __sub__(self, other: Numeric) -> "Symbol":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return Symbol(self.name, self.coefficient, self.offset - other)

    def __neg__(self) -> "Symbol":
        return Symbol(self.name, -self.coefficient, -self.offset)

    def value(self, assignment: float) -> float:
        """Evaluate this affine expression at ``name = assignment``."""
        return self.coefficient * assignment + self.offset

    def __repr__(self) -> str:
        if self.coefficient == 1.0 and self.offset == 0.0:
            return f"Symbol({self.name!r})"
        return f"Symbol({self.name!r}, coefficient={self.coefficient}, offset={self.offset})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return (self.name, self.coefficient, self.offset) == (
            other.name,
            other.coefficient,
            other.offset,
        )

    def __hash__(self) -> int:
        return hash((self.name, self.coefficient, self.offset))


ParamValue = Union[Numeric, Symbol]


def is_parameterized(value: object) -> bool:
    """Whether ``value`` (a gate exponent/angle) contains a free symbol."""
    return isinstance(value, Symbol)


class ParamResolver:
    """Assigns numeric values to symbol names.

    Accepts a mapping ``{name_or_symbol: value}``.  Calling the resolver on
    a parameter value returns a float (affine expressions are evaluated);
    unresolved symbols raise ``ValueError``.
    """

    def __init__(self, params: Mapping[Union[str, Symbol], Numeric] | None = None):
        self._assignments: Dict[str, float] = {}
        for key, val in (params or {}).items():
            name = key.name if isinstance(key, Symbol) else str(key)
            self._assignments[name] = float(val)

    def value_of(self, value: ParamValue) -> float:
        """Resolve a parameter value to a float."""
        if isinstance(value, Symbol):
            if value.name not in self._assignments:
                raise ValueError(f"Unresolved symbol {value.name!r}")
            return value.value(self._assignments[value.name])
        return float(value)

    def __contains__(self, name: str) -> bool:
        return name in self._assignments

    def __repr__(self) -> str:
        return f"ParamResolver({self._assignments!r})"


def resolve_value(value: ParamValue, resolver: ParamResolver | None) -> ParamValue:
    """Resolve ``value`` if possible, else return it unchanged."""
    if isinstance(value, Symbol):
        if resolver is None:
            return value
        return resolver.value_of(value)
    return value
