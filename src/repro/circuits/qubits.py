"""Qubit identifier types.

Mirrors the Cirq qubit model used by the reference BGLS implementation:
qubits are lightweight, hashable, totally-ordered identifiers.  The total
order is what fixes the bit position of each qubit in sampled bitstrings.
"""

from __future__ import annotations

import abc
import functools
from typing import Iterable, List, Sequence, Tuple


@functools.total_ordering
class Qid(abc.ABC):
    """Base class for qubit identifiers.

    Subclasses must provide ``_comparison_key`` returning a tuple whose
    first element is a class-rank string so that qubits of different types
    sort deterministically against each other.
    """

    @abc.abstractmethod
    def _comparison_key(self) -> Tuple:
        """Key used for ordering and equality."""

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension of this qudit (always 2 for qubits)."""
        return 2

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Qid):
            return NotImplemented
        return self._comparison_key() == other._comparison_key()

    def __lt__(self, other: "Qid") -> bool:
        if not isinstance(other, Qid):
            return NotImplemented
        return self._comparison_key() < other._comparison_key()

    def __hash__(self) -> int:
        return hash(self._comparison_key())


class LineQubit(Qid):
    """A qubit on a 1-D integer lattice, addressed by index ``x``."""

    __slots__ = ("x",)

    def __init__(self, x: int) -> None:
        self.x = int(x)

    def _comparison_key(self) -> Tuple:
        return ("LineQubit", self.x)

    @staticmethod
    def range(*args: int) -> List["LineQubit"]:
        """Return ``LineQubit``s for ``range(*args)``, e.g. ``range(4)``."""
        return [LineQubit(x) for x in range(*args)]

    def __add__(self, offset: int) -> "LineQubit":
        return LineQubit(self.x + offset)

    def __sub__(self, offset: int) -> "LineQubit":
        return LineQubit(self.x - offset)

    def __repr__(self) -> str:
        return f"LineQubit({self.x})"

    def __str__(self) -> str:
        return f"q({self.x})"


class GridQubit(Qid):
    """A qubit on a 2-D integer lattice, addressed by (row, col)."""

    __slots__ = ("row", "col")

    def __init__(self, row: int, col: int) -> None:
        self.row = int(row)
        self.col = int(col)

    def _comparison_key(self) -> Tuple:
        return ("GridQubit", self.row, self.col)

    @staticmethod
    def square(side: int, top: int = 0, left: int = 0) -> List["GridQubit"]:
        """Return a ``side x side`` block of grid qubits in row-major order."""
        return [
            GridQubit(top + r, left + c) for r in range(side) for c in range(side)
        ]

    @staticmethod
    def rect(rows: int, cols: int) -> List["GridQubit"]:
        """Return a ``rows x cols`` block of grid qubits in row-major order."""
        return [GridQubit(r, c) for r in range(rows) for c in range(cols)]

    def is_adjacent(self, other: "GridQubit") -> bool:
        """Whether ``other`` is a Manhattan-distance-1 neighbor."""
        return abs(self.row - other.row) + abs(self.col - other.col) == 1

    def __repr__(self) -> str:
        return f"GridQubit({self.row}, {self.col})"

    def __str__(self) -> str:
        return f"q({self.row}, {self.col})"


class NamedQubit(Qid):
    """A qubit addressed by an arbitrary string name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = str(name)

    def _comparison_key(self) -> Tuple:
        return ("NamedQubit", self.name)

    @staticmethod
    def range(n: int, prefix: str = "q") -> List["NamedQubit"]:
        """Return ``n`` named qubits ``prefix0 .. prefix{n-1}``."""
        return [NamedQubit(f"{prefix}{i}") for i in range(n)]

    def __repr__(self) -> str:
        return f"NamedQubit({self.name!r})"

    def __str__(self) -> str:
        return self.name


def sorted_qubits(qubits: Iterable[Qid]) -> List[Qid]:
    """Return the qubits in canonical (bitstring) order."""
    return sorted(qubits)


def qubit_index_map(qubits: Sequence[Qid]) -> dict:
    """Map each qubit to its position in ``qubits``."""
    return {q: i for i, q in enumerate(qubits)}
