"""Circuit optimization for the gate-by-gate sampler (paper Sec. 3.2.2).

``optimize_for_bgls`` merges runs of consecutive single-qubit operations on
the same qubit into one ``MatrixGate``, so the sampler updates the bitstring
once per run instead of once per gate.  The paper reports a 1.5-2x speedup
on random 8-qubit circuits with up to 50 layers.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .circuit import Circuit
from .gates import MatrixGate
from .operations import GateOperation
from .qubits import Qid


def _mergeable(op: GateOperation) -> bool:
    """Single-qubit, non-measurement, unitary, non-parametric ops merge."""
    return (
        len(op.qubits) == 1
        and not op.is_measurement
        and not op._is_parameterized_()
        and op._unitary_() is not None
    )


def merge_single_qubit_gates(circuit: Circuit) -> Circuit:
    """Merge maximal runs of consecutive 1-qubit gates per qubit.

    A run on qubit q is broken by any multi-qubit operation, measurement,
    channel, or parameterized op touching q.  Each merged run becomes a
    single ``MatrixGate`` placed at the position of the run's *last* gate,
    preserving causal order with the surrounding multi-qubit operations.
    """
    pending: Dict[Qid, np.ndarray] = {}
    out_ops: List[GateOperation] = []

    def flush(qubit: Qid) -> None:
        mat = pending.pop(qubit, None)
        if mat is None:
            return
        if np.allclose(mat, np.eye(2)):
            return  # drop accumulated identities entirely
        out_ops.append(MatrixGate(mat).on(qubit))

    for op in circuit.all_operations():
        if _mergeable(op):
            qubit = op.qubits[0]
            u = op._unitary_()
            pending[qubit] = u @ pending.get(qubit, np.eye(2, dtype=np.complex128))
            continue
        for qubit in op.qubits:
            flush(qubit)
        out_ops.append(op)
    for qubit in list(pending):
        flush(qubit)

    merged = Circuit()
    merged.append(out_ops)
    return merged


def drop_empty_moments(circuit: Circuit) -> Circuit:
    """Remove moments containing no operations."""
    out = Circuit()
    for moment in circuit.moments:
        if moment:
            out.append_new_moment(moment.operations)
    return out


def optimize_for_bgls(circuit: Circuit) -> Circuit:
    """Optimize a circuit for gate-by-gate sampling (``bgls.optimize_for_bgls``).

    Currently merges single-qubit runs and drops empty moments; the merged
    circuit produces the same final state (up to global phase per run) and
    therefore the same sampling distribution, with fewer bitstring updates.
    """
    return drop_empty_moments(merge_single_qubit_gates(circuit))
