"""Pauli-string algebra: products, commutation, measurement circuits.

A :class:`PauliString` is a coefficient times a tensor product of X/Y/Z
on named qubits; a :class:`PauliSum` is a linear combination.  Together
they give the package a Hamiltonian/observable layer: build an operator,
emit the basis-change circuit that makes it Z-diagonal, sample with the
BGLS simulator, and average eigenvalues — the measurement workflow of
every variational algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from . import gates
from .operations import GateOperation
from .qubits import Qid

_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}

# Single-qubit products: (left, right) -> (phase, result).
_PRODUCT: Dict[Tuple[str, str], Tuple[complex, str]] = {}
for _a in "IXYZ":
    _PRODUCT[("I", _a)] = (1.0 + 0j, _a)
    _PRODUCT[(_a, "I")] = (1.0 + 0j, _a)
    _PRODUCT[(_a, _a)] = (1.0 + 0j, "I")
for _a, _b, _c in (("X", "Y", "Z"), ("Y", "Z", "X"), ("Z", "X", "Y")):
    _PRODUCT[(_a, _b)] = (1j, _c)
    _PRODUCT[(_b, _a)] = (-1j, _c)

_GATES = {"X": gates.X, "Y": gates.Y, "Z": gates.Z}


class PauliString:
    """``coefficient * prod_q P_q`` with ``P_q in {X, Y, Z}``.

    Identity factors are never stored; the empty string is the scaled
    identity operator.  Instances are immutable and hashable (by the
    qubit->Pauli mapping and coefficient).
    """

    __slots__ = ("coefficient", "_factors")

    def __init__(
        self,
        qubit_pauli_map: Optional[Mapping[Qid, str]] = None,
        coefficient: complex = 1.0,
    ):
        factors: Dict[Qid, str] = {}
        for qubit, name in (qubit_pauli_map or {}).items():
            name = str(name).upper()
            if name not in _MATRICES:
                raise ValueError(f"Unknown Pauli {name!r} (want I/X/Y/Z)")
            if name != "I":
                factors[qubit] = name
        self.coefficient = complex(coefficient)
        self._factors = factors

    # -- inspection --------------------------------------------------------
    @property
    def qubits(self) -> Tuple[Qid, ...]:
        """Qubits with non-identity factors, in sorted order."""
        return tuple(sorted(self._factors, key=repr))

    def get(self, qubit: Qid) -> str:
        """The Pauli on ``qubit`` ('I' if absent)."""
        return self._factors.get(qubit, "I")

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return len(self._factors)

    def items(self):
        """(qubit, pauli-name) pairs of the non-identity factors."""
        return self._factors.items()

    # -- algebra ------------------------------------------------------------
    def __mul__(self, other: Union["PauliString", complex]) -> "PauliString":
        if isinstance(other, (int, float, complex)):
            return PauliString(self._factors, self.coefficient * other)
        if not isinstance(other, PauliString):
            return NotImplemented
        phase = self.coefficient * other.coefficient
        out: Dict[Qid, str] = dict(self._factors)
        for qubit, name in other._factors.items():
            extra, merged = _PRODUCT[(out.get(qubit, "I"), name)]
            phase *= extra
            if merged == "I":
                out.pop(qubit, None)
            else:
                out[qubit] = merged
        return PauliString(out, phase)

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return PauliString(self._factors, -self.coefficient)

    def __add__(self, other) -> "PauliSum":
        return PauliSum([self]) + other

    def __sub__(self, other) -> "PauliSum":
        return PauliSum([self]) - other

    def commutes_with(self, other: "PauliString") -> bool:
        """Whether the two strings commute (anticommuting-site parity even)."""
        anti = 0
        for qubit, name in self._factors.items():
            theirs = other.get(qubit)
            if theirs != "I" and theirs != name:
                anti += 1
        return anti % 2 == 0

    # -- dense form & expectations -----------------------------------------
    def matrix(self, qubit_order: Sequence[Qid]) -> np.ndarray:
        """Dense matrix over the given register (exponential; small n)."""
        qubit_order = list(qubit_order)
        missing = [q for q in self._factors if q not in qubit_order]
        if missing:
            raise ValueError(f"String acts on qubits outside the order: {missing}")
        out = np.ones((1, 1), dtype=np.complex128)
        for q in qubit_order:
            out = np.kron(out, _MATRICES[self.get(q)])
        return self.coefficient * out

    def expectation_from_state_vector(
        self, psi: np.ndarray, qubit_order: Sequence[Qid]
    ) -> complex:
        """``<psi|P|psi>`` (dense; verification path)."""
        psi = np.asarray(psi, dtype=np.complex128).reshape(-1)
        return complex(psi.conj() @ (self.matrix(qubit_order) @ psi))

    # -- sampling path ------------------------------------------------------
    def measurement_basis_change(self) -> List[GateOperation]:
        """Ops rotating each factor's eigenbasis onto the Z basis.

        After these ops, measuring the string's qubits in the computational
        basis and multiplying ``(-1)^bit`` per qubit yields an eigenvalue
        sample of the (coefficient-stripped) string.
        """
        ops: List[GateOperation] = []
        for qubit, name in self._factors.items():
            if name == "X":
                ops.append(gates.H.on(qubit))
            elif name == "Y":
                # Y = (S H Z-basis): rotate with S^dagger then H.
                ops.append(gates.S_DAG.on(qubit))
                ops.append(gates.H.on(qubit))
        return ops

    def expectation_from_samples(
        self, samples: np.ndarray, qubit_order: Sequence[Qid]
    ) -> float:
        """Mean eigenvalue from Z-basis samples *taken after* the basis
        change, times the (required-real) coefficient."""
        if abs(self.coefficient.imag) > 1e-12:
            raise ValueError(
                "Sampled expectations need a real coefficient, got "
                f"{self.coefficient}"
            )
        samples = np.asarray(samples)
        index = {q: i for i, q in enumerate(qubit_order)}
        cols = [index[q] for q in self._factors]
        if not cols:
            return float(self.coefficient.real)
        signs = 1.0 - 2.0 * samples[:, cols].astype(float)
        return float(self.coefficient.real * signs.prod(axis=1).mean())

    def to_operations(self) -> List[GateOperation]:
        """The string as gate operations (coefficient must be +1)."""
        if abs(self.coefficient - 1.0) > 1e-12:
            raise ValueError(
                f"Only unit-coefficient strings are circuits, got "
                f"{self.coefficient}"
            )
        return [_GATES[name].on(qubit) for qubit, name in self._factors.items()]

    # -- dunder --------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self._factors == other._factors
            and self.coefficient == other.coefficient
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._factors.items()), self.coefficient)
        )

    def __repr__(self) -> str:
        if not self._factors:
            return f"PauliString({{}}, coefficient={self.coefficient})"
        body = "*".join(
            f"{name}({qubit})" for qubit, name in sorted(
                self._factors.items(), key=lambda kv: repr(kv[0])
            )
        )
        return f"{self.coefficient}*{body}"


class PauliSum:
    """A linear combination of Pauli strings (like-term collected)."""

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[PauliString] = ()):
        collected: Dict[frozenset, PauliString] = {}
        for term in terms:
            key = frozenset(term.items())
            if key in collected:
                prev = collected[key]
                coeff = prev.coefficient + term.coefficient
                collected[key] = PauliString(dict(term.items()), coeff)
            else:
                collected[key] = term
        self.terms: Tuple[PauliString, ...] = tuple(
            t for t in collected.values() if t.coefficient != 0
        )

    def __add__(self, other) -> "PauliSum":
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if not isinstance(other, PauliSum):
            return NotImplemented
        return PauliSum(self.terms + other.terms)

    def __sub__(self, other) -> "PauliSum":
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if not isinstance(other, PauliSum):
            return NotImplemented
        return self + PauliSum([-t for t in other.terms])

    def __mul__(self, other) -> "PauliSum":
        if isinstance(other, (int, float, complex)):
            return PauliSum([t * other for t in self.terms])
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if not isinstance(other, PauliSum):
            return NotImplemented
        return PauliSum(
            [a * b for a in self.terms for b in other.terms]
        )

    __rmul__ = __mul__

    @property
    def qubits(self) -> Tuple[Qid, ...]:
        """Union of all terms' qubits, in sorted order."""
        seen = set()
        for term in self.terms:
            seen.update(term.qubits)
        return tuple(sorted(seen, key=repr))

    def matrix(self, qubit_order: Sequence[Qid]) -> np.ndarray:
        """Dense matrix (exponential; small-n verification)."""
        dim = 2 ** len(list(qubit_order))
        out = np.zeros((dim, dim), dtype=np.complex128)
        for term in self.terms:
            out += term.matrix(qubit_order)
        return out

    def expectation_from_state_vector(
        self, psi: np.ndarray, qubit_order: Sequence[Qid]
    ) -> complex:
        """``<psi|H|psi>`` summed over terms (dense; verification path)."""
        return sum(
            term.expectation_from_state_vector(psi, qubit_order)
            for term in self.terms
        )

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        return " + ".join(repr(t) for t in self.terms) or "PauliSum()"


def pauli_string_from_text(
    text: str, qubits: Sequence[Qid], coefficient: complex = 1.0
) -> PauliString:
    """Parse ``"XIZ"``-style dense notation against an ordered register."""
    text = text.strip().upper()
    qubits = list(qubits)
    if len(text) != len(qubits):
        raise ValueError(
            f"Dense string {text!r} has {len(text)} factors for "
            f"{len(qubits)} qubits"
        )
    return PauliString(
        {q: c for q, c in zip(qubits, text)}, coefficient
    )
