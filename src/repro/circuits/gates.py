"""Gate algebra: base classes, power gates, and named gate constants.

This is the from-scratch replacement for the slice of ``cirq.ops`` that the
BGLS reference implementation relies on.  The key design points:

* Gates are immutable values; ``gate.on(*qubits)`` (or ``gate(*qubits)``)
  produces a :class:`~repro.circuits.operations.GateOperation`.
* Power gates (``XPowGate`` etc.) carry an ``exponent`` and ``global_shift``
  with unitary ``exp(i*pi*global_shift*exponent) * base**exponent`` exactly
  like Cirq, so ``Rz(theta) == ZPowGate(exponent=theta/pi, global_shift=-0.5)``.
* Exponents may be symbolic (:class:`~repro.circuits.parameters.Symbol`);
  resolution happens through ``_resolve_parameters_``.
* Gates that are Clifford for their current exponent expose
  ``_stabilizer_sequence_()`` returning ``(phase, [(primitive, *axes)])``
  where primitive is one of ``H S SDG Z X Y CX CZ`` — this is the hook the
  CH-form stabilizer state uses to apply gates in O(n) / O(n^2) time.
"""

from __future__ import annotations

import abc
import cmath
import math
from typing import List, Optional, Tuple

import numpy as np

from .parameters import ParamResolver, ParamValue, Symbol, is_parameterized

_SQRT2 = math.sqrt(2.0)

StabilizerSequence = Tuple[complex, List[Tuple[str, Tuple[int, ...]]]]


def _is_half_integer(value: float, atol: float = 1e-9) -> bool:
    return abs(2.0 * value - round(2.0 * value)) <= atol


class Gate(abc.ABC):
    """Base class for quantum gates."""

    @abc.abstractmethod
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""

    def on(self, *qubits) -> "GateOperation":
        """Return this gate applied to the given qubits."""
        from .operations import GateOperation

        return GateOperation(self, qubits)

    def __call__(self, *qubits) -> "GateOperation":
        return self.on(*qubits)

    # -- optional protocol members --------------------------------------
    def _unitary_(self) -> Optional[np.ndarray]:
        """Unitary matrix, or None if not unitary / parameterized."""
        return None

    def _kraus_(self) -> Optional[List[np.ndarray]]:
        """Kraus operators; defaults to the unitary if one exists."""
        u = self._unitary_()
        return None if u is None else [u]

    def _is_parameterized_(self) -> bool:
        return False

    def _resolve_parameters_(self, resolver: ParamResolver) -> "Gate":
        return self

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        """Decomposition into CH-form primitives, or None if non-Clifford."""
        return None

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        name = type(self).__name__.replace("Gate", "")
        return tuple([name] * self.num_qubits())

    def __pow__(self, power):
        return NotImplemented


class IdentityGate(Gate):
    """The identity on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int = 1) -> None:
        self._num_qubits = int(num_qubits)

    def num_qubits(self) -> int:
        return self._num_qubits

    def _unitary_(self) -> np.ndarray:
        return np.eye(2**self._num_qubits, dtype=np.complex128)

    def _stabilizer_sequence_(self) -> StabilizerSequence:
        return (1.0 + 0j, [])

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return tuple(["I"] * self._num_qubits)

    def __pow__(self, power) -> "IdentityGate":
        return self

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IdentityGate) and other._num_qubits == self._num_qubits
        )

    def __hash__(self) -> int:
        return hash(("IdentityGate", self._num_qubits))

    def __repr__(self) -> str:
        return f"IdentityGate({self._num_qubits})"


class EigenGate(Gate):
    """A gate of the form ``exp(i*pi*global_shift*exponent) * base**exponent``
    where ``base`` is a fixed unitary with eigenvalues ±1 (an involution) or,
    more generally, with a known eigen-decomposition provided by subclasses.
    """

    def __init__(self, exponent: ParamValue = 1.0, global_shift: float = 0.0):
        self.exponent = exponent
        self.global_shift = float(global_shift)

    # Subclasses provide the base involution matrix (eigenvalues ±1),
    # or override _unitary_ entirely.
    @abc.abstractmethod
    def _base_matrix(self) -> np.ndarray:
        """The exponent-1 matrix (with global_shift = 0)."""

    def _with_exponent(self, exponent: ParamValue) -> "EigenGate":
        return type(self)(exponent=exponent, global_shift=self.global_shift)

    def _is_parameterized_(self) -> bool:
        return is_parameterized(self.exponent)

    def _resolve_parameters_(self, resolver: ParamResolver) -> "EigenGate":
        if not self._is_parameterized_():
            return self
        return self._with_exponent(resolver.value_of(self.exponent))

    def _unitary_(self) -> Optional[np.ndarray]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        base = self._base_matrix()
        # base is an involution: base**t = e^{i pi t/2}(cos(pi t/2) I - i sin(pi t/2) base)
        half = math.pi * t / 2.0
        mat = cmath.exp(1j * half) * (
            math.cos(half) * np.eye(base.shape[0]) - 1j * math.sin(half) * base
        )
        mat = cmath.exp(1j * math.pi * self.global_shift * t) * mat
        # Snap floating-point dust so exact gates (X, CNOT, ...) are exact.
        mat.real[np.abs(mat.real) < 1e-15] = 0.0
        mat.imag[np.abs(mat.imag) < 1e-15] = 0.0
        return mat

    def __pow__(self, power: float) -> "EigenGate":
        if is_parameterized(self.exponent):
            if isinstance(power, (int, float)):
                return self._with_exponent(self.exponent * power)
            return NotImplemented
        return self._with_exponent(self.exponent * power)

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return (
            other.exponent == self.exponent
            and other.global_shift == self.global_shift
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.exponent, self.global_shift))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(exponent={self.exponent!r}, "
            f"global_shift={self.global_shift!r})"
        )

    # -- stabilizer support ---------------------------------------------
    def _global_phase(self) -> complex:
        """The e^{i pi s t} prefactor for the current (numeric) exponent."""
        return cmath.exp(1j * math.pi * self.global_shift * float(self.exponent))


def _z_pow_primitives(exponent: float, axis: int = 0) -> Optional[StabilizerSequence]:
    """CH primitives for Z**exponent on a single axis (half-integer only).

    Z**0.5 is exactly S, Z**1 is Z, Z**1.5 is S-dagger, Z**2 is identity.
    """
    if not _is_half_integer(exponent):
        return None
    k = int(round(2.0 * exponent)) % 4  # number of S gates
    seq = {0: [], 1: [("S", (axis,))], 2: [("Z", (axis,))], 3: [("SDG", (axis,))]}[k]
    return (1.0 + 0j, list(seq))


class ZPowGate(EigenGate):
    """``Z**exponent``: ``diag(1, exp(i*pi*exponent))`` times the shift phase.

    ``Rz(theta)`` is ``ZPowGate(exponent=theta/pi, global_shift=-0.5)``; the
    sum-over-Cliffords technique (paper Sec. 4.2) targets exactly this class.
    """

    def num_qubits(self) -> int:
        return 1

    def _base_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]], dtype=np.complex128)

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        prims = _z_pow_primitives(float(self.exponent))
        if prims is None:
            return None
        return (self._global_phase() * prims[0], prims[1])

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        if self._is_parameterized_():
            return (f"Z^{self.exponent.name}",)
        t = float(self.exponent)
        if t == 1.0:
            return ("Z",)
        if t == 0.5:
            return ("S",)
        if t == 0.25:
            return ("T",)
        if t == -0.5 or t == 1.5:
            return ("S^-1",)
        if t == -0.25:
            return ("T^-1",)
        return (f"Z^{round(t, 4)}",)


class XPowGate(EigenGate):
    """``X**exponent``; ``Rx(theta)`` is exponent ``theta/pi`` with shift -0.5."""

    def num_qubits(self) -> int:
        return 1

    def _base_matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]], dtype=np.complex128)

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        # X**t = H Z**t H exactly.
        prims = _z_pow_primitives(float(self.exponent))
        if prims is None:
            return None
        seq = [("H", (0,))] + prims[1] + [("H", (0,))]
        return (self._global_phase() * prims[0], seq)

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        if self._is_parameterized_():
            return (f"X^{self.exponent.name}",)
        t = float(self.exponent)
        return ("X",) if t == 1.0 else (f"X^{round(t, 4)}",)


class YPowGate(EigenGate):
    """``Y**exponent``; ``Ry(theta)`` is exponent ``theta/pi`` with shift -0.5."""

    def num_qubits(self) -> int:
        return 1

    def _base_matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]], dtype=np.complex128)

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        # Y = S X S^dag, hence Y**t = S X**t S^dag exactly.
        prims = _z_pow_primitives(float(self.exponent))
        if prims is None:
            return None
        seq = (
            [("SDG", (0,)), ("H", (0,))]
            + prims[1]
            + [("H", (0,)), ("S", (0,))]
        )
        return (self._global_phase() * prims[0], seq)

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        if self._is_parameterized_():
            return (f"Y^{self.exponent.name}",)
        t = float(self.exponent)
        return ("Y",) if t == 1.0 else (f"Y^{round(t, 4)}",)


class PhasedXPowGate(Gate):
    """``Z^p X^t Z^-p``: an X-power rotated about Z by ``phase_exponent``.

    ``phase_exponent=0.25, exponent=0.5`` is the sqrt-W gate of the
    Sycamore random-circuit gate set — the simplest non-Clifford member,
    which is what makes those circuits converge to Porter-Thomas.
    """

    def __init__(
        self,
        *,
        phase_exponent: ParamValue,
        exponent: ParamValue = 1.0,
        global_shift: float = 0.0,
    ):
        self.phase_exponent = phase_exponent
        self.exponent = exponent
        self.global_shift = float(global_shift)

    def num_qubits(self) -> int:
        return 1

    def _is_parameterized_(self) -> bool:
        return is_parameterized(self.exponent) or is_parameterized(
            self.phase_exponent
        )

    def _resolve_parameters_(self, resolver: ParamResolver) -> "PhasedXPowGate":
        if not self._is_parameterized_():
            return self
        return PhasedXPowGate(
            phase_exponent=resolver.value_of(self.phase_exponent),
            exponent=resolver.value_of(self.exponent),
            global_shift=self.global_shift,
        )

    def _unitary_(self) -> Optional[np.ndarray]:
        if self._is_parameterized_():
            return None
        p = float(self.phase_exponent)
        z = np.diag(
            [1.0, cmath.exp(1j * math.pi * p)]
        )
        x_pow = XPowGate(
            exponent=self.exponent, global_shift=self.global_shift
        )._unitary_()
        return z @ x_pow @ z.conj().T

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        # Clifford iff both exponents are half-integers: Z^p X^t Z^-p.
        p, t = float(self.phase_exponent), float(self.exponent)
        if not (_is_half_integer(p) and _is_half_integer(t)):
            return None
        z_left = _z_pow_primitives(p)
        x_mid = XPowGate(exponent=t, global_shift=self.global_shift)
        mid = x_mid._stabilizer_sequence_()
        z_right = _z_pow_primitives(-p)
        if z_left is None or mid is None or z_right is None:
            return None
        phase = z_left[0] * mid[0] * z_right[0]
        return (phase, z_right[1] + mid[1] + z_left[1])

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"PhX(p={self.phase_exponent})^{self.exponent}",)

    def __pow__(self, power) -> "PhasedXPowGate":
        if is_parameterized(self.exponent) and not isinstance(
            power, (int, float)
        ):
            return NotImplemented
        return PhasedXPowGate(
            phase_exponent=self.phase_exponent,
            exponent=self.exponent * power,
            global_shift=self.global_shift,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PhasedXPowGate):
            return NotImplemented
        return (
            other.phase_exponent == self.phase_exponent
            and other.exponent == self.exponent
            and other.global_shift == self.global_shift
        )

    def __hash__(self) -> int:
        return hash(
            ("PhasedXPowGate", self.phase_exponent, self.exponent, self.global_shift)
        )

    def __repr__(self) -> str:
        return (
            f"PhasedXPowGate(phase_exponent={self.phase_exponent!r}, "
            f"exponent={self.exponent!r}, global_shift={self.global_shift!r})"
        )


class HPowGate(EigenGate):
    """``H**exponent`` (H is an involution so the eigen formula applies)."""

    def num_qubits(self) -> int:
        return 1

    def _base_matrix(self) -> np.ndarray:
        return np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        if not _is_half_integer(t):
            return None
        k = int(round(t)) % 2
        if abs(t - round(t)) > 1e-9:
            return None  # H**0.5 is not Clifford
        seq = [("H", (0,))] if k == 1 else []
        return (self._global_phase(), seq)

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        if self._is_parameterized_():
            return (f"H^{self.exponent.name}",)
        t = float(self.exponent)
        return ("H",) if t == 1.0 else (f"H^{round(t, 4)}",)


class CZPowGate(EigenGate):
    """``CZ**exponent``: ``diag(1,1,1,exp(i*pi*exponent))`` times shift."""

    def num_qubits(self) -> int:
        return 2

    def _base_matrix(self) -> np.ndarray:
        return np.diag([1, 1, 1, -1]).astype(np.complex128)

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        if not _is_half_integer(t) or abs(t - round(t)) > 1e-9:
            return None  # CZ**0.5 is not Clifford
        seq = [("CZ", (0, 1))] if int(round(t)) % 2 == 1 else []
        return (self._global_phase(), seq)

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        t = self.exponent
        label = "@" if (not is_parameterized(t) and float(t) == 1.0) else f"@^{t}"
        return ("@", label)


class CXPowGate(EigenGate):
    """``CNOT**exponent`` (block ``I (+) X**exponent``)."""

    def num_qubits(self) -> int:
        return 2

    def _base_matrix(self) -> np.ndarray:
        m = np.eye(4, dtype=np.complex128)
        m[2:, 2:] = np.array([[0, 1], [1, 0]])
        return m

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        if not _is_half_integer(t) or abs(t - round(t)) > 1e-9:
            return None
        seq = [("CX", (0, 1))] if int(round(t)) % 2 == 1 else []
        return (self._global_phase(), seq)

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return ("@", "X")


class SwapPowGate(EigenGate):
    """``SWAP**exponent`` (SWAP is an involution)."""

    def num_qubits(self) -> int:
        return 2

    def _base_matrix(self) -> np.ndarray:
        m = np.eye(4, dtype=np.complex128)
        m[[1, 2]] = m[[2, 1]]
        return m

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        if not _is_half_integer(t) or abs(t - round(t)) > 1e-9:
            return None
        if int(round(t)) % 2 == 0:
            return (self._global_phase(), [])
        return (
            self._global_phase(),
            [("CX", (0, 1)), ("CX", (1, 0)), ("CX", (0, 1))],
        )

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return ("x", "x")


class ISwapPowGate(EigenGate):
    """``ISWAP**exponent``.

    Matrix ``[[1,0,0,0],[0,c,is,0],[0,is,c,0],[0,0,0,1]]`` with
    ``c = cos(pi t / 2)``, ``is = i sin(pi t / 2)``.
    """

    def num_qubits(self) -> int:
        return 2

    def _base_matrix(self) -> np.ndarray:  # pragma: no cover - not used
        raise NotImplementedError

    def _unitary_(self) -> Optional[np.ndarray]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        c = math.cos(math.pi * t / 2.0)
        s = 1j * math.sin(math.pi * t / 2.0)
        m = np.eye(4, dtype=np.complex128)
        m[1, 1] = m[2, 2] = c
        m[1, 2] = m[2, 1] = s
        return cmath.exp(1j * math.pi * self.global_shift * t) * m

    def _stabilizer_sequence_(self) -> Optional[StabilizerSequence]:
        if self._is_parameterized_():
            return None
        t = float(self.exponent)
        if abs(t - round(t)) > 1e-9:
            return None
        k = int(round(t)) % 4
        phase = cmath.exp(1j * math.pi * self.global_shift * t)
        swap = [("CX", (0, 1)), ("CX", (1, 0)), ("CX", (0, 1))]
        # ISWAP = SWAP . CZ . (S (x) S); applied to kets: S,S then CZ then SWAP.
        one = [("S", (0,)), ("S", (1,)), ("CZ", (0, 1))] + swap
        if k == 0:
            return (phase, [])
        if k == 1:
            return (phase, list(one))
        if k == 2:  # ISWAP^2 = diag(1,-1,-1,1) = Z (x) Z
            return (phase, [("Z", (0,)), ("Z", (1,))])
        # k == 3: ISWAP^3 = ISWAP^{-1} = (Z(x)Z) . ISWAP
        return (phase, list(one) + [("Z", (0,)), ("Z", (1,))])

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return ("iSwap", "iSwap")


class CCXPowGate(EigenGate):
    """Toffoli to a power (block ``I6 (+) X**exponent``).  Non-Clifford."""

    def num_qubits(self) -> int:
        return 3

    def _base_matrix(self) -> np.ndarray:
        m = np.eye(8, dtype=np.complex128)
        m[6:, 6:] = np.array([[0, 1], [1, 0]])
        return m

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return ("@", "@", "X")


class CCZPowGate(EigenGate):
    """CCZ to a power (``diag(1,...,1,exp(i*pi*t))``).  Non-Clifford."""

    def num_qubits(self) -> int:
        return 3

    def _base_matrix(self) -> np.ndarray:
        return np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(np.complex128)

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return ("@", "@", "@")


class CSwapGate(Gate):
    """The Fredkin (controlled-SWAP) gate."""

    def num_qubits(self) -> int:
        return 3

    def _unitary_(self) -> np.ndarray:
        m = np.eye(8, dtype=np.complex128)
        m[[5, 6]] = m[[6, 5]]
        return m

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return ("@", "x", "x")

    def __eq__(self, other) -> bool:
        return isinstance(other, CSwapGate)

    def __hash__(self) -> int:
        return hash("CSwapGate")

    def __repr__(self) -> str:
        return "CSwapGate()"


class MatrixGate(Gate):
    """An arbitrary unitary given by an explicit matrix."""

    def __init__(self, matrix: np.ndarray, num_qubits: Optional[int] = None):
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"Matrix must be square, got shape {matrix.shape}")
        dim = matrix.shape[0]
        n = int(round(math.log2(dim)))
        if 2**n != dim:
            raise ValueError(f"Matrix dimension {dim} is not a power of 2")
        if num_qubits is not None and num_qubits != n:
            raise ValueError(f"num_qubits={num_qubits} but matrix is {dim}x{dim}")
        self._matrix = matrix
        self._num_qubits = n

    def num_qubits(self) -> int:
        return self._num_qubits

    def _unitary_(self) -> np.ndarray:
        return self._matrix

    def __pow__(self, power) -> "MatrixGate":
        if power == -1:
            return MatrixGate(self._matrix.conj().T)
        return NotImplemented

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        if self._num_qubits == 1:
            return ("U",)
        return tuple(f"U[{i}]" for i in range(self._num_qubits))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MatrixGate):
            return NotImplemented
        return self._matrix.shape == other._matrix.shape and bool(
            np.allclose(self._matrix, other._matrix)
        )

    def __hash__(self) -> int:
        return hash(("MatrixGate", self._matrix.shape[0]))

    def __repr__(self) -> str:
        return f"MatrixGate(num_qubits={self._num_qubits})"


class ControlledGate(Gate):
    """A gate controlled on one extra qubit (prepended)."""

    def __init__(self, sub_gate: Gate, num_controls: int = 1):
        self.sub_gate = sub_gate
        self.num_controls = int(num_controls)

    def num_qubits(self) -> int:
        return self.sub_gate.num_qubits() + self.num_controls

    def _unitary_(self) -> Optional[np.ndarray]:
        sub = self.sub_gate._unitary_()
        if sub is None:
            return None
        dim = 2 ** self.num_qubits()
        m = np.eye(dim, dtype=np.complex128)
        m[dim - sub.shape[0] :, dim - sub.shape[1] :] = sub
        return m

    def _is_parameterized_(self) -> bool:
        return self.sub_gate._is_parameterized_()

    def _resolve_parameters_(self, resolver: ParamResolver) -> "ControlledGate":
        return ControlledGate(
            self.sub_gate._resolve_parameters_(resolver), self.num_controls
        )

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return tuple(["@"] * self.num_controls) + self.sub_gate._diagram_symbols_()

    def __eq__(self, other) -> bool:
        if not isinstance(other, ControlledGate):
            return NotImplemented
        return (
            other.sub_gate == self.sub_gate
            and other.num_controls == self.num_controls
        )

    def __hash__(self) -> int:
        return hash(("ControlledGate", self.sub_gate, self.num_controls))

    def __repr__(self) -> str:
        return f"ControlledGate({self.sub_gate!r}, num_controls={self.num_controls})"


class MeasurementGate(Gate):
    """Computational-basis measurement of ``num_qubits`` qubits under ``key``."""

    def __init__(self, num_qubits: int, key: str = ""):
        self._num_qubits = int(num_qubits)
        self.key = str(key)

    def num_qubits(self) -> int:
        return self._num_qubits

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        label = f"M({self.key!r})" if self.key else "M"
        return tuple([label] + ["M"] * (self._num_qubits - 1))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MeasurementGate):
            return NotImplemented
        return other._num_qubits == self._num_qubits and other.key == self.key

    def __hash__(self) -> int:
        return hash(("MeasurementGate", self._num_qubits, self.key))

    def __repr__(self) -> str:
        return f"MeasurementGate({self._num_qubits}, key={self.key!r})"


# --------------------------------------------------------------------------
# Named constants and rotation constructors
# --------------------------------------------------------------------------

I = IdentityGate(1)
X = XPowGate()
Y = YPowGate()
Z = ZPowGate()
H = HPowGate()
S = ZPowGate(exponent=0.5)
S_DAG = ZPowGate(exponent=-0.5)
T = ZPowGate(exponent=0.25)
T_DAG = ZPowGate(exponent=-0.25)
CX = CNOT = CXPowGate()
CZ = CZPowGate()
SWAP = SwapPowGate()
ISWAP = ISwapPowGate()
CCX = TOFFOLI = CCXPowGate()
CCZ = CCZPowGate()
CSWAP = FREDKIN = CSwapGate()


def Rx(rads: ParamValue) -> XPowGate:
    """``exp(-i X rads / 2)``."""
    exponent = rads / math.pi if isinstance(rads, Symbol) else rads / math.pi
    return XPowGate(exponent=exponent, global_shift=-0.5)


def Ry(rads: ParamValue) -> YPowGate:
    """``exp(-i Y rads / 2)``."""
    return YPowGate(exponent=rads / math.pi, global_shift=-0.5)


def Rz(rads: ParamValue) -> ZPowGate:
    """``exp(-i Z rads / 2)`` — the gate targeted by sum-over-Cliffords."""
    return ZPowGate(exponent=rads / math.pi, global_shift=-0.5)


def rx(rads: ParamValue) -> XPowGate:
    return Rx(rads)


def ry(rads: ParamValue) -> YPowGate:
    return Ry(rads)


def rz(rads: ParamValue) -> ZPowGate:
    return Rz(rads)


def measure(*qubits, key: str = "") -> "GateOperation":
    """Measure the given qubits in the computational basis under ``key``."""
    if not qubits:
        raise ValueError("measure() requires at least one qubit")
    if not key:
        key = ",".join(str(q) for q in qubits)
    return MeasurementGate(len(qubits), key=key).on(*qubits)
