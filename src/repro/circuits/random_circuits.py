"""Random-circuit generators.

``generate_random_circuit`` mirrors the BGLS helper of the same name
(paper Sec. 4.1.3): random circuits over a user-chosen gate domain with a
given number of moments and operation density.  Also provides the special
workload generators used across the paper's figures: Clifford circuits,
Clifford+T circuits, and GHZ circuits with randomly ordered CNOTs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from . import gates
from .circuit import Circuit
from .gates import Gate
from .qubits import LineQubit, Qid

# Default domain: each gate mapped to its arity, mirroring cirq.testing.
DEFAULT_GATE_DOMAIN: Dict[Gate, int] = {
    gates.X: 1,
    gates.Y: 1,
    gates.Z: 1,
    gates.H: 1,
    gates.S: 1,
    gates.T: 1,
    gates.CNOT: 2,
    gates.CZ: 2,
    gates.SWAP: 2,
}

CLIFFORD_GATE_DOMAIN: Dict[Gate, int] = {
    gates.H: 1,
    gates.S: 1,
    gates.CNOT: 2,
}


def _rng(random_state: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def generate_random_circuit(
    qubits: Union[int, Sequence[Qid]],
    n_moments: int,
    op_density: float = 0.5,
    gate_domain: Optional[Dict[Gate, int]] = None,
    random_state: Union[int, np.random.Generator, None] = None,
) -> Circuit:
    """Generate a random circuit (the BGLS ``generate_random_circuit``).

    Args:
        qubits: Qubits to use, or an int for ``LineQubit.range``.
        n_moments: Number of moments (circuit depth).
        op_density: Probability each qubit gets an op in each moment.
        gate_domain: Mapping from gate to its arity; defaults to a mixed
            1q/2q domain.  Restrict to ``CLIFFORD_GATE_DOMAIN`` for the
            paper's Clifford experiments.
        random_state: Seed or generator for reproducibility.

    Returns:
        A circuit with exactly ``n_moments`` moments.
    """
    if isinstance(qubits, int):
        qubits = LineQubit.range(qubits)
    qubits = list(qubits)
    if not qubits:
        raise ValueError("Need at least one qubit")
    gate_domain = dict(gate_domain if gate_domain is not None else DEFAULT_GATE_DOMAIN)
    max_arity = max(arity for arity in gate_domain.values())
    if max_arity > len(qubits):
        gate_domain = {g: a for g, a in gate_domain.items() if a <= len(qubits)}
        if not gate_domain:
            raise ValueError("No gate in the domain fits on the given qubits")
    gate_list = sorted(gate_domain.items(), key=lambda kv: repr(kv[0]))
    rng = _rng(random_state)

    circuit = Circuit()
    for _ in range(n_moments):
        chosen = [q for q in qubits if rng.random() < op_density]
        rng.shuffle(chosen)
        ops = []
        while chosen:
            candidates = [
                (g, a) for g, a in gate_list if a <= len(chosen)
            ]
            if not candidates:
                break
            g, arity = candidates[int(rng.integers(len(candidates)))]
            targets, chosen = chosen[:arity], chosen[arity:]
            ops.append(g.on(*targets))
        # Always append the moment, even if empty, so depth == n_moments.
        circuit.append_new_moment(ops)
    return circuit


def random_clifford_circuit(
    qubits: Union[int, Sequence[Qid]],
    n_moments: int,
    op_density: float = 0.8,
    random_state: Union[int, np.random.Generator, None] = None,
) -> Circuit:
    """Random circuit over {H, S, CNOT} (paper Fig. 3 workload)."""
    return generate_random_circuit(
        qubits,
        n_moments,
        op_density=op_density,
        gate_domain=CLIFFORD_GATE_DOMAIN,
        random_state=random_state,
    )


def random_clifford_t_circuit(
    qubits: Union[int, Sequence[Qid]],
    n_moments: int,
    op_density: float = 0.8,
    t_density: float = 0.1,
    random_state: Union[int, np.random.Generator, None] = None,
) -> Circuit:
    """Random Clifford circuit with T gates sprinkled in (Fig. 4a workload).

    ``t_density`` is the probability that a chosen 1-qubit slot becomes a T
    gate instead of a Clifford gate.
    """
    rng = _rng(random_state)
    domain = dict(CLIFFORD_GATE_DOMAIN)
    base = generate_random_circuit(
        qubits, n_moments, op_density=op_density, gate_domain=domain, random_state=rng
    )
    out = Circuit()
    for moment in base.moments:
        ops = []
        for op in moment.operations:
            if len(op.qubits) == 1 and rng.random() < t_density:
                ops.append(gates.T.on(*op.qubits))
            else:
                ops.append(op)
        out.append_new_moment(ops)
    return out


def substitute_gate(
    circuit: Circuit, old: Gate, new: Gate, random_state=None
) -> Circuit:
    """Replace every occurrence of gate ``old`` with gate ``new``.

    Used for the paper's T -> S comparison (Fig. 4a) and the T -> R(theta)
    sweep (Fig. 4b).
    """
    out = Circuit()
    for moment in circuit.moments:
        ops = []
        for op in moment.operations:
            ops.append(new.on(*op.qubits) if op.gate == old else op)
        out.append_new_moment(ops)
    return out


def count_gate(circuit: Circuit, gate: Gate) -> int:
    """Number of operations in ``circuit`` whose gate equals ``gate``."""
    return sum(1 for op in circuit.all_operations() if op.gate == gate)


def substitute_clifford_with_t(
    circuit: Circuit,
    num_substitutions: int,
    random_state: Union[int, np.random.Generator, None] = None,
) -> Circuit:
    """Replace ``num_substitutions`` random 1-qubit ops with T gates.

    This is the Fig. 5 workload: a pure-Clifford circuit made progressively
    more non-Clifford.
    """
    rng = _rng(random_state)
    ops_per_moment: List[List] = [list(m.operations) for m in circuit.moments]
    single_qubit_slots = [
        (i, j)
        for i, ops in enumerate(ops_per_moment)
        for j, op in enumerate(ops)
        if len(op.qubits) == 1 and not op.is_measurement
    ]
    if num_substitutions > len(single_qubit_slots):
        raise ValueError(
            f"Requested {num_substitutions} substitutions but circuit has "
            f"only {len(single_qubit_slots)} single-qubit operations"
        )
    picks = rng.choice(len(single_qubit_slots), size=num_substitutions, replace=False)
    for pick in picks:
        i, j = single_qubit_slots[int(pick)]
        ops_per_moment[i][j] = gates.T.on(*ops_per_moment[i][j].qubits)
    out = Circuit()
    for ops in ops_per_moment:
        out.append_new_moment(ops)
    return out
