"""Circuit substrate: qubits, gates, channels, moments, circuits, interop.

This subpackage is the from-scratch replacement for the slice of Cirq the
reference BGLS package builds upon.
"""

from .qubits import (
    GridQubit,
    LineQubit,
    NamedQubit,
    Qid,
    qubit_index_map,
    sorted_qubits,
)
from .parameters import ParamResolver, Symbol, is_parameterized
from .gates import (
    CCX,
    CCZ,
    CNOT,
    CSWAP,
    CX,
    CZ,
    FREDKIN,
    H,
    I,
    ISWAP,
    S,
    S_DAG,
    SWAP,
    T,
    T_DAG,
    TOFFOLI,
    X,
    Y,
    Z,
    CCXPowGate,
    CCZPowGate,
    ControlledGate,
    CSwapGate,
    CXPowGate,
    CZPowGate,
    EigenGate,
    Gate,
    HPowGate,
    IdentityGate,
    ISwapPowGate,
    MatrixGate,
    MeasurementGate,
    PhasedXPowGate,
    Rx,
    Ry,
    Rz,
    SwapPowGate,
    XPowGate,
    YPowGate,
    ZPowGate,
    measure,
    rx,
    ry,
    rz,
)
from .channels import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    KrausChannel,
    PhaseDampingChannel,
    PhaseFlipChannel,
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
    phase_flip,
)
from .operations import GateOperation
from .moment import Moment
from .circuit import Circuit
from .diagram import circuit_diagram
from .random_circuits import (
    CLIFFORD_GATE_DOMAIN,
    DEFAULT_GATE_DOMAIN,
    count_gate,
    generate_random_circuit,
    random_clifford_circuit,
    random_clifford_t_circuit,
    substitute_clifford_with_t,
    substitute_gate,
)
from .optimize import (
    drop_empty_moments,
    merge_single_qubit_gates,
    optimize_for_bgls,
)
from .qasm import QasmError, circuit_from_qasm, circuit_to_qasm
from .paulis import PauliString, PauliSum, pauli_string_from_text
from .metrics import (
    CircuitMetrics,
    compute_metrics,
    entangling_depth,
    interaction_graph,
    summarize,
)

__all__ = [
    # qubits
    "Qid", "LineQubit", "GridQubit", "NamedQubit", "sorted_qubits", "qubit_index_map",
    # parameters
    "Symbol", "ParamResolver", "is_parameterized",
    # gates
    "Gate", "EigenGate", "IdentityGate", "MatrixGate", "ControlledGate",
    "XPowGate", "YPowGate", "ZPowGate", "HPowGate", "PhasedXPowGate",
    "CXPowGate", "CZPowGate",
    "SwapPowGate", "ISwapPowGate", "CCXPowGate", "CCZPowGate", "CSwapGate",
    "MeasurementGate",
    "I", "X", "Y", "Z", "H", "S", "S_DAG", "T", "T_DAG",
    "CX", "CNOT", "CZ", "SWAP", "ISWAP", "CCX", "TOFFOLI", "CCZ", "CSWAP", "FREDKIN",
    "Rx", "Ry", "Rz", "rx", "ry", "rz", "measure",
    # channels
    "KrausChannel", "BitFlipChannel", "PhaseFlipChannel", "DepolarizingChannel",
    "AmplitudeDampingChannel", "PhaseDampingChannel",
    "bit_flip", "phase_flip", "depolarize", "amplitude_damp", "phase_damp",
    # pauli algebra
    "PauliString", "PauliSum", "pauli_string_from_text",
    # metrics
    "CircuitMetrics", "compute_metrics", "interaction_graph",
    "entangling_depth", "summarize",
    # structure
    "GateOperation", "Moment", "Circuit", "circuit_diagram",
    # generators
    "DEFAULT_GATE_DOMAIN", "CLIFFORD_GATE_DOMAIN", "generate_random_circuit",
    "random_clifford_circuit", "random_clifford_t_circuit",
    "substitute_gate", "substitute_clifford_with_t", "count_gate",
    # optimization
    "optimize_for_bgls", "merge_single_qubit_gates", "drop_empty_moments",
    # qasm
    "circuit_from_qasm", "circuit_to_qasm", "QasmError",
]
