"""Operations: a gate bound to concrete qubits."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .gates import Gate, MeasurementGate
from .parameters import ParamResolver
from .qubits import Qid


class GateOperation:
    """A :class:`Gate` applied to a specific tuple of qubits.

    This is the unit the BGLS sampler walks over: its ``qubits`` are the
    *support* used to enumerate candidate bitstrings.
    """

    __slots__ = ("gate", "qubits")

    def __init__(self, gate: Gate, qubits: Sequence[Qid]):
        qubits = tuple(qubits)
        if len(qubits) != gate.num_qubits():
            raise ValueError(
                f"Gate {gate!r} acts on {gate.num_qubits()} qubits but got "
                f"{len(qubits)}: {qubits}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"Duplicate qubits in operation: {qubits}")
        self.gate = gate
        self.qubits = qubits

    # -- protocol forwarding ---------------------------------------------
    def _unitary_(self) -> Optional[np.ndarray]:
        return self.gate._unitary_()

    def _kraus_(self) -> Optional[List[np.ndarray]]:
        return self.gate._kraus_()

    def _is_parameterized_(self) -> bool:
        return self.gate._is_parameterized_()

    def _resolve_parameters_(self, resolver: ParamResolver) -> "GateOperation":
        return GateOperation(self.gate._resolve_parameters_(resolver), self.qubits)

    def _stabilizer_sequence_(self):
        return self.gate._stabilizer_sequence_()

    # -- helpers -----------------------------------------------------------
    @property
    def is_measurement(self) -> bool:
        """Whether this operation is a keyed measurement."""
        return isinstance(self.gate, MeasurementGate)

    @property
    def measurement_key(self) -> Optional[str]:
        """The measurement key, or None for non-measurements."""
        return self.gate.key if isinstance(self.gate, MeasurementGate) else None

    def with_qubits(self, *new_qubits: Qid) -> "GateOperation":
        """The same gate applied to different qubits."""
        return GateOperation(self.gate, new_qubits)

    def __eq__(self, other) -> bool:
        if not isinstance(other, GateOperation):
            return NotImplemented
        return other.gate == self.gate and other.qubits == self.qubits

    def __hash__(self) -> int:
        return hash((self.gate, self.qubits))

    def __repr__(self) -> str:
        qubit_str = ", ".join(repr(q) for q in self.qubits)
        return f"{self.gate!r}.on({qubit_str})"

    def __str__(self) -> str:
        symbols = self.gate._diagram_symbols_()
        pairs = ", ".join(str(q) for q in self.qubits)
        return f"{symbols[0] if len(symbols) == 1 else symbols}({pairs})"
