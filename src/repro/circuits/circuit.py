"""The Circuit container: an ordered sequence of moments.

Supports the Cirq-style construction idioms the paper's snippets use:
``Circuit(H.on(q0), CNOT.on(q0, q1), measure(q0, q1, key="z"))`` with
earliest-slot packing, iteration over all operations in time order,
parameter resolution, composition, and small-circuit unitaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .gates import Gate
from .moment import Moment
from .operations import GateOperation
from .parameters import ParamResolver
from .qubits import Qid, sorted_qubits

OpTree = Union[GateOperation, Moment, Iterable]


def _flatten(tree: OpTree) -> Iterator[Union[GateOperation, Moment]]:
    """Yield operations/moments from an arbitrarily nested iterable."""
    if isinstance(tree, (GateOperation, Moment)):
        yield tree
        return
    if isinstance(tree, Gate):
        raise TypeError(
            f"Got a bare gate {tree!r}; bind it to qubits with gate.on(...)"
        )
    try:
        iterator = iter(tree)
    except TypeError:
        raise TypeError(f"Not an operation, moment, or iterable: {tree!r}")
    for item in iterator:
        yield from _flatten(item)


class Circuit:
    """An ordered sequence of :class:`Moment` objects."""

    def __init__(self, *contents: OpTree):
        self._moments: List[Moment] = []
        if contents:
            self.append(contents)

    # -- construction ------------------------------------------------------
    def append(self, tree: OpTree) -> "Circuit":
        """Append operations using the earliest-slot strategy.

        Each operation is placed in the earliest moment (searching backward)
        whose later moments don't touch its qubits; measurements and
        operations on fresh qubits pack tightly, matching Cirq's default
        ``EARLIEST`` strategy closely enough for all BGLS workloads.
        """
        for item in _flatten(tree):
            if isinstance(item, Moment):
                self._moments.append(item)
                continue
            self._append_earliest(item)
        return self

    def _append_earliest(self, op: GateOperation) -> None:
        index = len(self._moments)
        while index > 0 and not self._moments[index - 1].operates_on(op.qubits):
            index -= 1
        if index == len(self._moments):
            self._moments.append(Moment([op]))
        else:
            self._moments[index] = self._moments[index].with_operation(op)

    def append_new_moment(self, ops: Iterable[GateOperation]) -> "Circuit":
        """Append operations as one brand-new moment (NEW_THEN_INLINE-ish)."""
        self._moments.append(Moment(ops))
        return self

    # -- inspection ---------------------------------------------------------
    @property
    def moments(self) -> Tuple[Moment, ...]:
        return tuple(self._moments)

    def all_operations(self) -> Iterator[GateOperation]:
        """All operations in time order (moment by moment)."""
        for moment in self._moments:
            yield from moment.operations

    def all_qubits(self) -> List[Qid]:
        """All qubits touched by the circuit, in canonical sorted order."""
        qubits: Set[Qid] = set()
        for moment in self._moments:
            qubits |= moment.qubits
        return sorted_qubits(qubits)

    def all_measurement_keys(self) -> List[str]:
        """Measurement keys in order of first appearance."""
        keys: List[str] = []
        for op in self.all_operations():
            if op.is_measurement and op.measurement_key not in keys:
                keys.append(op.measurement_key)
        return keys

    def has_measurements(self) -> bool:
        return any(op.is_measurement for op in self.all_operations())

    def are_all_measurements_terminal(self) -> bool:
        """Whether no measured qubit is acted on after its measurement."""
        measured: Set[Qid] = set()
        for moment in self._moments:
            for op in moment.operations:
                if any(q in measured for q in op.qubits):
                    return False
                if op.is_measurement:
                    measured.update(op.qubits)
        return True

    def num_operations(self) -> int:
        return sum(len(m) for m in self._moments)

    def depth(self) -> int:
        """Number of moments."""
        return len(self._moments)

    def _is_parameterized_(self) -> bool:
        return any(op._is_parameterized_() for op in self.all_operations())

    def is_unitary_circuit(self) -> bool:
        """Whether every non-measurement operation has a unitary."""
        for op in self.all_operations():
            if op.is_measurement:
                continue
            if op._unitary_() is None:
                return False
        return True

    # -- transformation ------------------------------------------------------
    def resolve_parameters(self, resolver: Union[ParamResolver, dict, None]) -> "Circuit":
        """A copy of the circuit with symbols replaced by numbers."""
        if resolver is None:
            return self.copy()
        if isinstance(resolver, dict):
            resolver = ParamResolver(resolver)
        out = Circuit()
        for moment in self._moments:
            out.append_new_moment(
                op._resolve_parameters_(resolver) for op in moment.operations
            )
        return out

    def with_noise(self, channel_factory) -> "Circuit":
        """Insert a noise channel on every qubit after each moment.

        ``channel_factory`` is either a 1-qubit channel gate (applied
        uniformly) or a callable ``() -> gate``.  Measurement-only moments
        are left clean, mirroring ``cirq.Circuit.with_noise`` semantics
        closely enough for noisy-sampling studies.
        """
        out = Circuit()
        qubits = self.all_qubits()
        for moment in self._moments:
            out.append_new_moment(moment.operations)
            if all(op.is_measurement for op in moment.operations):
                continue
            if isinstance(channel_factory, Gate):
                gate = channel_factory
            else:
                gate = channel_factory()
            out.append_new_moment(gate.on(q) for q in qubits)
        return out

    def without_measurements(self) -> "Circuit":
        """A copy with all measurement operations removed."""
        out = Circuit()
        for moment in self._moments:
            ops = [op for op in moment.operations if not op.is_measurement]
            if ops:
                out.append_new_moment(ops)
        return out

    def copy(self) -> "Circuit":
        out = Circuit()
        out._moments = list(self._moments)
        return out

    def __add__(self, other: "Circuit") -> "Circuit":
        out = self.copy()
        if isinstance(other, Circuit):
            out._moments.extend(other._moments)
            return out
        out.append(other)
        return out

    # -- numerics -------------------------------------------------------------
    def unitary(self, qubit_order: Optional[Sequence[Qid]] = None) -> np.ndarray:
        """Dense unitary of the (measurement-free) circuit.

        Exponential in qubit count; intended for verification on small
        circuits.  ``qubit_order`` defaults to sorted qubits.
        """
        qubits = list(qubit_order) if qubit_order is not None else self.all_qubits()
        n = len(qubits)
        index = {q: i for i, q in enumerate(qubits)}
        total = np.eye(2**n, dtype=np.complex128).reshape((2,) * (2 * n))
        for op in self.all_operations():
            if op.is_measurement:
                raise ValueError("Circuit with measurements has no unitary")
            u = op._unitary_()
            if u is None:
                raise ValueError(f"Operation {op!r} has no unitary")
            k = len(op.qubits)
            u = u.reshape((2,) * (2 * k))
            axes = [index[q] for q in op.qubits]
            total = np.tensordot(u, total, axes=(range(k, 2 * k), axes))
            total = np.moveaxis(total, range(k), axes)
        return total.reshape(2**n, 2**n)

    def final_state_vector(
        self, qubit_order: Optional[Sequence[Qid]] = None
    ) -> np.ndarray:
        """Dense final state from |0...0> (measurements ignored)."""
        qubits = list(qubit_order) if qubit_order is not None else self.all_qubits()
        n = len(qubits)
        index = {q: i for i, q in enumerate(qubits)}
        state = np.zeros((2,) * n, dtype=np.complex128)
        state[(0,) * n] = 1.0
        for op in self.all_operations():
            if op.is_measurement:
                continue
            u = op._unitary_()
            if u is None:
                raise ValueError(f"Operation {op!r} has no unitary")
            k = len(op.qubits)
            u = u.reshape((2,) * (2 * k))
            axes = [index[q] for q in op.qubits]
            state = np.tensordot(u, state, axes=(range(k, 2 * k), axes))
            state = np.moveaxis(state, range(k), axes)
        return state.reshape(-1)

    # -- dunder -----------------------------------------------------------------
    def __iter__(self) -> Iterator[Moment]:
        return iter(self._moments)

    def __len__(self) -> int:
        return len(self._moments)

    def __getitem__(self, key):
        if isinstance(key, slice):
            out = Circuit()
            out._moments = self._moments[key]
            return out
        return self._moments[key]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self._moments == other._moments

    def __repr__(self) -> str:
        return f"Circuit({self._moments!r})"

    def __str__(self) -> str:
        from .diagram import circuit_diagram

        return circuit_diagram(self)
