"""Noise channels (Kraus-operator gates).

These make circuits non-unitary; the BGLS simulator then switches to
quantum-trajectory mode (paper Sec. 3.2.1): each repetition stochastically
selects one Kraus branch per channel application.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .gates import Gate

_I2 = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)


class KrausChannel(Gate):
    """Base class for single-qubit Kraus channels with fixed operators."""

    def __init__(self, probability: float) -> None:
        p = float(probability)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"Probability must be in [0, 1], got {p}")
        self.probability = p

    def num_qubits(self) -> int:
        return 1

    def _unitary_(self):
        return None

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return other.probability == self.probability

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.probability))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.probability})"


class BitFlipChannel(KrausChannel):
    """Applies X with probability ``p``."""

    def _kraus_(self) -> List[np.ndarray]:
        p = self.probability
        return [math.sqrt(1 - p) * _I2, math.sqrt(p) * _X]

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"BF({self.probability})",)


class PhaseFlipChannel(KrausChannel):
    """Applies Z with probability ``p``."""

    def _kraus_(self) -> List[np.ndarray]:
        p = self.probability
        return [math.sqrt(1 - p) * _I2, math.sqrt(p) * _Z]

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"PF({self.probability})",)


class DepolarizingChannel(KrausChannel):
    """Applies X, Y or Z each with probability ``p/3``."""

    def _kraus_(self) -> List[np.ndarray]:
        p = self.probability
        return [
            math.sqrt(1 - p) * _I2,
            math.sqrt(p / 3) * _X,
            math.sqrt(p / 3) * _Y,
            math.sqrt(p / 3) * _Z,
        ]

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"D({self.probability})",)


class AmplitudeDampingChannel(KrausChannel):
    """T1 decay toward |0> with damping rate ``gamma``."""

    def _kraus_(self) -> List[np.ndarray]:
        g = self.probability
        k0 = np.array([[1, 0], [0, math.sqrt(1 - g)]], dtype=np.complex128)
        k1 = np.array([[0, math.sqrt(g)], [0, 0]], dtype=np.complex128)
        return [k0, k1]

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"AD({self.probability})",)


class PhaseDampingChannel(KrausChannel):
    """Pure dephasing with rate ``gamma``."""

    def _kraus_(self) -> List[np.ndarray]:
        g = self.probability
        k0 = np.array([[1, 0], [0, math.sqrt(1 - g)]], dtype=np.complex128)
        k1 = np.array([[0, 0], [0, math.sqrt(g)]], dtype=np.complex128)
        return [k0, k1]

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"PD({self.probability})",)


def bit_flip(p: float) -> BitFlipChannel:
    """Bit-flip channel with flip probability ``p``."""
    return BitFlipChannel(p)


def phase_flip(p: float) -> PhaseFlipChannel:
    """Phase-flip channel with flip probability ``p``."""
    return PhaseFlipChannel(p)


def depolarize(p: float) -> DepolarizingChannel:
    """Depolarizing channel with total error probability ``p``."""
    return DepolarizingChannel(p)


def amplitude_damp(gamma: float) -> AmplitudeDampingChannel:
    """Amplitude-damping channel with decay probability ``gamma``."""
    return AmplitudeDampingChannel(gamma)


def phase_damp(gamma: float) -> PhaseDampingChannel:
    """Phase-damping channel with dephasing probability ``gamma``."""
    return PhaseDampingChannel(gamma)
