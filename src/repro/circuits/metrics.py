"""Circuit resource metrics: gate counts, depths, entanglement structure.

The quantities that predict BGLS sampling cost before running anything:
two-qubit gate count (bond growth for MPS), T count (branch count for
sum-over-Cliffords), per-qubit depth (trajectory length), and the
interaction graph (routing/contraction structure).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

import networkx as nx

from .circuit import Circuit
from .qubits import Qid


@dataclass
class CircuitMetrics:
    """Aggregate resource summary of a circuit."""

    num_qubits: int
    num_operations: int
    num_moments: int
    num_measurements: int
    num_channels: int
    one_qubit_gates: int
    two_qubit_gates: int
    multi_qubit_gates: int
    gate_histogram: Dict[str, int] = field(repr=False)
    qubit_depths: Dict[Qid, int] = field(repr=False)

    @property
    def max_qubit_depth(self) -> int:
        """Longest per-qubit operation chain (trajectory length bound)."""
        return max(self.qubit_depths.values(), default=0)

    @property
    def parallelism(self) -> float:
        """Average operations per moment (1.0 = fully serial)."""
        if self.num_moments == 0:
            return 0.0
        return self.num_operations / self.num_moments


def compute_metrics(circuit: Circuit) -> CircuitMetrics:
    """Walk the circuit once and collect every resource counter."""
    histogram: Counter = Counter()
    depths: Dict[Qid, int] = {q: 0 for q in circuit.all_qubits()}
    one_q = two_q = multi_q = measurements = channels_count = 0

    for op in circuit.all_operations():
        label = type(op.gate).__name__
        histogram[label] += 1
        for q in op.qubits:
            depths[q] += 1
        if op.is_measurement:
            measurements += 1
            continue
        if op._unitary_() is None and op._kraus_() is not None:
            channels_count += 1
            continue  # channels are tallied separately from gates
        arity = len(op.qubits)
        if arity == 1:
            one_q += 1
        elif arity == 2:
            two_q += 1
        else:
            multi_q += 1

    return CircuitMetrics(
        num_qubits=len(depths),
        num_operations=circuit.num_operations(),
        num_moments=len(circuit.moments),
        num_measurements=measurements,
        num_channels=channels_count,
        one_qubit_gates=one_q,
        two_qubit_gates=two_q,
        multi_qubit_gates=multi_q,
        gate_histogram=dict(histogram),
        qubit_depths=depths,
    )


def interaction_graph(circuit: Circuit) -> nx.Graph:
    """Graph over qubits with an edge per interacting pair.

    Edge weight = number of multi-qubit operations coupling the pair.
    Its connectivity predicts MPS bond structure and routing cost.
    """
    graph = nx.Graph()
    graph.add_nodes_from(circuit.all_qubits())
    for op in circuit.all_operations():
        if op.is_measurement or len(op.qubits) < 2:
            continue
        qs = op.qubits
        for i in range(len(qs)):
            for j in range(i + 1, len(qs)):
                if graph.has_edge(qs[i], qs[j]):
                    graph[qs[i]][qs[j]]["weight"] += 1
                else:
                    graph.add_edge(qs[i], qs[j], weight=1)
    return graph


def entangling_depth(circuit: Circuit) -> int:
    """Number of moments containing at least one multi-qubit gate.

    The quantity the paper's Fig. 7 argument turns on: entanglement (and
    with it MPS cost) grows with entangling depth, not raw depth.
    """
    count = 0
    for moment in circuit.moments:
        if any(
            len(op.qubits) >= 2 and not op.is_measurement
            for op in moment.operations
        ):
            count += 1
    return count


def summarize(circuit: Circuit) -> str:
    """Human-readable one-paragraph resource summary."""
    m = compute_metrics(circuit)
    graph = interaction_graph(circuit)
    lines = [
        f"qubits={m.num_qubits} ops={m.num_operations} "
        f"moments={m.num_moments} (parallelism {m.parallelism:.2f})",
        f"1q={m.one_qubit_gates} 2q={m.two_qubit_gates} "
        f"3q+={m.multi_qubit_gates} meas={m.num_measurements} "
        f"channels={m.num_channels}",
        f"entangling_depth={entangling_depth(circuit)} "
        f"max_qubit_depth={m.max_qubit_depth} "
        f"interaction_edges={graph.number_of_edges()}",
        "gates: "
        + ", ".join(
            f"{name}x{count}"
            for name, count in sorted(m.gate_histogram.items())
        ),
    ]
    return "\n".join(lines)
