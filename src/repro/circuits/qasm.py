"""OpenQASM 2.0 interop (paper Sec. 3.2.4: usage with non-Cirq circuits).

Supports the common qelib1 subset: h, x, y, z, s, sdg, t, tdg, rx, ry, rz,
u1, cx, cz, swap, ccx, id, barrier (ignored), measure.  This is the same
role ``cirq.contrib.qasm_import`` plays for the reference package.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Tuple

from . import gates
from .circuit import Circuit
from .qubits import NamedQubit, Qid

_HEADER_RE = re.compile(r"OPENQASM\s+2.0\s*;")
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_GATE_RE = re.compile(
    r"(\w+)\s*(?:\(([^)]*)\))?\s+([\w\[\]\s,]+);"
)
_MEASURE_RE = re.compile(
    r"measure\s+(\w+)\s*(?:\[\s*(\d+)\s*\])?\s*->\s*(\w+)\s*(?:\[\s*(\d+)\s*\])?\s*;"
)
_ARG_RE = re.compile(r"(\w+)\s*(?:\[\s*(\d+)\s*\])?")


class QasmError(ValueError):
    """Raised on malformed or unsupported QASM input."""


def _eval_angle(expr: str) -> float:
    """Evaluate a QASM angle expression (numbers, pi, + - * /)."""
    expr = expr.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE.+\-*/() ]+", expr):
        raise QasmError(f"Unsupported angle expression: {expr!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"Bad angle expression {expr!r}: {exc}") from exc


_FIXED_GATES: Dict[str, gates.Gate] = {
    "id": gates.I,
    "h": gates.H,
    "x": gates.X,
    "y": gates.Y,
    "z": gates.Z,
    "s": gates.S,
    "sdg": gates.S_DAG,
    "t": gates.T,
    "tdg": gates.T_DAG,
    "cx": gates.CNOT,
    "cz": gates.CZ,
    "swap": gates.SWAP,
    "ccx": gates.CCX,
    "cswap": gates.CSWAP,
}

_ROTATION_GATES: Dict[str, Callable[[float], gates.Gate]] = {
    "rx": gates.Rx,
    "ry": gates.Ry,
    "rz": gates.Rz,
    "u1": lambda rads: gates.ZPowGate(exponent=rads / math.pi),
    "p": lambda rads: gates.ZPowGate(exponent=rads / math.pi),
}


def circuit_from_qasm(qasm: str) -> Circuit:
    """Parse an OpenQASM 2.0 program into a :class:`Circuit`.

    Register qubits become ``NamedQubit(f"{reg}_{i}")``; measurements into a
    classical register become keyed measurements under the register name.
    """
    # Strip comments and the include line.
    lines = []
    for raw in qasm.splitlines():
        line = raw.split("//")[0].strip()
        if not line or line.startswith("include"):
            continue
        lines.append(line)
    text = " ".join(lines)
    if not _HEADER_RE.search(text):
        raise QasmError("Missing 'OPENQASM 2.0;' header")

    qregs: Dict[str, List[Qid]] = {}
    for match in _QREG_RE.finditer(text):
        name, size = match.group(1), int(match.group(2))
        qregs[name] = [NamedQubit(f"{name}_{i}") for i in range(size)]
    cregs: Dict[str, int] = {
        m.group(1): int(m.group(2)) for m in _CREG_RE.finditer(text)
    }

    def lookup(reg: str, idx_str) -> List[Qid]:
        if reg not in qregs:
            raise QasmError(f"Unknown quantum register {reg!r}")
        if idx_str is None:
            return list(qregs[reg])
        idx = int(idx_str)
        if idx >= len(qregs[reg]):
            raise QasmError(f"Index {idx} out of range for register {reg!r}")
        return [qregs[reg][idx]]

    circuit = Circuit()
    # Measurements into the same classical register are merged into one
    # keyed measurement (appended at the end, ordered by classical index).
    pending_measurements: Dict[str, List[Tuple[int, Qid]]] = {}
    # Process statement by statement.
    for statement in text.split(";"):
        statement = statement.strip()
        if not statement:
            continue
        statement += ";"
        if (
            _HEADER_RE.match(statement)
            or _QREG_RE.match(statement)
            or _CREG_RE.match(statement)
        ):
            continue
        if statement.startswith("barrier"):
            continue
        m = _MEASURE_RE.match(statement)
        if m:
            qreg, qidx, creg, cidx = m.groups()
            targets = lookup(qreg, qidx)
            slots = pending_measurements.setdefault(creg, [])
            if cidx is None:
                for i, q in enumerate(targets):
                    slots.append((i, q))
            else:
                slots.append((int(cidx), targets[0]))
            continue
        m = _GATE_RE.match(statement)
        if not m:
            raise QasmError(f"Cannot parse statement: {statement!r}")
        name, params, args = m.group(1), m.group(2), m.group(3)
        arg_qubits: List[List[Qid]] = []
        for arg in args.split(","):
            am = _ARG_RE.match(arg.strip())
            if not am:
                raise QasmError(f"Bad argument {arg!r} in {statement!r}")
            arg_qubits.append(lookup(am.group(1), am.group(2)))
        if name in _FIXED_GATES:
            gate = _FIXED_GATES[name]
        elif name in _ROTATION_GATES:
            if params is None:
                raise QasmError(f"Gate {name} requires a parameter")
            gate = _ROTATION_GATES[name](_eval_angle(params))
        else:
            raise QasmError(f"Unsupported gate {name!r}")
        # Broadcast whole-register operands (all same length or length 1).
        lengths = {len(qs) for qs in arg_qubits}
        n_apply = max(lengths)
        if lengths - {1, n_apply}:
            raise QasmError(f"Mismatched register sizes in {statement!r}")
        for i in range(n_apply):
            targets = [qs[0] if len(qs) == 1 else qs[i] for qs in arg_qubits]
            circuit.append(gate.on(*targets))
    for creg, slots in pending_measurements.items():
        ordered = [q for _, q in sorted(slots, key=lambda pair: pair[0])]
        circuit.append(gates.measure(*ordered, key=creg))
    return circuit


_QASM_NAMES: List[Tuple[gates.Gate, str]] = [
    (gates.H, "h"),
    (gates.X, "x"),
    (gates.Y, "y"),
    (gates.Z, "z"),
    (gates.S, "s"),
    (gates.S_DAG, "sdg"),
    (gates.T, "t"),
    (gates.T_DAG, "tdg"),
    (gates.CNOT, "cx"),
    (gates.CZ, "cz"),
    (gates.SWAP, "swap"),
    (gates.CCX, "ccx"),
    (gates.CSWAP, "cswap"),
    (gates.I, "id"),
]


def circuit_to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to OpenQASM 2.0.

    Qubits map to one register ``q`` in canonical sorted order; every keyed
    measurement gets its own classical register (sanitized key name).
    """
    qubits = circuit.all_qubits()
    index = {q: i for i, q in enumerate(qubits)}
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{len(qubits)}];",
    ]
    # Declare classical registers.
    declared = {}
    for op in circuit.all_operations():
        if op.is_measurement:
            key = op.measurement_key or "m"
            reg = re.sub(r"\W", "_", key)
            if reg not in declared:
                declared[reg] = len(op.qubits)
                lines.append(f"creg {reg}[{len(op.qubits)}];")

    fixed = {gate: name for gate, name in _QASM_NAMES}
    for op in circuit.all_operations():
        targets = ", ".join(f"q[{index[q]}]" for q in op.qubits)
        if op.is_measurement:
            reg = re.sub(r"\W", "_", op.measurement_key or "m")
            for i, q in enumerate(op.qubits):
                lines.append(f"measure q[{index[q]}] -> {reg}[{i}];")
            continue
        gate = op.gate
        if gate in fixed:
            lines.append(f"{fixed[gate]} {targets};")
            continue
        if isinstance(gate, gates.ZPowGate) and not gate._is_parameterized_():
            rads = float(gate.exponent) * math.pi
            lines.append(f"rz({rads}) {targets};")
            continue
        if isinstance(gate, gates.XPowGate) and not gate._is_parameterized_():
            rads = float(gate.exponent) * math.pi
            lines.append(f"rx({rads}) {targets};")
            continue
        if isinstance(gate, gates.YPowGate) and not gate._is_parameterized_():
            rads = float(gate.exponent) * math.pi
            lines.append(f"ry({rads}) {targets};")
            continue
        raise QasmError(f"Cannot serialize {gate!r} to QASM")
    return "\n".join(lines) + "\n"
