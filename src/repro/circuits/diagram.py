"""Plain-text circuit diagrams (wire-per-qubit, column-per-moment)."""

from __future__ import annotations

from typing import List

from .qubits import qubit_index_map


def circuit_diagram(circuit) -> str:
    """Render a circuit as an ASCII diagram.

    Example output for a GHZ circuit::

        q(0): --H--@--M('z')--
                   |  |
        q(1): -----X--M-------
    """
    qubits = circuit.all_qubits()
    if not qubits:
        return "(empty circuit)"
    index = qubit_index_map(qubits)
    n = len(qubits)

    labels = [f"{q}: " for q in qubits]
    width = max(len(s) for s in labels)
    rows: List[List[str]] = [[label.ljust(width)] for label in labels]
    connector_rows: List[List[str]] = [[" " * width] for _ in range(max(n - 1, 0))]

    for moment in circuit.moments:
        column = ["--"] * n
        connect = [" "] * max(n - 1, 0)
        for op in moment.operations:
            symbols = op.gate._diagram_symbols_()
            positions = [index[q] for q in op.qubits]
            for sym, pos in zip(symbols, positions):
                column[pos] = sym
            lo, hi = min(positions), max(positions)
            for between in range(lo, hi):
                connect[between] = "|"
        col_width = max(len(s) for s in column) + 2
        for i in range(n):
            cell = column[i]
            if cell.startswith("-"):
                rows[i].append(cell.ljust(col_width, "-"))
            else:
                rows[i].append(("-" + cell).ljust(col_width, "-"))
        for i in range(max(n - 1, 0)):
            mark = connect[i]
            connector_rows[i].append((" " + mark).ljust(col_width, " "))

    lines: List[str] = []
    for i in range(n):
        lines.append("".join(rows[i]).rstrip("-") + "-" if len(rows[i]) > 1 else "".join(rows[i]))
        if i < n - 1:
            connector = "".join(connector_rows[i]).rstrip()
            if connector:
                lines.append(connector)
    return "\n".join(lines)
