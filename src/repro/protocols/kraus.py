"""The ``kraus`` protocol (quantum channels)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np


def kraus(val, default=RuntimeError) -> Optional[List[np.ndarray]]:
    """Return the Kraus operators of a gate/operation.

    Unitary gates yield a single-element list.  ``default`` behaves as in
    :func:`repro.protocols.unitary`.
    """
    getter = getattr(val, "_kraus_", None)
    result = getter() if getter is not None else None
    if result is not None:
        return [np.asarray(k, dtype=np.complex128) for k in result]
    if default is RuntimeError:
        raise TypeError(f"No Kraus representation for {val!r}")
    return default


def has_kraus(val) -> bool:
    """Whether ``kraus(val)`` would succeed."""
    return kraus(val, default=None) is not None


def is_channel(val) -> bool:
    """Whether ``val`` is non-unitary but has a Kraus representation."""
    from .unitary import has_unitary

    return has_kraus(val) and not has_unitary(val)
