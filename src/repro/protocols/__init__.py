"""Protocols: duck-typed capability queries over gates/operations/states.

Mirrors the thin slice of ``cirq.protocols`` used by BGLS: ``unitary``,
``kraus``, ``act_on`` and ``has_stabilizer_effect``.
"""

from .unitary import unitary, has_unitary
from .kraus import kraus, has_kraus, is_channel
from .act_on import act_on
from .stabilizer import has_stabilizer_effect, stabilizer_sequence

__all__ = [
    "unitary",
    "has_unitary",
    "kraus",
    "has_kraus",
    "is_channel",
    "act_on",
    "has_stabilizer_effect",
    "stabilizer_sequence",
]
