"""The ``unitary`` protocol."""

from __future__ import annotations

from typing import Optional

import numpy as np


def unitary(val, default=RuntimeError) -> Optional[np.ndarray]:
    """Return the unitary matrix of a gate/operation/circuit.

    Args:
        val: Anything exposing ``_unitary_`` or a ``unitary()`` method
            (circuits).
        default: Value returned when no unitary exists; if left as the
            sentinel ``RuntimeError``, raises instead.
    """
    getter = getattr(val, "_unitary_", None)
    result = getter() if getter is not None else None
    if result is None and hasattr(val, "unitary") and callable(val.unitary):
        try:
            result = val.unitary()
        except ValueError:
            result = None
    if result is not None:
        return np.asarray(result, dtype=np.complex128)
    if default is RuntimeError:
        raise TypeError(f"No unitary for {val!r}")
    return default


def has_unitary(val) -> bool:
    """Whether ``unitary(val)`` would succeed."""
    return unitary(val, default=None) is not None
