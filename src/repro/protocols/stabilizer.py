"""The ``has_stabilizer_effect`` protocol: is a gate Clifford?

Fast path: the gate provides ``_stabilizer_sequence_`` (a decomposition into
CH-form primitives).  Fallback: a numeric check that the gate's unitary
conjugates every Pauli generator to a Pauli-string with unit coefficient —
the defining property of the Clifford group.  The numeric check is cached
per unitary so repeated queries (every gate of every sampled circuit) are
cheap.
"""

from __future__ import annotations

import functools
import itertools
from typing import List, Optional, Tuple

import numpy as np

from .unitary import unitary

_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def _pauli_string_matrix(labels: Tuple[str, ...]) -> np.ndarray:
    out = np.array([[1.0 + 0j]])
    for label in labels:
        out = np.kron(out, _PAULIS[label])
    return out


@functools.lru_cache(maxsize=None)
def _pauli_basis(num_qubits: int) -> List[Tuple[Tuple[str, ...], np.ndarray]]:
    return [
        (labels, _pauli_string_matrix(labels))
        for labels in itertools.product("IXYZ", repeat=num_qubits)
    ]


def _is_pauli_with_unit_phase(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether ``matrix`` equals ``phase * P`` for a Pauli string P, |phase|=1,
    with phase in {1, -1, i, -i} (required for Clifford conjugation)."""
    dim = matrix.shape[0]
    n = int(np.log2(dim))
    for _labels, pauli in _pauli_basis(n):
        coeff = np.trace(pauli.conj().T @ matrix) / dim
        if abs(coeff) < atol:
            continue
        # First nonzero coefficient found; matrix is Pauli iff it matches
        # exactly and the coefficient is a fourth root of unity.
        if abs(abs(coeff) - 1.0) > atol:
            return False
        if abs(coeff**4 - 1.0) > atol:
            return False
        return bool(np.allclose(matrix, coeff * pauli, atol=atol))
    return False


def _clifford_check(u: np.ndarray, atol: float = 1e-8) -> bool:
    """Numerically verify U P U^dag stays Pauli for all generators P."""
    dim = u.shape[0]
    n = int(np.log2(dim))
    u_dag = u.conj().T
    for q in range(n):
        for label in ("X", "Z"):
            labels = tuple(label if i == q else "I" for i in range(n))
            p = _pauli_string_matrix(labels)
            if not _is_pauli_with_unit_phase(u @ p @ u_dag, atol=atol):
                return False
    return True


# Cache keyed by unitary bytes: the same gate objects recur throughout a
# circuit, and hashing the raw matrix avoids re-running the O(4^n) check.
@functools.lru_cache(maxsize=4096)
def _clifford_check_cached(key: bytes, shape: int) -> bool:
    u = np.frombuffer(key, dtype=np.complex128).reshape(shape, shape)
    return _clifford_check(u)


def stabilizer_sequence(val) -> Optional[Tuple[complex, list]]:
    """The gate's CH-primitive decomposition ``(phase, ops)`` or None."""
    getter = getattr(val, "_stabilizer_sequence_", None)
    return getter() if getter is not None else None


def has_stabilizer_effect(val) -> bool:
    """Whether the gate/operation maps stabilizer states to stabilizer states.

    Mirrors ``cirq.has_stabilizer_effect``; used by ``act_on_near_clifford``
    to decide whether to apply a gate directly or expand it stochastically
    via sum-over-Cliffords.
    """
    if stabilizer_sequence(val) is not None:
        return True
    u = unitary(val, default=None)
    if u is None:
        return False
    if u.shape[0] > 8:
        return False  # too large for the numeric check; treat as non-Clifford
    return _clifford_check_cached(np.ascontiguousarray(u).tobytes(), u.shape[0])
