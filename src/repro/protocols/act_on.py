"""The ``act_on`` protocol: apply an operation to a simulation state.

This is the ``apply_op`` function the paper's core snippet passes to
``bgls.Simulator`` (``cirq.protocols.act_on`` in the reference).  States
implement ``_act_on_(operation)`` and the protocol simply dispatches,
so any user-defined state representation plugs in unchanged.
"""

from __future__ import annotations


def act_on(operation, state) -> None:
    """Apply ``operation`` to ``state`` in place.

    Args:
        operation: A :class:`~repro.circuits.operations.GateOperation`.
        state: Any object exposing ``_act_on_(operation)``.

    Raises:
        TypeError: If the state does not implement ``_act_on_``.
    """
    handler = getattr(state, "_act_on_", None)
    if handler is None:
        raise TypeError(
            f"State {type(state).__name__} does not implement _act_on_"
        )
    handler(operation)
