"""Born-rule probability functions (the ``bgls.born`` module).

Each ``compute_probability_*`` has signature ``(state, bitstring) -> float``
and is what users hand to :class:`repro.sampler.Simulator`.  For the states
shipped here, batched *candidate* versions exist that compute all ``2^k``
candidate probabilities of a gate's support in one vectorized slice or
contraction; :func:`candidate_function_for` maps the scalar function to its
batched sibling so the Simulator can use the fast path automatically.

Dispatch flows through the backend capability registry
(:mod:`repro.states.registry`): importing this module registers the five
shipped backends, binding each scalar function to its batched siblings and
declaring the application fast paths the execution planner may use.  User
backends get identical treatment by calling
:func:`repro.states.registry.register_backend` — there is no privileged
shipped-backend table anymore.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..mps import state as _mps
from ..mps.state import MPSState
from ..states import registry
from ..states import stabilizer as _stabilizer
from ..states import tableau as _tableau
from ..states.density_matrix import DensityMatrixSimulationState
from ..states.stabilizer import StabilizerChFormSimulationState
from ..states.state_vector import StateVectorSimulationState
from ..states.tableau import CliffordTableauSimulationState


def compute_probability_state_vector(
    state: StateVectorSimulationState, bitstring: Sequence[int]
) -> float:
    """|<b|psi>|^2 from a dense state vector."""
    return state.probability_of(bitstring)


def compute_probability_density_matrix(
    state: DensityMatrixSimulationState, bitstring: Sequence[int]
) -> float:
    """<b|rho|b> from a density matrix."""
    return state.probability_of(bitstring)


def compute_probability_stabilizer_state(
    state: StabilizerChFormSimulationState, bitstring: Sequence[int]
) -> float:
    """|<b|psi>|^2 from a CH-form stabilizer state in O(n^2) (Sec. 4.1.3)."""
    return state.probability_of(bitstring)


def compute_probability_tableau(
    state: CliffordTableauSimulationState, bitstring: Sequence[int]
) -> float:
    """|<b|psi>|^2 from an Aaronson-Gottesman tableau in O(n^3).

    The tableau has no native amplitude query; the probability is a chain
    of forced-measurement conditionals on a scratch copy.  Shipped for the
    tableau-vs-CH-form ablation benchmark.
    """
    return state.probability_of(bitstring)


def compute_probability_mps(
    state: MPSState, bitstring: Sequence[int]
) -> float:
    """|<b|psi>|^2 from an MPS by sliced contraction (Sec. 4.3.2)."""
    return state.probability_of(bitstring)


def mps_bitstring_probability(mps: MPSState, btstr: Sequence[int]) -> float:
    """Alias matching the paper's code listing name."""
    return compute_probability_mps(mps, btstr)


# -- batched candidate probabilities -----------------------------------------

def candidates_state_vector(state, bits, support) -> np.ndarray:
    """All candidate probabilities over ``support`` via one tensor slice."""
    return state.candidate_probabilities(bits, support)


def candidates_density_matrix(state, bits, support) -> np.ndarray:
    """All candidate probabilities from the density-matrix diagonal block."""
    return state.candidate_probabilities(bits, support)


def candidates_mps(state, bits, support) -> np.ndarray:
    """All candidate probabilities via one reduced-network contraction."""
    return state.candidate_probabilities(bits, support)


def candidates_stabilizer_state(state, bits, support) -> np.ndarray:
    """All candidate probabilities via one shared CH-form generator
    accumulation (the 2^k inner products differ only in the support rows)."""
    return state.candidate_probabilities(bits, support)


def candidates_tableau(state, bits, support) -> np.ndarray:
    """All candidate probabilities via one shared tableau forced-measurement
    chain (the off-support projections run once, then candidates branch)."""
    return state.candidate_probabilities(bits, support)


def candidates_stabilizer_state_many(state, bits_list, support) -> np.ndarray:
    """A ``(B, 2^k)`` candidate-probability matrix for ``B`` tracked
    bitstrings — one GF(2) matvec for a whole parallel resampling step."""
    return state.candidate_probabilities_many(bits_list, support)


def candidates_state_vector_many(state, bits_list, support) -> np.ndarray:
    """A ``(B, 2^k)`` candidate-probability matrix via one gather over the
    flat amplitude tensor — the whole bitstring front in one indexing op."""
    return state.candidate_probabilities_many(bits_list, support)


def candidates_density_matrix_many(state, bits_list, support) -> np.ndarray:
    """A ``(B, 2^k)`` candidate-probability matrix gathered from the
    density-matrix diagonal in one fancy-indexed load."""
    return state.candidate_probabilities_many(bits_list, support)


def candidates_tableau_many(state, bits_list, support) -> np.ndarray:
    """A ``(B, 2^k)`` candidate-probability matrix whose off-support
    forced-measurement chains are shared across common bitstring prefixes."""
    return state.candidate_probabilities_many(bits_list, support)


def candidates_mps_many(state, bits_list, support) -> np.ndarray:
    """A ``(B, 2^k)`` candidate-probability matrix with left/right
    environment tensors cached across the front's shared prefixes."""
    return state.candidate_probabilities_many(bits_list, support)


# -- batched-trajectory adapters ----------------------------------------------
#
# Zero-argument factories, not classes: the adapters live in
# ``repro.sampler.trajectory_batch``, and importing the sampler package
# from here would close an import cycle (born -> sampler -> born).  The
# engine resolves the capability value lazily — a class is used directly,
# anything else is called to produce one.

def batched_trajectories_state_vector():
    """Adapter factory: dense ``(B, 2^n)`` amplitude tiles."""
    from ..sampler.trajectory_batch import BatchedStateVector

    return BatchedStateVector


def batched_trajectories_stabilizer_state():
    """Adapter factory: stacked ``(B, n, W)`` CH-form word arrays."""
    from ..sampler.trajectory_batch import BatchedChForms

    return BatchedChForms


def batched_trajectories_tableau():
    """Adapter factory: stacked ``(B, 2n+1, W)`` tableau word arrays."""
    from ..sampler.trajectory_batch import BatchedTableaus

    return BatchedTableaus


# Shipped-backend registrations: one descriptor per backend, declaring the
# scalar oracle, both batched siblings, and (by introspection) the
# application fast paths.  Every later lookup — the Simulator's candidate
# resolution, the planner's fast-path flags, the pooled executor's
# snapshots — reads these descriptors; there is no other dispatch table.
registry.register_backend(
    StateVectorSimulationState,
    name="state_vector",
    compute_probability=compute_probability_state_vector,
    candidates=candidates_state_vector,
    candidates_many=candidates_state_vector_many,
    batched_trajectories=batched_trajectories_state_vector,
)
registry.register_backend(
    DensityMatrixSimulationState,
    name="density_matrix",
    compute_probability=compute_probability_density_matrix,
    candidates=candidates_density_matrix,
    candidates_many=candidates_density_matrix_many,
)
registry.register_backend(
    StabilizerChFormSimulationState,
    name="stabilizer_ch_form",
    compute_probability=compute_probability_stabilizer_state,
    candidates=candidates_stabilizer_state,
    candidates_many=candidates_stabilizer_state_many,
    # Warm-pool workers receive the CH form as raw uint64 words instead
    # of a pickled state object (see the snapshot-hook contract in the
    # README); the payload is also the pool's re-initialization key.
    snapshot=_stabilizer.snapshot_chform_state,
    restore=_stabilizer.restore_chform_state,
    batched_trajectories=batched_trajectories_stabilizer_state,
)
registry.register_backend(
    CliffordTableauSimulationState,
    name="clifford_tableau",
    compute_probability=compute_probability_tableau,
    candidates=candidates_tableau,
    candidates_many=candidates_tableau_many,
    snapshot=_tableau.snapshot_tableau_state,
    restore=_tableau.restore_tableau_state,
    batched_trajectories=batched_trajectories_tableau,
)
registry.register_backend(
    MPSState,
    name="mps",
    compute_probability=compute_probability_mps,
    scalar_aliases=(mps_bitstring_probability,),
    candidates=candidates_mps,
    candidates_many=candidates_mps_many,
    # Wide MPS sweeps ship the network as raw tensor bytes + bond
    # metadata instead of a pickled state object (no RNG, no qubit-index
    # dict, no per-tensor ndarray envelopes); the payload doubles as the
    # warm pool's content-comparable re-initialization key.
    snapshot=_mps.snapshot_mps_state,
    restore=_mps.restore_mps_state,
)


def candidate_function_for(
    compute_probability: Callable,
) -> Optional[Callable]:
    """The batched candidate function matching a registered scalar function.

    Returns None for unregistered (user-supplied) probability functions, in
    which case the Simulator falls back to a per-candidate loop (still
    correct, just not vectorized).  Registering a backend via
    :func:`repro.states.registry.register_backend` makes its functions
    resolvable here exactly like the shipped ones.
    """
    caps = registry.capabilities_for_probability_fn(compute_probability)
    return caps.candidates if caps is not None else None


def many_candidate_function_for(
    compute_probability: Callable,
) -> Optional[Callable]:
    """The cross-bitstring batched candidate function, or None.

    Signature of the returned function:
    ``(state, bits_list, support) -> (len(bits_list), 2^k) ndarray``.
    """
    caps = registry.capabilities_for_probability_fn(compute_probability)
    return caps.candidates_many if caps is not None else None


__all__ = [
    "compute_probability_state_vector",
    "compute_probability_density_matrix",
    "compute_probability_stabilizer_state",
    "compute_probability_tableau",
    "compute_probability_mps",
    "mps_bitstring_probability",
    "candidates_state_vector",
    "candidates_state_vector_many",
    "candidates_density_matrix",
    "candidates_density_matrix_many",
    "candidates_stabilizer_state",
    "candidates_stabilizer_state_many",
    "candidates_tableau",
    "candidates_tableau_many",
    "candidates_mps",
    "candidates_mps_many",
    "candidate_function_for",
    "many_candidate_function_for",
    "batched_trajectories_state_vector",
    "batched_trajectories_stabilizer_state",
    "batched_trajectories_tableau",
]
