"""repro: reproduction of "BGLS: A Python Package for the Gate-by-Gate
Sampling Algorithm to Simulate Quantum Circuits" (SC-W 2023).

Top-level API mirrors the reference package::

    import repro as bgls
    from repro import circuits as cirq   # the from-scratch circuit substrate

    qubits = cirq.LineQubit.range(2)
    circuit = cirq.Circuit(
        cirq.H.on(qubits[0]),
        cirq.CNOT.on(qubits[0], qubits[1]),
        cirq.measure(*qubits, key="z"),
    )
    sim = bgls.Simulator(
        initial_state=bgls.StateVectorSimulationState(qubits),
        apply_op=bgls.act_on,
        compute_probability=bgls.born.compute_probability_state_vector,
    )
    results = sim.run(circuit, repetitions=10)
"""

from . import (
    analysis,
    apps,
    born,
    circuits,
    mps,
    noise,
    protocols,
    sampler,
    states,
    tensornet,
    transpile,
)
from .circuits import (
    Circuit,
    LineQubit,
    generate_random_circuit,
    measure,
    optimize_for_bgls,
)
from .mps import MPSOptions, MPSState
from .protocols import act_on, has_stabilizer_effect
from .sampler import (
    ExactDistributionSampler,
    PoolManager,
    ProcessPoolExecutor,
    Program,
    QubitByQubitSimulator,
    Result,
    SerialExecutor,
    Simulator,
    act_on_near_clifford,
    plot_state_histogram,
    program_cache_info,
    shared_pool_manager,
    shutdown_shared_pool,
)
from .states import (
    CliffordTableau,
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChForm,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
    capabilities_for,
    register_backend,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "born",
    "circuits",
    "mps",
    "noise",
    "protocols",
    "sampler",
    "states",
    "tensornet",
    "transpile",
    "Circuit",
    "LineQubit",
    "measure",
    "optimize_for_bgls",
    "generate_random_circuit",
    "MPSOptions",
    "MPSState",
    "act_on",
    "has_stabilizer_effect",
    "Simulator",
    "Program",
    "program_cache_info",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "register_backend",
    "capabilities_for",
    "Result",
    "plot_state_histogram",
    "QubitByQubitSimulator",
    "ExactDistributionSampler",
    "act_on_near_clifford",
    "StateVectorSimulationState",
    "DensityMatrixSimulationState",
    "StabilizerChForm",
    "StabilizerChFormSimulationState",
    "CliffordTableau",
    "CliffordTableauSimulationState",
    "__version__",
]
