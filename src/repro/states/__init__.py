"""Simulation states: the quantum-state representations BGLS samples from."""

from .base import SimulationState, bits_to_index, index_to_bits
from .state_vector import StateVectorSimulationState
from .density_matrix import DensityMatrixSimulationState
from .chform import StabilizerChForm
from .stabilizer import StabilizerChFormSimulationState
from .tableau import CliffordTableau, CliffordTableauSimulationState

__all__ = [
    "SimulationState",
    "StateVectorSimulationState",
    "DensityMatrixSimulationState",
    "StabilizerChForm",
    "StabilizerChFormSimulationState",
    "CliffordTableau",
    "CliffordTableauSimulationState",
    "bits_to_index",
    "index_to_bits",
]
