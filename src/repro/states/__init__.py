"""Simulation states: the quantum-state representations BGLS samples from."""

from . import registry
from .base import SimulationState, bits_to_index, index_to_bits
from .registry import (
    BackendCapabilities,
    capabilities_for,
    register_backend,
    registered_backends,
    unregister_backend,
)
from .state_vector import StateVectorSimulationState
from .density_matrix import DensityMatrixSimulationState
from .chform import StabilizerChForm
from .stabilizer import StabilizerChFormSimulationState
from .tableau import CliffordTableau, CliffordTableauSimulationState
from .reference import UnpackedCliffordTableau, UnpackedStabilizerChForm

__all__ = [
    "registry",
    "BackendCapabilities",
    "capabilities_for",
    "register_backend",
    "registered_backends",
    "unregister_backend",
    "SimulationState",
    "StateVectorSimulationState",
    "DensityMatrixSimulationState",
    "StabilizerChForm",
    "StabilizerChFormSimulationState",
    "CliffordTableau",
    "CliffordTableauSimulationState",
    "UnpackedCliffordTableau",
    "UnpackedStabilizerChForm",
    "bits_to_index",
    "index_to_bits",
]
