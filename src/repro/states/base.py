"""Base machinery shared by all simulation states.

A *simulation state* owns (1) an ordered qubit register fixing bitstring
positions, (2) a PRNG for stochastic branches (Kraus trajectories,
measurement collapse), and (3) an ``_act_on_`` entry point the
:func:`repro.protocols.act_on` protocol dispatches to.

The act-on flow is Cirq-like: unitary ops apply deterministically; channel
ops select one Kraus branch stochastically (quantum trajectories, paper
Sec. 3.2.1); measurement ops collapse the state and record nothing (the
sampler owns measurement bookkeeping).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid


class SimulationState(abc.ABC):
    """Common base: qubit register, RNG, act-on dispatch."""

    def __init__(
        self,
        qubits: Sequence[Qid],
        seed: Union[int, np.random.Generator, None] = None,
    ):
        self.qubits: Tuple[Qid, ...] = tuple(qubits)
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("Duplicate qubits in state register")
        self.qubit_index: Dict[Qid, int] = {q: i for i, q in enumerate(self.qubits)}
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def axes_of(self, op_qubits: Sequence[Qid]) -> List[int]:
        """Map operation qubits to state axes."""
        try:
            return [self.qubit_index[q] for q in op_qubits]
        except KeyError as exc:
            raise ValueError(f"Qubit {exc.args[0]} not in state register") from exc

    # -- act_on dispatch ---------------------------------------------------
    def _act_on_(self, op: GateOperation) -> None:
        """Apply an operation: unitary, channel, or measurement."""
        axes = self.axes_of(op.qubits)
        if op.is_measurement:
            self.measure(axes)
            return
        u = op._unitary_()
        if u is not None:
            self.apply_unitary(u, axes)
            return
        ks = op._kraus_()
        if ks is not None:
            self.apply_channel(ks, axes)
            return
        raise TypeError(f"Cannot apply {op!r}: no unitary or Kraus form")

    # -- abstract state mutations -------------------------------------------
    @abc.abstractmethod
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        """Apply the ``2^k x 2^k`` unitary ``u`` to the given axes."""

    @abc.abstractmethod
    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        """Apply a channel (stochastically or exactly per representation)."""

    @abc.abstractmethod
    def measure(self, axes: Sequence[int]) -> List[int]:
        """Measure axes in the computational basis, collapse, return bits."""

    @abc.abstractmethod
    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        """Collapse the given axes onto known outcome ``bits`` (renormalized).

        Used by the BGLS trajectory mode: the tracked bitstring already *is*
        a sample of the mid-circuit measurement, so the state is projected
        onto it rather than re-sampled.
        """

    @abc.abstractmethod
    def copy(self, seed: Union[int, np.random.Generator, None] = None) -> "SimulationState":
        """Deep copy (fresh RNG unless ``seed`` shares one)."""


def candidate_index_matrix(
    bits_list: Sequence[Sequence[int]], support: Sequence[int], n: int
) -> np.ndarray:
    """Flat big-endian indices of every candidate of every bitstring.

    Entry ``[b, idx]`` is the computational-basis index of the candidate
    that agrees with ``bits_list[b]`` off ``support`` and encodes
    ``support[pos]`` at bit ``k - 1 - pos`` of ``idx`` (the BGLS
    convention).  Shared by the dense backends' batched oracles: the
    returned ``(B, 2^k)`` matrix gathers directly from a flat amplitude
    vector or a density-matrix diagonal.
    """
    base = np.asarray(bits_list, dtype=np.int64)
    if base.ndim != 2 or base.shape[1] != n:
        raise ValueError(f"Expected (B, {n}) bitstrings, got {base.shape}")
    support = [int(a) for a in support]
    k = len(support)
    weights = np.left_shift(np.int64(1), n - 1 - np.arange(n, dtype=np.int64))
    masked = base.copy()
    masked[:, support] = 0
    base_idx = masked @ weights
    patterns = (
        np.arange(2**k, dtype=np.int64)[:, None]
        >> np.arange(k - 1, -1, -1, dtype=np.int64)[None, :]
    ) & 1
    offsets = patterns @ weights[support]
    return base_idx[:, None] + offsets[None, :]


def bits_to_index(bits: Sequence[int]) -> int:
    """Big-endian bits -> integer index (qubit 0 is the most significant)."""
    index = 0
    for b in bits:
        index = (index << 1) | int(b)
    return index


def index_to_bits(index: int, width: int) -> Tuple[int, ...]:
    """Integer -> big-endian bit tuple of the given width."""
    return tuple((index >> (width - 1 - i)) & 1 for i in range(width))
