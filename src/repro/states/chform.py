"""The CH form of stabilizer states (Bravyi et al., Quantum 3, 181 (2019)).

Any stabilizer state is written ``|psi> = omega * U_C * U_H |s>`` where
``U_C`` is a *control-type* Clifford circuit (products of S, CZ, CNOT, all
fixing |0..0>), ``U_H = prod_j H_j^{v_j}``, ``s`` is a basis state and
``omega`` a complex scalar.  ``U_C`` is stored through its conjugation
action on Pauli generators via binary matrices F, G, M and a phase vector
``gamma`` (mod 4):

    U_C^dag Z_p U_C = prod_j Z_j^{G[p,j]}
    U_C^dag X_p U_C = i^{gamma[p]} prod_j X_j^{F[p,j]} Z_j^{M[p,j]}

All update rules below are derived from these relations (see DESIGN.md);
the implementation is validated against the dense state-vector simulator
by reconstructing full wavefunctions.

Packed layout (see :mod:`repro.states.bitpack`): the binary matrices are
stored row-packed as ``Fw``/``Gw``/``Mw`` — ``(n, ceil(n/64))`` ``uint64``
arrays with column ``c`` at bit ``c & 63`` of word ``c >> 6`` — and the
``v``/``s`` vectors as packed words ``vw``/``sw``.  Row operations
(``M[q] ^= G[r]``, the amplitude query's generator accumulation) are
``O(n/64)`` word XORs; parity counts are word popcounts; phase powers are
tracked as integers mod 4 rather than complex scalars.  ``F``/``G``/``M``
/``v``/``s`` properties unpack to the textbook ``bool`` form.  The
pre-packing implementation is retained as
:class:`repro.states.reference.UnpackedStabilizerChForm` and property
tests assert exact agreement gate-for-gate.

Why BGLS cares: computing one bitstring amplitude costs O(n^2) and is
*independent of circuit depth* — the property behind the paper's Fig. 3.
Probability queries are cheaper still: a stabilizer state is flat, so
:meth:`StabilizerChForm.probabilities_of_many` answers a whole batch of
bitstrings (all ``2^k`` candidates of a gate's support, across every
tracked bitstring of a parallel-mode run) with one dense GF(2) matvec
membership test and the shared magnitude ``|omega|^2 2^{-|v|}``.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from . import bitpack as bp

_SQRT2 = math.sqrt(2.0)
_I_POW = np.array([1, 1j, -1, -1j], dtype=np.complex128)


class StabilizerChForm:
    """Mutable CH-form stabilizer state on ``n`` qubits, initially |0..0>."""

    def __init__(self, num_qubits: int, initial_state: int = 0):
        n = int(num_qubits)
        if n <= 0:
            raise ValueError("Need at least one qubit")
        self.n = n
        w = bp.num_words(n)
        self._w = w
        self._mask = bp.mask(n)
        self.Fw = bp.packed_eye(n)
        self.Gw = self.Fw.copy()
        self.Mw = np.zeros((n, w), dtype=np.uint64)
        self.gamma = np.zeros(n, dtype=np.int64)  # i^gamma row phases, mod 4
        self.vw = np.zeros(w, dtype=np.uint64)
        self.sw = np.zeros(w, dtype=np.uint64)
        self.omega: complex = 1.0 + 0.0j
        if initial_state:
            for q in range(n):
                if (initial_state >> (n - 1 - q)) & 1:
                    self.apply_x(q)

    # -- unpacked views (tests, diagnostics) -------------------------------
    @property
    def F(self) -> np.ndarray:
        """The F matrix unpacked to ``(n, n)`` ``bool`` (read-only copy)."""
        return bp.unpack_rows(self.Fw, self.n).astype(bool)

    @property
    def G(self) -> np.ndarray:
        """The G matrix unpacked to ``(n, n)`` ``bool`` (read-only copy)."""
        return bp.unpack_rows(self.Gw, self.n).astype(bool)

    @property
    def M(self) -> np.ndarray:
        """The M matrix unpacked to ``(n, n)`` ``bool`` (read-only copy)."""
        return bp.unpack_rows(self.Mw, self.n).astype(bool)

    @property
    def v(self) -> np.ndarray:
        """The Hadamard-layer vector unpacked to ``(n,)`` ``bool``."""
        return bp.unpack_rows(self.vw, self.n).astype(bool)

    @property
    def s(self) -> np.ndarray:
        """The basis-state vector unpacked to ``(n,)`` ``bool``."""
        return bp.unpack_rows(self.sw, self.n).astype(bool)

    # ------------------------------------------------------------------
    # Pauli rows pushed through U_H onto |s>
    # ------------------------------------------------------------------
    def _x_row_action(self, q: int) -> Tuple[int, np.ndarray]:
        """Action of ``U_C^dag X_q U_C`` on ``U_H|s>``: (i-power, new_s).

        Per qubit j the operator is X^F Z^M;  through H (v_j=1) it becomes
        H Z^F X^M, flipping s_j by M and contributing (-1)^{F*(s+M)}; on
        bare qubits (v_j=0) it flips s_j by F and contributes (-1)^{M*s}.
        """
        f_row, m_row = self.Fw[q], self.Mw[q]
        v, s = self.vw, self.sw
        t = s ^ (f_row & ~v) ^ (m_row & v)
        beta = bp.count_bits(m_row & ~v & s)
        beta += bp.count_bits(f_row & v & (s ^ m_row))
        return int(self.gamma[q] + 2 * beta) % 4, t

    def _z_row_action(self, q: int) -> Tuple[int, np.ndarray]:
        """Action of ``U_C^dag Z_q U_C`` on ``U_H|s>``: (i-power, new_s)."""
        g_row = self.Gw[q]
        u = self.sw ^ (g_row & self.vw)
        alpha = bp.count_bits(g_row & ~self.vw & self.sw)
        return (2 * alpha) % 4, u

    # ------------------------------------------------------------------
    # Left multiplications (circuit gates)
    # ------------------------------------------------------------------
    def apply_x(self, q: int) -> None:
        pw, t = self._x_row_action(q)
        self.omega *= _I_POW[pw]
        self.sw = t

    def apply_z(self, q: int) -> None:
        pw, u = self._z_row_action(q)
        self.omega *= _I_POW[pw]
        self.sw = u

    def apply_y(self, q: int) -> None:
        """Y = i X Z (apply Z, then X, then the i)."""
        self.apply_z(q)
        self.apply_x(q)
        self.omega *= 1j

    def apply_s(self, q: int) -> None:
        """S (phase gate): gamma_q -= 1, M_q ^= G_q."""
        self.Mw[q] ^= self.Gw[q]
        self.gamma[q] = (self.gamma[q] - 1) % 4

    def apply_sdg(self, q: int) -> None:
        """S^dagger: gamma_q += 1, M_q ^= G_q."""
        self.Mw[q] ^= self.Gw[q]
        self.gamma[q] = (self.gamma[q] + 1) % 4

    def apply_s_many(self, qs: Sequence[int]) -> None:
        """S on several distinct qubits in one batched row pass."""
        idx = np.asarray(qs, dtype=np.intp)
        self.Mw[idx] ^= self.Gw[idx]
        self.gamma[idx] = (self.gamma[idx] - 1) % 4

    def apply_sdg_many(self, qs: Sequence[int]) -> None:
        """S-dagger on several distinct qubits in one batched row pass."""
        idx = np.asarray(qs, dtype=np.intp)
        self.Mw[idx] ^= self.Gw[idx]
        self.gamma[idx] = (self.gamma[idx] + 1) % 4

    def apply_z_many(self, qs: Sequence[int]) -> None:
        """Z on several distinct qubits in one batched pass.

        Sound because Z only flips ``s`` under the Hadamard layer (``v``
        positions) while each gate's phase count reads ``s`` on the bare
        (``~v``) positions — so the per-qubit contributions never observe
        each other's updates and commute into one XOR reduction.
        """
        idx = np.asarray(qs, dtype=np.intp)
        if idx.size == 0:
            return
        g_rows = self.Gw[idx]
        alpha = bp.count_bits(g_rows & ~self.vw[None, :] & self.sw[None, :])
        self.omega *= _I_POW[(2 * int(alpha)) % 4]
        self.sw = self.sw ^ np.bitwise_xor.reduce(g_rows & self.vw[None, :], axis=0)

    def apply_cz(self, q: int, r: int) -> None:
        """CZ: M_q ^= G_r and M_r ^= G_q (no phase)."""
        if q == r:
            raise ValueError("CZ needs distinct qubits")
        self.Mw[q] ^= self.Gw[r]
        self.Mw[r] ^= self.Gw[q]

    def apply_cx(self, c: int, t: int) -> None:
        """CNOT with control c, target t."""
        if c == t:
            raise ValueError("CNOT needs distinct qubits")
        # Phase from reordering Z^{M_c} past X^{F_t} when combining rows.
        self.gamma[c] = (
            self.gamma[c]
            + self.gamma[t]
            + 2 * (bp.count_bits(self.Mw[c] & self.Fw[t]) & 1)
        ) % 4
        self.Gw[t] ^= self.Gw[c]
        self.Fw[c] ^= self.Fw[t]
        self.Mw[c] ^= self.Mw[t]

    def apply_h(self, q: int) -> None:
        """Hadamard: H = (X + Z)/sqrt(2) creates a two-branch superposition
        which :meth:`update_sum` folds back into CH form (Proposition 4)."""
        px, t = self._x_row_action(q)
        pz, u = self._z_row_action(q)
        delta = (pz - px) % 4
        self.omega *= _I_POW[px] / _SQRT2
        self.update_sum(t, u, delta)

    # ------------------------------------------------------------------
    # Right multiplications (absorbing gates into U_C)
    # ------------------------------------------------------------------
    def _right_cx(self, c: int, t: int) -> None:
        """U_C <- U_C CX_{c,t} (column operations, no phase)."""
        bp.xor_col(self.Gw, c, bp.get_col(self.Gw, t))
        bp.xor_col(self.Fw, t, bp.get_col(self.Fw, c))
        bp.xor_col(self.Mw, c, bp.get_col(self.Mw, t))

    def _right_cz(self, c: int, t: int) -> None:
        """U_C <- U_C CZ_{c,t}."""
        fc = bp.get_col(self.Fw, c)
        ft = bp.get_col(self.Fw, t)
        self.gamma[:] = (self.gamma + 2 * (fc & ft).astype(np.int64)) % 4
        bp.xor_col(self.Mw, c, ft)
        bp.xor_col(self.Mw, t, fc)

    def _right_s(self, q: int) -> None:
        """U_C <- U_C S_q   (S^dag X S = i X Z per row with an X there)."""
        fq = bp.get_col(self.Fw, q)
        bp.xor_col(self.Mw, q, fq)
        self.gamma[:] = (self.gamma - fq.astype(np.int64)) % 4

    def _right_sdg(self, q: int) -> None:
        """U_C <- U_C S^dag_q."""
        fq = bp.get_col(self.Fw, q)
        bp.xor_col(self.Mw, q, fq)
        self.gamma[:] = (self.gamma + fq.astype(np.int64)) % 4

    # ------------------------------------------------------------------
    # Proposition 4: rewrite U_H (|t> + i^delta |u>) back into CH form
    # ------------------------------------------------------------------
    def update_sum(self, t: np.ndarray, u: np.ndarray, delta: int) -> None:
        """Set the state to ``omega * U_C * U_H (|t> + i^delta |u>)``.

        ``t`` and ``u`` are packed word vectors.  ``omega`` must already
        hold all prefactors; this method multiplies the scalars it extracts
        into ``omega`` and updates U_C, v, s.
        """
        delta = int(delta) % 4
        if np.array_equal(t, u):
            self.sw = t.copy()
            self.omega *= 1 + _I_POW[delta]
            return

        diff = t ^ u
        set0 = bp.bit_positions(diff & ~self.vw & self._mask, self.n)
        set1 = bp.bit_positions(diff & self.vw, self.n)

        if set0.size > 0:
            # Case A: an un-Hadamarded difference qubit exists.
            q = int(set0[0])
            for i in set0[1:]:
                self._right_cx(q, int(i))
            for i in set1:
                self._right_cz(q, int(i))
            t_q = bp.get_bit(t, q)
            # t_i XOR t_q on the difference set.
            new_s = (t ^ diff) if t_q else t.copy()
            # Single-qubit superposition |t_q> + i^delta |1 - t_q>.
            if t_q:
                self.omega *= _I_POW[delta]
                delta = (-delta) % 4
            a, b = {0: (0, 0), 1: (1, 0), 2: (0, 1), 3: (1, 1)}[delta]
            if a:
                self._right_s(q)
            bp.set_bit(new_s, q, b)
            bp.set_bit(self.vw, q, 1)
            self.sw = new_s
            self.omega *= _SQRT2
            return

        # Case B: every difference qubit sits under a Hadamard.
        q = int(set1[0])
        for i in set1[1:]:
            self._right_cx(int(i), q)  # H (x) H conjugation reverses CX
        t_q = bp.get_bit(t, q)
        new_s = (t ^ diff) if t_q else t.copy()
        if t_q:
            self.omega *= _I_POW[delta]
            delta = (-delta) % 4
        # H(|0> + i^delta |1>) for delta = 0..3.
        if delta == 0:
            bp.set_bit(new_s, q, 0)
            bp.set_bit(self.vw, q, 0)
            self.omega *= _SQRT2
        elif delta == 2:
            bp.set_bit(new_s, q, 1)
            bp.set_bit(self.vw, q, 0)
            self.omega *= _SQRT2
        elif delta == 1:
            bp.set_bit(new_s, q, 0)
            self._right_sdg(q)
            self.omega *= 1 + 1j
        else:  # delta == 3
            bp.set_bit(new_s, q, 0)
            self._right_s(q)
            self.omega *= 1 - 1j
        self.sw = new_s

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measurement_outcome_info(self, q: int) -> Tuple[bool, int]:
        """(is_random, deterministic_bit): whether measuring qubit ``q`` is
        a coin flip, and the forced outcome when it is not."""
        pz, u = self._z_row_action(q)
        if np.array_equal(u, self.sw):
            # Z_q |psi> = i^pz |psi| with pz in {0, 2}; +1 eigenvalue <-> 0.
            return False, 0 if pz == 0 else 1
        return True, -1

    def project_measurement(self, q: int, outcome: int) -> None:
        """Collapse qubit ``q`` to ``outcome`` (must have probability > 0)."""
        pz, u = self._z_row_action(q)
        if np.array_equal(u, self.sw):
            bit = 0 if pz == 0 else 1
            if bit != int(outcome):
                raise ValueError(
                    f"Measurement outcome {outcome} has probability 0"
                )
            return
        # (I + (-1)^m Z_q)/2 |psi|, renormalized by sqrt(2).
        delta = (2 * int(outcome) + pz) % 4
        self.omega /= _SQRT2
        self.update_sum(self.sw.copy(), u, delta)

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Sample and collapse a Z measurement of qubit ``q``."""
        is_random, bit = self.measurement_outcome_info(q)
        if not is_random:
            return bit
        outcome = int(rng.integers(2))
        self.project_measurement(q, outcome)
        return outcome

    # ------------------------------------------------------------------
    # Amplitudes
    # ------------------------------------------------------------------
    def _accumulate_x_rows(
        self, positions: Sequence[int], phase_pow: int, x: np.ndarray, z: np.ndarray
    ) -> int:
        """Multiply the X rows of ``positions`` into the (phase, x, z)
        accumulator in place; returns the new phase power.

        The rows are conjugates of X's on distinct qubits, so they commute
        and any accumulation order yields the same group element.  The
        sequential recurrence ``phase += 2 * parity(z_running & F[p])``
        expands into pairwise cross terms (XOR distributes over AND and
        parities add mod 2), so the whole accumulation vectorizes: one
        ``(k, k)`` pairwise-parity table plus two XOR reductions, with no
        Python loop over rows.
        """
        pos = np.asarray(positions, dtype=np.intp)
        k = pos.size
        if k == 0:
            return phase_pow
        if k == 1:
            p = pos[0]
            f_row = self.Fw[p]
            phase_pow += int(self.gamma[p])
            phase_pow += 2 * (int(bp.popcount(f_row & z).sum()) & 1)
            x ^= f_row
            z ^= self.Mw[p]
            return phase_pow
        f_rows = self.Fw[pos]
        m_rows = self.Mw[pos]
        phase_pow += int(self.gamma[pos].sum())
        # Step j of the sequential recurrence sees the incoming z XOR'd
        # with the M rows of steps i < j; an exclusive cumulative XOR
        # reproduces all cross terms in one vectorized popcount.
        zcum = np.bitwise_xor.accumulate(m_rows, axis=0)
        zprev = np.empty_like(zcum)
        zprev[0] = z
        zprev[1:] = zcum[:-1] ^ z
        phase_pow += 2 * (int(bp.popcount(zprev & f_rows).sum()) & 1)
        x ^= np.bitwise_xor.reduce(f_rows, axis=0)
        z ^= zcum[-1]
        return phase_pow

    def _finish_amplitude(
        self, phase_pow: int, x: np.ndarray, z: np.ndarray
    ) -> complex:
        """``<0| i^phi X^x Z^z U_H |s>`` given the accumulated generator."""
        if ((x ^ self.sw) & ~self.vw & self._mask).any():
            return 0.0 + 0.0j
        phase_pow += 2 * (int(bp.popcount((x & z) ^ (x & self.sw & self.vw)).sum()) & 1)
        magnitude = 2.0 ** (-0.5 * int(bp.popcount(self.vw).sum()))
        return self.omega * _I_POW[phase_pow % 4] * magnitude

    def inner_product_with_basis_state(self, bits: Sequence[int]) -> complex:
        """Amplitude ``<b|psi>`` for a computational-basis bitstring.

        Writes <b| = <0| prod_{p: b_p=1} X_p and pushes the X's through
        U_C; cost O(n * |b| / 64) <= O(n^2 / 64), independent of depth.
        """
        b = np.asarray(bits, dtype=bool)
        if b.shape != (self.n,):
            raise ValueError(f"Expected {self.n} bits, got {b.shape}")
        x = np.zeros(self._w, dtype=np.uint64)
        z = np.zeros(self._w, dtype=np.uint64)
        phase_pow = self._accumulate_x_rows(np.flatnonzero(b), 0, x, z)
        return self._finish_amplitude(phase_pow, x, z)

    def _nonzero_probability(self) -> float:
        """The common probability of every basis state in the support.

        A stabilizer state is flat: all nonzero amplitudes share the
        magnitude ``|omega| * 2^{-|v|/2}``, so probability queries reduce
        to the support-membership test and this constant — no phase
        bookkeeping required.
        """
        return abs(self.omega) ** 2 * 2.0 ** (-int(bp.popcount(self.vw).sum()))

    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring: |<b|psi>|^2.

        ``b`` is in the support iff ``x = F^T b`` agrees with ``s`` on the
        un-Hadamarded qubits; the probability is then the flat constant.
        """
        b = np.asarray(bits, dtype=bool)
        if b.shape != (self.n,):
            raise ValueError(f"Expected {self.n} bits, got {b.shape}")
        pos = np.flatnonzero(b)
        if pos.size:
            x = np.bitwise_xor.reduce(self.Fw[pos], axis=0)
        else:
            x = np.zeros(self._w, dtype=np.uint64)
        if ((x ^ self.sw) & ~self.vw & self._mask).any():
            return 0.0
        return self._nonzero_probability()

    def probabilities_of_many(self, bitstrings) -> np.ndarray:
        """Born probabilities of a whole ``(R, n)`` batch of bitstrings.

        One dense GF(2) matvec ``X = C F mod 2`` answers every
        support-membership test at once; the per-row probability is the
        flat stabilizer constant.  This is the kernel behind the sampler's
        per-gate candidate batching.
        """
        c = np.asarray(bitstrings, dtype=np.float64)
        if c.ndim != 2 or c.shape[1] != self.n:
            raise ValueError(f"Expected (R, {self.n}) bitstrings, got {c.shape}")
        f_mat = bp.unpack_rows(self.Fw, self.n).astype(np.float64)
        x = (c @ f_mat) % 2.0
        s = bp.unpack_rows(self.sw, self.n).astype(np.float64)
        bare = bp.unpack_rows(self.vw, self.n) == 0
        mismatch = ((x != s) & bare).any(axis=1)
        out = np.full(c.shape[0], self._nonzero_probability())
        out[mismatch] = 0.0
        return out

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """All ``2^k`` candidate probabilities over ``support`` at once.

        Candidate ``idx`` encodes ``support[pos]`` at bit ``k - 1 - pos``,
        the BGLS resampling convention.
        """
        return self.candidate_probabilities_many([bits], support)[0]

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """A ``(B, 2^k)`` matrix of candidate probabilities for ``B``
        tracked bitstrings sharing one gate support — one batched matvec
        for the whole resampling step of a gate."""
        support = [int(a) for a in support]
        k = len(support)
        base = np.asarray(bits_list, dtype=np.uint8)
        if base.ndim != 2 or base.shape[1] != self.n:
            raise ValueError(
                f"Expected (B, {self.n}) bitstrings, got {base.shape}"
            )
        cands = np.repeat(base[:, None, :], 2**k, axis=1)
        patterns = (
            (np.arange(2**k)[:, None] >> np.arange(k - 1, -1, -1)[None, :]) & 1
        ).astype(np.uint8)
        cands[:, :, support] = patterns[None, :, :]
        flat = cands.reshape(base.shape[0] * 2**k, self.n)
        return self.probabilities_of_many(flat).reshape(base.shape[0], 2**k)

    def state_vector(self) -> np.ndarray:
        """Full dense wavefunction (exponential; for testing on small n)."""
        dim = 2**self.n
        out = np.empty(dim, dtype=np.complex128)
        for idx in range(dim):
            bits = [(idx >> (self.n - 1 - j)) & 1 for j in range(self.n)]
            out[idx] = self.inner_product_with_basis_state(bits)
        return out

    def copy(self) -> "StabilizerChForm":
        out = StabilizerChForm.__new__(StabilizerChForm)
        out.n = self.n
        out._w = self._w
        out._mask = self._mask
        out.Fw = self.Fw.copy()
        out.Gw = self.Gw.copy()
        out.Mw = self.Mw.copy()
        out.gamma = self.gamma.copy()
        out.vw = self.vw.copy()
        out.sw = self.sw.copy()
        out.omega = self.omega
        return out

    # -- packed snapshot payloads (warm-pool worker shipping) ---------------
    def to_words(self) -> Tuple:
        """``(n, F, G, M, gamma, v, s, omega)`` with matrices as raw bytes.

        The whole CH form as hashable wire values: the three conjugation
        matrices and the ``v``/``s`` vectors ship as packed little-endian
        words, ``gamma`` as its mod-4 ``int64`` bytes, ``omega`` as a
        plain complex.  ``_mask`` is derived from ``n`` and is not
        shipped.
        """
        return (
            self.n,
            bp.words_to_bytes(self.Fw),
            bp.words_to_bytes(self.Gw),
            bp.words_to_bytes(self.Mw),
            self.gamma.astype("<i8").tobytes(),
            bp.words_to_bytes(self.vw),
            bp.words_to_bytes(self.sw),
            complex(self.omega),
        )

    @classmethod
    def from_words(
        cls,
        n: int,
        f_bytes: bytes,
        g_bytes: bytes,
        m_bytes: bytes,
        gamma_bytes: bytes,
        v_bytes: bytes,
        s_bytes: bytes,
        omega: complex,
    ) -> "StabilizerChForm":
        """Rebuild a CH form from :meth:`to_words` without re-deriving it."""
        n = int(n)
        w = bp.num_words(n)
        out = cls.__new__(cls)
        out.n = n
        out._w = w
        out._mask = bp.mask(n)
        out.Fw = bp.words_from_bytes(f_bytes, (n, w))
        out.Gw = bp.words_from_bytes(g_bytes, (n, w))
        out.Mw = bp.words_from_bytes(m_bytes, (n, w))
        out.gamma = np.frombuffer(gamma_bytes, dtype="<i8").astype(np.int64)
        out.vw = bp.words_from_bytes(v_bytes, (w,))
        out.sw = bp.words_from_bytes(s_bytes, (w,))
        out.omega = complex(omega)
        return out

    def __repr__(self) -> str:
        return f"StabilizerChForm(n={self.n}, |v|={bp.count_bits(self.vw)})"

    def stack(self, batch: int) -> "StackedChForms":
        """``batch`` independent copies as one stacked-word computation."""
        return StackedChForms(self, batch)


class StackedChForms:
    """A stack of ``B`` independent CH forms sharing each gate's word pass.

    The batched-trajectory engine's CH layout: ``Fw``/``Gw``/``Mw`` are
    ``(B, n, W)`` ``uint64`` arrays, ``gamma`` is ``(B, n)``, ``vw``/``sw``
    are ``(B, W)`` and ``omega`` is a ``(B,)`` complex vector.  The
    control-type gates (S, S-dagger, CZ, CNOT) and the Pauli row actions
    (X, Y, Z) are linear word updates identical across the batch, so each
    broadcasts over ``B`` in one NumPy call.  Hadamard and measurement
    collapse branch per trajectory (``update_sum``'s case analysis depends
    on the trajectory's own ``v``/``s``); those run through :meth:`view`,
    a zero-copy scalar alias of one trajectory, with the rebound ``sw``/
    ``omega`` scalars written back by :meth:`store`.
    """

    def __init__(self, form: StabilizerChForm, batch: int):
        batch = int(batch)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.n = form.n
        self._w = form._w
        self._mask = form._mask
        self.batch = batch
        self.Fw = np.broadcast_to(form.Fw, (batch,) + form.Fw.shape).copy()
        self.Gw = np.broadcast_to(form.Gw, (batch,) + form.Gw.shape).copy()
        self.Mw = np.broadcast_to(form.Mw, (batch,) + form.Mw.shape).copy()
        self.gamma = np.broadcast_to(
            form.gamma, (batch,) + form.gamma.shape
        ).copy()
        self.vw = np.broadcast_to(form.vw, (batch,) + form.vw.shape).copy()
        self.sw = np.broadcast_to(form.sw, (batch,) + form.sw.shape).copy()
        self.omega = np.full(batch, form.omega, dtype=np.complex128)

    def view(self, b: int) -> StabilizerChForm:
        """Trajectory ``b`` as a scalar CH form aliasing the stack.

        Matrix mutations land in the stack directly; ``sw`` and ``omega``
        are rebound by the scalar kernels and must be written back with
        :meth:`store` after any scalar call.
        """
        out = StabilizerChForm.__new__(StabilizerChForm)
        out.n = self.n
        out._w = self._w
        out._mask = self._mask
        out.Fw = self.Fw[b]
        out.Gw = self.Gw[b]
        out.Mw = self.Mw[b]
        out.gamma = self.gamma[b]
        out.vw = self.vw[b]
        out.sw = self.sw[b]
        out.omega = complex(self.omega[b])
        return out

    def store(self, b: int, form: StabilizerChForm) -> None:
        """Write back the scalar-rebound ``sw``/``omega`` of a view."""
        self.sw[b] = form.sw
        self.omega[b] = form.omega

    # -- batched gate passes (one NumPy call across the whole batch) -------
    def apply_s(self, q: int) -> None:
        self.Mw[:, q] ^= self.Gw[:, q]
        self.gamma[:, q] = (self.gamma[:, q] - 1) % 4

    def apply_sdg(self, q: int) -> None:
        self.Mw[:, q] ^= self.Gw[:, q]
        self.gamma[:, q] = (self.gamma[:, q] + 1) % 4

    def apply_cz(self, q: int, r: int) -> None:
        if q == r:
            raise ValueError("CZ needs distinct qubits")
        self.Mw[:, q] ^= self.Gw[:, r]
        self.Mw[:, r] ^= self.Gw[:, q]

    def apply_cx(self, c: int, t: int) -> None:
        if c == t:
            raise ValueError("CNOT needs distinct qubits")
        self.gamma[:, c] = (
            self.gamma[:, c]
            + self.gamma[:, t]
            + 2 * (bp.count_bits(self.Mw[:, c] & self.Fw[:, t], axis=1) & 1)
        ) % 4
        self.Gw[:, t] ^= self.Gw[:, c]
        self.Fw[:, c] ^= self.Fw[:, t]
        self.Mw[:, c] ^= self.Mw[:, t]

    def apply_x(self, q: int) -> None:
        f_row, m_row = self.Fw[:, q], self.Mw[:, q]
        t = self.sw ^ (f_row & ~self.vw) ^ (m_row & self.vw)
        beta = bp.count_bits(m_row & ~self.vw & self.sw, axis=1)
        beta = beta + bp.count_bits(f_row & self.vw & (self.sw ^ m_row), axis=1)
        pw = (self.gamma[:, q] + 2 * beta) % 4
        self.omega *= _I_POW[pw]
        self.sw = t

    def apply_z(self, q: int) -> None:
        g_row = self.Gw[:, q]
        u = self.sw ^ (g_row & self.vw)
        alpha = bp.count_bits(g_row & ~self.vw & self.sw, axis=1)
        self.omega *= _I_POW[(2 * alpha) % 4]
        self.sw = u

    def apply_y(self, q: int) -> None:
        self.apply_z(q)
        self.apply_x(q)
        self.omega *= 1j

    def apply_h(self, q: int) -> None:
        """Hadamard: ``update_sum``'s case analysis is per-trajectory."""
        for b in range(self.batch):
            st = self.view(b)
            st.apply_h(q)
            self.store(b, st)

    def apply_stabilizer_sequence(self, seq, axes: Sequence[int]) -> None:
        """One cached ``(phase, primitives)`` decomposition, batch-wide.

        Unlike the tableau, the CH form tracks global phase, so the
        sequence's phase factor multiplies ``omega`` directly.
        """
        phase, prims = seq
        if phase is not None and phase != 1:
            self.omega *= phase
        dispatch = {
            "H": self.apply_h,
            "S": self.apply_s,
            "SDG": self.apply_sdg,
            "X": self.apply_x,
            "Y": self.apply_y,
            "Z": self.apply_z,
            "CX": self.apply_cx,
            "CZ": self.apply_cz,
        }
        for name, local in prims:
            mapped = [axes[i] for i in local]
            try:
                dispatch[name](*mapped)
            except KeyError:  # pragma: no cover - defensive
                raise ValueError(f"Unknown CH primitive {name!r}") from None

    def apply_single_qubit_moment(
        self, seqs: Sequence, axes: Sequence[int]
    ) -> None:
        """A fused moment of disjoint single-qubit gates, batch-wide.

        ``seqs[i]`` is ``(phase, [primitive, ...])`` for the gate on
        ``axes[i]`` — the :class:`~repro.sampler.plan.FusedOpRecord`
        layout.
        """
        for (phase, prims), axis in zip(seqs, axes):
            if phase is not None and phase != 1:
                self.omega *= phase
            self.apply_stabilizer_sequence(
                (None, [(name, (0,)) for name in prims]), [axis]
            )

    # -- batched candidate probabilities -----------------------------------
    def candidate_probabilities(
        self, bits: np.ndarray, support: Sequence[int]
    ) -> np.ndarray:
        """A ``(B, 2^k)`` candidate matrix, one per-trajectory state each.

        The stacked sibling of
        :meth:`StabilizerChForm.candidate_probabilities_many`: candidate
        ``idx`` of trajectory ``b`` agrees with ``bits[b]`` off
        ``support`` and encodes ``support[pos]`` at bit ``k - 1 - pos``.
        The support-membership test runs as one batched GF(2) matmul
        against the stacked ``F`` matrices.
        """
        support = [int(a) for a in support]
        k = len(support)
        base = np.asarray(bits, dtype=np.uint8)
        if base.ndim != 2 or base.shape != (self.batch, self.n):
            raise ValueError(
                f"Expected ({self.batch}, {self.n}) bitstrings, "
                f"got {base.shape}"
            )
        cands = np.repeat(base[:, None, :], 2**k, axis=1)
        patterns = (
            (np.arange(2**k)[:, None] >> np.arange(k - 1, -1, -1)[None, :]) & 1
        ).astype(np.uint8)
        cands[:, :, support] = patterns[None, :, :]
        f_mats = bp.unpack_rows(self.Fw, self.n).astype(np.float64)
        x = np.einsum(
            "bkp,bpj->bkj", cands.astype(np.float64), f_mats
        ) % 2.0
        s = bp.unpack_rows(self.sw, self.n).astype(np.float64)
        bare = bp.unpack_rows(self.vw, self.n) == 0
        mismatch = ((x != s[:, None, :]) & bare[:, None, :]).any(axis=2)
        flat = np.abs(self.omega) ** 2 * np.exp2(
            -bp.count_bits(self.vw, axis=1).astype(np.float64)
        )
        out = np.broadcast_to(flat[:, None], mismatch.shape).copy()
        out[mismatch] = 0.0
        return out
