"""The CH form of stabilizer states (Bravyi et al., Quantum 3, 181 (2019)).

Any stabilizer state is written ``|psi> = omega * U_C * U_H |s>`` where
``U_C`` is a *control-type* Clifford circuit (products of S, CZ, CNOT, all
fixing |0..0>), ``U_H = prod_j H_j^{v_j}``, ``s`` is a basis state and
``omega`` a complex scalar.  ``U_C`` is stored through its conjugation
action on Pauli generators via binary matrices F, G, M and a phase vector
``gamma`` (mod 4):

    U_C^dag Z_p U_C = prod_j Z_j^{G[p,j]}
    U_C^dag X_p U_C = i^{gamma[p]} prod_j X_j^{F[p,j]} Z_j^{M[p,j]}

All update rules below are derived from these relations (see DESIGN.md);
the implementation is validated against the dense state-vector simulator
by reconstructing full wavefunctions.

Why BGLS cares: computing one bitstring amplitude costs O(n^2) and is
*independent of circuit depth* — the property behind the paper's Fig. 3.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

_SQRT2 = math.sqrt(2.0)
_I_POW = np.array([1, 1j, -1, -1j], dtype=np.complex128)


class StabilizerChForm:
    """Mutable CH-form stabilizer state on ``n`` qubits, initially |0..0>."""

    def __init__(self, num_qubits: int, initial_state: int = 0):
        n = int(num_qubits)
        if n <= 0:
            raise ValueError("Need at least one qubit")
        self.n = n
        self.F = np.eye(n, dtype=bool)
        self.G = np.eye(n, dtype=bool)
        self.M = np.zeros((n, n), dtype=bool)
        self.gamma = np.zeros(n, dtype=np.int64)  # i^gamma row phases, mod 4
        self.v = np.zeros(n, dtype=bool)
        self.s = np.zeros(n, dtype=bool)
        self.omega: complex = 1.0 + 0.0j
        if initial_state:
            for q in range(n):
                if (initial_state >> (n - 1 - q)) & 1:
                    self.apply_x(q)

    # ------------------------------------------------------------------
    # Pauli rows pushed through U_H onto |s>
    # ------------------------------------------------------------------
    def _x_row_action(self, q: int) -> Tuple[complex, np.ndarray]:
        """Action of ``U_C^dag X_q U_C`` on ``U_H|s>``: (phase, new_s).

        Per qubit j the operator is X^F Z^M;  through H (v_j=1) it becomes
        H Z^F X^M, flipping s_j by M and contributing (-1)^{F*(s+M)}; on
        bare qubits (v_j=0) it flips s_j by F and contributes (-1)^{M*s}.
        """
        f_row, m_row = self.F[q], self.M[q]
        v, s = self.v, self.s
        t = s ^ (f_row & ~v) ^ (m_row & v)
        beta = int(np.count_nonzero(m_row & ~v & s))
        beta += int(np.count_nonzero(f_row & v & (s ^ m_row)))
        phase = _I_POW[(self.gamma[q] + 2 * beta) % 4]
        return phase, t

    def _z_row_action(self, q: int) -> Tuple[complex, np.ndarray]:
        """Action of ``U_C^dag Z_q U_C`` on ``U_H|s>``: (phase, new_s)."""
        g_row = self.G[q]
        u = self.s ^ (g_row & self.v)
        alpha = int(np.count_nonzero(g_row & ~self.v & self.s))
        return _I_POW[(2 * alpha) % 4], u

    # ------------------------------------------------------------------
    # Left multiplications (circuit gates)
    # ------------------------------------------------------------------
    def apply_x(self, q: int) -> None:
        phase, t = self._x_row_action(q)
        self.omega *= phase
        self.s = t

    def apply_z(self, q: int) -> None:
        phase, u = self._z_row_action(q)
        self.omega *= phase
        self.s = u

    def apply_y(self, q: int) -> None:
        """Y = i X Z (apply Z, then X, then the i)."""
        self.apply_z(q)
        self.apply_x(q)
        self.omega *= 1j

    def apply_s(self, q: int) -> None:
        """S (phase gate): gamma_q -= 1, M_q ^= G_q."""
        self.M[q] ^= self.G[q]
        self.gamma[q] = (self.gamma[q] - 1) % 4

    def apply_sdg(self, q: int) -> None:
        """S^dagger: gamma_q += 1, M_q ^= G_q."""
        self.M[q] ^= self.G[q]
        self.gamma[q] = (self.gamma[q] + 1) % 4

    def apply_cz(self, q: int, r: int) -> None:
        """CZ: M_q ^= G_r and M_r ^= G_q (no phase)."""
        if q == r:
            raise ValueError("CZ needs distinct qubits")
        self.M[q] ^= self.G[r]
        self.M[r] ^= self.G[q]

    def apply_cx(self, c: int, t: int) -> None:
        """CNOT with control c, target t."""
        if c == t:
            raise ValueError("CNOT needs distinct qubits")
        # Phase from reordering Z^{M_c} past X^{F_t} when combining rows.
        self.gamma[c] = (
            self.gamma[c]
            + self.gamma[t]
            + 2 * int(np.count_nonzero(self.M[c] & self.F[t]) % 2)
        ) % 4
        self.G[t] ^= self.G[c]
        self.F[c] ^= self.F[t]
        self.M[c] ^= self.M[t]

    def apply_h(self, q: int) -> None:
        """Hadamard: H = (X + Z)/sqrt(2) creates a two-branch superposition
        which :meth:`update_sum` folds back into CH form (Proposition 4)."""
        phase_x, t = self._x_row_action(q)
        phase_z, u = self._z_row_action(q)
        # phase_x, phase_z are powers of i; delta = (z-power - x-power) mod 4
        px = int(np.argmax(np.isclose(_I_POW, phase_x)))
        pz = int(np.argmax(np.isclose(_I_POW, phase_z)))
        delta = (pz - px) % 4
        self.omega *= phase_x / _SQRT2
        self.update_sum(t, u, delta)

    # ------------------------------------------------------------------
    # Right multiplications (absorbing gates into U_C)
    # ------------------------------------------------------------------
    def _right_cx(self, c: int, t: int) -> None:
        """U_C <- U_C CX_{c,t} (column operations, no phase)."""
        self.G[:, c] ^= self.G[:, t]
        self.F[:, t] ^= self.F[:, c]
        self.M[:, c] ^= self.M[:, t]

    def _right_cz(self, c: int, t: int) -> None:
        """U_C <- U_C CZ_{c,t}."""
        self.gamma[:] = (self.gamma + 2 * (self.F[:, c] & self.F[:, t])) % 4
        self.M[:, c] ^= self.F[:, t]
        self.M[:, t] ^= self.F[:, c]

    def _right_s(self, q: int) -> None:
        """U_C <- U_C S_q   (S^dag X S = i X Z per row with an X there)."""
        self.M[:, q] ^= self.F[:, q]
        self.gamma[:] = (self.gamma - self.F[:, q].astype(np.int64)) % 4

    def _right_sdg(self, q: int) -> None:
        """U_C <- U_C S^dag_q."""
        self.M[:, q] ^= self.F[:, q]
        self.gamma[:] = (self.gamma + self.F[:, q].astype(np.int64)) % 4

    # ------------------------------------------------------------------
    # Proposition 4: rewrite U_H (|t> + i^delta |u>) back into CH form
    # ------------------------------------------------------------------
    def update_sum(self, t: np.ndarray, u: np.ndarray, delta: int) -> None:
        """Set the state to ``omega * U_C * U_H (|t> + i^delta |u>)``.

        ``omega`` must already hold all prefactors; this method multiplies
        the scalars it extracts into ``omega`` and updates U_C, v, s.
        """
        delta = int(delta) % 4
        t = t.astype(bool).copy()
        u = u.astype(bool).copy()
        if np.array_equal(t, u):
            self.s = t
            self.omega *= 1 + _I_POW[delta]
            return

        diff = t ^ u
        set0 = np.flatnonzero(diff & ~self.v)
        set1 = np.flatnonzero(diff & self.v)

        if set0.size > 0:
            # Case A: an un-Hadamarded difference qubit exists.
            q = int(set0[0])
            for i in set0[1:]:
                self._right_cx(q, int(i))
            for i in set1:
                self._right_cz(q, int(i))
            new_s = t.copy()
            new_s[diff] = t[diff] ^ t[q]  # t_i XOR t_q on the difference set
            # Single-qubit superposition |t_q> + i^delta |1 - t_q>.
            if t[q]:
                self.omega *= _I_POW[delta]
                delta = (-delta) % 4
            a, b = {0: (0, 0), 1: (1, 0), 2: (0, 1), 3: (1, 1)}[delta]
            if a:
                self._right_s(q)
            new_s[q] = bool(b)
            self.v[q] = True
            self.s = new_s
            self.omega *= _SQRT2
            return

        # Case B: every difference qubit sits under a Hadamard.
        q = int(set1[0])
        for i in set1[1:]:
            self._right_cx(int(i), q)  # H (x) H conjugation reverses CX
        new_s = t.copy()
        new_s[diff] = t[diff] ^ t[q]
        if t[q]:
            self.omega *= _I_POW[delta]
            delta = (-delta) % 4
        # H(|0> + i^delta |1>) for delta = 0..3.
        if delta == 0:
            new_s[q] = False
            self.v[q] = False
            self.omega *= _SQRT2
        elif delta == 2:
            new_s[q] = True
            self.v[q] = False
            self.omega *= _SQRT2
        elif delta == 1:
            new_s[q] = False
            self._right_sdg(q)
            self.omega *= 1 + 1j
        else:  # delta == 3
            new_s[q] = False
            self._right_s(q)
            self.omega *= 1 - 1j
        self.s = new_s

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measurement_outcome_info(self, q: int) -> Tuple[bool, int]:
        """(is_random, deterministic_bit): whether measuring qubit ``q`` is
        a coin flip, and the forced outcome when it is not."""
        phase_z, u = self._z_row_action(q)
        if np.array_equal(u, self.s):
            # Z_q |psi> = phase_z |psi>; +1 eigenvalue <-> bit 0.
            bit = 0 if phase_z.real > 0 else 1
            return False, bit
        return True, -1

    def project_measurement(self, q: int, outcome: int) -> None:
        """Collapse qubit ``q`` to ``outcome`` (must have probability > 0)."""
        phase_z, u = self._z_row_action(q)
        if np.array_equal(u, self.s):
            bit = 0 if phase_z.real > 0 else 1
            if bit != int(outcome):
                raise ValueError(
                    f"Measurement outcome {outcome} has probability 0"
                )
            return
        # (I + (-1)^m Z_q)/2 |psi|, renormalized by sqrt(2).
        alpha_pow = 0 if phase_z.real > 0 else 2
        delta = (2 * int(outcome) + alpha_pow) % 4
        self.omega /= _SQRT2
        self.update_sum(self.s.copy(), u, delta)

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Sample and collapse a Z measurement of qubit ``q``."""
        is_random, bit = self.measurement_outcome_info(q)
        if not is_random:
            return bit
        outcome = int(rng.integers(2))
        self.project_measurement(q, outcome)
        return outcome

    # ------------------------------------------------------------------
    # Amplitudes
    # ------------------------------------------------------------------
    def inner_product_with_basis_state(self, bits: Sequence[int]) -> complex:
        """Amplitude ``<b|psi>`` for a computational-basis bitstring.

        Writes <b| = <0| prod_{p: b_p=1} X_p and pushes the X's through
        U_C; cost O(n * |b|) <= O(n^2), independent of circuit depth.
        """
        b = np.asarray(bits, dtype=bool)
        if b.shape != (self.n,):
            raise ValueError(f"Expected {self.n} bits, got {b.shape}")
        phase_pow = 0
        x = np.zeros(self.n, dtype=bool)
        z = np.zeros(self.n, dtype=bool)
        for p in np.flatnonzero(b):
            phase_pow += int(self.gamma[p])
            phase_pow += 2 * int(np.count_nonzero(z & self.F[p]) % 2)
            x ^= self.F[p]
            z ^= self.M[p]
        # <0| i^phi X^x Z^z U_H |s> = i^phi (-1)^{x.z} <x| U_H |s>
        phase_pow += 2 * int(np.count_nonzero(x & z) % 2)
        if np.any((x != self.s) & ~self.v):
            return 0.0 + 0.0j
        phase_pow += 2 * int(np.count_nonzero(x & self.s & self.v) % 2)
        magnitude = 2.0 ** (-0.5 * int(np.count_nonzero(self.v)))
        return self.omega * _I_POW[phase_pow % 4] * magnitude

    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring: |<b|psi>|^2."""
        return float(abs(self.inner_product_with_basis_state(bits)) ** 2)

    def state_vector(self) -> np.ndarray:
        """Full dense wavefunction (exponential; for testing on small n)."""
        dim = 2**self.n
        out = np.empty(dim, dtype=np.complex128)
        for idx in range(dim):
            bits = [(idx >> (self.n - 1 - j)) & 1 for j in range(self.n)]
            out[idx] = self.inner_product_with_basis_state(bits)
        return out

    def copy(self) -> "StabilizerChForm":
        out = StabilizerChForm.__new__(StabilizerChForm)
        out.n = self.n
        out.F = self.F.copy()
        out.G = self.G.copy()
        out.M = self.M.copy()
        out.gamma = self.gamma.copy()
        out.v = self.v.copy()
        out.s = self.s.copy()
        out.omega = self.omega
        return out

    def __repr__(self) -> str:
        return f"StabilizerChForm(n={self.n}, |v|={int(self.v.sum())})"
