"""Word-packed binary linear algebra for the stabilizer engines.

Both stabilizer representations in this package are, at heart, GF(2)
matrices: the Aaronson-Gottesman tableau's ``x``/``z`` blocks and the CH
form's ``F``/``G``/``M`` conjugation matrices.  Storing one bit per byte
(``uint8``/``bool``) wastes 8x memory and — more importantly — 64x ALU
width: a row XOR or a popcount over ``n`` columns is ``ceil(n / 64)``
word operations when the row is packed into ``uint64`` words, the layout
Stim uses for its tableau kernels.

Layout: column ``c`` of a binary matrix lives in word ``c >> 6`` at bit
``c & 63`` (LSB-first within each word).  All packed arrays maintain the
invariant that tail bits past the logical width are zero, so popcounts
and equality checks need no masking; operations that complement words
(``~v``) must AND the result with a clean operand or with :func:`mask`
before trusting tail bits.

Everything here is pure NumPy; :func:`popcount` uses ``np.bitwise_count``
when available (NumPy >= 2.0) and a 256-entry byte lookup table otherwise.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

WORD_BITS = 64

_ONE = np.uint64(1)

_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def num_words(n: int) -> int:
    """Words needed for ``n`` bits."""
    return (int(n) + WORD_BITS - 1) >> 6


def pack_rows(mat: np.ndarray, n: int = None) -> np.ndarray:
    """Pack the last axis of a binary array into ``uint64`` words.

    ``mat[..., c]`` (0/1) maps to bit ``c & 63`` of word ``c >> 6``.
    """
    mat = np.asarray(mat)
    if n is None:
        n = mat.shape[-1]
    if mat.shape[-1] != n:
        raise ValueError(f"Expected last axis {n}, got {mat.shape[-1]}")
    w = num_words(n)
    padded = np.zeros(mat.shape[:-1] + (w * WORD_BITS,), dtype=np.uint64)
    padded[..., :n] = mat.astype(np.uint64) & _ONE
    bits = padded.reshape(mat.shape[:-1] + (w, WORD_BITS))
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    return np.bitwise_or.reduce(bits << shifts, axis=-1)


def unpack_rows(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`; returns a 0/1 ``uint8`` array."""
    packed = np.asarray(packed, dtype=np.uint64)
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (packed[..., :, None] >> shifts) & _ONE
    flat = bits.reshape(packed.shape[:-1] + (packed.shape[-1] * WORD_BITS,))
    return flat[..., :n].astype(np.uint8)


def packed_eye(n: int) -> np.ndarray:
    """The ``n x n`` identity, row-packed into ``(n, num_words(n))`` words."""
    out = np.zeros((n, num_words(n)), dtype=np.uint64)
    cols = np.arange(n)
    out[cols, cols >> 6] = _ONE << (cols & (WORD_BITS - 1)).astype(np.uint64)
    return out


def mask(n: int) -> np.ndarray:
    """Packed vector with the first ``n`` bits set (for tail cleanup)."""
    out = np.full(num_words(n), ~np.uint64(0), dtype=np.uint64)
    tail = n & (WORD_BITS - 1)
    if tail:
        out[-1] = (_ONE << np.uint64(tail)) - _ONE
    return out


if hasattr(np, "bitwise_count"):

    def popcount(arr: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (same shape as ``arr``)."""
        return np.bitwise_count(arr)

else:  # pragma: no cover - NumPy < 2.0 fallback

    def popcount(arr: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (same shape as ``arr``)."""
        arr = np.ascontiguousarray(arr, dtype=np.uint64)
        bytes_view = arr.view(np.uint8).reshape(arr.shape + (8,))
        return _POP8[bytes_view].sum(axis=-1, dtype=np.uint64)


def count_bits(arr: np.ndarray, axis=None) -> Union[int, np.ndarray]:
    """Total set bits, summed over ``axis`` (all axes when None)."""
    counts = popcount(arr)
    if axis is None:
        return int(counts.sum())
    return counts.sum(axis=axis, dtype=np.int64)


def word_and_bit(col: int) -> Tuple[int, np.uint64]:
    """(word index, bit offset) of column ``col``."""
    return col >> 6, np.uint64(col & (WORD_BITS - 1))


def get_bit(vec: np.ndarray, col: int) -> int:
    """Bit ``col`` of a packed vector."""
    w, b = word_and_bit(col)
    return int((vec[w] >> b) & _ONE)


def set_bit(vec: np.ndarray, col: int, value: int) -> None:
    """Set bit ``col`` of a packed vector to 0 or 1, in place."""
    w, b = word_and_bit(col)
    if value:
        vec[w] |= _ONE << b
    else:
        vec[w] &= ~(_ONE << b)


def get_col(mat: np.ndarray, col: int) -> np.ndarray:
    """Column ``col`` of a packed matrix as a (rows,) 0/1 ``uint64`` array."""
    w, b = word_and_bit(col)
    return (mat[:, w] >> b) & _ONE


def xor_col(mat: np.ndarray, col: int, bits01: np.ndarray) -> None:
    """XOR a (rows,) 0/1 vector into column ``col`` of a packed matrix."""
    w, b = word_and_bit(col)
    mat[:, w] ^= bits01 << b


def bit_positions(vec: np.ndarray, n: int) -> np.ndarray:
    """Indices of set bits of a packed vector (like ``np.flatnonzero``)."""
    return np.flatnonzero(unpack_rows(vec, n))


# -- stacked (leading batch axes) column helpers ------------------------------
#
# The batched-trajectory engine stacks B copies of a packed GF(2) matrix
# into one ``(B, rows, words)`` array and updates all B at once.  These
# helpers are the stacked siblings of :func:`get_col`/:func:`xor_col`:
# they address the *last* axis as the word axis, so any number of leading
# batch/row axes broadcasts through one NumPy call.


def get_col_stacked(mat: np.ndarray, col: int) -> np.ndarray:
    """Column ``col`` across all leading axes as a 0/1 ``uint64`` array.

    ``mat`` has shape ``(..., words)``; the result drops the word axis.
    """
    w, b = word_and_bit(col)
    return (mat[..., w] >> b) & _ONE


def xor_col_stacked(mat: np.ndarray, col: int, bits01: np.ndarray) -> None:
    """XOR a 0/1 array into column ``col`` of a stacked packed matrix.

    ``bits01`` must broadcast against ``mat[..., w]`` (shape ``(...,)``).
    """
    w, b = word_and_bit(col)
    mat[..., w] ^= np.asarray(bits01, dtype=np.uint64) << b


def set_col_stacked(mat: np.ndarray, col: int, bits01: np.ndarray) -> None:
    """Set column ``col`` of a stacked packed matrix to a 0/1 array."""
    w, b = word_and_bit(col)
    keep = ~(_ONE << b)
    mat[..., w] = (mat[..., w] & keep) | (
        np.asarray(bits01, dtype=np.uint64) << b
    )


def words_to_bytes(arr: np.ndarray) -> bytes:
    """Raw little-endian wire bytes of a packed ``uint64`` word array.

    The snapshot payloads of the stabilizer backends ship their GF(2)
    matrices to pool workers as these bytes instead of pickled ndarray
    objects: no dtype/strides/class envelope per array, and the resulting
    payload tuples are hashable/equality-comparable, which is what lets
    the warm-pool execution key compare initial-state payloads directly.
    """
    return np.ascontiguousarray(arr, dtype="<u8").tobytes()


def words_from_bytes(buf: bytes, shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`words_to_bytes`: a fresh writable word array."""
    return np.frombuffer(buf, dtype="<u8").reshape(shape).astype(np.uint64)
