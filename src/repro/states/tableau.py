"""Aaronson-Gottesman stabilizer tableau, bit-packed (paper reference [1]).

This is the second stabilizer engine in the package, complementing the
CH form of :mod:`repro.states.chform`.  The paper's Sec. 4.1 builds on the
CH form because it supports *amplitudes* natively in ``O(n^2)``; the plain
tableau of Aaronson & Gottesman (PRA 70, 052328 (2004)) is the more common
textbook representation but only answers measurement queries directly.
Shipping both lets the benchmark suite quantify that design choice (see
``benchmarks/bench_tableau_vs_chform.py``).

Packed layout (Stim-style; see :mod:`repro.states.bitpack`):

* ``xw``/``zw`` are ``(2n+1, ceil(n/64))`` ``uint64`` matrices; column
  ``c`` lives at bit ``c & 63`` of word ``c >> 6``.  Row ``i < n`` is the
  i-th *destabilizer*, row ``n + i`` the i-th *stabilizer*, row ``2n``
  scratch.  ``x``/``z`` properties unpack to the textbook ``uint8`` form.
* ``r`` is the ``(2n+1,)`` sign vector (1 means the row carries a ``-``).
* Row ``h`` represents the Pauli ``(-1)^{r[h]} prod_j X_j^{x[h,j]}
  Z_j^{z[h,j]}`` (up to the ``i^{x.z}`` bookkeeping handled by rowsum).

Kernel complexities with ``W = ceil(n/64)`` words per row:

* Gate updates touch one or two columns of all rows: ``O(n)`` single-word
  operations.  CZ and S-dagger use direct single-pass sign/column updates
  instead of their H.CX.H / Z.S compositions.
* ``_rowsum`` multiplies two Pauli rows in ``O(W)`` via three AND/NOT word
  masks per sign (the phase exponent is ``popcount(pos) - popcount(neg)``).
* ``_rowsum_many`` — the measurement-collapse kernel — multiplies one
  pivot row into *all* anticommuting rows in a single 2-D vectorized pass:
  ``O(n * W)`` with no Python loop over rows.
* ``candidate_probabilities`` answers all ``2^k`` BGLS candidate queries
  of a gate's support from one shared scratch tableau (the off-support
  projection chain is done once, not ``2^k`` times).

The pre-packing one-bit-per-byte implementation is retained verbatim as
:class:`repro.states.reference.UnpackedCliffordTableau`; property tests
assert bit-exact agreement gate-for-gate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid
from . import bitpack as bp
from .base import SimulationState

_ONE = np.uint64(1)


def _g_masks(x1, z1, x2, z2):
    """Word masks of columns contributing +1 / -1 to the rowsum phase.

    ``x1``/``z1`` is the multiplying (pivot) row, ``x2``/``z2`` the row(s)
    being multiplied into; broadcasting allows ``x2`` to be 2-D.  Each term
    ANDs a complemented word with an uncomplemented one, so tail bits past
    the logical width stay zero.
    """
    pos = (x1 & z1 & z2 & ~x2) | (x1 & ~z1 & z2 & x2) | (~x1 & z1 & x2 & ~z2)
    neg = (x1 & z1 & x2 & ~z2) | (x1 & ~z1 & z2 & ~x2) | (~x1 & z1 & x2 & z2)
    return pos, neg


def _scatter_xor_columns(
    mat: np.ndarray, ws: np.ndarray, bs: np.ndarray, vals: np.ndarray
) -> None:
    """XOR per-column 0/1 values into packed columns, one pass per word.

    ``vals[:, j]`` lands at bit ``bs[j]`` of word column ``ws[j]``.  Columns
    sharing a word are combined first (their bit positions are distinct, so
    OR equals the XOR sum) and each destination word is touched once —
    plain fancy-indexed ``^=`` would silently drop duplicate word indices.
    """
    shifted = vals << bs[None, :]
    order = np.argsort(ws, kind="stable")
    sorted_ws = ws[order]
    starts = np.flatnonzero(np.r_[True, sorted_ws[1:] != sorted_ws[:-1]])
    combined = np.bitwise_or.reduceat(shifted[:, order], starts, axis=1)
    mat[:, sorted_ws[starts]] ^= combined


class CliffordTableau:
    """The Aaronson-Gottesman tableau over ``n`` qubits, ``uint64``-packed.

    Args:
        num_qubits: Register width ``n``.
        initial_state: Computational-basis index (big-endian) to start in.
    """

    def __init__(self, num_qubits: int, initial_state: int = 0):
        n = int(num_qubits)
        if n < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        if not 0 <= initial_state < 2**n:
            raise ValueError(
                f"initial_state {initial_state} out of range for {n} qubits"
            )
        self.n = n
        w = bp.num_words(n)
        self._w = w
        # Destabilizers X_0..X_{n-1}, stabilizers Z_0..Z_{n-1}, scratch row.
        eye = bp.packed_eye(n)
        scratch = np.zeros((1, w), dtype=np.uint64)
        self.xw = np.concatenate([eye, np.zeros_like(eye), scratch])
        self.zw = np.concatenate([np.zeros_like(eye), eye, scratch])
        self.r = np.zeros(2 * n + 1, dtype=np.uint8)
        # |b> is stabilized by (-1)^{b_j} Z_j.
        for j in range(n):
            if (initial_state >> (n - 1 - j)) & 1:
                self.r[n + j] = 1

    # -- unpacked views (tests, diagnostics, stabilizer_strings) -----------
    @property
    def x(self) -> np.ndarray:
        """The X block unpacked to ``(2n+1, n)`` ``uint8`` (read-only copy)."""
        return bp.unpack_rows(self.xw, self.n)

    @property
    def z(self) -> np.ndarray:
        """The Z block unpacked to ``(2n+1, n)`` ``uint8`` (read-only copy)."""
        return bp.unpack_rows(self.zw, self.n)

    # ------------------------------------------------------------------
    # rowsum: multiply row h by row i, tracking the sign (AG04 Sec. III)
    # ------------------------------------------------------------------
    def _rowsum(self, h: int, i: int) -> None:
        x1, z1 = self.xw[i], self.zw[i]
        x2, z2 = self.xw[h], self.zw[h]
        pos, neg = _g_masks(x1, z1, x2, z2)
        gsum = int(bp.popcount(pos).sum()) - int(bp.popcount(neg).sum())
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + gsum
        self.r[h] = (total % 4) // 2
        x2 ^= x1
        z2 ^= z1

    def _rowsum_many(self, targets: np.ndarray, i: int) -> None:
        """Multiply pivot row ``i`` into every row in ``targets`` at once.

        One 2-D vectorized pass replaces the per-row Python loop of the
        unpacked engine; this is the measurement-collapse hot kernel.
        """
        x1, z1 = self.xw[i], self.zw[i]
        x2 = self.xw[targets]
        z2 = self.zw[targets]
        pos, neg = _g_masks(x1, z1, x2, z2)
        gsum = bp.popcount(pos).sum(axis=1).astype(np.int64) - bp.popcount(
            neg
        ).sum(axis=1).astype(np.int64)
        total = 2 * self.r[targets].astype(np.int64) + 2 * int(self.r[i]) + gsum
        self.r[targets] = ((total % 4) // 2).astype(np.uint8)
        self.xw[targets] = x2 ^ x1
        self.zw[targets] = z2 ^ z1

    # ------------------------------------------------------------------
    # Clifford gate updates (all O(n) single-word column operations)
    # ------------------------------------------------------------------
    def apply_h(self, a: int) -> None:
        """Hadamard on qubit ``a``: swaps the X and Z columns."""
        w, b = bp.word_and_bit(a)
        xa = (self.xw[:, w] >> b) & _ONE
        za = (self.zw[:, w] >> b) & _ONE
        self.r ^= (xa & za).astype(np.uint8)
        diff = (xa ^ za) << b
        self.xw[:, w] ^= diff
        self.zw[:, w] ^= diff

    def apply_s(self, a: int) -> None:
        """Phase gate S on qubit ``a``."""
        w, b = bp.word_and_bit(a)
        xa = (self.xw[:, w] >> b) & _ONE
        za = (self.zw[:, w] >> b) & _ONE
        self.r ^= (xa & za).astype(np.uint8)
        self.zw[:, w] ^= xa << b

    def apply_sdg(self, a: int) -> None:
        """S-dagger on qubit ``a``, in one pass (= Z then S fused)."""
        w, b = bp.word_and_bit(a)
        xa = (self.xw[:, w] >> b) & _ONE
        za = (self.zw[:, w] >> b) & _ONE
        self.r ^= (xa & (za ^ _ONE)).astype(np.uint8)
        self.zw[:, w] ^= xa << b

    def apply_x(self, a: int) -> None:
        """Pauli X: flips the sign of rows anticommuting with X_a."""
        w, b = bp.word_and_bit(a)
        self.r ^= ((self.zw[:, w] >> b) & _ONE).astype(np.uint8)

    def apply_z(self, a: int) -> None:
        """Pauli Z: flips the sign of rows anticommuting with Z_a."""
        w, b = bp.word_and_bit(a)
        self.r ^= ((self.xw[:, w] >> b) & _ONE).astype(np.uint8)

    def apply_y(self, a: int) -> None:
        """Pauli Y: flips the sign of rows holding X or Z (not Y) at ``a``."""
        w, b = bp.word_and_bit(a)
        xa = (self.xw[:, w] >> b) & _ONE
        za = (self.zw[:, w] >> b) & _ONE
        self.r ^= (xa ^ za).astype(np.uint8)

    def apply_cx(self, a: int, b: int) -> None:
        """CNOT with control ``a`` and target ``b``."""
        if a == b:
            raise ValueError("CNOT control and target must differ")
        wa, ba = bp.word_and_bit(a)
        wb, bb = bp.word_and_bit(b)
        xa = (self.xw[:, wa] >> ba) & _ONE
        za = (self.zw[:, wa] >> ba) & _ONE
        xb = (self.xw[:, wb] >> bb) & _ONE
        zb = (self.zw[:, wb] >> bb) & _ONE
        self.r ^= (xa & zb & (xb ^ za ^ _ONE)).astype(np.uint8)
        self.xw[:, wb] ^= xa << bb
        self.zw[:, wa] ^= zb << ba

    def apply_cz(self, a: int, b: int) -> None:
        """CZ in one pass: Z_a gains X_b, Z_b gains X_a, sign flips where
        both rows hold X and exactly one holds Z (the fused H.CX.H sign)."""
        if a == b:
            raise ValueError("CZ control and target must differ")
        wa, ba = bp.word_and_bit(a)
        wb, bb = bp.word_and_bit(b)
        xa = (self.xw[:, wa] >> ba) & _ONE
        za = (self.zw[:, wa] >> ba) & _ONE
        xb = (self.xw[:, wb] >> bb) & _ONE
        zb = (self.zw[:, wb] >> bb) & _ONE
        self.r ^= (xa & xb & (za ^ zb)).astype(np.uint8)
        self.zw[:, wa] ^= xb << ba
        self.zw[:, wb] ^= xa << bb

    def apply_single_qubit_layer(
        self, names: Sequence[str], cols: Sequence[int]
    ) -> None:
        """Apply one single-qubit Clifford primitive per (distinct) column.

        The whole layer runs as one batched column pass: every column's X/Z
        bits are gathered with one 2-D fancy index, the sign flips of all
        gates XOR into ``r`` in one reduction, and the column updates
        scatter back word-by-word.  This replaces the ~10 small NumPy calls
        per gate of the scalar kernels with a constant number of calls per
        *moment* — the per-gate overhead win for circuits below a few
        hundred qubits.
        """
        cols = np.asarray(cols, dtype=np.intp)
        if cols.size == 0:
            return
        if np.unique(cols).size != cols.size:
            raise ValueError("Layer columns must be distinct qubits")
        ws = cols >> 6
        bs = (cols & (bp.WORD_BITS - 1)).astype(np.uint64)
        xa = (self.xw[:, ws] >> bs[None, :]) & _ONE
        za = (self.zw[:, ws] >> bs[None, :]) & _ONE
        flips = np.empty_like(xa)
        dx = np.zeros_like(xa)
        dz = np.zeros_like(xa)
        names_arr = np.asarray(names)
        if names_arr.shape != cols.shape:
            raise ValueError("Need exactly one primitive name per column")
        for name in set(names):
            sel = names_arr == name
            x_s, z_s = xa[:, sel], za[:, sel]
            if name == "H":
                diff = x_s ^ z_s
                flips[:, sel] = x_s & z_s
                dx[:, sel] = diff
                dz[:, sel] = diff
            elif name == "S":
                flips[:, sel] = x_s & z_s
                dz[:, sel] = x_s
            elif name == "SDG":
                flips[:, sel] = x_s & (z_s ^ _ONE)
                dz[:, sel] = x_s
            elif name == "X":
                flips[:, sel] = z_s
            elif name == "Z":
                flips[:, sel] = x_s
            elif name == "Y":
                flips[:, sel] = x_s ^ z_s
            else:
                raise ValueError(f"Unknown single-qubit primitive {name!r}")
        self.r ^= np.bitwise_xor.reduce(flips, axis=1).astype(np.uint8)
        _scatter_xor_columns(self.xw, ws, bs, dx)
        _scatter_xor_columns(self.zw, ws, bs, dz)

    def apply_swap(self, a: int, b: int) -> None:
        """SWAP by column exchange (cheaper than three CNOTs)."""
        wa, ba = bp.word_and_bit(a)
        wb, bb = bp.word_and_bit(b)
        for mat in (self.xw, self.zw):
            ca = (mat[:, wa] >> ba) & _ONE
            cb = (mat[:, wb] >> bb) & _ONE
            diff = ca ^ cb
            mat[:, wa] ^= diff << ba
            mat[:, wb] ^= diff << bb

    # ------------------------------------------------------------------
    # Measurement (AG04 Sec. III) and forced projection
    # ------------------------------------------------------------------
    def _random_pivot(self, a: int) -> Optional[int]:
        """First stabilizer row with X at column ``a``, or None."""
        n = self.n
        w, b = bp.word_and_bit(a)
        hits = np.flatnonzero((self.xw[n : 2 * n, w] >> b) & _ONE)
        if hits.size == 0:
            return None
        return n + int(hits[0])

    def deterministic_outcome(self, a: int) -> Optional[int]:
        """The forced measurement outcome of qubit ``a``, or None if random.

        Does not modify the tableau's first ``2n`` rows (it only overwrites
        the scratch row), so it can answer "is this qubit's value pinned?"
        queries non-destructively.

        The product of the selected stabilizer rows is accumulated in one
        vectorized pass: stabilizer rows commute, so step ``j`` of the
        sequential rowsum recurrence sees exactly the XOR of rows ``< j``
        — an exclusive cumulative XOR — and every per-column sign mask is
        evaluated on the full 2-D block at once.
        """
        if self._random_pivot(a) is not None:
            return None
        n = self.n
        w, b = bp.word_and_bit(a)
        hits = np.flatnonzero((self.xw[:n, w] >> b) & _ONE)
        self.xw[2 * n] = 0
        self.zw[2 * n] = 0
        self.r[2 * n] = 0
        if hits.size == 0:
            return 0
        rows = n + hits
        x_rows = self.xw[rows]
        z_rows = self.zw[rows]
        xcum = np.bitwise_xor.accumulate(x_rows, axis=0)
        zcum = np.bitwise_xor.accumulate(z_rows, axis=0)
        xprev = np.zeros_like(xcum)
        zprev = np.zeros_like(zcum)
        xprev[1:] = xcum[:-1]
        zprev[1:] = zcum[:-1]
        pos, neg = _g_masks(x_rows, z_rows, xprev, zprev)
        gsum = int(bp.popcount(pos).sum()) - int(bp.popcount(neg).sum())
        total = 2 * int(self.r[rows].sum()) + gsum
        outcome = (total % 4) // 2
        self.xw[2 * n] = xcum[-1]
        self.zw[2 * n] = zcum[-1]
        self.r[2 * n] = outcome
        return outcome

    def _collapse(self, a: int, p: int, outcome: int) -> None:
        """Post-random-measurement update: pivot row ``p``, result ``outcome``.

        All rows anticommuting with Z_a absorb the pivot through one
        batched :meth:`_rowsum_many` pass.
        """
        n = self.n
        w, b = bp.word_and_bit(a)
        hits = np.flatnonzero((self.xw[:, w] >> b) & _ONE)
        hits = hits[(hits != p) & (hits != 2 * n)]
        if hits.size:
            self._rowsum_many(hits, p)
        self.xw[p - n] = self.xw[p]
        self.zw[p - n] = self.zw[p]
        self.r[p - n] = self.r[p]
        self.xw[p] = 0
        self.zw[p] = 0
        bp.set_bit(self.zw[p], a, 1)
        self.r[p] = outcome

    def measure(self, a: int, rng: np.random.Generator) -> int:
        """Measure qubit ``a`` in the computational basis, collapsing."""
        p = self._random_pivot(a)
        if p is None:
            outcome = self.deterministic_outcome(a)
            assert outcome is not None
            return outcome
        outcome = int(rng.integers(2))
        self._collapse(a, p, outcome)
        return outcome

    def project_measurement(self, a: int, bit: int) -> float:
        """Force qubit ``a`` to ``bit``; return the outcome's probability.

        Returns 0.5 when the outcome was random, 1.0 when it was already
        pinned to ``bit``, and 0.0 (without modifying the state) when the
        outcome is pinned to the opposite value.
        """
        bit = int(bit)
        p = self._random_pivot(a)
        if p is None:
            forced = self.deterministic_outcome(a)
            return 1.0 if forced == bit else 0.0
        self._collapse(a, p, bit)
        return 0.5

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of the full bitstring ``bits``.

        Implemented as a chain of forced measurements on a scratch copy:
        ``P(b) = prod_j P(b_j | b_0..b_{j-1})`` where each conditional is
        0, 1/2, or 1.  The tableau has no native amplitude query, which is
        exactly why the paper's Sec. 4.1 uses the CH form instead.
        """
        if len(bits) != self.n:
            raise ValueError(f"Expected {self.n} bits, got {len(bits)}")
        scratch = self.copy()
        prob = 1.0
        for a, bit in enumerate(bits):
            factor = scratch.project_measurement(a, int(bit))
            if factor == 0.0:
                return 0.0
            prob *= factor
        return prob

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """All ``2^k`` candidate probabilities over ``support`` at once.

        Candidate ``idx`` agrees with ``bits`` off ``support`` and encodes
        ``support[pos]`` at bit ``k - 1 - pos`` of ``idx`` — the BGLS
        resampling convention.  The off-support forced-measurement chain
        runs once on one shared scratch tableau; the candidates then branch
        from it (at most ``2^k - 1`` extra copies, none when every support
        outcome is pinned), instead of ``2^k`` full chains on ``2^k``
        copies.
        """
        if len(bits) != self.n:
            raise ValueError(f"Expected {self.n} bits, got {len(bits)}")
        support = [int(a) for a in support]
        out = np.zeros(2 ** len(support))
        support_set = set(support)
        scratch = self.copy()
        prob = 1.0
        for a, bit in enumerate(bits):
            if a in support_set:
                continue
            factor = scratch.project_measurement(a, int(bit))
            if factor == 0.0:
                return out
            prob *= factor
        self._fill_support(scratch, support, 0, 0, prob, out)
        return out

    def _fill_support(
        self,
        tab: "CliffordTableau",
        support: Sequence[int],
        pos: int,
        idx: int,
        acc: float,
        out_row: np.ndarray,
    ) -> None:
        """Branch the support qubits of a projected scratch tableau.

        Forced outcomes follow without copies; random outcomes split the
        tableau once per coin flip (probability halves each time).
        """
        if pos == len(support):
            out_row[idx] = acc
            return
        a = support[pos]
        pivot = tab._random_pivot(a)
        if pivot is None:
            forced = tab.deterministic_outcome(a)
            self._fill_support(
                tab, support, pos + 1, (idx << 1) | forced, acc, out_row
            )
            return
        branch = tab.copy()
        branch._collapse(a, pivot, 0)
        self._fill_support(branch, support, pos + 1, idx << 1, acc * 0.5, out_row)
        tab._collapse(a, pivot, 1)
        self._fill_support(
            tab, support, pos + 1, (idx << 1) | 1, acc * 0.5, out_row
        )

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """A ``(B, 2^k)`` candidate-probability matrix for ``B`` bitstrings.

        The off-support forced-measurement chains of the whole tracked
        front are shared through a prefix tree: bitstrings are first
        deduplicated on their off-support bits (candidate rows of equal
        off-support patterns are identical), then the projection chain
        walks qubits in ascending order and only copies the scratch
        tableau where two patterns actually diverge.  A front of ``B``
        bitstrings therefore costs one chain for the common prefix plus
        one sub-chain per divergence, instead of ``B`` full chains.
        """
        support = [int(a) for a in support]
        k = len(support)
        base = np.asarray(bits_list, dtype=np.uint8)
        if base.ndim != 2 or base.shape[1] != self.n:
            raise ValueError(
                f"Expected (B, {self.n}) bitstrings, got {base.shape}"
            )
        if base.shape[0] == 1:
            # Trajectory-mode hot path: skip dedup/grouping for one string.
            return self.candidate_probabilities(list(base[0]), support)[None, :]
        support_set = set(support)
        off_axes = [a for a in range(self.n) if a not in support_set]
        off_bits = base[:, off_axes]
        uniq, inverse = np.unique(off_bits, axis=0, return_inverse=True)
        out_uniq = np.zeros((uniq.shape[0], 2**k))

        # Iterative prefix walk (one Python frame would otherwise be spent
        # per off-support qubit — a RecursionError past ~1000 qubits).  The
        # stack holds only divergence branches; the all-agree case advances
        # in place.
        stack = [(self.copy(), 0, 1.0, np.arange(uniq.shape[0]))]
        while stack:
            tab, depth, acc, rows = stack.pop()
            annihilated = False
            while depth < len(off_axes):
                a = off_axes[depth]
                bits_here = uniq[rows, depth]
                ones = bits_here == 1
                if ones.all() or not ones.any():
                    factor = tab.project_measurement(a, int(bits_here[0]))
                else:
                    zero_tab = tab.copy()
                    zero_factor = zero_tab.project_measurement(a, 0)
                    if zero_factor != 0.0:
                        stack.append(
                            (zero_tab, depth + 1, acc * zero_factor, rows[~ones])
                        )
                    rows = rows[ones]
                    factor = tab.project_measurement(a, 1)
                if factor == 0.0:
                    annihilated = True
                    break
                acc *= factor
                depth += 1
            if not annihilated:
                # Distinct off-support patterns: exactly one row per leaf.
                self._fill_support(
                    tab, support, 0, 0, acc, out_uniq[int(rows[0])]
                )
        return out_uniq[inverse]

    def stabilizer_strings(self) -> List[str]:
        """Human-readable stabilizer generators (e.g. ``['+XX', '-ZZ']``)."""
        x = self.x
        z = self.z
        out = []
        for i in range(self.n, 2 * self.n):
            sign = "-" if self.r[i] else "+"
            chars = []
            for j in range(self.n):
                xij, zij = int(x[i, j]), int(z[i, j])
                chars.append({(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}[(xij, zij)])
            out.append(sign + "".join(chars))
        return out

    def copy(self) -> "CliffordTableau":
        out = CliffordTableau.__new__(CliffordTableau)
        out.n = self.n
        out._w = self._w
        out.xw = self.xw.copy()
        out.zw = self.zw.copy()
        out.r = self.r.copy()
        return out

    # -- packed snapshot payloads (warm-pool worker shipping) ---------------
    def to_words(self) -> Tuple[int, bytes, bytes, bytes]:
        """``(n, x_bytes, z_bytes, r_bytes)`` — the tableau as raw words.

        Only the ``2n`` destabilizer/stabilizer rows ship; the scratch
        row carries no state (every reader overwrites it first) and is
        reallocated on restore.  The byte strings are plain hashable
        values, so whole payloads compare with ``==`` — the property the
        warm-pool execution key relies on.
        """
        n = self.n
        return (
            n,
            bp.words_to_bytes(self.xw[: 2 * n]),
            bp.words_to_bytes(self.zw[: 2 * n]),
            self.r[: 2 * n].tobytes(),
        )

    @classmethod
    def from_words(
        cls, n: int, x_bytes: bytes, z_bytes: bytes, r_bytes: bytes
    ) -> "CliffordTableau":
        """Rebuild a tableau from :meth:`to_words` without re-deriving it."""
        n = int(n)
        w = bp.num_words(n)
        out = cls.__new__(cls)
        out.n = n
        out._w = w
        scratch = np.zeros((1, w), dtype=np.uint64)
        out.xw = np.concatenate(
            [bp.words_from_bytes(x_bytes, (2 * n, w)), scratch]
        )
        out.zw = np.concatenate(
            [bp.words_from_bytes(z_bytes, (2 * n, w)), scratch]
        )
        out.r = np.concatenate(
            [np.frombuffer(r_bytes, dtype=np.uint8), np.zeros(1, np.uint8)]
        )
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (
            self.n == other.n
            and bool(np.array_equal(self.xw[: 2 * self.n], other.xw[: 2 * other.n]))
            and bool(np.array_equal(self.zw[: 2 * self.n], other.zw[: 2 * other.n]))
            and bool(np.array_equal(self.r[: 2 * self.n], other.r[: 2 * other.n]))
        )

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.n})"

    def stack(self, batch: int) -> "StackedCliffordTableaus":
        """``batch`` independent copies as one stacked-word computation."""
        return StackedCliffordTableaus(self, batch)


class StackedCliffordTableaus:
    """A stack of ``B`` independent tableaus updated by one column pass.

    The batched-trajectory engine's word layout: ``xw``/``zw`` are
    ``(B, 2n+1, W)`` ``uint64`` arrays and ``r`` is ``(B, 2n+1)``, i.e.
    ``B`` :class:`CliffordTableau` instances stacked on a leading axis.
    Every Clifford gate is the same one- or two-column word update as the
    scalar kernels, broadcast over the batch axis in a single NumPy call —
    the per-gate cost is amortized over all ``B`` trajectories.

    Measurement-adjacent operations (pivot search, collapse, candidate
    chains) branch per trajectory; :meth:`view` exposes trajectory ``b``
    as a zero-copy :class:`CliffordTableau` whose arrays alias the stack
    (every scalar kernel mutates in place, so views stay coherent).
    """

    def __init__(self, tableau: CliffordTableau, batch: int):
        batch = int(batch)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.n = tableau.n
        self._w = tableau._w
        self.batch = batch
        self.xw = np.broadcast_to(tableau.xw, (batch,) + tableau.xw.shape).copy()
        self.zw = np.broadcast_to(tableau.zw, (batch,) + tableau.zw.shape).copy()
        self.r = np.broadcast_to(tableau.r, (batch,) + tableau.r.shape).copy()

    def view(self, b: int) -> CliffordTableau:
        """Trajectory ``b`` as a scalar tableau aliasing the stack."""
        out = CliffordTableau.__new__(CliffordTableau)
        out.n = self.n
        out._w = self._w
        out.xw = self.xw[b]
        out.zw = self.zw[b]
        out.r = self.r[b]
        return out

    # -- batched Clifford column passes (broadcast over the batch axis) ----
    def apply_h(self, a: int) -> None:
        w, b = bp.word_and_bit(a)
        xa = (self.xw[..., w] >> b) & _ONE
        za = (self.zw[..., w] >> b) & _ONE
        self.r ^= (xa & za).astype(np.uint8)
        diff = (xa ^ za) << b
        self.xw[..., w] ^= diff
        self.zw[..., w] ^= diff

    def apply_s(self, a: int) -> None:
        w, b = bp.word_and_bit(a)
        xa = (self.xw[..., w] >> b) & _ONE
        za = (self.zw[..., w] >> b) & _ONE
        self.r ^= (xa & za).astype(np.uint8)
        self.zw[..., w] ^= xa << b

    def apply_sdg(self, a: int) -> None:
        w, b = bp.word_and_bit(a)
        xa = (self.xw[..., w] >> b) & _ONE
        za = (self.zw[..., w] >> b) & _ONE
        self.r ^= (xa & (za ^ _ONE)).astype(np.uint8)
        self.zw[..., w] ^= xa << b

    def apply_x(self, a: int) -> None:
        w, b = bp.word_and_bit(a)
        self.r ^= ((self.zw[..., w] >> b) & _ONE).astype(np.uint8)

    def apply_z(self, a: int) -> None:
        w, b = bp.word_and_bit(a)
        self.r ^= ((self.xw[..., w] >> b) & _ONE).astype(np.uint8)

    def apply_y(self, a: int) -> None:
        w, b = bp.word_and_bit(a)
        xa = (self.xw[..., w] >> b) & _ONE
        za = (self.zw[..., w] >> b) & _ONE
        self.r ^= (xa ^ za).astype(np.uint8)

    def apply_cx(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("CNOT control and target must differ")
        wa, ba = bp.word_and_bit(a)
        wb, bb = bp.word_and_bit(b)
        xa = (self.xw[..., wa] >> ba) & _ONE
        za = (self.zw[..., wa] >> ba) & _ONE
        xb = (self.xw[..., wb] >> bb) & _ONE
        zb = (self.zw[..., wb] >> bb) & _ONE
        self.r ^= (xa & zb & (xb ^ za ^ _ONE)).astype(np.uint8)
        self.xw[..., wb] ^= xa << bb
        self.zw[..., wa] ^= zb << ba

    def apply_cz(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("CZ control and target must differ")
        wa, ba = bp.word_and_bit(a)
        wb, bb = bp.word_and_bit(b)
        xa = (self.xw[..., wa] >> ba) & _ONE
        za = (self.zw[..., wa] >> ba) & _ONE
        xb = (self.xw[..., wb] >> bb) & _ONE
        zb = (self.zw[..., wb] >> bb) & _ONE
        self.r ^= (xa & xb & (za ^ zb)).astype(np.uint8)
        self.zw[..., wa] ^= xb << ba
        self.zw[..., wb] ^= xa << bb

    def apply_swap(self, a: int, b: int) -> None:
        wa, ba = bp.word_and_bit(a)
        wb, bb = bp.word_and_bit(b)
        for mat in (self.xw, self.zw):
            ca = (mat[..., wa] >> ba) & _ONE
            cb = (mat[..., wb] >> bb) & _ONE
            diff = ca ^ cb
            mat[..., wa] ^= diff << ba
            mat[..., wb] ^= diff << bb

    def apply_stabilizer_sequence(self, seq, axes: Sequence[int]) -> None:
        """One cached ``(phase, primitives)`` decomposition, batch-wide."""
        _, prims = seq  # global phase is not representable; dropped
        dispatch = {
            "H": self.apply_h,
            "S": self.apply_s,
            "SDG": self.apply_sdg,
            "X": self.apply_x,
            "Y": self.apply_y,
            "Z": self.apply_z,
            "CX": self.apply_cx,
            "CZ": self.apply_cz,
        }
        for name, local in prims:
            mapped = [axes[i] for i in local]
            try:
                dispatch[name](*mapped)
            except KeyError:  # pragma: no cover - defensive
                raise ValueError(f"Unknown tableau primitive {name!r}") from None

    def apply_single_qubit_moment(
        self, seqs: Sequence, axes: Sequence[int]
    ) -> None:
        """A fused moment of disjoint single-qubit gates, batch-wide."""
        depth = max(len(prims) for _, prims in seqs)
        for layer in range(depth):
            for (_, prims), axis in zip(seqs, axes):
                if layer < len(prims):
                    self.apply_stabilizer_sequence(
                        (None, [(prims[layer], (0,))]), [axis]
                    )


class CliffordTableauSimulationState(SimulationState):
    """Aaronson-Gottesman tableau bound to a qubit register.

    A drop-in alternative to
    :class:`~repro.states.StabilizerChFormSimulationState` for pure
    Clifford circuits.  Gates are routed through the same
    ``_stabilizer_sequence_`` hook; global phases are discarded (the
    tableau does not track them, and no probability depends on them).
    """

    def __init__(
        self,
        qubits: Sequence[Qid],
        initial_state: int = 0,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        super().__init__(qubits, seed)
        self.tableau = CliffordTableau(len(self.qubits), initial_state)

    # -- act_on ------------------------------------------------------------
    def _act_on_(self, op: GateOperation) -> None:
        axes = self.axes_of(op.qubits)
        if op.is_measurement:
            self.measure(axes)
            return
        seq = op._stabilizer_sequence_()
        if seq is None:
            raise ValueError(
                f"Operation {op!r} is not a Clifford primitive; the tableau "
                "state supports Clifford circuits only."
            )
        self.apply_stabilizer_sequence(seq, axes)

    def apply_stabilizer_sequence(self, seq, axes: Sequence[int]) -> None:
        """Apply a ``(phase, [(primitive, local_axes)])`` decomposition."""
        _, prims = seq  # global phase is not representable; intentionally dropped
        t = self.tableau
        dispatch = {
            "H": t.apply_h,
            "S": t.apply_s,
            "SDG": t.apply_sdg,
            "X": t.apply_x,
            "Y": t.apply_y,
            "Z": t.apply_z,
            "CX": t.apply_cx,
            "CZ": t.apply_cz,
        }
        for name, local in prims:
            mapped = [axes[i] for i in local]
            try:
                dispatch[name](*mapped)
            except KeyError:  # pragma: no cover - defensive
                raise ValueError(f"Unknown tableau primitive {name!r}") from None

    def apply_single_qubit_moment(
        self, seqs: Sequence, axes: Sequence[int]
    ) -> None:
        """Apply one single-qubit Clifford gate per (disjoint) axis, batched.

        ``seqs[i]`` is ``(phase, [primitive, ...])`` — the gate on
        ``axes[i]`` as a sequence of single-qubit primitives.  The gates
        are layered (j-th primitive of every axis together) and each layer
        runs as one :meth:`CliffordTableau.apply_single_qubit_layer` column
        pass.  Global phases are not representable and are dropped, as in
        :meth:`apply_stabilizer_sequence`.
        """
        depth = max(len(prims) for _, prims in seqs)
        for layer in range(depth):
            names = []
            cols = []
            for (_, prims), axis in zip(seqs, axes):
                if layer < len(prims):
                    names.append(prims[layer])
                    cols.append(axis)
            self.tableau.apply_single_qubit_layer(names, cols)

    # -- SimulationState interface ------------------------------------------
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        raise ValueError(
            "CliffordTableauSimulationState cannot apply raw unitaries; "
            "gates must provide a stabilizer decomposition."
        )

    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        raise ValueError(
            "CliffordTableauSimulationState does not support channels; "
            "Pauli channels can be expressed as stochastic Pauli gates."
        )

    def measure(self, axes: Sequence[int]) -> List[int]:
        return [self.tableau.measure(axis, self._rng) for axis in axes]

    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        for axis, bit in zip(axes, bits):
            if self.tableau.project_measurement(axis, int(bit)) == 0.0:
                raise ValueError(
                    f"Projection of qubit axis {axis} onto {bit} has zero "
                    "probability"
                )

    # -- queries -------------------------------------------------------------
    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring (see module note)."""
        return self.tableau.probability_of(bits)

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """All ``2^k`` candidate probabilities from one shared scratch chain."""
        return self.tableau.candidate_probabilities(bits, support)

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """Candidate probabilities for many tracked bitstrings at once,
        sharing the off-support projection chain across common prefixes."""
        return self.tableau.candidate_probabilities_many(bits_list, support)

    def stabilizer_strings(self) -> List[str]:
        """The current stabilizer generators as signed Pauli strings."""
        return self.tableau.stabilizer_strings()

    def copy(self, seed=None) -> "CliffordTableauSimulationState":
        out = type(self).__new__(type(self))  # preserve subclasses
        SimulationState.__init__(out, self.qubits, seed)
        out.tableau = self.tableau.copy()
        return out

    def __repr__(self) -> str:
        return f"CliffordTableauSimulationState(num_qubits={self.num_qubits})"


def snapshot_tableau_state(state: CliffordTableauSimulationState) -> Tuple:
    """Registry ``snapshot`` hook: the state as raw ``uint64`` words.

    The payload is ``("clifford_tableau", qubits, n, x, z, r)`` with the
    matrices as plain bytes — smaller than pickling the state object
    (which drags along the RNG state, the qubit-index dict, and one
    ndarray envelope per block) and directly ``==``-comparable, which is
    how the warm pool decides whether workers need re-initialization.
    Restored states get a fresh RNG; the sampler's determinism never
    depends on the initial state's own generator (copies are re-seeded).
    """
    return ("clifford_tableau", tuple(state.qubits)) + state.tableau.to_words()


def restore_tableau_state(payload: Tuple) -> CliffordTableauSimulationState:
    """Registry ``restore`` hook, inverse of :func:`snapshot_tableau_state`."""
    tag, qubits, n, x_bytes, z_bytes, r_bytes = payload
    if tag != "clifford_tableau":  # pragma: no cover - defensive
        raise ValueError(f"Not a tableau snapshot payload: {tag!r}")
    state = CliffordTableauSimulationState.__new__(CliffordTableauSimulationState)
    SimulationState.__init__(state, qubits, None)
    state.tableau = CliffordTableau.from_words(n, x_bytes, z_bytes, r_bytes)
    return state
