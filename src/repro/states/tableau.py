"""Aaronson-Gottesman stabilizer tableau (paper reference [1]).

This is the second stabilizer engine in the package, complementing the
CH form of :mod:`repro.states.chform`.  The paper's Sec. 4.1 builds on the
CH form because it supports *amplitudes* natively in ``O(n^2)``; the plain
tableau of Aaronson & Gottesman (PRA 70, 052328 (2004)) is the more common
textbook representation but only answers measurement queries directly.
Shipping both lets the benchmark suite quantify that design choice (see
``benchmarks/bench_tableau_vs_chform.py``): computing one bitstring
probability from a tableau costs ``O(n^3)`` (``n`` sequential forced
measurements, each ``O(n^2)``), versus ``O(n^2)`` for the CH form.

Layout (Aaronson-Gottesman Sec. III):

* ``x``/``z`` are ``(2n+1, n)`` binary matrices; row ``i < n`` is the i-th
  *destabilizer*, row ``n + i`` the i-th *stabilizer*, row ``2n`` scratch.
* ``r`` is the ``(2n+1,)`` sign vector (1 means the row carries a ``-``).
* Row ``h`` represents the Pauli ``(-1)^{r[h]} prod_j X_j^{x[h,j]}
  Z_j^{z[h,j]}`` (up to the ``i^{x.z}`` bookkeeping handled by rowsum).

All row updates are vectorized over columns with NumPy; no Python loop
runs over qubits inside a gate application.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid
from .base import SimulationState


class CliffordTableau:
    """The raw Aaronson-Gottesman tableau over ``n`` qubits.

    Args:
        num_qubits: Register width ``n``.
        initial_state: Computational-basis index (big-endian) to start in.
    """

    def __init__(self, num_qubits: int, initial_state: int = 0):
        n = int(num_qubits)
        if n < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        if not 0 <= initial_state < 2**n:
            raise ValueError(
                f"initial_state {initial_state} out of range for {n} qubits"
            )
        self.n = n
        # Destabilizers X_0..X_{n-1}, stabilizers Z_0..Z_{n-1}, scratch row.
        self.x = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.z = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.r = np.zeros(2 * n + 1, dtype=np.uint8)
        idx = np.arange(n)
        self.x[idx, idx] = 1
        self.z[n + idx, idx] = 1
        # |b> is stabilized by (-1)^{b_j} Z_j.
        for j in range(n):
            if (initial_state >> (n - 1 - j)) & 1:
                self.r[n + j] = 1

    # ------------------------------------------------------------------
    # rowsum: multiply row h by row i, tracking the sign (AG04 Sec. III)
    # ------------------------------------------------------------------
    def _rowsum(self, h: int, i: int) -> None:
        x1, z1 = self.x[i], self.z[i]
        x2, z2 = self.x[h], self.z[h]
        x1i = x1.astype(np.int64)
        z1i = z1.astype(np.int64)
        x2i = x2.astype(np.int64)
        z2i = z2.astype(np.int64)
        # g(x1,z1,x2,z2) per column, in {-1, 0, 1}:
        #   (1,1): z2 - x2        (Y * P)
        #   (1,0): z2 (2 x2 - 1)  (X * P)
        #   (0,1): x2 (1 - 2 z2)  (Z * P)
        #   (0,0): 0
        g = (
            x1i * z1i * (z2i - x2i)
            + x1i * (1 - z1i) * z2i * (2 * x2i - 1)
            + (1 - x1i) * z1i * x2i * (1 - 2 * z2i)
        )
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(g.sum())
        self.r[h] = (total % 4) // 2
        self.x[h] ^= x1
        self.z[h] ^= z1

    # ------------------------------------------------------------------
    # Clifford gate updates (all O(n), vectorized down the rows)
    # ------------------------------------------------------------------
    def apply_h(self, a: int) -> None:
        """Hadamard on qubit ``a``: swaps the X and Z columns."""
        xa = self.x[:, a].copy()
        za = self.z[:, a]
        self.r ^= xa & za
        self.x[:, a] = za
        self.z[:, a] = xa

    def apply_s(self, a: int) -> None:
        """Phase gate S on qubit ``a``."""
        xa = self.x[:, a]
        za = self.z[:, a]
        self.r ^= xa & za
        self.z[:, a] = za ^ xa

    def apply_sdg(self, a: int) -> None:
        """S-dagger on qubit ``a`` (= Z then S)."""
        self.apply_z(a)
        self.apply_s(a)

    def apply_x(self, a: int) -> None:
        """Pauli X: flips the sign of rows anticommuting with X_a."""
        self.r ^= self.z[:, a]

    def apply_z(self, a: int) -> None:
        """Pauli Z: flips the sign of rows anticommuting with Z_a."""
        self.r ^= self.x[:, a]

    def apply_y(self, a: int) -> None:
        """Pauli Y: flips the sign of rows holding X or Z (not Y) at ``a``."""
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def apply_cx(self, a: int, b: int) -> None:
        """CNOT with control ``a`` and target ``b``."""
        if a == b:
            raise ValueError("CNOT control and target must differ")
        xa, xb = self.x[:, a], self.x[:, b]
        za, zb = self.z[:, a], self.z[:, b]
        self.r ^= xa & zb & (xb ^ za ^ 1)
        self.x[:, b] = xb ^ xa
        self.z[:, a] = za ^ zb

    def apply_cz(self, a: int, b: int) -> None:
        """CZ via the exact identity CZ = H_b CX(a,b) H_b."""
        self.apply_h(b)
        self.apply_cx(a, b)
        self.apply_h(b)

    def apply_swap(self, a: int, b: int) -> None:
        """SWAP by column exchange (cheaper than three CNOTs)."""
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    # ------------------------------------------------------------------
    # Measurement (AG04 Sec. III) and forced projection
    # ------------------------------------------------------------------
    def _random_pivot(self, a: int) -> Optional[int]:
        """First stabilizer row with X at column ``a``, or None."""
        n = self.n
        hits = np.flatnonzero(self.x[n : 2 * n, a])
        if hits.size == 0:
            return None
        return n + int(hits[0])

    def deterministic_outcome(self, a: int) -> Optional[int]:
        """The forced measurement outcome of qubit ``a``, or None if random.

        Does not modify the tableau's first ``2n`` rows (uses the scratch
        row only), so it can answer "is this qubit's value pinned?" queries
        non-destructively.
        """
        if self._random_pivot(a) is not None:
            return None
        n = self.n
        self.x[2 * n] = 0
        self.z[2 * n] = 0
        self.r[2 * n] = 0
        for i in np.flatnonzero(self.x[:n, a]):
            self._rowsum(2 * n, n + int(i))
        return int(self.r[2 * n])

    def _collapse(self, a: int, p: int, outcome: int) -> None:
        """Post-random-measurement update: pivot row ``p``, result ``outcome``."""
        n = self.n
        for i in np.flatnonzero(self.x[:, a]):
            i = int(i)
            if i != p and i != 2 * n:
                self._rowsum(i, p)
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, a] = 1
        self.r[p] = outcome

    def measure(self, a: int, rng: np.random.Generator) -> int:
        """Measure qubit ``a`` in the computational basis, collapsing."""
        p = self._random_pivot(a)
        if p is None:
            outcome = self.deterministic_outcome(a)
            assert outcome is not None
            return outcome
        outcome = int(rng.integers(2))
        self._collapse(a, p, outcome)
        return outcome

    def project_measurement(self, a: int, bit: int) -> float:
        """Force qubit ``a`` to ``bit``; return the outcome's probability.

        Returns 0.5 when the outcome was random, 1.0 when it was already
        pinned to ``bit``, and 0.0 (without modifying the state) when the
        outcome is pinned to the opposite value.
        """
        bit = int(bit)
        p = self._random_pivot(a)
        if p is None:
            forced = self.deterministic_outcome(a)
            return 1.0 if forced == bit else 0.0
        self._collapse(a, p, bit)
        return 0.5

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of the full bitstring ``bits``.

        Implemented as a chain of forced measurements on a scratch copy:
        ``P(b) = prod_j P(b_j | b_0..b_{j-1})`` where each conditional is
        0, 1/2, or 1.  Cost ``O(n^3)`` — the tableau has no native
        amplitude query, which is exactly why the paper's Sec. 4.1 uses
        the CH form instead.
        """
        if len(bits) != self.n:
            raise ValueError(f"Expected {self.n} bits, got {len(bits)}")
        scratch = self.copy()
        prob = 1.0
        for a, bit in enumerate(bits):
            factor = scratch.project_measurement(a, int(bit))
            if factor == 0.0:
                return 0.0
            prob *= factor
        return prob

    def stabilizer_strings(self) -> List[str]:
        """Human-readable stabilizer generators (e.g. ``['+XX', '-ZZ']``)."""
        out = []
        for i in range(self.n, 2 * self.n):
            sign = "-" if self.r[i] else "+"
            chars = []
            for j in range(self.n):
                xij, zij = int(self.x[i, j]), int(self.z[i, j])
                chars.append({(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}[(xij, zij)])
            out.append(sign + "".join(chars))
        return out

    def copy(self) -> "CliffordTableau":
        out = CliffordTableau.__new__(CliffordTableau)
        out.n = self.n
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (
            self.n == other.n
            and bool(np.array_equal(self.x[: 2 * self.n], other.x[: 2 * other.n]))
            and bool(np.array_equal(self.z[: 2 * self.n], other.z[: 2 * other.n]))
            and bool(np.array_equal(self.r[: 2 * self.n], other.r[: 2 * other.n]))
        )

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.n})"


class CliffordTableauSimulationState(SimulationState):
    """Aaronson-Gottesman tableau bound to a qubit register.

    A drop-in alternative to
    :class:`~repro.states.StabilizerChFormSimulationState` for pure
    Clifford circuits.  Gates are routed through the same
    ``_stabilizer_sequence_`` hook; global phases are discarded (the
    tableau does not track them, and no probability depends on them).
    """

    def __init__(
        self,
        qubits: Sequence[Qid],
        initial_state: int = 0,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        super().__init__(qubits, seed)
        self.tableau = CliffordTableau(len(self.qubits), initial_state)

    # -- act_on ------------------------------------------------------------
    def _act_on_(self, op: GateOperation) -> None:
        axes = self.axes_of(op.qubits)
        if op.is_measurement:
            self.measure(axes)
            return
        seq = op._stabilizer_sequence_()
        if seq is None:
            raise ValueError(
                f"Operation {op!r} is not a Clifford primitive; the tableau "
                "state supports Clifford circuits only."
            )
        self.apply_stabilizer_sequence(seq, axes)

    def apply_stabilizer_sequence(self, seq, axes: Sequence[int]) -> None:
        """Apply a ``(phase, [(primitive, local_axes)])`` decomposition."""
        _, prims = seq  # global phase is not representable; intentionally dropped
        t = self.tableau
        dispatch = {
            "H": t.apply_h,
            "S": t.apply_s,
            "SDG": t.apply_sdg,
            "X": t.apply_x,
            "Y": t.apply_y,
            "Z": t.apply_z,
            "CX": t.apply_cx,
            "CZ": t.apply_cz,
        }
        for name, local in prims:
            mapped = [axes[i] for i in local]
            try:
                dispatch[name](*mapped)
            except KeyError:  # pragma: no cover - defensive
                raise ValueError(f"Unknown tableau primitive {name!r}") from None

    # -- SimulationState interface ------------------------------------------
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        raise ValueError(
            "CliffordTableauSimulationState cannot apply raw unitaries; "
            "gates must provide a stabilizer decomposition."
        )

    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        raise ValueError(
            "CliffordTableauSimulationState does not support channels; "
            "Pauli channels can be expressed as stochastic Pauli gates."
        )

    def measure(self, axes: Sequence[int]) -> List[int]:
        return [self.tableau.measure(axis, self._rng) for axis in axes]

    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        for axis, bit in zip(axes, bits):
            if self.tableau.project_measurement(axis, int(bit)) == 0.0:
                raise ValueError(
                    f"Projection of qubit axis {axis} onto {bit} has zero "
                    "probability"
                )

    # -- queries -------------------------------------------------------------
    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring (O(n^3); see module note)."""
        return self.tableau.probability_of(bits)

    def stabilizer_strings(self) -> List[str]:
        """The current stabilizer generators as signed Pauli strings."""
        return self.tableau.stabilizer_strings()

    def copy(self, seed=None) -> "CliffordTableauSimulationState":
        out = CliffordTableauSimulationState.__new__(
            CliffordTableauSimulationState
        )
        SimulationState.__init__(out, self.qubits, seed)
        out.tableau = self.tableau.copy()
        return out

    def __repr__(self) -> str:
        return f"CliffordTableauSimulationState(num_qubits={self.num_qubits})"
