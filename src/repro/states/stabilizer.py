"""Simulation-state wrapper around the CH-form stabilizer engine.

``StabilizerChFormSimulationState`` adapts :class:`StabilizerChForm` to the
``act_on`` protocol: operations are applied through their
``_stabilizer_sequence_`` decomposition into CH primitives.  Non-Clifford
operations raise ``ValueError`` — exactly like Cirq's stabilizer simulator —
unless routed through :func:`repro.sampler.act_on_near_clifford`, which
expands ``Rz(theta)`` gates stochastically (paper Sec. 4.2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid
from .base import SimulationState
from .chform import StabilizerChForm


class StabilizerChFormSimulationState(SimulationState):
    """CH-form stabilizer simulation state bound to a qubit register."""

    def __init__(
        self,
        qubits: Sequence[Qid],
        initial_state: int = 0,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        super().__init__(qubits, seed)
        self.ch_form = StabilizerChForm(len(self.qubits), initial_state)

    # -- act_on ------------------------------------------------------------
    def _act_on_(self, op: GateOperation) -> None:
        axes = self.axes_of(op.qubits)
        if op.is_measurement:
            self.measure(axes)
            return
        seq = op._stabilizer_sequence_()
        if seq is None:
            raise ValueError(
                f"Operation {op!r} is not a Clifford primitive; use "
                "act_on_near_clifford for Clifford+Rz circuits."
            )
        self.apply_stabilizer_sequence(seq, axes)

    def apply_stabilizer_sequence(self, seq, axes: Sequence[int]) -> None:
        """Apply a ``(phase, [(primitive, local_axes)])`` decomposition."""
        phase, prims = seq
        ch = self.ch_form
        for name, local in prims:
            mapped = [axes[i] for i in local]
            if name == "H":
                ch.apply_h(mapped[0])
            elif name == "S":
                ch.apply_s(mapped[0])
            elif name == "SDG":
                ch.apply_sdg(mapped[0])
            elif name == "X":
                ch.apply_x(mapped[0])
            elif name == "Y":
                ch.apply_y(mapped[0])
            elif name == "Z":
                ch.apply_z(mapped[0])
            elif name == "CX":
                ch.apply_cx(mapped[0], mapped[1])
            elif name == "CZ":
                ch.apply_cz(mapped[0], mapped[1])
            else:  # pragma: no cover - defensive
                raise ValueError(f"Unknown CH primitive {name!r}")
        ch.omega *= phase

    def apply_single_qubit_moment(
        self, seqs: Sequence, axes: Sequence[int]
    ) -> None:
        """Apply one single-qubit Clifford gate per (disjoint) axis.

        ``seqs[i]`` is ``(phase, [primitive, ...])`` for the gate on
        ``axes[i]``.  Primitives are layered; within a layer the row-local
        gates (S, S-dagger) and the phase-only Z batch into single
        vectorized passes, while X/Y/H — whose CH updates read state the
        other gates write — stay sequential.  All global phases multiply
        into ``omega`` exactly as the per-gate path does.
        """
        ch = self.ch_form
        for phase, _ in seqs:
            ch.omega *= phase
        depth = max(len(prims) for _, prims in seqs)
        for layer in range(depth):
            batched = {"S": [], "SDG": [], "Z": []}
            sequential = []
            for (_, prims), axis in zip(seqs, axes):
                if layer >= len(prims):
                    continue
                name = prims[layer]
                if name in batched:
                    batched[name].append(axis)
                else:
                    sequential.append((name, axis))
            if batched["S"]:
                ch.apply_s_many(batched["S"])
            if batched["SDG"]:
                ch.apply_sdg_many(batched["SDG"])
            if batched["Z"]:
                ch.apply_z_many(batched["Z"])
            for name, axis in sequential:
                if name == "H":
                    ch.apply_h(axis)
                elif name == "X":
                    ch.apply_x(axis)
                elif name == "Y":
                    ch.apply_y(axis)
                else:  # pragma: no cover - defensive
                    raise ValueError(f"Unknown CH primitive {name!r}")

    # -- SimulationState interface -------------------------------------------
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        raise ValueError(
            "StabilizerChFormSimulationState cannot apply raw unitaries; "
            "gates must provide a stabilizer decomposition."
        )

    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        raise ValueError(
            "StabilizerChFormSimulationState does not support channels; "
            "Pauli channels can be expressed as stochastic Pauli gates."
        )

    def measure(self, axes: Sequence[int]) -> List[int]:
        return [self.ch_form.measure(axis, self._rng) for axis in axes]

    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        """Collapse ``axes`` onto known outcome ``bits``."""
        for axis, bit in zip(axes, bits):
            self.ch_form.project_measurement(axis, int(bit))

    # -- queries -----------------------------------------------------------------
    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring (O(n^2), depth-free)."""
        return self.ch_form.probability_of(bits)

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """All ``2^k`` candidate probabilities in one batched membership test."""
        return self.ch_form.candidate_probabilities(bits, support)

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """Candidate probabilities for many tracked bitstrings at once."""
        return self.ch_form.candidate_probabilities_many(bits_list, support)

    def state_vector(self) -> np.ndarray:
        """Dense wavefunction (exponential; testing only)."""
        return self.ch_form.state_vector()

    def copy(self, seed=None) -> "StabilizerChFormSimulationState":
        out = type(self).__new__(type(self))  # preserve subclasses
        SimulationState.__init__(out, self.qubits, seed)
        out.ch_form = self.ch_form.copy()
        return out

    def __repr__(self) -> str:
        return (
            f"StabilizerChFormSimulationState(num_qubits={self.num_qubits})"
        )


def snapshot_chform_state(state: StabilizerChFormSimulationState) -> Tuple:
    """Registry ``snapshot`` hook: the CH form as raw ``uint64`` words.

    ``("stabilizer_ch_form", qubits, n, F, G, M, gamma, v, s, omega)``
    with the binary matrices as plain bytes — smaller than pickling the
    state object and directly ``==``-comparable, so the warm pool can key
    worker initialization on the payload content.  Restored states get a
    fresh RNG (the sampler re-seeds every copy it takes).
    """
    return ("stabilizer_ch_form", tuple(state.qubits)) + state.ch_form.to_words()


def restore_chform_state(payload: Tuple) -> StabilizerChFormSimulationState:
    """Registry ``restore`` hook, inverse of :func:`snapshot_chform_state`."""
    tag, qubits = payload[0], payload[1]
    if tag != "stabilizer_ch_form":  # pragma: no cover - defensive
        raise ValueError(f"Not a CH-form snapshot payload: {tag!r}")
    state = StabilizerChFormSimulationState.__new__(
        StabilizerChFormSimulationState
    )
    SimulationState.__init__(state, qubits, None)
    state.ch_form = StabilizerChForm.from_words(*payload[2:])
    return state
