"""Dense state-vector simulation state.

The workhorse general-purpose representation (and the exact reference all
other representations are tested against).  The state is stored as a
``(2,)*n`` complex tensor; gates are applied by ``tensordot`` over the
support axes followed by ``moveaxis`` — fully vectorized, no Python loop
over amplitudes.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..circuits.qubits import Qid
from .base import SimulationState, candidate_index_matrix


class StateVectorSimulationState(SimulationState):
    """Pure-state simulation state over a dense ``(2,)*n`` tensor.

    Args:
        qubits: Ordered qubit register (fixes bitstring positions).
        initial_state: Computational-basis index of the initial state
            (big-endian in the register order), or an explicit normalized
            vector of length ``2**n``.
        seed: RNG seed/generator for stochastic branches.
    """

    def __init__(
        self,
        qubits: Sequence[Qid],
        initial_state: Union[int, np.ndarray] = 0,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        super().__init__(qubits, seed)
        n = self.num_qubits
        if isinstance(initial_state, (int, np.integer)):
            tensor = np.zeros(2**n, dtype=np.complex128)
            tensor[int(initial_state)] = 1.0
        else:
            tensor = np.asarray(initial_state, dtype=np.complex128).reshape(-1)
            if tensor.shape[0] != 2**n:
                raise ValueError(
                    f"State vector has {tensor.shape[0]} amplitudes, "
                    f"expected {2 ** n}"
                )
            norm = np.linalg.norm(tensor)
            if abs(norm - 1.0) > 1e-6:
                raise ValueError(f"Initial state not normalized (norm={norm})")
            tensor = tensor.copy()
        self.tensor = tensor.reshape((2,) * n)

    # -- mutations ---------------------------------------------------------
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        k = len(axes)
        u = np.asarray(u, dtype=np.complex128).reshape((2,) * (2 * k))
        self.tensor = np.tensordot(u, self.tensor, axes=(range(k, 2 * k), axes))
        self.tensor = np.moveaxis(self.tensor, range(k), axes)

    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        """Quantum-trajectory Kraus application: pick branch ~ its weight."""
        k = len(axes)
        branch_states = []
        weights = []
        for op in kraus:
            op = np.asarray(op, dtype=np.complex128).reshape((2,) * (2 * k))
            candidate = np.tensordot(op, self.tensor, axes=(range(k, 2 * k), axes))
            candidate = np.moveaxis(candidate, range(k), axes)
            weight = float(np.vdot(candidate, candidate).real)
            branch_states.append(candidate)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise ValueError("Channel annihilated the state")
        probs = np.asarray(weights) / total
        choice = int(self._rng.choice(len(kraus), p=probs))
        self.tensor = branch_states[choice] / np.sqrt(weights[choice])

    def measure(self, axes: Sequence[int]) -> List[int]:
        """Projective measurement with collapse; returns sampled bits."""
        axes = list(axes)
        other = [i for i in range(self.num_qubits) if i not in axes]
        probs = np.abs(self.tensor) ** 2
        marginal = probs.sum(axis=tuple(other)) if other else probs
        flat = marginal.reshape(-1)
        flat = flat / flat.sum()
        outcome = int(self._rng.choice(flat.shape[0], p=flat))
        bits = [(outcome >> (len(axes) - 1 - i)) & 1 for i in range(len(axes))]
        self.project(axes, bits)
        return bits

    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        """Collapse ``axes`` onto ``bits`` and renormalize."""
        index: List[Union[slice, int]] = [slice(None)] * self.num_qubits
        self.tensor = self.tensor.copy()
        for axis, bit in zip(axes, bits):
            index[axis] = 1 - int(bit)
            self.tensor[tuple(index)] = 0.0
            index[axis] = slice(None)
        norm = np.linalg.norm(self.tensor)
        if norm == 0:
            raise ValueError("Projected onto a zero-probability outcome")
        self.tensor /= norm

    def renormalize(self) -> None:
        """Rescale to unit norm (after non-unitary linear maps)."""
        norm = np.linalg.norm(self.tensor)
        if norm == 0:
            raise ValueError("Cannot renormalize the zero state")
        self.tensor /= norm

    # -- queries -------------------------------------------------------------
    def state_vector(self) -> np.ndarray:
        """The dense state vector of length ``2**n`` (a copy)."""
        return self.tensor.reshape(-1).copy()

    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability |<bits|psi>|^2 of a full bitstring."""
        return float(np.abs(self.tensor[tuple(int(b) for b in bits)]) ** 2)

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """Probabilities of all ``2^k`` candidates varying over ``support``.

        This is the vectorized inner loop of BGLS for state vectors: fixing
        the non-support bits of ``bits`` and slicing the tensor yields every
        candidate amplitude in one view, no per-candidate recomputation.
        Returned in candidate index order (support bits big-endian).
        """
        index: List[Union[slice, int]] = [int(b) for b in bits]
        for axis in support:
            index[axis] = slice(None)
        block = self.tensor[tuple(index)]
        # Block axes follow ascending state-axis order; permute so axis i
        # corresponds to support[i] (candidate bits are big-endian in the
        # order the support was given).
        if block.ndim > 1:
            ranks = np.argsort(np.argsort(support))
            block = np.transpose(block, axes=ranks)
        probs = np.abs(block) ** 2
        return probs.reshape(-1)

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """A ``(B, 2^k)`` candidate-probability matrix for ``B`` bitstrings.

        The whole parallel-mode bitstring front is answered with ONE gather
        over the flat amplitude tensor: each row's base index (support bits
        zeroed) plus the ``2^k`` candidate offsets addresses every needed
        amplitude directly, so the cost is ``O(B * 2^k)`` loads with no
        per-bitstring Python dispatch or slicing.
        """
        idx = candidate_index_matrix(bits_list, support, self.num_qubits)
        return np.abs(self.tensor.reshape(-1)[idx]) ** 2

    def copy(self, seed=None) -> "StateVectorSimulationState":
        # type(self), not the literal class: subclasses (registered user
        # backends, method overrides) must survive the copy chain the
        # sampler's run loops depend on.
        out = type(self).__new__(type(self))
        SimulationState.__init__(out, self.qubits, seed)
        out.tensor = self.tensor.copy()
        return out

    def __repr__(self) -> str:
        return (
            f"StateVectorSimulationState(num_qubits={self.num_qubits})"
        )
