"""Retained unpacked reference implementations of the stabilizer engines.

These are the pre-bit-packing versions of :class:`CliffordTableau` and
:class:`StabilizerChForm`, kept verbatim (one bit per ``uint8``/``bool``
element, scalar Python loops in ``_collapse``/``deterministic_outcome``)
as an executable specification.  The property tests in
``tests/test_bitpack_kernels.py`` drive the packed production engines and
these references gate-for-gate through random Clifford programs and assert
bit-exact agreement; the micro-benchmark
``benchmarks/bench_bitpack_kernels.py`` quantifies the word-parallel
speedup against them.

Do not optimize this module — its value is being obviously correct.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

_SQRT2 = math.sqrt(2.0)
_I_POW = np.array([1, 1j, -1, -1j], dtype=np.complex128)


class UnpackedCliffordTableau:
    """Aaronson-Gottesman tableau with one bit per ``uint8`` (reference)."""

    def __init__(self, num_qubits: int, initial_state: int = 0):
        n = int(num_qubits)
        if n < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        if not 0 <= initial_state < 2**n:
            raise ValueError(
                f"initial_state {initial_state} out of range for {n} qubits"
            )
        self.n = n
        self.x = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.z = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.r = np.zeros(2 * n + 1, dtype=np.uint8)
        idx = np.arange(n)
        self.x[idx, idx] = 1
        self.z[n + idx, idx] = 1
        for j in range(n):
            if (initial_state >> (n - 1 - j)) & 1:
                self.r[n + j] = 1

    def _rowsum(self, h: int, i: int) -> None:
        x1, z1 = self.x[i], self.z[i]
        x2, z2 = self.x[h], self.z[h]
        x1i = x1.astype(np.int64)
        z1i = z1.astype(np.int64)
        x2i = x2.astype(np.int64)
        z2i = z2.astype(np.int64)
        g = (
            x1i * z1i * (z2i - x2i)
            + x1i * (1 - z1i) * z2i * (2 * x2i - 1)
            + (1 - x1i) * z1i * x2i * (1 - 2 * z2i)
        )
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(g.sum())
        self.r[h] = (total % 4) // 2
        self.x[h] ^= x1
        self.z[h] ^= z1

    def apply_h(self, a: int) -> None:
        xa = self.x[:, a].copy()
        za = self.z[:, a]
        self.r ^= xa & za
        self.x[:, a] = za
        self.z[:, a] = xa

    def apply_s(self, a: int) -> None:
        xa = self.x[:, a]
        za = self.z[:, a]
        self.r ^= xa & za
        self.z[:, a] = za ^ xa

    def apply_sdg(self, a: int) -> None:
        self.apply_z(a)
        self.apply_s(a)

    def apply_x(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def apply_z(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def apply_y(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def apply_cx(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("CNOT control and target must differ")
        xa, xb = self.x[:, a], self.x[:, b]
        za, zb = self.z[:, a], self.z[:, b]
        self.r ^= xa & zb & (xb ^ za ^ 1)
        self.x[:, b] = xb ^ xa
        self.z[:, a] = za ^ zb

    def apply_cz(self, a: int, b: int) -> None:
        self.apply_h(b)
        self.apply_cx(a, b)
        self.apply_h(b)

    def apply_swap(self, a: int, b: int) -> None:
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    def _random_pivot(self, a: int) -> Optional[int]:
        n = self.n
        hits = np.flatnonzero(self.x[n : 2 * n, a])
        if hits.size == 0:
            return None
        return n + int(hits[0])

    def deterministic_outcome(self, a: int) -> Optional[int]:
        if self._random_pivot(a) is not None:
            return None
        n = self.n
        self.x[2 * n] = 0
        self.z[2 * n] = 0
        self.r[2 * n] = 0
        for i in np.flatnonzero(self.x[:n, a]):
            self._rowsum(2 * n, n + int(i))
        return int(self.r[2 * n])

    def _collapse(self, a: int, p: int, outcome: int) -> None:
        n = self.n
        for i in np.flatnonzero(self.x[:, a]):
            i = int(i)
            if i != p and i != 2 * n:
                self._rowsum(i, p)
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, a] = 1
        self.r[p] = outcome

    def measure(self, a: int, rng: np.random.Generator) -> int:
        p = self._random_pivot(a)
        if p is None:
            outcome = self.deterministic_outcome(a)
            assert outcome is not None
            return outcome
        outcome = int(rng.integers(2))
        self._collapse(a, p, outcome)
        return outcome

    def project_measurement(self, a: int, bit: int) -> float:
        bit = int(bit)
        p = self._random_pivot(a)
        if p is None:
            forced = self.deterministic_outcome(a)
            return 1.0 if forced == bit else 0.0
        self._collapse(a, p, bit)
        return 0.5

    def probability_of(self, bits: Sequence[int]) -> float:
        if len(bits) != self.n:
            raise ValueError(f"Expected {self.n} bits, got {len(bits)}")
        scratch = self.copy()
        prob = 1.0
        for a, bit in enumerate(bits):
            factor = scratch.project_measurement(a, int(bit))
            if factor == 0.0:
                return 0.0
            prob *= factor
        return prob

    def stabilizer_strings(self) -> List[str]:
        out = []
        for i in range(self.n, 2 * self.n):
            sign = "-" if self.r[i] else "+"
            chars = []
            for j in range(self.n):
                xij, zij = int(self.x[i, j]), int(self.z[i, j])
                chars.append(
                    {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}[(xij, zij)]
                )
            out.append(sign + "".join(chars))
        return out

    def copy(self) -> "UnpackedCliffordTableau":
        out = UnpackedCliffordTableau.__new__(UnpackedCliffordTableau)
        out.n = self.n
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    def __repr__(self) -> str:
        return f"UnpackedCliffordTableau(num_qubits={self.n})"


class UnpackedStabilizerChForm:
    """CH-form stabilizer state with ``bool`` matrices (reference)."""

    def __init__(self, num_qubits: int, initial_state: int = 0):
        n = int(num_qubits)
        if n <= 0:
            raise ValueError("Need at least one qubit")
        self.n = n
        self.F = np.eye(n, dtype=bool)
        self.G = np.eye(n, dtype=bool)
        self.M = np.zeros((n, n), dtype=bool)
        self.gamma = np.zeros(n, dtype=np.int64)
        self.v = np.zeros(n, dtype=bool)
        self.s = np.zeros(n, dtype=bool)
        self.omega: complex = 1.0 + 0.0j
        if initial_state:
            for q in range(n):
                if (initial_state >> (n - 1 - q)) & 1:
                    self.apply_x(q)

    def _x_row_action(self, q: int) -> Tuple[complex, np.ndarray]:
        f_row, m_row = self.F[q], self.M[q]
        v, s = self.v, self.s
        t = s ^ (f_row & ~v) ^ (m_row & v)
        beta = int(np.count_nonzero(m_row & ~v & s))
        beta += int(np.count_nonzero(f_row & v & (s ^ m_row)))
        phase = _I_POW[(self.gamma[q] + 2 * beta) % 4]
        return phase, t

    def _z_row_action(self, q: int) -> Tuple[complex, np.ndarray]:
        g_row = self.G[q]
        u = self.s ^ (g_row & self.v)
        alpha = int(np.count_nonzero(g_row & ~self.v & self.s))
        return _I_POW[(2 * alpha) % 4], u

    def apply_x(self, q: int) -> None:
        phase, t = self._x_row_action(q)
        self.omega *= phase
        self.s = t

    def apply_z(self, q: int) -> None:
        phase, u = self._z_row_action(q)
        self.omega *= phase
        self.s = u

    def apply_y(self, q: int) -> None:
        self.apply_z(q)
        self.apply_x(q)
        self.omega *= 1j

    def apply_s(self, q: int) -> None:
        self.M[q] ^= self.G[q]
        self.gamma[q] = (self.gamma[q] - 1) % 4

    def apply_sdg(self, q: int) -> None:
        self.M[q] ^= self.G[q]
        self.gamma[q] = (self.gamma[q] + 1) % 4

    def apply_cz(self, q: int, r: int) -> None:
        if q == r:
            raise ValueError("CZ needs distinct qubits")
        self.M[q] ^= self.G[r]
        self.M[r] ^= self.G[q]

    def apply_cx(self, c: int, t: int) -> None:
        if c == t:
            raise ValueError("CNOT needs distinct qubits")
        self.gamma[c] = (
            self.gamma[c]
            + self.gamma[t]
            + 2 * int(np.count_nonzero(self.M[c] & self.F[t]) % 2)
        ) % 4
        self.G[t] ^= self.G[c]
        self.F[c] ^= self.F[t]
        self.M[c] ^= self.M[t]

    def apply_h(self, q: int) -> None:
        phase_x, t = self._x_row_action(q)
        phase_z, u = self._z_row_action(q)
        px = int(np.argmax(np.isclose(_I_POW, phase_x)))
        pz = int(np.argmax(np.isclose(_I_POW, phase_z)))
        delta = (pz - px) % 4
        self.omega *= phase_x / _SQRT2
        self.update_sum(t, u, delta)

    def _right_cx(self, c: int, t: int) -> None:
        self.G[:, c] ^= self.G[:, t]
        self.F[:, t] ^= self.F[:, c]
        self.M[:, c] ^= self.M[:, t]

    def _right_cz(self, c: int, t: int) -> None:
        self.gamma[:] = (self.gamma + 2 * (self.F[:, c] & self.F[:, t])) % 4
        self.M[:, c] ^= self.F[:, t]
        self.M[:, t] ^= self.F[:, c]

    def _right_s(self, q: int) -> None:
        self.M[:, q] ^= self.F[:, q]
        self.gamma[:] = (self.gamma - self.F[:, q].astype(np.int64)) % 4

    def _right_sdg(self, q: int) -> None:
        self.M[:, q] ^= self.F[:, q]
        self.gamma[:] = (self.gamma + self.F[:, q].astype(np.int64)) % 4

    def update_sum(self, t: np.ndarray, u: np.ndarray, delta: int) -> None:
        delta = int(delta) % 4
        t = t.astype(bool).copy()
        u = u.astype(bool).copy()
        if np.array_equal(t, u):
            self.s = t
            self.omega *= 1 + _I_POW[delta]
            return

        diff = t ^ u
        set0 = np.flatnonzero(diff & ~self.v)
        set1 = np.flatnonzero(diff & self.v)

        if set0.size > 0:
            q = int(set0[0])
            for i in set0[1:]:
                self._right_cx(q, int(i))
            for i in set1:
                self._right_cz(q, int(i))
            new_s = t.copy()
            new_s[diff] = t[diff] ^ t[q]
            if t[q]:
                self.omega *= _I_POW[delta]
                delta = (-delta) % 4
            a, b = {0: (0, 0), 1: (1, 0), 2: (0, 1), 3: (1, 1)}[delta]
            if a:
                self._right_s(q)
            new_s[q] = bool(b)
            self.v[q] = True
            self.s = new_s
            self.omega *= _SQRT2
            return

        q = int(set1[0])
        for i in set1[1:]:
            self._right_cx(int(i), q)
        new_s = t.copy()
        new_s[diff] = t[diff] ^ t[q]
        if t[q]:
            self.omega *= _I_POW[delta]
            delta = (-delta) % 4
        if delta == 0:
            new_s[q] = False
            self.v[q] = False
            self.omega *= _SQRT2
        elif delta == 2:
            new_s[q] = True
            self.v[q] = False
            self.omega *= _SQRT2
        elif delta == 1:
            new_s[q] = False
            self._right_sdg(q)
            self.omega *= 1 + 1j
        else:
            new_s[q] = False
            self._right_s(q)
            self.omega *= 1 - 1j
        self.s = new_s

    def measurement_outcome_info(self, q: int) -> Tuple[bool, int]:
        phase_z, u = self._z_row_action(q)
        if np.array_equal(u, self.s):
            bit = 0 if phase_z.real > 0 else 1
            return False, bit
        return True, -1

    def project_measurement(self, q: int, outcome: int) -> None:
        phase_z, u = self._z_row_action(q)
        if np.array_equal(u, self.s):
            bit = 0 if phase_z.real > 0 else 1
            if bit != int(outcome):
                raise ValueError(
                    f"Measurement outcome {outcome} has probability 0"
                )
            return
        alpha_pow = 0 if phase_z.real > 0 else 2
        delta = (2 * int(outcome) + alpha_pow) % 4
        self.omega /= _SQRT2
        self.update_sum(self.s.copy(), u, delta)

    def measure(self, q: int, rng: np.random.Generator) -> int:
        is_random, bit = self.measurement_outcome_info(q)
        if not is_random:
            return bit
        outcome = int(rng.integers(2))
        self.project_measurement(q, outcome)
        return outcome

    def inner_product_with_basis_state(self, bits: Sequence[int]) -> complex:
        b = np.asarray(bits, dtype=bool)
        if b.shape != (self.n,):
            raise ValueError(f"Expected {self.n} bits, got {b.shape}")
        phase_pow = 0
        x = np.zeros(self.n, dtype=bool)
        z = np.zeros(self.n, dtype=bool)
        for p in np.flatnonzero(b):
            phase_pow += int(self.gamma[p])
            phase_pow += 2 * int(np.count_nonzero(z & self.F[p]) % 2)
            x ^= self.F[p]
            z ^= self.M[p]
        phase_pow += 2 * int(np.count_nonzero(x & z) % 2)
        if np.any((x != self.s) & ~self.v):
            return 0.0 + 0.0j
        phase_pow += 2 * int(np.count_nonzero(x & self.s & self.v) % 2)
        magnitude = 2.0 ** (-0.5 * int(np.count_nonzero(self.v)))
        return self.omega * _I_POW[phase_pow % 4] * magnitude

    def probability_of(self, bits: Sequence[int]) -> float:
        return float(abs(self.inner_product_with_basis_state(bits)) ** 2)

    def state_vector(self) -> np.ndarray:
        dim = 2**self.n
        out = np.empty(dim, dtype=np.complex128)
        for idx in range(dim):
            bits = [(idx >> (self.n - 1 - j)) & 1 for j in range(self.n)]
            out[idx] = self.inner_product_with_basis_state(bits)
        return out

    def copy(self) -> "UnpackedStabilizerChForm":
        out = UnpackedStabilizerChForm.__new__(UnpackedStabilizerChForm)
        out.n = self.n
        out.F = self.F.copy()
        out.G = self.G.copy()
        out.M = self.M.copy()
        out.gamma = self.gamma.copy()
        out.v = self.v.copy()
        out.s = self.s.copy()
        out.omega = self.omega
        return out

    def __repr__(self) -> str:
        return f"UnpackedStabilizerChForm(n={self.n}, |v|={int(self.v.sum())})"
