"""Dense density-matrix simulation state.

Stored as a ``(2,)*2n`` tensor (row axes 0..n-1, column axes n..2n-1).
Channels apply *exactly* (summed over Kraus branches) rather than by
trajectories, so a single run reproduces the mixed state; the BGLS sampler
then samples bitstrings from the diagonal via candidate probabilities.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..circuits.qubits import Qid
from .base import SimulationState, candidate_index_matrix


class DensityMatrixSimulationState(SimulationState):
    """Mixed-state simulation state.

    Class attribute ``_exact_channels_`` tells the BGLS sampler that
    channels apply deterministically here (no trajectory branching needed).

    Args:
        qubits: Ordered qubit register.
        initial_state: Basis index, a pure state vector, or a full density
            matrix of shape ``(2**n, 2**n)``.
        seed: RNG seed/generator (used only by measurement collapse).
    """

    _exact_channels_ = True

    def __init__(
        self,
        qubits: Sequence[Qid],
        initial_state: Union[int, np.ndarray] = 0,
        seed: Union[int, np.random.Generator, None] = None,
    ):
        super().__init__(qubits, seed)
        n = self.num_qubits
        dim = 2**n
        if isinstance(initial_state, (int, np.integer)):
            rho = np.zeros((dim, dim), dtype=np.complex128)
            rho[int(initial_state), int(initial_state)] = 1.0
        else:
            arr = np.asarray(initial_state, dtype=np.complex128)
            if arr.ndim == 1 or (arr.ndim == 2 and 1 in arr.shape):
                vec = arr.reshape(-1)
                if vec.shape[0] != dim:
                    raise ValueError(f"Expected {dim} amplitudes, got {vec.shape[0]}")
                rho = np.outer(vec, vec.conj())
            elif arr.shape == (dim, dim):
                rho = arr.copy()
                if abs(np.trace(rho) - 1.0) > 1e-6:
                    raise ValueError("Density matrix must have unit trace")
            else:
                raise ValueError(f"Bad initial_state shape {arr.shape}")
        self.tensor = rho.reshape((2,) * (2 * n))

    # -- internals ---------------------------------------------------------
    def _left_right_apply(self, op: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """Return ``op rho op^dag`` on the given qubit axes."""
        n = self.num_qubits
        k = len(axes)
        op = np.asarray(op, dtype=np.complex128).reshape((2,) * (2 * k))
        row_axes = list(axes)
        col_axes = [a + n for a in axes]
        out = np.tensordot(op, self.tensor, axes=(range(k, 2 * k), row_axes))
        out = np.moveaxis(out, range(k), row_axes)
        out = np.tensordot(op.conj(), out, axes=(range(k, 2 * k), col_axes))
        out = np.moveaxis(out, range(k), col_axes)
        return out

    # -- mutations ------------------------------------------------------------
    def apply_unitary(self, u: np.ndarray, axes: Sequence[int]) -> None:
        self.tensor = self._left_right_apply(u, axes)

    def apply_channel(self, kraus: List[np.ndarray], axes: Sequence[int]) -> None:
        """Exact channel application: rho <- sum_k K rho K^dag."""
        total = None
        for op in kraus:
            term = self._left_right_apply(op, axes)
            total = term if total is None else total + term
        self.tensor = total

    def measure(self, axes: Sequence[int]) -> List[int]:
        axes = list(axes)
        n = self.num_qubits
        diag = self.diagonal_probabilities().reshape((2,) * n)
        other = tuple(i for i in range(n) if i not in axes)
        marginal = diag.sum(axis=other) if other else diag
        flat = marginal.reshape(-1)
        flat = flat / flat.sum()
        outcome = int(self._rng.choice(flat.shape[0], p=flat))
        bits = [(outcome >> (len(axes) - 1 - i)) & 1 for i in range(len(axes))]
        self.project(axes, bits)
        return bits

    def project(self, axes: Sequence[int], bits: Sequence[int]) -> None:
        """Collapse ``axes`` onto ``bits`` (rows and columns) and renormalize."""
        n = self.num_qubits
        index: List[Union[slice, int]] = [slice(None)] * (2 * n)
        self.tensor = self.tensor.copy()
        for axis, bit in zip(axes, bits):
            for offset in (0, n):
                index[axis + offset] = 1 - int(bit)
                self.tensor[tuple(index)] = 0.0
                index[axis + offset] = slice(None)
        trace = float(
            np.real(np.trace(self.tensor.reshape(2**n, 2**n)))
        )
        if trace <= 0:
            raise ValueError("Projected onto a zero-probability outcome")
        self.tensor /= trace

    # -- queries -----------------------------------------------------------------
    def density_matrix(self) -> np.ndarray:
        """The dense ``(2**n, 2**n)`` density matrix (a copy)."""
        dim = 2**self.num_qubits
        return self.tensor.reshape(dim, dim).copy()

    def diagonal_probabilities(self) -> np.ndarray:
        """Born probabilities of all ``2**n`` bitstrings (the diagonal)."""
        dim = 2**self.num_qubits
        return np.real(np.diagonal(self.tensor.reshape(dim, dim))).copy()

    def probability_of(self, bits: Sequence[int]) -> float:
        """Born probability of a full bitstring."""
        idx = tuple(int(b) for b in bits)
        return float(np.real(self.tensor[idx + idx]))

    def candidate_probabilities(
        self, bits: Sequence[int], support: Sequence[int]
    ) -> np.ndarray:
        """Diagonal probabilities of all candidates over ``support``."""
        n = self.num_qubits
        index: List[Union[slice, int]] = [int(b) for b in bits] * 2
        for axis in support:
            index[axis] = slice(None)
            index[axis + n] = slice(None)
        block = self.tensor[tuple(index)]
        k = len(support)
        # Block axes: sorted support (rows) then sorted support (cols).
        ranks = list(np.argsort(np.argsort(support)))
        block = np.transpose(block, axes=ranks + [r + k for r in ranks])
        diag = np.einsum(
            block.reshape(2**k, 2**k), [0, 0], [0]
        )
        return np.real(diag)

    def candidate_probabilities_many(
        self, bits_list: Sequence[Sequence[int]], support: Sequence[int]
    ) -> np.ndarray:
        """A ``(B, 2^k)`` candidate-probability matrix for ``B`` bitstrings.

        One fancy-indexed gather over the density-matrix diagonal answers
        the whole tracked-bitstring front of a parallel-mode resampling
        step; no per-bitstring tensor slicing.
        """
        n = self.num_qubits
        idx = candidate_index_matrix(bits_list, support, n)
        rho = self.tensor.reshape(2**n, 2**n)
        return np.real(rho[idx, idx])

    def copy(self, seed=None) -> "DensityMatrixSimulationState":
        out = type(self).__new__(type(self))  # preserve subclasses
        SimulationState.__init__(out, self.qubits, seed)
        out.tensor = self.tensor.copy()
        return out

    def __repr__(self) -> str:
        return f"DensityMatrixSimulationState(num_qubits={self.num_qubits})"
