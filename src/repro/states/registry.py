"""Backend capability registry: declare a state backend's fast paths once.

Before this module existed, the sampler stack discovered what a state
backend could do in three scattered places: ``born/__init__.py`` kept
per-function maps from scalar Born oracles to their batched siblings,
``sampler/plan.py`` probed ``hasattr(state, "apply_stabilizer_sequence")``
(and friends) on every compile, and ``Simulator._apply_channel_branch``
probed ``hasattr(chosen, "renormalize")`` per branch.  A user state — "any
object with ``copy``/``qubit_index``" per the BGLS contract — could never
reach the batched candidate paths because the maps were closed.

This registry is the single seam.  Each backend registers one
:class:`BackendCapabilities` descriptor naming

* its scalar Born oracle(s) and the batched single-front /
  many-front candidate functions (``candidate_probabilities`` /
  ``candidate_probabilities_many``),
* which *application* fast paths are sound (stabilizer-sequence
  dispatch, fused single-qubit moments, base unitary dispatch),
* bookkeeping flags (``renormalize`` support, exact channel
  application), and
* optional ``snapshot``/``restore`` hooks the process-pool executor uses
  to ship the initial state to workers in packed form.  Payloads must be
  picklable and ``==``-comparable (prefer plain tuples of bytes/ints):
  the warm-pool service (:mod:`repro.sampler.service`) compares them to
  decide whether already-initialized workers can be reused.  The shipped
  bit-packed tableau and CH-form backends implement the hooks with raw
  ``uint64`` word payloads, and the MPS backend with raw tensor bytes
  plus bond metadata; see the README "snapshot-hook contract".

Shipped backends register at import time (see :mod:`repro.born`); user
backends call :func:`register_backend` and immediately get the same fast
paths as built-ins — including parallel mode's whole-front batched oracle.
States that never register still work: :func:`capabilities_for` derives a
descriptor by introspecting the class once and caches it, which preserves
the old ``hasattr`` behavior without re-probing per compile.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .base import SimulationState


def _candidates_via_state(state, bits, support):
    """Default batched oracle: delegate to the state's own method."""
    return state.candidate_probabilities(bits, support)


def _candidates_many_via_state(state, bits_list, support):
    """Default many-front oracle: delegate to the state's own method."""
    return state.candidate_probabilities_many(bits_list, support)


class BackendCapabilities:
    """What one state backend can do, declared once at registration.

    Attributes:
        state_type: The simulation-state class this descriptor covers.
        name: Human-readable backend name (diagnostics, README tables).
        compute_probability: The canonical scalar Born oracle
            ``(state, bits) -> float`` for this backend, or None.
        candidates: Batched oracle ``(state, bits, support) -> ndarray[2^k]``
            answering all candidates of one tracked bitstring, or None.
        candidates_many: Cross-bitstring batched oracle
            ``(state, bits_list, support) -> ndarray[(B, 2^k)]`` answering
            parallel mode's whole front in one call, or None.
        stabilizer_sequences: The state applies cached
            ``(phase, primitives)`` decompositions via
            ``apply_stabilizer_sequence`` (the plan's ``fast_stab`` path).
        fused_moments: The state batches a moment of disjoint single-qubit
            Clifford gates via ``apply_single_qubit_moment``.
        base_unitary_dispatch: The state uses the base ``SimulationState``
            act-on dispatch, so plans may call ``apply_unitary`` with the
            record's cached matrix (the plan's ``fast_unitary`` path).
        renormalize: The state exposes ``renormalize()`` (used after
            non-unitary Kraus branches).
        exact_channels: Channels apply exactly (density matrices) instead
            of branching stochastically.
        snapshot: Optional ``(state) -> payload`` producing a compact
            picklable payload for process-pool workers; None means the
            state object itself is pickled.
        restore: Inverse of ``snapshot``; required iff ``snapshot`` is set.
        batched_trajectories: Optional hook advertising a batched
            trajectory adapter for this backend: the adapter class itself,
            or a zero-argument callable returning it (the lazy-import
            form the shipped backends use).  The adapter must expose
            ``supports_plan(plan) -> bool`` and
            ``from_state(state, batch) -> adapter`` classmethods plus the
            per-record batch interface consumed by
            :mod:`repro.sampler.trajectory_batch`.  None (the default)
            means trajectory mode always runs the serial per-repetition
            loop for this backend.
    """

    __slots__ = (
        "state_type",
        "name",
        "compute_probability",
        "candidates",
        "candidates_many",
        "stabilizer_sequences",
        "fused_moments",
        "base_unitary_dispatch",
        "renormalize",
        "exact_channels",
        "snapshot",
        "restore",
        "batched_trajectories",
    )

    def __init__(
        self,
        state_type: type,
        name: str,
        compute_probability: Optional[Callable],
        candidates: Optional[Callable],
        candidates_many: Optional[Callable],
        stabilizer_sequences: bool,
        fused_moments: bool,
        base_unitary_dispatch: bool,
        renormalize: bool,
        exact_channels: bool,
        snapshot: Optional[Callable],
        restore: Optional[Callable],
        batched_trajectories: Optional[Callable] = None,
    ):
        self.state_type = state_type
        self.name = name
        self.compute_probability = compute_probability
        self.candidates = candidates
        self.candidates_many = candidates_many
        self.stabilizer_sequences = stabilizer_sequences
        self.fused_moments = fused_moments
        self.base_unitary_dispatch = base_unitary_dispatch
        self.renormalize = renormalize
        self.exact_channels = exact_channels
        self.snapshot = snapshot
        self.restore = restore
        self.batched_trajectories = batched_trajectories

    def __repr__(self) -> str:
        flags = [
            flag
            for flag, on in [
                ("stab_seq", self.stabilizer_sequences),
                ("fused_moments", self.fused_moments),
                ("base_unitary", self.base_unitary_dispatch),
                ("renormalize", self.renormalize),
                ("exact_channels", self.exact_channels),
                ("many_front", self.candidates_many is not None),
                ("snapshot", self.snapshot is not None),
                ("batched_traj", self.batched_trajectories is not None),
            ]
            if on
        ]
        return f"BackendCapabilities({self.name!r}, {'|'.join(flags) or 'none'})"


_REGISTRY: Dict[type, BackendCapabilities] = {}
_DERIVED: Dict[type, BackendCapabilities] = {}
# Subclasses of a registered backend that override _act_on_ get a cached
# per-subclass copy of the parent descriptor with base_unitary_dispatch
# off (keyed by subclass, validated against the parent descriptor).
_SPECIALIZED: Dict[type, Tuple[BackendCapabilities, BackendCapabilities]] = {}
_BY_PROBABILITY_FN: Dict[Callable, BackendCapabilities] = {}


def _derive(state_type: type, **overrides) -> BackendCapabilities:
    """Introspect a state class once into a capabilities descriptor.

    Explicit keyword overrides win; everything else is derived from the
    class surface (the same checks the old per-compile probes ran, now
    executed exactly once per type).
    """
    base_dispatch = (
        getattr(state_type, "_act_on_", None) is SimulationState._act_on_
    )
    derived = dict(
        name=state_type.__name__,
        compute_probability=None,
        candidates=(
            _candidates_via_state
            if hasattr(state_type, "candidate_probabilities")
            else None
        ),
        candidates_many=(
            _candidates_many_via_state
            if hasattr(state_type, "candidate_probabilities_many")
            else None
        ),
        stabilizer_sequences=hasattr(state_type, "apply_stabilizer_sequence"),
        fused_moments=hasattr(state_type, "apply_single_qubit_moment"),
        base_unitary_dispatch=base_dispatch,
        renormalize=hasattr(state_type, "renormalize"),
        exact_channels=bool(getattr(state_type, "_exact_channels_", False)),
        snapshot=None,
        restore=None,
        batched_trajectories=None,
    )
    for key, value in overrides.items():
        if key not in derived:
            raise TypeError(f"Unknown capability {key!r}")
        if value is not None or key in ("compute_probability", "snapshot", "restore"):
            derived[key] = value
    return BackendCapabilities(state_type, **derived)


def register_backend(
    state_type: type,
    *,
    compute_probability: Optional[Callable] = None,
    scalar_aliases: Iterable[Callable] = (),
    candidates: Optional[Callable] = None,
    candidates_many: Optional[Callable] = None,
    stabilizer_sequences: Optional[bool] = None,
    fused_moments: Optional[bool] = None,
    base_unitary_dispatch: Optional[bool] = None,
    renormalize: Optional[bool] = None,
    exact_channels: Optional[bool] = None,
    snapshot: Optional[Callable] = None,
    restore: Optional[Callable] = None,
    batched_trajectories: Optional[Callable] = None,
    name: Optional[str] = None,
) -> BackendCapabilities:
    """Register (or re-register) a state backend's capabilities.

    Every argument except ``state_type`` is optional: omitted capability
    flags are derived by introspecting the class (``None`` means "derive"),
    so the minimal user registration is::

        register_backend(MyState, compute_probability=my_born_fn)

    which is enough for :class:`repro.sampler.Simulator` to route
    ``my_born_fn`` to ``MyState.candidate_probabilities`` /
    ``candidate_probabilities_many`` when those methods exist — the same
    batched fast paths the shipped backends use.  ``scalar_aliases`` maps
    additional scalar functions (e.g. a paper-listing alias) to the same
    descriptor.

    Returns the registered descriptor.
    """
    if (snapshot is None) != (restore is None):
        raise ValueError("snapshot and restore must be provided together")
    caps = _derive(
        state_type,
        name=name,
        compute_probability=compute_probability,
        candidates=candidates,
        candidates_many=candidates_many,
        stabilizer_sequences=stabilizer_sequences,
        fused_moments=fused_moments,
        base_unitary_dispatch=base_unitary_dispatch,
        renormalize=renormalize,
        exact_channels=exact_channels,
        snapshot=snapshot,
        restore=restore,
        batched_trajectories=batched_trajectories,
    )
    previous = _REGISTRY.get(state_type)
    if previous is not None:
        _purge_probability_fns(previous)
    _REGISTRY[state_type] = caps
    _DERIVED.pop(state_type, None)
    if compute_probability is not None:
        _BY_PROBABILITY_FN[compute_probability] = caps
    for alias in scalar_aliases:
        _BY_PROBABILITY_FN[alias] = caps
    return caps


def _purge_probability_fns(caps: BackendCapabilities) -> None:
    """Drop every scalar-function mapping owned by ``caps``."""
    for fn, owner in list(_BY_PROBABILITY_FN.items()):
        if owner is caps:
            del _BY_PROBABILITY_FN[fn]


def unregister_backend(state_type: type) -> None:
    """Remove a backend registration (primarily for tests)."""
    caps = _REGISTRY.pop(state_type, None)
    _DERIVED.pop(state_type, None)
    if caps is not None:
        _purge_probability_fns(caps)


def capabilities_for(state_or_type) -> BackendCapabilities:
    """The capabilities descriptor for a state instance or class.

    Resolution order: exact registered type, registered base class (MRO
    order), then a derived-and-cached descriptor from one-time class
    introspection.  Never returns None — unregistered user states get the
    introspected defaults, which reproduce the legacy ``hasattr`` probes.

    A subclass inheriting a parent's descriptor keeps the parent's oracle
    functions, but ``base_unitary_dispatch`` is type-identity-sensitive:
    a subclass that overrides ``_act_on_`` must not be fast-pathed around
    its own dispatch, so it gets a specialized copy with that flag
    re-derived (cached per subclass).
    """
    tp = state_or_type if isinstance(state_or_type, type) else type(state_or_type)
    caps = _REGISTRY.get(tp)
    if caps is not None:
        return caps
    for base in tp.__mro__[1:]:
        caps = _REGISTRY.get(base)
        if caps is not None:
            if caps.base_unitary_dispatch and (
                getattr(tp, "_act_on_", None) is not SimulationState._act_on_
            ):
                cached = _SPECIALIZED.get(tp)
                if cached is not None and cached[0] is caps:
                    return cached[1]
                spec = BackendCapabilities(
                    tp,
                    caps.name,
                    caps.compute_probability,
                    caps.candidates,
                    caps.candidates_many,
                    caps.stabilizer_sequences,
                    caps.fused_moments,
                    False,
                    caps.renormalize,
                    caps.exact_channels,
                    caps.snapshot,
                    caps.restore,
                    # Overridden _act_on_ invalidates the batched engine's
                    # record application too: the subclass runs serially.
                    None,
                )
                _SPECIALIZED[tp] = (caps, spec)
                return spec
            return caps
    caps = _DERIVED.get(tp)
    if caps is None:
        caps = _derive(tp)
        _DERIVED[tp] = caps
    return caps


def capabilities_for_probability_fn(
    compute_probability: Callable,
) -> Optional[BackendCapabilities]:
    """The descriptor whose scalar Born oracle is ``compute_probability``.

    Returns None for unknown (user-supplied, unregistered) functions, in
    which case the sampler falls back to its per-candidate loop.
    """
    return _BY_PROBABILITY_FN.get(compute_probability)


def registered_backends() -> List[BackendCapabilities]:
    """All explicitly registered descriptors, in registration order."""
    return list(_REGISTRY.values())


__all__ = [
    "BackendCapabilities",
    "register_backend",
    "unregister_backend",
    "capabilities_for",
    "capabilities_for_probability_fn",
    "registered_backends",
]
