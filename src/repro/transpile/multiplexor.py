"""Uniformly-controlled (multiplexed) rotations.

A multiplexed ``R_a`` with ``k`` controls applies ``R_a(theta_x)`` to the
target for each computational-basis state ``x`` of the controls.  The
standard recursive construction (Shende-Bullock-Markov 2006) emits
``2^k`` plain rotations interleaved with ``2^k`` CNOTs, using the identity
``X R_a(t) X = R_a(-t)`` for ``a in {Y, Z}``:

    UCR(theta; c0, rest) =
        UCR((theta_lo + theta_hi)/2; rest)
        CNOT(c0, target)
        UCR((theta_lo - theta_hi)/2; rest)
        CNOT(c0, target)

where ``theta_lo``/``theta_hi`` are the angle halves for ``c0 = 0/1``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuits import gates
from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid

_ROTATIONS = {"y": gates.Ry, "z": gates.Rz}


def multiplexed_rotation(
    axis: str,
    angles: Sequence[float],
    controls: Sequence[Qid],
    target: Qid,
) -> List[GateOperation]:
    """Operations implementing a multiplexed ``Ry``/``Rz``.

    Args:
        axis: ``"y"`` or ``"z"``.
        angles: ``2^len(controls)`` rotation angles, indexed by the
            big-endian control bitstring.
        controls: Control qubits (``controls[0]`` is the most significant).
        target: Target qubit.

    Returns:
        Ops applied left to right; trailing structure is exactly the
        recursion above with no cancellation pass.
    """
    axis = axis.lower()
    if axis not in _ROTATIONS:
        raise ValueError(f"axis must be 'y' or 'z', got {axis!r}")
    angles = np.asarray(angles, dtype=float)
    if angles.shape != (2 ** len(controls),):
        raise ValueError(
            f"Need {2 ** len(controls)} angles for {len(controls)} controls, "
            f"got {angles.shape}"
        )
    rot = _ROTATIONS[axis]

    def build(theta: np.ndarray, ctrls: Sequence[Qid]) -> List[GateOperation]:
        if not ctrls:
            return [rot(float(theta[0])).on(target)]
        half = theta.shape[0] // 2
        lo, hi = theta[:half], theta[half:]
        ops = build((lo + hi) / 2.0, ctrls[1:])
        ops.append(gates.CNOT.on(ctrls[0], target))
        ops.extend(build((lo - hi) / 2.0, ctrls[1:]))
        ops.append(gates.CNOT.on(ctrls[0], target))
        return ops

    return build(angles, list(controls))


def multiplexed_rotation_matrix(
    axis: str, angles: Sequence[float]
) -> np.ndarray:
    """Reference dense matrix of the multiplexed rotation (for tests).

    Convention: the target is the *most significant* qubit and the controls
    follow, matching :func:`repro.transpile.qsd.quantum_shannon_decompose`.
    The matrix is thus ``[[C, -S], [S, C]]`` for axis ``y`` (cosine-sine
    form) and ``diag(e^{-i t/2}) (+) diag(e^{+i t/2})`` for axis ``z``.
    """
    angles = np.asarray(angles, dtype=float)
    m = angles.shape[0]
    if axis.lower() == "y":
        c = np.diag(np.cos(angles / 2.0))
        s = np.diag(np.sin(angles / 2.0))
        return np.block([[c, -s], [s, c]]).astype(np.complex128)
    if axis.lower() == "z":
        lower = np.diag(np.exp(-0.5j * angles))
        upper = np.diag(np.exp(+0.5j * angles))
        out = np.zeros((2 * m, 2 * m), dtype=np.complex128)
        out[:m, :m] = lower
        out[m:, m:] = upper
        return out
    raise ValueError(f"axis must be 'y' or 'z', got {axis!r}")
