"""Exact Clifford+T decompositions of common multi-qubit gates.

These are the textbook identities (Nielsen & Chuang Fig. 4.9 for the
Toffoli) that let the stabilizer-backed samplers handle circuits written
with Toffoli/Fredkin/CCZ gates: after this pass every non-Clifford
ingredient is an explicit T gate, which the sum-over-Cliffords machinery
(:func:`repro.sampler.act_on_near_clifford`) knows how to expand.
"""

from __future__ import annotations

from typing import List

from ..circuits import gates
from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid


def decompose_toffoli(a: Qid, b: Qid, c: Qid) -> List[GateOperation]:
    """CCX(a, b, c) as 7 T gates, 6 CNOTs and 2 Hadamards (exact)."""
    return [
        gates.H.on(c),
        gates.CNOT.on(b, c),
        gates.T_DAG.on(c),
        gates.CNOT.on(a, c),
        gates.T.on(c),
        gates.CNOT.on(b, c),
        gates.T_DAG.on(c),
        gates.CNOT.on(a, c),
        gates.T.on(b),
        gates.T.on(c),
        gates.H.on(c),
        gates.CNOT.on(a, b),
        gates.T.on(a),
        gates.T_DAG.on(b),
        gates.CNOT.on(a, b),
    ]


def decompose_ccz(a: Qid, b: Qid, c: Qid) -> List[GateOperation]:
    """CCZ(a, b, c): the Toffoli identity with the basis-change H's removed."""
    ops = decompose_toffoli(a, b, c)
    return [op for op in ops if not (op.gate == gates.H and op.qubits == (c,))]


def decompose_cswap(a: Qid, b: Qid, c: Qid) -> List[GateOperation]:
    """Fredkin CSWAP(a; b, c) = CNOT(c,b) CCX(a,b,c) CNOT(c,b) (exact)."""
    return (
        [gates.CNOT.on(c, b)]
        + decompose_toffoli(a, b, c)
        + [gates.CNOT.on(c, b)]
    )


def decompose_swap(a: Qid, b: Qid) -> List[GateOperation]:
    """SWAP as three CNOTs."""
    return [gates.CNOT.on(a, b), gates.CNOT.on(b, a), gates.CNOT.on(a, b)]


def decompose_iswap(a: Qid, b: Qid) -> List[GateOperation]:
    """ISWAP = SWAP . CZ . (S (x) S), all Clifford (exact)."""
    return [
        gates.S.on(a),
        gates.S.on(b),
        gates.CZ.on(a, b),
    ] + decompose_swap(a, b)


def t_count(circuit) -> int:
    """Number of T/T-dagger gates (after counting Z**(odd/4) exponents).

    The figure of merit for near-Clifford simulability (paper Sec. 4.2:
    cost grows as 2^{#T}).
    """
    count = 0
    for op in circuit.all_operations():
        gate = op.gate
        if isinstance(gate, gates.ZPowGate) and not gate._is_parameterized_():
            quarter_turns = 4.0 * float(gate.exponent)
            if (
                abs(quarter_turns - round(quarter_turns)) < 1e-9
                and round(quarter_turns) % 2 == 1
            ):
                count += 1
    return count
