"""Circuit compilation: decompositions, rewriting passes, light-cone pruning.

This package generalizes the paper's single optimization hook
(``optimize_for_bgls``, Sec. 3.2.2) into a small compiler:

* :mod:`~repro.transpile.euler` — ZYZ angles for any 1-qubit unitary.
* :mod:`~repro.transpile.multiplexor` — uniformly-controlled Ry/Rz.
* :mod:`~repro.transpile.qsd` — quantum Shannon decomposition of arbitrary
  unitaries into {Rz, Ry, CNOT}.
* :mod:`~repro.transpile.clifford_t` — exact Toffoli/Fredkin/CCZ/SWAP/ISWAP
  identities and the T-count metric.
* :mod:`~repro.transpile.light_cone` — causal-cone reduction for sampling.
* :mod:`~repro.transpile.passes` — the pass framework and default pipeline.
"""

from .clifford_t import (
    decompose_ccz,
    decompose_cswap,
    decompose_iswap,
    decompose_swap,
    decompose_toffoli,
    t_count,
)
from .euler import decompose_single_qubit, zyz_angles, zyz_matrix
from .light_cone import light_cone_qubits, reduce_to_light_cone
from .multiplexor import multiplexed_rotation, multiplexed_rotation_matrix
from .passes import (
    CancelAdjacentInverses,
    DecomposeMultiQubitGates,
    DropEmptyMoments,
    DropNegligibleGates,
    LightConeReduction,
    MergeRotations,
    MergeSingleQubitGates,
    PassManager,
    PassPipeline,
    PassStats,
    TranspilerPass,
    default_pipeline,
    transpile,
)
from .qsd import quantum_shannon_decompose, shannon_circuit
from .routing import RoutedCircuit, Topology, is_routed, route_circuit

__all__ = [
    "Topology",
    "RoutedCircuit",
    "route_circuit",
    "is_routed",
    "zyz_angles",
    "zyz_matrix",
    "decompose_single_qubit",
    "multiplexed_rotation",
    "multiplexed_rotation_matrix",
    "quantum_shannon_decompose",
    "shannon_circuit",
    "decompose_toffoli",
    "decompose_ccz",
    "decompose_cswap",
    "decompose_swap",
    "decompose_iswap",
    "t_count",
    "light_cone_qubits",
    "reduce_to_light_cone",
    "TranspilerPass",
    "MergeSingleQubitGates",
    "MergeRotations",
    "DropEmptyMoments",
    "DropNegligibleGates",
    "CancelAdjacentInverses",
    "LightConeReduction",
    "DecomposeMultiQubitGates",
    "PassStats",
    "PassPipeline",
    "PassManager",
    "default_pipeline",
    "transpile",
]
