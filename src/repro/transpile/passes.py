"""Composable circuit-rewriting passes and the :class:`PassManager`.

Each pass is a pure ``Circuit -> Circuit`` function object; a
:class:`PassManager` chains them.  ``default_pipeline()`` reproduces
``optimize_for_bgls`` (paper Sec. 3.2.2) plus the light-cone reduction.

Every pass preserves the sampling distribution over measurement keys —
that invariant is what the test suite checks for each of them.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

import numpy as np

from ..circuits import gates
from ..circuits.circuit import Circuit
from ..circuits.operations import GateOperation
from ..circuits.optimize import drop_empty_moments, merge_single_qubit_gates
from .clifford_t import (
    decompose_ccz,
    decompose_cswap,
    decompose_iswap,
    decompose_swap,
    decompose_toffoli,
)
from .light_cone import reduce_to_light_cone
from .qsd import quantum_shannon_decompose


class TranspilerPass(abc.ABC):
    """A circuit-to-circuit rewrite preserving measurement distributions."""

    @abc.abstractmethod
    def __call__(self, circuit: Circuit) -> Circuit:
        """Apply the rewrite."""

    @property
    def name(self) -> str:
        """Display name used in PassManager history."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}()"


class MergeSingleQubitGates(TranspilerPass):
    """Merge runs of 1-qubit gates into one MatrixGate (Sec. 3.2.2)."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return merge_single_qubit_gates(circuit)


class DropEmptyMoments(TranspilerPass):
    """Remove moments containing no operations."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return drop_empty_moments(circuit)


class DropNegligibleGates(TranspilerPass):
    """Drop unitary gates within ``atol`` of a global phase times identity."""

    def __init__(self, atol: float = 1e-8):
        self.atol = float(atol)

    def _is_negligible(self, op: GateOperation) -> bool:
        if op.is_measurement or op._is_parameterized_():
            return False
        u = op._unitary_()
        if u is None:
            return False
        phase = u[0, 0]
        if abs(abs(phase) - 1.0) > self.atol:
            return False
        return bool(np.allclose(u, phase * np.eye(u.shape[0]), atol=self.atol))

    def __call__(self, circuit: Circuit) -> Circuit:
        out = Circuit()
        for moment in circuit.moments:
            kept = [op for op in moment.operations if not self._is_negligible(op)]
            if kept:
                out.append_new_moment(kept)
        return out


class CancelAdjacentInverses(TranspilerPass):
    """Cancel consecutive op pairs whose product is a global phase.

    Scans per-qubit adjacency: two ops cancel when they act on the same
    qubit tuple with no intervening op on any of those qubits and their
    unitaries multiply to ``e^{i phi} I``.  Repeats until a fixed point
    (cancellations can cascade, e.g. ``X H H X``).
    """

    def __init__(self, atol: float = 1e-8):
        self.atol = float(atol)

    def _cancels(self, first: GateOperation, second: GateOperation) -> bool:
        if first.qubits != second.qubits:
            return False
        u1, u2 = first._unitary_(), second._unitary_()
        if u1 is None or u2 is None:
            return False
        product = u2 @ u1
        phase = product[0, 0]
        if abs(abs(phase) - 1.0) > self.atol:
            return False
        return bool(
            np.allclose(product, phase * np.eye(product.shape[0]), atol=self.atol)
        )

    def _one_round(self, ops: List[GateOperation]) -> Optional[List[GateOperation]]:
        last_on_qubit = {}
        for i, op in enumerate(ops):
            if op.is_measurement or op._is_parameterized_():
                for q in op.qubits:
                    last_on_qubit[q] = None
                continue
            prev_entries = {last_on_qubit.get(q) for q in op.qubits}
            if len(prev_entries) == 1:
                prev = prev_entries.pop()
                if prev is not None and self._cancels(ops[prev], op):
                    return ops[:prev] + ops[prev + 1 : i] + ops[i + 1 :]
            for q in op.qubits:
                last_on_qubit[q] = i
        return None

    def __call__(self, circuit: Circuit) -> Circuit:
        ops = list(circuit.all_operations())
        while True:
            reduced = self._one_round(ops)
            if reduced is None:
                break
            ops = reduced
        out = Circuit()
        out.append(ops)
        return out


class LightConeReduction(TranspilerPass):
    """Drop operations outside the measurements' backward causal cone."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return reduce_to_light_cone(circuit)


class DecomposeMultiQubitGates(TranspilerPass):
    """Lower 3+-qubit gates and exotic 2-qubit gates to {1q, CNOT, CZ}.

    Known gates use their exact textbook identities (Toffoli as 7 T's,
    Fredkin, CCZ, SWAP, ISWAP); anything else with a unitary goes through
    the quantum Shannon decomposition.  One- and two-qubit CX/CZ-like
    gates, measurements, and channels pass through unchanged.
    """

    _KEEP_TWO_QUBIT = (gates.CXPowGate, gates.CZPowGate)

    def __init__(self, decompose_swaps: bool = False):
        self.decompose_swaps = bool(decompose_swaps)

    def _lower(self, op: GateOperation) -> List[GateOperation]:
        gate = op.gate
        qs = op.qubits
        if isinstance(gate, gates.CCXPowGate) and float(gate.exponent) == 1.0:
            return decompose_toffoli(*qs)
        if isinstance(gate, gates.CCZPowGate) and float(gate.exponent) == 1.0:
            return decompose_ccz(*qs)
        if isinstance(gate, gates.CSwapGate):
            return decompose_cswap(*qs)
        if isinstance(gate, gates.SwapPowGate) and float(gate.exponent) == 1.0:
            if self.decompose_swaps:
                return decompose_swap(*qs)
            return [op]
        if isinstance(gate, gates.ISwapPowGate) and float(gate.exponent) == 1.0:
            return decompose_iswap(*qs)
        u = op._unitary_()
        if u is None:
            return [op]
        _, ops = quantum_shannon_decompose(u, list(qs))
        return ops

    def __call__(self, circuit: Circuit) -> Circuit:
        out = Circuit()
        for op in circuit.all_operations():
            if (
                op.is_measurement
                or op._is_parameterized_()
                or len(op.qubits) == 1
                or (
                    len(op.qubits) == 2
                    and isinstance(op.gate, self._KEEP_TWO_QUBIT)
                )
                or op._unitary_() is None
            ):
                out.append(op)
                continue
            out.append(self._lower(op))
        return out


class PassManager:
    """Run a sequence of passes; records per-pass op counts for inspection."""

    def __init__(self, passes: Iterable[TranspilerPass]):
        self.passes: List[TranspilerPass] = list(passes)
        self.history: List[tuple] = []

    def run(self, circuit: Circuit) -> Circuit:
        """Apply all passes in order, logging (pass name, ops before/after)."""
        self.history = []
        for p in self.passes:
            before = circuit.num_operations()
            circuit = p(circuit)
            self.history.append((p.name, before, circuit.num_operations()))
        return circuit

    def __repr__(self) -> str:
        return f"PassManager({self.passes!r})"


def default_pipeline(*, light_cone: bool = True) -> PassManager:
    """The recommended BGLS pre-sampling pipeline.

    Light-cone reduction first (it can only delete work), then inverse
    cancellation, then the paper's single-qubit merging, then cleanup.
    """
    passes: List[TranspilerPass] = []
    if light_cone:
        passes.append(LightConeReduction())
    passes.extend(
        [
            CancelAdjacentInverses(),
            MergeSingleQubitGates(),
            DropNegligibleGates(),
            DropEmptyMoments(),
        ]
    )
    return PassManager(passes)
