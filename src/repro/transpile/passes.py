"""Composable circuit-rewriting passes and the :class:`PassManager`.

Each pass is a pure ``Circuit -> Circuit`` function object; a
:class:`PassManager` chains them.  ``default_pipeline()`` reproduces
``optimize_for_bgls`` (paper Sec. 3.2.2) plus the light-cone reduction.

Every pass preserves the sampling distribution over measurement keys —
that invariant is what the test suite checks for each of them.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..circuits import gates
from ..circuits.circuit import Circuit
from ..circuits.operations import GateOperation
from ..circuits.optimize import drop_empty_moments, merge_single_qubit_gates
from .clifford_t import (
    decompose_ccz,
    decompose_cswap,
    decompose_iswap,
    decompose_swap,
    decompose_toffoli,
)
from .light_cone import reduce_to_light_cone
from .qsd import quantum_shannon_decompose


class TranspilerPass(abc.ABC):
    """A circuit-to-circuit rewrite preserving measurement distributions."""

    @abc.abstractmethod
    def __call__(self, circuit: Circuit) -> Circuit:
        """Apply the rewrite."""

    @property
    def name(self) -> str:
        """Display name used in PassManager history."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}()"


class MergeSingleQubitGates(TranspilerPass):
    """Merge runs of 1-qubit gates into one MatrixGate (Sec. 3.2.2)."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return merge_single_qubit_gates(circuit)


class DropEmptyMoments(TranspilerPass):
    """Remove moments containing no operations."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return drop_empty_moments(circuit)


class MergeRotations(TranspilerPass):
    """Collapse adjacent same-axis rotation runs into one power gate.

    Hardware-style circuits arrive with single-qubit rotations split into
    consecutive fractional pulses about the same axis (pulse
    decomposition, spin-echo padding, virtual-Z bookkeeping).  Unlike
    :class:`MergeSingleQubitGates`, which fuses *any* 1-qubit run into a
    numeric ``MatrixGate``, this pass only fuses runs that share an axis
    and keeps the result in the named power-gate family — so downstream
    stabilizer/diagram/Clifford machinery still recognizes the gate.

    Two ops share an axis when they are the *same* ``EigenGate`` type
    (``X/Y/Z/HPowGate``...), or both :class:`PhasedXPowGate` with equal
    ``phase_exponent`` (``Z^p X^t Z^-p`` powers commute at fixed ``p``).
    A run merges by exponent addition with the global phase accumulated
    exactly:

        ``G(t1, s1) G(t2, s2) = G(t1+t2, (s1 t1 + s2 t2)/(t1+t2))``

    since every base gate here is an involution.  A run whose exponent
    sum is ``0 (mod 2)`` is the identity up to global phase and is
    dropped outright.  Parameterized ops, measurements, and multi-qubit
    gates act as barriers; single gates not in a run pass through
    untouched.
    """

    def __init__(self, atol: float = 1e-9):
        self.atol = float(atol)

    def _axis_key(self, op: GateOperation):
        """Hashable merge key, or None if the op is not a mergeable rotation."""
        if len(op.qubits) != 1 or op.is_measurement or op._is_parameterized_():
            return None
        gate = op.gate
        if type(gate) is gates.PhasedXPowGate:
            return (gates.PhasedXPowGate, float(gate.phase_exponent))
        # Exact-type match: subclasses may redefine the unitary, and two
        # different axes never merge.
        if type(gate) in (
            gates.XPowGate,
            gates.YPowGate,
            gates.ZPowGate,
            gates.HPowGate,
        ):
            return type(gate)
        return None

    def _merge_run(self, key, run: List[GateOperation]) -> List[GateOperation]:
        if len(run) < 2:
            return run
        exponents = [float(op.gate.exponent) for op in run]
        exp_sum = sum(exponents)
        phase_exp = sum(
            t * op.gate.global_shift for t, op in zip(exponents, run)
        )
        # Involution bases are 2-periodic in the exponent: an exponent sum
        # of 0 (mod 2) is the identity up to a global phase.
        if abs(exp_sum - 2.0 * round(exp_sum / 2.0)) <= self.atol:
            return []
        shift = phase_exp / exp_sum
        if isinstance(key, tuple):
            cls, phase_exponent = key
            merged = cls(
                phase_exponent=phase_exponent,
                exponent=exp_sum,
                global_shift=shift,
            )
        else:
            merged = key(exponent=exp_sum, global_shift=shift)
        return [merged.on(run[0].qubits[0])]

    def __call__(self, circuit: Circuit) -> Circuit:
        out: List[GateOperation] = []
        pending: Dict[object, Tuple[object, List[GateOperation]]] = {}

        def flush(qubit) -> None:
            entry = pending.pop(qubit, None)
            if entry is not None:
                out.extend(self._merge_run(entry[0], entry[1]))

        for op in circuit.all_operations():
            key = self._axis_key(op)
            if key is None:
                for q in op.qubits:
                    flush(q)
                out.append(op)
                continue
            qubit = op.qubits[0]
            entry = pending.get(qubit)
            if entry is not None and entry[0] == key:
                entry[1].append(op)
            else:
                flush(qubit)
                pending[qubit] = (key, [op])
        for qubit in list(pending):
            flush(qubit)
        result = Circuit()
        result.append(out)
        return result


class DropNegligibleGates(TranspilerPass):
    """Drop unitary gates within ``atol`` of a global phase times identity."""

    def __init__(self, atol: float = 1e-8):
        self.atol = float(atol)

    def _is_negligible(self, op: GateOperation) -> bool:
        if op.is_measurement or op._is_parameterized_():
            return False
        u = op._unitary_()
        if u is None:
            return False
        phase = u[0, 0]
        if abs(abs(phase) - 1.0) > self.atol:
            return False
        return bool(np.allclose(u, phase * np.eye(u.shape[0]), atol=self.atol))

    def __call__(self, circuit: Circuit) -> Circuit:
        out = Circuit()
        for moment in circuit.moments:
            kept = [op for op in moment.operations if not self._is_negligible(op)]
            if kept:
                out.append_new_moment(kept)
        return out


class CancelAdjacentInverses(TranspilerPass):
    """Cancel consecutive op pairs whose product is a global phase.

    Scans per-qubit adjacency: two ops cancel when they act on the same
    qubit tuple with no intervening op on any of those qubits and their
    unitaries multiply to ``e^{i phi} I``.  Repeats until a fixed point
    (cancellations can cascade, e.g. ``X H H X``).
    """

    def __init__(self, atol: float = 1e-8):
        self.atol = float(atol)

    def _cancels(self, first: GateOperation, second: GateOperation) -> bool:
        if first.qubits != second.qubits:
            return False
        u1, u2 = first._unitary_(), second._unitary_()
        if u1 is None or u2 is None:
            return False
        product = u2 @ u1
        phase = product[0, 0]
        if abs(abs(phase) - 1.0) > self.atol:
            return False
        return bool(
            np.allclose(product, phase * np.eye(product.shape[0]), atol=self.atol)
        )

    def _one_round(self, ops: List[GateOperation]) -> Optional[List[GateOperation]]:
        last_on_qubit = {}
        for i, op in enumerate(ops):
            if op.is_measurement or op._is_parameterized_():
                for q in op.qubits:
                    last_on_qubit[q] = None
                continue
            prev_entries = {last_on_qubit.get(q) for q in op.qubits}
            if len(prev_entries) == 1:
                prev = prev_entries.pop()
                if prev is not None and self._cancels(ops[prev], op):
                    return ops[:prev] + ops[prev + 1 : i] + ops[i + 1 :]
            for q in op.qubits:
                last_on_qubit[q] = i
        return None

    def __call__(self, circuit: Circuit) -> Circuit:
        ops = list(circuit.all_operations())
        while True:
            reduced = self._one_round(ops)
            if reduced is None:
                break
            ops = reduced
        out = Circuit()
        out.append(ops)
        return out


class LightConeReduction(TranspilerPass):
    """Drop operations outside the measurements' backward causal cone."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return reduce_to_light_cone(circuit)


class DecomposeMultiQubitGates(TranspilerPass):
    """Lower 3+-qubit gates and exotic 2-qubit gates to {1q, CNOT, CZ}.

    Known gates use their exact textbook identities (Toffoli as 7 T's,
    Fredkin, CCZ, SWAP, ISWAP); anything else with a unitary goes through
    the quantum Shannon decomposition.  One- and two-qubit CX/CZ-like
    gates, measurements, and channels pass through unchanged.
    """

    _KEEP_TWO_QUBIT = (gates.CXPowGate, gates.CZPowGate)

    def __init__(self, decompose_swaps: bool = False):
        self.decompose_swaps = bool(decompose_swaps)

    def _lower(self, op: GateOperation) -> List[GateOperation]:
        gate = op.gate
        qs = op.qubits
        if isinstance(gate, gates.CCXPowGate) and float(gate.exponent) == 1.0:
            return decompose_toffoli(*qs)
        if isinstance(gate, gates.CCZPowGate) and float(gate.exponent) == 1.0:
            return decompose_ccz(*qs)
        if isinstance(gate, gates.CSwapGate):
            return decompose_cswap(*qs)
        if isinstance(gate, gates.SwapPowGate) and float(gate.exponent) == 1.0:
            if self.decompose_swaps:
                return decompose_swap(*qs)
            return [op]
        if isinstance(gate, gates.ISwapPowGate) and float(gate.exponent) == 1.0:
            return decompose_iswap(*qs)
        u = op._unitary_()
        if u is None:
            return [op]
        _, ops = quantum_shannon_decompose(u, list(qs))
        return ops

    def __call__(self, circuit: Circuit) -> Circuit:
        out = Circuit()
        for op in circuit.all_operations():
            if (
                op.is_measurement
                or op._is_parameterized_()
                or len(op.qubits) == 1
                or (
                    len(op.qubits) == 2
                    and isinstance(op.gate, self._KEEP_TWO_QUBIT)
                )
                or op._unitary_() is None
            ):
                out.append(op)
                continue
            out.append(self._lower(op))
        return out


@dataclass(frozen=True)
class PassStats:
    """What one pass did to the circuit: op counts, depth, wall time."""

    name: str
    ops_before: int
    ops_after: int
    depth_before: int
    depth_after: int
    seconds: float


class PassPipeline(TranspilerPass):
    """Ordered pass composition with per-pass op-count/depth stats.

    A pipeline is itself a :class:`TranspilerPass` (``pipeline(circuit)``
    runs every stage), so pipelines nest and compose with single passes.
    After each run, :attr:`stats` holds one :class:`PassStats` per stage
    and :attr:`history` exposes the legacy
    ``(name, ops_before, ops_after)`` triples.
    """

    def __init__(self, passes: Iterable[TranspilerPass]):
        self.passes: List[TranspilerPass] = list(passes)
        self.stats: List[PassStats] = []

    @property
    def history(self) -> List[tuple]:
        """``(name, ops_before, ops_after)`` per stage of the last run."""
        return [(s.name, s.ops_before, s.ops_after) for s in self.stats]

    def run(self, circuit: Circuit) -> Circuit:
        """Apply all passes in order, recording per-pass stats."""
        self.stats = []
        for p in self.passes:
            ops_before = circuit.num_operations()
            depth_before = circuit.depth()
            start = time.perf_counter()
            circuit = p(circuit)
            elapsed = time.perf_counter() - start
            self.stats.append(
                PassStats(
                    name=p.name,
                    ops_before=ops_before,
                    ops_after=circuit.num_operations(),
                    depth_before=depth_before,
                    depth_after=circuit.depth(),
                    seconds=elapsed,
                )
            )
        return circuit

    def __call__(self, circuit: Circuit) -> Circuit:
        return self.run(circuit)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.passes!r})"


class PassManager(PassPipeline):
    """Backwards-compatible name for :class:`PassPipeline`.

    Kept so pre-pipeline callers (and their pinned ``history`` triples)
    keep working; new code should construct :class:`PassPipeline` or call
    :func:`transpile`.
    """


def default_pipeline(*, light_cone: bool = True) -> PassPipeline:
    """The recommended BGLS pre-sampling pipeline.

    Light-cone reduction first (it can only delete work), then inverse
    cancellation, then the paper's single-qubit merging, then cleanup.
    (:class:`MergeRotations` is not included: the unconditional
    single-qubit merging subsumes it here; use it directly on circuits
    that must stay in the named power-gate family.)
    """
    passes: List[TranspilerPass] = []
    if light_cone:
        passes.append(LightConeReduction())
    passes.extend(
        [
            CancelAdjacentInverses(),
            MergeSingleQubitGates(),
            DropNegligibleGates(),
            DropEmptyMoments(),
        ]
    )
    return PassPipeline(passes)


def transpile(
    circuit: Circuit,
    passes: Union[Iterable[TranspilerPass], PassPipeline, None] = None,
    *,
    light_cone: bool = True,
) -> Circuit:
    """Rewrite ``circuit`` through a pass pipeline; the one-call entry point.

    Args:
        circuit: The circuit to rewrite.
        passes: ``None`` for :func:`default_pipeline`, a pre-built
            :class:`PassPipeline`, or any iterable of passes (composed in
            order into a fresh pipeline).
        light_cone: Only consulted when ``passes`` is ``None``: include
            the light-cone reduction stage in the default pipeline.

    Returns:
        The rewritten circuit.  For per-pass stats, build a
        :class:`PassPipeline` yourself and read ``pipeline.stats`` after
        running it.
    """
    if passes is None:
        pipeline = default_pipeline(light_cone=light_cone)
    elif isinstance(passes, PassPipeline):
        pipeline = passes
    else:
        pipeline = PassPipeline(passes)
    return pipeline.run(circuit)
