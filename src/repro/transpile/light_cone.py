"""Light-cone reduction: drop gates that cannot influence any measurement.

For sampling, only operations inside the backward causal cone of the
measured qubits matter.  Walking the circuit from the last moment to the
first, an operation is kept iff its support intersects the active set
(initialized from the measurement supports); kept operations add their
support to the active set.  Dropped operations are provably irrelevant:

* unitaries and channels outside the cone act on qubits that are never
  measured and never interact with measured ones afterwards, and both are
  trace-preserving on the rest of the system;
* mid-circuit measurements are treated as cone *roots* too (their records
  are outputs, so their own cones must be preserved).

This is an optimization the paper does not ship but the gate-by-gate
algorithm benefits from doubly: every dropped gate saves both the state
update and a bitstring-resampling round.
"""

from __future__ import annotations

from typing import List, Set

from ..circuits.circuit import Circuit
from ..circuits.qubits import Qid


def light_cone_qubits(circuit: Circuit) -> Set[Qid]:
    """The set of qubits inside the backward cone of all measurements.

    If the circuit has no measurements, every qubit is considered measured
    (the sampler reads the full register), so this returns all qubits.
    """
    if not circuit.has_measurements():
        return set(circuit.all_qubits())
    active: Set[Qid] = set()
    for moment in reversed(circuit.moments):
        for op in moment.operations:
            if op.is_measurement or any(q in active for q in op.qubits):
                active.update(op.qubits)
    return active


def reduce_to_light_cone(circuit: Circuit) -> Circuit:
    """Remove every operation outside the measurements' backward cone.

    Preserves moment structure (each kept op stays in its original moment);
    empty moments are dropped.  The reduced circuit produces the identical
    joint distribution over all measurement keys.
    """
    if not circuit.has_measurements():
        return circuit.copy()
    active: Set[Qid] = set()
    kept_per_moment: List[List] = []
    for moment in reversed(circuit.moments):
        kept = []
        for op in moment.operations:
            if op.is_measurement or any(q in active for q in op.qubits):
                active.update(op.qubits)
                kept.append(op)
        kept_per_moment.append(kept)
    kept_per_moment.reverse()

    out = Circuit()
    for ops in kept_per_moment:
        if ops:
            out.append_new_moment(ops)
    return out
