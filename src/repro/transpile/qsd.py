"""Quantum Shannon decomposition: arbitrary unitaries to CNOT + rotations.

Implements Shende, Bullock & Markov (IEEE TCAD 25, 1000 (2006)): any
``2^n x 2^n`` unitary factors recursively via the cosine-sine decomposition

    U = (u1 (+) u2) . UCRy . (v1 (+) v2)

where the cosine-sine middle factor is a multiplexed Ry on the most
significant qubit, and each block-diagonal factor demultiplexes as

    w1 (+) w2 = (I (x) V) . UCRz . (I (x) W)

with ``V D^2 V^dag = w1 w2^dag`` (eigendecomposition), ``D`` the square
root of the eigenvalues, and ``W = D V^dag w2``.  Recursion bottoms out at
single-qubit ZYZ rotations.

This gives the package a general-purpose compile path: any ``MatrixGate``
(of any width) can be lowered to {Rz, Ry, CNOT}, which every simulation
state supports.  Global phase is tracked and returned, so tests can verify
*exact* equality, not just equality up to phase.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.linalg

from ..circuits.circuit import Circuit
from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid
from .euler import decompose_single_qubit
from .multiplexor import multiplexed_rotation

_ATOL = 1e-9


def _demultiplex(
    w1: np.ndarray, w2: np.ndarray, qubits: Sequence[Qid]
) -> Tuple[float, List[GateOperation]]:
    """Decompose ``w1 (+) w2`` on ``qubits`` (qubits[0] selects the block).

    Returns ``(global_phase, ops)``.
    """
    product = w1 @ w2.conj().T
    # Unitary => normal => complex Schur form is diagonal with unitary Q.
    t, v = scipy.linalg.schur(product, output="complex")
    eigs = np.diagonal(t)
    phases = np.angle(eigs) / 2.0
    # V D^2 V^dag = w1 w2^dag with D = diag(e^{i phi}).  Choosing
    # W = D V^dag w2 gives V D W = w1 and V D^dag W = w2 exactly.
    d = np.exp(1j * phases)
    w = d[:, None] * (v.conj().T @ w2)

    phase_w, ops_w = _decompose(w, qubits[1:])
    # Multiplexed Rz on qubits[0] implementing diag(D, D^dag):
    # Rz angles theta_j = -2 phi_j (so e^{-i theta/2} = e^{i phi} on block 0).
    rz_ops = multiplexed_rotation(
        "z", -2.0 * phases, controls=list(qubits[1:]), target=qubits[0]
    )
    phase_v, ops_v = _decompose(v, qubits[1:])
    return phase_w + phase_v, ops_w + rz_ops + ops_v


def _decompose(
    u: np.ndarray, qubits: Sequence[Qid]
) -> Tuple[float, List[GateOperation]]:
    """Recursive QSD returning ``(global_phase, ops)`` (left to right)."""
    n = len(qubits)
    if n == 1:
        return decompose_single_qubit(u, qubits[0])
    half = u.shape[0] // 2
    (u1, u2), theta, (v1h, v2h) = scipy.linalg.cossin(
        u, p=half, q=half, separate=True
    )
    phase_v, ops_v = _demultiplex(v1h, v2h, qubits)
    ry_ops = multiplexed_rotation(
        "y", 2.0 * np.asarray(theta), controls=list(qubits[1:]), target=qubits[0]
    )
    phase_u, ops_u = _demultiplex(u1, u2, qubits)
    return phase_v + phase_u, ops_v + ry_ops + ops_u


def quantum_shannon_decompose(
    u: np.ndarray, qubits: Sequence[Qid]
) -> Tuple[float, List[GateOperation]]:
    """Decompose unitary ``u`` over ``qubits`` into {Rz, Ry, CNOT} ops.

    ``qubits[0]`` is the most significant bit of the matrix index (the
    package-wide big-endian convention).  Returns ``(alpha, ops)`` such that
    the ops' composite unitary times ``e^{i alpha}`` equals ``u`` exactly.

    Raises:
        ValueError: If ``u`` is not unitary or its size does not match.
    """
    u = np.asarray(u, dtype=np.complex128)
    n = len(qubits)
    if u.shape != (2**n, 2**n):
        raise ValueError(
            f"Matrix shape {u.shape} does not match {n} qubits"
        )
    if not np.allclose(u.conj().T @ u, np.eye(2**n), atol=1e-8):
        raise ValueError("Matrix is not unitary")
    if n == 0:
        raise ValueError("Need at least one qubit")
    return _decompose(u, list(qubits))


def shannon_circuit(u: np.ndarray, qubits: Sequence[Qid]) -> Circuit:
    """The QSD as a :class:`Circuit` (global phase dropped)."""
    _, ops = quantum_shannon_decompose(u, qubits)
    circuit = Circuit()
    circuit.append(ops)
    return circuit
