"""Qubit routing: SWAP insertion for connectivity-constrained devices.

Real devices (and nearest-neighbor-friendly representations like MPS)
only offer two-qubit gates between adjacent qubits.  ``route_circuit``
rewrites an all-to-all circuit for a target :class:`Topology` by tracking
a logical-to-physical mapping and inserting SWAPs along shortest paths —
the classic greedy router.

Correctness contract: simulating the routed circuit and permuting the
qubit axes by the returned final mapping reproduces the original
circuit's state exactly (tested property).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..circuits import gates
from ..circuits.circuit import Circuit
from ..circuits.operations import GateOperation
from ..circuits.qubits import GridQubit, LineQubit, Qid


class Topology:
    """A device connectivity graph over physical qubits."""

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("Topology needs at least one qubit")
        if not nx.is_connected(graph):
            raise ValueError("Topology graph must be connected")
        self.graph = graph
        self.qubits: Tuple[Qid, ...] = tuple(sorted(graph.nodes(), key=repr))

    @classmethod
    def line(cls, n: int) -> "Topology":
        """A 1-D chain of ``LineQubit``s — the MPS-native layout."""
        graph = nx.Graph()
        qubits = LineQubit.range(n)
        graph.add_nodes_from(qubits)
        graph.add_edges_from(zip(qubits, qubits[1:]))
        return cls(graph)

    @classmethod
    def ring(cls, n: int) -> "Topology":
        """A closed chain."""
        if n < 3:
            raise ValueError("A ring needs at least 3 qubits")
        topo = cls.line(n)
        qubits = LineQubit.range(n)
        topo.graph.add_edge(qubits[-1], qubits[0])
        return cls(topo.graph)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "Topology":
        """A 2-D grid of ``GridQubit``s — the superconducting-chip layout."""
        graph = nx.Graph()
        for r in range(rows):
            for c in range(cols):
                graph.add_node(GridQubit(r, c))
                if c > 0:
                    graph.add_edge(GridQubit(r, c - 1), GridQubit(r, c))
                if r > 0:
                    graph.add_edge(GridQubit(r - 1, c), GridQubit(r, c))
        return cls(graph)

    def are_adjacent(self, a: Qid, b: Qid) -> bool:
        """Whether a two-qubit gate may act directly on (a, b)."""
        return self.graph.has_edge(a, b)

    def shortest_path(self, a: Qid, b: Qid) -> List[Qid]:
        """A shortest physical path from a to b (inclusive)."""
        return nx.shortest_path(self.graph, a, b)

    def __repr__(self) -> str:
        return (
            f"Topology(num_qubits={len(self.qubits)}, "
            f"num_edges={self.graph.number_of_edges()})"
        )


def is_routed(circuit: Circuit, topology: Topology) -> bool:
    """Whether every multi-qubit op acts on adjacent physical qubits."""
    nodes = set(topology.qubits)
    for op in circuit.all_operations():
        if any(q not in nodes for q in op.qubits):
            return False
        if len(op.qubits) == 2 and not op.is_measurement:
            if not topology.are_adjacent(*op.qubits):
                return False
        if len(op.qubits) > 2 and not op.is_measurement:
            return False
    return True


class RoutedCircuit:
    """Routing output: the rewritten circuit plus the qubit maps.

    Attributes:
        circuit: The routed circuit over physical qubits.
        initial_mapping: logical -> physical placement at circuit start.
        final_mapping: logical -> physical placement after all SWAPs;
            measurement records of logical qubit ``l`` live on physical
            qubit ``final_mapping[l]`` only for *terminal* measurements —
            mid-circuit ones are remapped at their own moment.
        num_swaps: SWAPs inserted.
    """

    def __init__(
        self,
        circuit: Circuit,
        initial_mapping: Dict[Qid, Qid],
        final_mapping: Dict[Qid, Qid],
        num_swaps: int,
    ):
        self.circuit = circuit
        self.initial_mapping = dict(initial_mapping)
        self.final_mapping = dict(final_mapping)
        self.num_swaps = int(num_swaps)

    def __repr__(self) -> str:
        return (
            f"RoutedCircuit(num_swaps={self.num_swaps}, "
            f"num_ops={self.circuit.num_operations()})"
        )


def route_circuit(
    circuit: Circuit,
    topology: Topology,
    initial_mapping: Optional[Dict[Qid, Qid]] = None,
) -> RoutedCircuit:
    """Greedy shortest-path router.

    Walks the circuit in order keeping a logical->physical map.  A
    two-qubit gate on non-adjacent physical qubits triggers SWAPs that
    walk the first operand along the shortest path until adjacent; the
    map is updated accordingly.  Single-qubit gates and measurements are
    remapped directly.

    Args:
        circuit: Logical circuit (1q/2q gates + measurements; decompose
            larger gates first with ``DecomposeMultiQubitGates``).
        topology: Target connectivity.
        initial_mapping: Optional placement; defaults to logical qubits in
            sorted order onto ``topology.qubits`` in sorted order.

    Raises:
        ValueError: If the circuit needs more qubits than the topology
            has, contains >2-qubit non-measurement gates, or the given
            placement is not a bijection into the topology.
    """
    logical = circuit.all_qubits()
    if len(logical) > len(topology.qubits):
        raise ValueError(
            f"Circuit uses {len(logical)} qubits but the topology has "
            f"only {len(topology.qubits)}"
        )
    if initial_mapping is None:
        initial_mapping = dict(zip(logical, topology.qubits))
    else:
        targets = list(initial_mapping.values())
        if len(set(targets)) != len(targets) or any(
            p not in set(topology.qubits) for p in targets
        ):
            raise ValueError("initial_mapping must inject into the topology")
        missing = [q for q in logical if q not in initial_mapping]
        if missing:
            raise ValueError(f"initial_mapping misses qubits: {missing}")

    to_physical = dict(initial_mapping)
    occupant: Dict[Qid, Qid] = {p: l for l, p in to_physical.items()}
    out_ops: List[GateOperation] = []
    num_swaps = 0

    def swap_physical(pa: Qid, pb: Qid) -> None:
        nonlocal num_swaps
        out_ops.append(gates.SWAP.on(pa, pb))
        num_swaps += 1
        la, lb = occupant.get(pa), occupant.get(pb)
        if la is not None:
            to_physical[la] = pb
        if lb is not None:
            to_physical[lb] = pa
        occupant[pa], occupant[pb] = lb, la

    for op in circuit.all_operations():
        if len(op.qubits) > 2 and not op.is_measurement:
            raise ValueError(
                f"Route 1q/2q circuits only; decompose {op!r} first"
            )
        if len(op.qubits) == 2 and not op.is_measurement:
            la, lb = op.qubits
            pa, pb = to_physical[la], to_physical[lb]
            if not topology.are_adjacent(pa, pb):
                path = topology.shortest_path(pa, pb)
                # Walk la's occupant down the path until adjacent to pb.
                for step in path[1:-1]:
                    swap_physical(to_physical[la], step)
            out_ops.append(
                op.with_qubits(to_physical[la], to_physical[lb])
            )
        else:
            out_ops.append(
                op.with_qubits(*(to_physical[q] for q in op.qubits))
            )

    routed = Circuit()
    routed.append(out_ops)
    return RoutedCircuit(routed, initial_mapping, dict(to_physical), num_swaps)
