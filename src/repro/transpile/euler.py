"""ZYZ Euler-angle decomposition of single-qubit unitaries.

Any ``U in U(2)`` factors as ``U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``
with ``R_a(t) = exp(-i a t / 2)``.  This is the leaf of the quantum Shannon
decomposition in :mod:`repro.transpile.qsd` and the engine behind the
``DecomposeSingleQubitMatrices`` pass.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from ..circuits import gates
from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid

_ATOL = 1e-10


def zyz_angles(u: np.ndarray) -> Tuple[float, float, float, float]:
    """Angles ``(alpha, beta, gamma, delta)`` with
    ``u = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``.

    Raises:
        ValueError: If ``u`` is not a 2x2 unitary.
    """
    u = np.asarray(u, dtype=np.complex128)
    if u.shape != (2, 2):
        raise ValueError(f"Expected a 2x2 matrix, got shape {u.shape}")
    if not np.allclose(u.conj().T @ u, np.eye(2), atol=1e-8):
        raise ValueError("Matrix is not unitary")

    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    alpha = cmath.phase(det) / 2.0
    v = u * cmath.exp(-1j * alpha)  # special unitary now

    gamma = 2.0 * math.atan2(abs(v[1, 0]), abs(v[0, 0]))
    if abs(v[0, 0]) <= _ATOL:
        # Anti-diagonal: only beta - delta is fixed; choose delta = 0.
        beta = 2.0 * cmath.phase(v[1, 0])
        delta = 0.0
    elif abs(v[1, 0]) <= _ATOL:
        # Diagonal: only beta + delta is fixed; choose delta = 0.
        beta = 2.0 * cmath.phase(v[1, 1])
        delta = 0.0
    else:
        plus = cmath.phase(v[1, 1])  # (beta + delta) / 2
        minus = cmath.phase(v[1, 0])  # (beta - delta) / 2
        beta = plus + minus
        delta = plus - minus
    return alpha, beta, gamma, delta


def zyz_matrix(alpha: float, beta: float, gamma: float, delta: float) -> np.ndarray:
    """Reassemble ``e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)`` (for tests)."""

    def rz(t):
        return np.diag([cmath.exp(-0.5j * t), cmath.exp(0.5j * t)])

    def ry(t):
        c, s = math.cos(t / 2.0), math.sin(t / 2.0)
        return np.array([[c, -s], [s, c]], dtype=np.complex128)

    return cmath.exp(1j * alpha) * (rz(beta) @ ry(gamma) @ rz(delta))


def decompose_single_qubit(
    u: np.ndarray, qubit: Qid, *, atol: float = 1e-9
) -> Tuple[float, List[GateOperation]]:
    """Decompose ``u`` on ``qubit`` into at most three rotation operations.

    Returns ``(alpha, ops)`` where ``alpha`` is the global phase and ``ops``
    (applied left to right) reproduce ``u`` up to that phase.  Rotations
    with negligible angle are omitted, so Z-like inputs yield one op.
    """
    alpha, beta, gamma, delta = zyz_angles(u)
    ops: List[GateOperation] = []
    if abs(delta) > atol:
        ops.append(gates.Rz(delta).on(qubit))
    if abs(gamma) > atol:
        ops.append(gates.Ry(gamma).on(qubit))
    if abs(beta) > atol:
        ops.append(gates.Rz(beta).on(qubit))
    return alpha, ops
