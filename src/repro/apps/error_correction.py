"""The 3-qubit bit-flip repetition code under Pauli noise.

The canonical error-correction workload: encode one logical qubit into
three physical ones, expose them to bit-flip noise of strength ``p``,
extract parity syndromes with ancillas (mid-circuit measurements), and
decode by majority vote.  The logical error rate has a closed form,

    p_L = 3 p^2 (1 - p) + p^3 = 3 p^2 - 2 p^3,

making this a sharp statistical end-to-end test of the whole noisy
sampling stack — and, on the stabilizer backends with stochastic Pauli
noise, one that scales far beyond dense simulation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuits import CNOT, Circuit, LineQubit, Qid, X, measure
from ..circuits.channels import bit_flip


def encode_ops(data: Sequence[Qid]) -> List:
    """|b> -> |bbb> on three data qubits (two CNOTs from the first)."""
    if len(data) != 3:
        raise ValueError(f"The repetition code uses 3 data qubits, got {len(data)}")
    return [CNOT.on(data[0], data[1]), CNOT.on(data[0], data[2])]


def repetition_code_circuit(
    p: float,
    *,
    logical_one: bool = False,
    with_syndrome: bool = True,
    qubits: Optional[Sequence[Qid]] = None,
) -> Circuit:
    """Encode, expose to bit-flip noise, extract syndrome, measure data.

    Register: 3 data qubits then 2 syndrome ancillas (if enabled).
    Measurement keys: ``"syndrome"`` (mid-circuit; parities q0q1 and
    q1q2) and ``"data"`` (terminal).

    Args:
        p: Bit-flip probability applied independently to each data qubit.
        logical_one: Encode |1>_L instead of |0>_L.
        with_syndrome: Include ancilla-based syndrome extraction; without
            it the circuit is data-only (decode purely by majority vote).
        qubits: Optional explicit 5- (or 3-) qubit register.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    n = 5 if with_syndrome else 3
    if qubits is None:
        qubits = LineQubit.range(n)
    qubits = list(qubits)
    if len(qubits) != n:
        raise ValueError(f"Expected {n} qubits, got {len(qubits)}")
    data = qubits[:3]

    circuit = Circuit()
    if logical_one:
        circuit.append(X.on(data[0]))
    circuit.append(encode_ops(data))
    for q in data:
        circuit.append(bit_flip(p).on(q))
    if with_syndrome:
        anc = qubits[3:]
        circuit.append(CNOT.on(data[0], anc[0]))
        circuit.append(CNOT.on(data[1], anc[0]))
        circuit.append(CNOT.on(data[1], anc[1]))
        circuit.append(CNOT.on(data[2], anc[1]))
        circuit.append(measure(*anc, key="syndrome"))
    circuit.append(measure(*data, key="data"))
    return circuit


def majority_decode(data_bits: Sequence[int]) -> int:
    """The logical bit by majority vote."""
    return int(sum(int(b) for b in data_bits) >= 2)


def decode_with_syndrome(
    data_bits: Sequence[int], syndrome_bits: Sequence[int]
) -> int:
    """Correct the indicated qubit, then read the logical value.

    Syndrome (s01, s12) points at the flipped qubit: (1,0) -> q0,
    (1,1) -> q1, (0,1) -> q2, (0,0) -> none.  For the distance-3 code
    both decoders have identical logical error rates; the syndrome path
    exercises mid-circuit measurement.
    """
    bits = [int(b) for b in data_bits]
    s01, s12 = int(syndrome_bits[0]), int(syndrome_bits[1])
    if (s01, s12) == (1, 0):
        bits[0] ^= 1
    elif (s01, s12) == (1, 1):
        bits[1] ^= 1
    elif (s01, s12) == (0, 1):
        bits[2] ^= 1
    return majority_decode(bits)


def logical_error_rate(result, *, encoded: int = 0, use_syndrome: bool = True) -> float:
    """Fraction of repetitions decoding to the wrong logical value."""
    data = np.asarray(result.measurements["data"])
    if use_syndrome and "syndrome" in result.measurements:
        syndrome = np.asarray(result.measurements["syndrome"])
        decoded = np.array(
            [
                decode_with_syndrome(row, syn)
                for row, syn in zip(data, syndrome)
            ]
        )
    else:
        decoded = np.array([majority_decode(row) for row in data])
    return float(np.mean(decoded != encoded))


def theoretical_logical_error_rate(p: float) -> float:
    """``3 p^2 - 2 p^3``: two or three simultaneous flips defeat distance 3."""
    return 3.0 * p**2 - 2.0 * p**3


def syndrome_distribution(p: float) -> np.ndarray:
    """Exact distribution over (s01, s12) in index order 00, 01, 10, 11."""
    q = 1.0 - p
    p_none = q**3 + 0.0  # no flip
    p_q0, p_q1, p_q2 = (p * q * q,) * 3
    p_q0q1 = p_q1q2 = p_q0q2 = p * p * q
    p_all = p**3
    # (s01, s12): q0 -> (1,0); q1 -> (1,1); q2 -> (0,1);
    # q0q1 -> (0,1); q1q2 -> (1,0); q0q2 -> (1,1); none/all -> (0,0).
    out = np.zeros(4)
    out[0b00] = p_none + p_all
    out[0b01] = p_q2 + p_q0q1
    out[0b10] = p_q0 + p_q1q2
    out[0b11] = p_q1 + p_q0q2
    return out
