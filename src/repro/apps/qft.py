"""Quantum Fourier transform and phase estimation.

The QFT is the canonical *worst case* for gate-by-gate sampling over dense
states (every qubit entangles with every other through the controlled
phases), making it a useful stress workload alongside the paper's
Clifford/MPS-friendly examples.  Phase estimation then demonstrates the
full interference pattern end to end: the sampler must reproduce sharply
peaked output distributions, not just uniform ones.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import (
    Circuit,
    ControlledGate,
    H,
    LineQubit,
    MatrixGate,
    Qid,
    SWAP,
    ZPowGate,
    measure,
)


def qft_circuit(
    qubits: Sequence[Qid],
    *,
    inverse: bool = False,
    final_swaps: bool = True,
    measure_key: Optional[str] = None,
) -> Circuit:
    """The quantum Fourier transform over ``qubits`` (big-endian).

    Args:
        qubits: Register; ``qubits[0]`` is the most significant bit.
        inverse: Build the inverse QFT instead.
        final_swaps: Include the bit-reversal SWAP network so the output
            ordering matches the textbook definition.
        measure_key: Append a terminal measurement under this key.
    """
    qubits = list(qubits)
    n = len(qubits)
    if n == 0:
        raise ValueError("QFT needs at least one qubit")

    ops = []
    for i in range(n):
        ops.append(H.on(qubits[i]))
        for j in range(i + 1, n):
            # Controlled phase of angle pi / 2^{j-i}: CZ**(1/2^{j-i}).
            exponent = 1.0 / (2 ** (j - i))
            ops.append(
                ControlledGate(ZPowGate(exponent=exponent)).on(
                    qubits[j], qubits[i]
                )
            )
    if final_swaps:
        for i in range(n // 2):
            ops.append(SWAP.on(qubits[i], qubits[n - 1 - i]))

    if inverse:
        ops = [_inverse_op(op) for op in reversed(ops)]

    circuit = Circuit(ops)
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def _inverse_op(op):
    """Invert H/SWAP (self-inverse) and controlled-Z powers."""
    gate = op.gate
    if isinstance(gate, ControlledGate):
        sub = gate.sub_gate
        return ControlledGate(sub**-1, gate.num_controls).on(*op.qubits)
    return op  # H and SWAP are involutions


def qft_matrix(n: int) -> np.ndarray:
    """The exact ``2^n x 2^n`` QFT matrix ``F[j,k] = w^{jk} / sqrt(N)``."""
    dim = 2**n
    j, k = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
    return np.exp(2j * math.pi * j * k / dim) / math.sqrt(dim)


def phase_estimation_circuit(
    unitary: np.ndarray,
    n_phase_qubits: int,
    *,
    target_preparation: Optional[Sequence] = None,
    measure_key: str = "phase",
) -> Tuple[Circuit, List[Qid], List[Qid]]:
    """Textbook quantum phase estimation for a single-qubit ``unitary``.

    Register layout: ``n_phase_qubits`` counting qubits (most significant
    first) followed by one target qubit.  The caller prepares the target in
    an eigenstate via ``target_preparation`` ops (defaults to none = |0>).

    Returns ``(circuit, phase_qubits, target_qubits)``.  Measuring the
    counting register yields the best ``n``-bit approximation of the
    eigenphase ``phi`` where ``U|u> = e^{2 pi i phi}|u>``.
    """
    unitary = np.asarray(unitary, dtype=np.complex128)
    if unitary.shape != (2, 2):
        raise ValueError("phase_estimation_circuit supports 1-qubit unitaries")
    n = int(n_phase_qubits)
    if n < 1:
        raise ValueError("Need at least one phase qubit")

    phase_qubits = LineQubit.range(n)
    target = LineQubit(n)
    circuit = Circuit()
    if target_preparation:
        circuit.append(target_preparation)
    circuit.append(H.on(q) for q in phase_qubits)
    # Controlled-U^{2^k}; counting qubit j controls U^{2^{n-1-j}}.
    for j, q in enumerate(phase_qubits):
        power = 2 ** (n - 1 - j)
        u_pow = np.linalg.matrix_power(unitary, power)
        circuit.append(ControlledGate(MatrixGate(u_pow)).on(q, target))
    circuit.append(
        qft_circuit(phase_qubits, inverse=True, final_swaps=True).moments
    )
    circuit.append(measure(*phase_qubits, key=measure_key))
    return circuit, list(phase_qubits), [target]


def phase_from_bits(bits: Sequence[int]) -> float:
    """The phase estimate ``0.b0 b1 b2... in [0, 1)`` from measured bits."""
    return sum(int(b) / 2 ** (i + 1) for i, b in enumerate(bits))


def estimate_phase(
    samples: np.ndarray,
) -> float:
    """Most frequent phase estimate from a ``(reps, n)`` sample array."""
    samples = np.asarray(samples)
    rows, counts = np.unique(samples, axis=0, return_counts=True)
    return phase_from_bits(rows[int(np.argmax(counts))])
