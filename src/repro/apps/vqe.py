"""Variational quantum eigensolver for the transverse-field Ising model.

Hamiltonian on an open chain of ``n`` spins:

    H = -J sum_i Z_i Z_{i+1} - h sum_i X_i

The ansatz is the standard hardware-efficient alternation of ZZ-coupling
layers (CNOT - Rz - CNOT) and Rx mixers.  Energy is estimated from two
measurement settings — Z basis for the coupling terms and X basis for the
field terms — using any bitstring sampler, i.e. exactly the interface the
BGLS simulator provides.  An exact dense diagonalization is included for
verification at small ``n``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    ParamResolver,
    Qid,
    Rx,
    Rz,
    Symbol,
    measure,
)
from .sampling import sample_bits as _sample_bits

SamplerFn = Callable[[Circuit, int], np.ndarray]
"""``(resolved_circuit, repetitions) -> (reps, n) bit array``.

A :class:`repro.sampler.Simulator` is accepted anywhere a ``SamplerFn``
is (drawn through its ``sample_bitstrings`` API).  A Simulator with a
pooled executor keeps its worker pool warm across calls — the memoized
``Program.specialize`` cache hands the pool the same compiled plan for
repeated circuits, so the final sampled re-estimation in
:func:`optimize_tfim` pays worker startup at most once per basis."""


@dataclass(frozen=True)
class TFIMProblem:
    """A transverse-field Ising chain instance."""

    num_sites: int
    coupling: float = 1.0  # J
    field: float = 1.0  # h

    def __post_init__(self):
        if self.num_sites < 2:
            raise ValueError("TFIM chain needs at least 2 sites")

    def bonds(self) -> List[Tuple[int, int]]:
        """Open-chain nearest-neighbor couplings (i, i+1)."""
        return [(i, i + 1) for i in range(self.num_sites - 1)]


def tfim_hamiltonian_matrix(problem: TFIMProblem) -> np.ndarray:
    """Dense ``2^n x 2^n`` Hamiltonian (verification only)."""
    n = problem.num_sites
    x = np.array([[0, 1], [1, 0]], dtype=np.complex128)
    z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
    eye = np.eye(2, dtype=np.complex128)

    def kron_at(op, sites):
        mats = [op if i in sites else eye for i in range(n)]
        out = mats[0]
        for m in mats[1:]:
            out = np.kron(out, m)
        return out

    ham = np.zeros((2**n, 2**n), dtype=np.complex128)
    for i, j in problem.bonds():
        ham -= problem.coupling * kron_at(z, {i, j})
    for i in range(n):
        ham -= problem.field * kron_at(x, {i})
    return ham


def exact_ground_energy(problem: TFIMProblem) -> float:
    """Smallest eigenvalue of the dense Hamiltonian."""
    return float(np.linalg.eigvalsh(tfim_hamiltonian_matrix(problem))[0])


def ansatz_symbols(layers: int) -> List[Symbol]:
    """The ``2 * layers`` symbols [g0, b0, g1, b1, ...] of the ansatz."""
    out = []
    for layer in range(layers):
        out.append(Symbol(f"g{layer}"))
        out.append(Symbol(f"b{layer}"))
    return out


def tfim_ansatz_circuit(
    problem: TFIMProblem,
    layers: int = 1,
    qubits: Optional[Sequence[Qid]] = None,
    basis: str = "z",
    measure_key: Optional[str] = "m",
) -> Circuit:
    """The p-layer ansatz, measured in the ``z`` or ``x`` basis.

    Layer structure (parameters ``g{l}``, ``b{l}``):
    ``prod_bonds exp(-i g Z_i Z_j / 2)`` then ``Rx(b)`` on every site,
    starting from ``|+>^n``.
    """
    if basis not in ("z", "x"):
        raise ValueError(f"basis must be 'z' or 'x', got {basis!r}")
    n = problem.num_sites
    if qubits is None:
        qubits = LineQubit.range(n)
    qubits = list(qubits)

    circuit = Circuit(H.on(q) for q in qubits)
    for layer in range(layers):
        gamma, beta = Symbol(f"g{layer}"), Symbol(f"b{layer}")
        for i, j in problem.bonds():
            circuit.append(CNOT.on(qubits[i], qubits[j]))
            circuit.append(Rz(gamma).on(qubits[j]))
            circuit.append(CNOT.on(qubits[i], qubits[j]))
        for q in qubits:
            circuit.append(Rx(beta).on(q))
    if basis == "x":
        # Rotate X eigenbasis onto the computational basis.
        circuit.append(H.on(q) for q in qubits)
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def energy_from_samples(
    problem: TFIMProblem, z_samples: np.ndarray, x_samples: np.ndarray
) -> float:
    """TFIM energy estimate from Z-basis and X-basis sample arrays.

    ``<Z_i Z_j>`` comes from the Z samples; ``<X_i>`` from the X samples
    (where a measured bit b maps to eigenvalue (-1)^b).
    """
    z = 1.0 - 2.0 * np.asarray(z_samples, dtype=float)  # bits -> +-1
    x = 1.0 - 2.0 * np.asarray(x_samples, dtype=float)
    energy = 0.0
    for i, j in problem.bonds():
        energy -= problem.coupling * float(np.mean(z[:, i] * z[:, j]))
    for i in range(problem.num_sites):
        energy -= problem.field * float(np.mean(x[:, i]))
    return energy


def exact_energy_of_parameters(
    problem: TFIMProblem, params: Sequence[float], layers: int = 1
) -> float:
    """Noise-free ansatz energy ``<psi(theta)|H|psi(theta)>`` (dense)."""
    resolver = _resolver(params, layers)
    circuit = tfim_ansatz_circuit(
        problem, layers=layers, measure_key=None
    ).resolve_parameters(resolver)
    psi = circuit.final_state_vector()
    ham = tfim_hamiltonian_matrix(problem)
    return float(np.real(psi.conj() @ (ham @ psi)))


def _resolver(params: Sequence[float], layers: int) -> ParamResolver:
    if len(params) != 2 * layers:
        raise ValueError(f"Expected {2 * layers} parameters, got {len(params)}")
    mapping = {}
    for layer in range(layers):
        mapping[f"g{layer}"] = float(params[2 * layer])
        mapping[f"b{layer}"] = float(params[2 * layer + 1])
    return ParamResolver(mapping)


@dataclass
class VQEResult:
    """Outcome of a VQE optimization run."""

    best_params: Tuple[float, ...]
    best_energy: float
    exact_energy: float
    evaluations: int

    @property
    def relative_error(self) -> float:
        """|best - exact| / |exact| against the dense ground energy."""
        return abs(self.best_energy - self.exact_energy) / abs(self.exact_energy)


def optimize_tfim(
    problem: TFIMProblem,
    layers: int = 1,
    grid_size: int = 8,
    refinements: int = 2,
    sampler: Optional[SamplerFn] = None,
    repetitions: int = 500,
) -> VQEResult:
    """Grid search with local refinement over the ansatz parameters.

    The coarse-to-fine search keeps the optimizer deterministic and
    derivative-free.  Energies are exact (dense) during the search; if a
    ``sampler`` is given, the best parameters are re-estimated from
    samples, demonstrating the full sampling pipeline.
    """
    num_params = 2 * layers
    center = np.zeros(num_params)
    width = math.pi
    best = (float("inf"), tuple(center))
    evaluations = 0

    for _ in range(1 + refinements):
        axes = [
            np.linspace(c - width, c + width, grid_size) for c in center
        ]
        for point in itertools.product(*axes):
            energy = exact_energy_of_parameters(problem, point, layers=layers)
            evaluations += 1
            if energy < best[0]:
                best = (energy, tuple(float(p) for p in point))
        center = np.asarray(best[1])
        width /= grid_size / 2.0

    best_energy, best_params = best[0], best[1]
    if sampler is not None:
        resolver = _resolver(best_params, layers)
        z_circuit = tfim_ansatz_circuit(
            problem, layers=layers, basis="z"
        ).resolve_parameters(resolver)
        x_circuit = tfim_ansatz_circuit(
            problem, layers=layers, basis="x"
        ).resolve_parameters(resolver)
        best_energy = energy_from_samples(
            problem,
            _sample_bits(sampler, z_circuit, repetitions),
            _sample_bits(sampler, x_circuit, repetitions),
        )

    return VQEResult(
        best_params=best_params,
        best_energy=best_energy,
        exact_energy=exact_ground_energy(problem),
        evaluations=evaluations,
    )
