"""Quantum volume: heavy-output sampling on square model circuits.

The IBM quantum-volume protocol (Cross et al. 2019): an ``m``-qubit,
``m``-layer circuit of random qubit permutations and Haar-random SU(4)
blocks; a run *passes* when the sampled heavy-output probability (mass on
bitstrings above the median ideal probability) exceeds 2/3.  For an ideal
simulator the asymptotic HOP is ``(1 + ln 2) / 2 ~ 0.85``, which the BGLS
sampler must reproduce — a sharp statistical end-to-end test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np
import scipy.stats

from ..circuits import Circuit, LineQubit, MatrixGate, Qid, measure
from ..states.base import bits_to_index

IDEAL_ASYMPTOTIC_HOP = (1.0 + np.log(2.0)) / 2.0


def quantum_volume_circuit(
    m: int,
    qubits: Optional[Sequence[Qid]] = None,
    random_state: Union[int, np.random.Generator, None] = None,
    measure_key: Optional[str] = "z",
) -> Circuit:
    """An ``m x m`` quantum-volume model circuit.

    Each of the ``m`` layers permutes the qubits uniformly at random and
    applies an independent Haar-random SU(4) to each adjacent pair of the
    permuted order (one qubit idles when ``m`` is odd).
    """
    if m < 2:
        raise ValueError("Quantum volume needs at least 2 qubits")
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    if qubits is None:
        qubits = LineQubit.range(m)
    qubits = list(qubits)
    if len(qubits) != m:
        raise ValueError(f"Expected {m} qubits, got {len(qubits)}")

    circuit = Circuit()
    for _ in range(m):
        order = rng.permutation(m)
        ops = []
        for k in range(m // 2):
            a, b = qubits[order[2 * k]], qubits[order[2 * k + 1]]
            seed = int(rng.integers(2**31))
            u = scipy.stats.unitary_group.rvs(4, random_state=seed)
            ops.append(MatrixGate(u).on(a, b))
        circuit.append_new_moment(ops)
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def ideal_probabilities(circuit: Circuit) -> np.ndarray:
    """Exact output distribution of the (measurement-free) circuit.

    Uses the full measured register as the qubit order: with odd ``m`` a
    qubit may idle through every layer (present only in the measurement),
    and it must still occupy its slot in the bitstring index.
    """
    qubits = circuit.all_qubits()
    psi = circuit.without_measurements().final_state_vector(qubit_order=qubits)
    return np.abs(psi) ** 2


def heavy_set(circuit: Circuit) -> Set[int]:
    """Basis states with ideal probability above the median."""
    probs = ideal_probabilities(circuit)
    median = float(np.median(probs))
    return {int(i) for i in np.flatnonzero(probs > median)}


def heavy_output_probability(
    samples: np.ndarray, heavy: Set[int]
) -> float:
    """Fraction of sampled bitstrings inside the heavy set."""
    samples = np.asarray(samples)
    hits = sum(1 for row in samples if bits_to_index(row) in heavy)
    return hits / samples.shape[0]


@dataclass
class QuantumVolumeResult:
    """Outcome of one quantum-volume trial batch."""

    m: int
    num_circuits: int
    repetitions: int
    hops: Tuple[float, ...]

    @property
    def mean_hop(self) -> float:
        """Mean heavy-output probability across circuits."""
        return float(np.mean(self.hops))

    @property
    def passed(self) -> bool:
        """The protocol's (unconfidenced) 2/3 threshold."""
        return self.mean_hop > 2.0 / 3.0

    @property
    def log2_quantum_volume(self) -> int:
        """``m`` when the run passes, else 0 (protocol convention)."""
        return self.m if self.passed else 0


def run_quantum_volume(
    m: int,
    sampler,
    num_circuits: int = 5,
    repetitions: int = 200,
    random_state: Union[int, np.random.Generator, None] = None,
) -> QuantumVolumeResult:
    """Run the QV protocol with any ``(circuit, repetitions) -> bits`` sampler."""
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    hops: List[float] = []
    for _ in range(num_circuits):
        circuit = quantum_volume_circuit(
            m, random_state=int(rng.integers(2**31))
        )
        heavy = heavy_set(circuit)
        samples = sampler(circuit, repetitions)
        hops.append(heavy_output_probability(samples, heavy))
    return QuantumVolumeResult(
        m=m,
        num_circuits=num_circuits,
        repetitions=repetitions,
        hops=tuple(hops),
    )
