"""Workload generators for the paper's scaling studies (Figs. 6-7)."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..circuits import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    Qid,
    S,
    T,
    X,
    Y,
    Z,
)

_ONE_QUBIT_GATES = [X, Y, Z, H, S, T]


def _rng(random_state):
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def random_fixed_cnot_circuit(
    qubits: Union[int, Sequence[Qid]],
    n_single_qubit_layers: int,
    n_cnots: int,
    random_state: Union[int, np.random.Generator, None] = None,
) -> Circuit:
    """Random 1-qubit layers plus a *fixed* number of CNOTs (Fig. 7b).

    Keeping the CNOT count constant as width grows fixes the degree of
    entanglement, which is what makes MPS sampling scale ~linearly with
    width in the paper.
    """
    if isinstance(qubits, int):
        qubits = LineQubit.range(qubits)
    qubits = list(qubits)
    rng = _rng(random_state)
    circuit = Circuit()
    for _ in range(n_single_qubit_layers):
        ops = []
        for q in qubits:
            if rng.random() < 0.8:
                gate = _ONE_QUBIT_GATES[int(rng.integers(len(_ONE_QUBIT_GATES)))]
                ops.append(gate.on(q))
        circuit.append_new_moment(ops)
    for _ in range(n_cnots):
        a, b = rng.choice(len(qubits), size=2, replace=False)
        circuit.append(CNOT.on(qubits[int(a)], qubits[int(b)]))
    return circuit


def random_shallow_circuit(
    qubits: Union[int, Sequence[Qid]],
    depth: int,
    cnot_probability: float = 0.2,
    random_state: Union[int, np.random.Generator, None] = None,
) -> Circuit:
    """Fixed-depth random circuit with sparse CNOTs between neighbors (Fig. 7a).

    Shallow depth keeps entanglement far below its exponential ceiling, the
    regime where the paper reports MPS sampling drastically beating the
    dense state vector.
    """
    if isinstance(qubits, int):
        qubits = LineQubit.range(qubits)
    qubits = list(qubits)
    rng = _rng(random_state)
    circuit = Circuit()
    for layer in range(depth):
        ops = []
        used = set()
        # Sparse nearest-neighbor CNOTs.
        for i in range(len(qubits) - 1):
            if i in used or (i + 1) in used:
                continue
            if rng.random() < cnot_probability:
                ops.append(CNOT.on(qubits[i], qubits[i + 1]))
                used.update((i, i + 1))
        for i, q in enumerate(qubits):
            if i not in used and rng.random() < 0.8:
                gate = _ONE_QUBIT_GATES[int(rng.integers(len(_ONE_QUBIT_GATES)))]
                ops.append(gate.on(q))
        circuit.append_new_moment(ops)
    return circuit
