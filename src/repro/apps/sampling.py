"""Shared sampler adaptation for the application modules.

The apps accept either a plain ``SamplerFn`` — ``(resolved_circuit,
repetitions) -> (reps, n) bit array`` — or a
:class:`repro.sampler.Simulator`, which additionally unlocks the cached
parameter-sweep fast path where an app sweeps a template.
"""

from __future__ import annotations

import numpy as np


def sample_bits(sampler, circuit, repetitions: int) -> np.ndarray:
    """Draw final bitstrings from a SamplerFn or a BGLS Simulator."""
    if hasattr(sampler, "sample_bitstrings"):
        return sampler.sample_bitstrings(circuit, repetitions)
    return sampler(circuit, repetitions)
