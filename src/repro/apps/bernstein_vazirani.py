"""Bernstein-Vazirani: recover a secret string in one shot.

A pure Clifford workload (H and CNOT only) with a *deterministic* output,
so it doubles as an end-to-end correctness check for every stabilizer
backend: a single BGLS sample must equal the secret exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits import CNOT, Circuit, H, LineQubit, Qid, X, measure


def parse_secret(secret: Union[str, Sequence[int]]) -> Tuple[int, ...]:
    """Normalize a secret given as '1011' or [1, 0, 1, 1]."""
    if isinstance(secret, str):
        if not secret or any(c not in "01" for c in secret):
            raise ValueError(f"Secret string must be non-empty binary, got {secret!r}")
        return tuple(int(c) for c in secret)
    bits = tuple(int(b) for b in secret)
    if not bits or any(b not in (0, 1) for b in bits):
        raise ValueError(f"Secret must be non-empty bits, got {secret!r}")
    return bits


def bernstein_vazirani_circuit(
    secret: Union[str, Sequence[int]],
    qubits: Optional[Sequence[Qid]] = None,
    measure_key: str = "secret",
) -> Circuit:
    """BV circuit for the oracle ``f(x) = s . x mod 2``.

    Register: ``n`` data qubits then one ancilla.  The oracle is the usual
    phase-kickback construction: ancilla in ``|->``, one CNOT per set
    secret bit.  Measuring the data register returns ``s`` with
    probability 1.
    """
    bits = parse_secret(secret)
    n = len(bits)
    if qubits is None:
        qubits = LineQubit.range(n + 1)
    qubits = list(qubits)
    if len(qubits) != n + 1:
        raise ValueError(f"Need {n + 1} qubits (data + ancilla), got {len(qubits)}")
    data, ancilla = qubits[:n], qubits[n]

    circuit = Circuit()
    circuit.append(X.on(ancilla))
    circuit.append(H.on(ancilla))
    circuit.append(H.on(q) for q in data)
    for q, bit in zip(data, bits):
        if bit:
            circuit.append(CNOT.on(q, ancilla))
    circuit.append(H.on(q) for q in data)
    circuit.append(measure(*data, key=measure_key))
    return circuit


def recover_secret(samples: np.ndarray) -> Tuple[int, ...]:
    """The (deterministic) secret from BV samples; checks consistency."""
    samples = np.asarray(samples)
    first = tuple(int(b) for b in samples[0])
    if not all(tuple(int(b) for b in row) == first for row in samples):
        raise ValueError("BV samples disagree; the circuit or sampler is wrong")
    return first
