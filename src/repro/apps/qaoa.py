"""QAOA for MaxCut (paper Sec. 4.4, Figs. 8-9).

Pipeline exactly as in the paper: a random Erdős–Rényi graph is mapped to
a parameterized QAOA circuit (cost unitaries ``exp(-i gamma Z_i Z_j / 2)``
per edge via CNOT–Rz–CNOT, mixer ``Rx(2 beta)``), a grid sweep over
``(gamma, beta)`` selects the parameters maximizing the average cut of the
sampled bitstrings, and a final, larger run returns the best cut found.

The sampler is pluggable: the paper runs this with the BGLS simulator over
an MPS state with bounded bond dimension (wide, sparse graphs => low
entanglement), which :func:`solve_maxcut` reproduces by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..circuits import (
    CNOT,
    Circuit,
    H,
    LineQubit,
    ParamResolver,
    Qid,
    Rx,
    Rz,
    Symbol,
    measure,
)
from .sampling import sample_bits as _sample_bits

SamplerFn = Callable[[Circuit, int], np.ndarray]
"""A function ``(resolved_circuit, repetitions) -> (reps, n) bit array``.

Everywhere a ``SamplerFn`` is accepted, a
:class:`repro.sampler.Simulator` works too: sweeps then go through its
``sample_bitstrings_sweep`` API, which compiles the parameterized
template once and re-specializes only the resolver-dependent gates per
grid point (memoized per resolved parameter tuple, so refinement passes
revisiting a point skip even that) instead of recompiling the whole
circuit per point.  A Simulator carrying a
:class:`repro.sampler.ProcessPoolExecutor` additionally fans whole grid
points across its warm process pool (``scope="auto"`` resolves to point
scope): the workers are initialized once for the template and reused
across every sweep and refinement call, bit-for-bit identical to the
serial sweep.
"""


def random_graph(
    num_nodes: int,
    edge_probability: float = 0.3,
    random_state: Union[int, np.random.Generator, None] = None,
) -> nx.Graph:
    """Erdős–Rényi G(n, p) graph (paper: n=10, p=0.3), guaranteed non-empty."""
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    while True:
        seed = int(rng.integers(2**31))
        graph = nx.erdos_renyi_graph(num_nodes, edge_probability, seed=seed)
        if graph.number_of_edges() > 0:
            return graph


def qaoa_maxcut_circuit(
    graph: nx.Graph,
    gamma: Union[float, Symbol],
    beta: Union[float, Symbol],
    layers: int = 1,
    qubits: Optional[Sequence[Qid]] = None,
    measure_key: Optional[str] = "z",
) -> Circuit:
    """The p-layer QAOA circuit for MaxCut on ``graph``.

    Args:
        graph: Nodes must be 0..n-1 (networkx default).
        gamma, beta: Cost/mixer angles — floats or symbols for sweeps.
        layers: Number of (cost, mixer) repetitions p.
        qubits: Defaults to ``LineQubit.range(n)`` in node order.
        measure_key: Terminal measurement key (None to omit).
    """
    nodes = sorted(graph.nodes())
    if qubits is None:
        qubits = LineQubit.range(len(nodes))
    index = {node: qubits[i] for i, node in enumerate(nodes)}

    circuit = Circuit(H.on(q) for q in qubits)
    for _ in range(layers):
        for u, v in graph.edges():
            qu, qv = index[u], index[v]
            # exp(-i gamma Z_u Z_v / 2) up to phase: CNOT . Rz(gamma) . CNOT
            circuit.append(CNOT.on(qu, qv))
            circuit.append(Rz(gamma).on(qv))
            circuit.append(CNOT.on(qu, qv))
        for q in qubits:
            circuit.append(Rx(beta).on(q))
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def cut_value(graph: nx.Graph, bits: Sequence[int]) -> int:
    """Number of edges cut by the partition encoded in ``bits``."""
    return int(sum(1 for u, v in graph.edges() if bits[u] != bits[v]))


def average_cut(graph: nx.Graph, samples: np.ndarray) -> float:
    """Mean cut value over sampled bitstrings (the QAOA energy proxy)."""
    return float(np.mean([cut_value(graph, row) for row in np.asarray(samples)]))


@dataclass
class QAOAResult:
    """Outcome of a QAOA MaxCut optimization."""

    best_gamma: float
    best_beta: float
    best_bitstring: Tuple[int, ...]
    best_cut: int
    sweep_gammas: np.ndarray
    sweep_betas: np.ndarray
    sweep_average_cuts: np.ndarray = field(repr=False)

    def partition(self) -> Tuple[List[int], List[int]]:
        """The two node sets of the best cut."""
        left = [i for i, b in enumerate(self.best_bitstring) if b == 0]
        right = [i for i, b in enumerate(self.best_bitstring) if b == 1]
        return left, right


def sweep_parameters(
    graph: nx.Graph,
    sampler: SamplerFn,
    gammas: Sequence[float],
    betas: Sequence[float],
    repetitions: int = 100,
    layers: int = 1,
) -> np.ndarray:
    """Average cut for every (gamma, beta) grid point (paper Fig. 9a).

    Returns an array of shape ``(len(gammas), len(betas))``.

    With a :class:`repro.sampler.Simulator` as ``sampler`` the whole grid
    runs through ``sample_bitstrings_sweep``: the template compiles once
    and every (gamma, beta) point re-specializes just its Rz/Rx records —
    the parameter-scan fast path the Program cache exists for.  If that
    Simulator carries a pooled executor, the grid points themselves fan
    across the warm worker pool (one single-seeded stream per point,
    bit-for-bit identical to the serial sweep), and repeated calls —
    optimizer refinements — reuse the same initialized workers.
    """
    gamma_s, beta_s = Symbol("gamma"), Symbol("beta")
    template = qaoa_maxcut_circuit(graph, gamma_s, beta_s, layers=layers)
    if hasattr(sampler, "sample_bitstrings_sweep"):
        resolvers = [
            ParamResolver({"gamma": float(g), "beta": float(b)})
            for g in gammas
            for b in betas
        ]
        sweeps = sampler.sample_bitstrings_sweep(
            template, resolvers, repetitions=repetitions
        )
        return np.asarray(
            [average_cut(graph, samples) for samples in sweeps]
        ).reshape(len(gammas), len(betas))
    grid = np.empty((len(gammas), len(betas)))
    for i, gamma in enumerate(gammas):
        for j, beta in enumerate(betas):
            resolved = template.resolve_parameters(
                ParamResolver({"gamma": gamma, "beta": beta})
            )
            samples = _sample_bits(sampler, resolved, repetitions)
            grid[i, j] = average_cut(graph, samples)
    return grid


def solve_maxcut(
    graph: nx.Graph,
    sampler: SamplerFn,
    grid_size: int = 10,
    sweep_repetitions: int = 100,
    final_repetitions: int = 400,
    layers: int = 1,
) -> QAOAResult:
    """Full paper pipeline: sweep, pick the best parameters, final run.

    The returned bitstring is the sampled partition maximizing the cut in
    the final run (paper: cut of 9 on its G(10, 0.3) instance).
    """
    gammas = np.linspace(0.0, math.pi, grid_size, endpoint=False)
    betas = np.linspace(0.0, math.pi, grid_size, endpoint=False)
    grid = sweep_parameters(
        graph, sampler, gammas, betas, repetitions=sweep_repetitions, layers=layers
    )
    gi, bj = np.unravel_index(int(np.argmax(grid)), grid.shape)
    best_gamma, best_beta = float(gammas[gi]), float(betas[bj])

    final_circuit = qaoa_maxcut_circuit(graph, best_gamma, best_beta, layers=layers)
    samples = _sample_bits(sampler, final_circuit, final_repetitions)
    cuts = np.asarray([cut_value(graph, row) for row in samples])
    best_row = int(np.argmax(cuts))
    return QAOAResult(
        best_gamma=best_gamma,
        best_beta=best_beta,
        best_bitstring=tuple(int(b) for b in samples[best_row]),
        best_cut=int(cuts[best_row]),
        sweep_gammas=gammas,
        sweep_betas=betas,
        sweep_average_cuts=grid,
    )


def brute_force_maxcut(graph: nx.Graph) -> Tuple[int, Tuple[int, ...]]:
    """Exact MaxCut by enumeration (exponential; verification only)."""
    n = graph.number_of_nodes()
    best = (-1, (0,) * n)
    for mask in range(2 ** (n - 1)):  # fix node 0 in set 0 (symmetry)
        bits = tuple((mask >> (n - 1 - i)) & 1 if i > 0 else 0 for i in range(n))
        value = cut_value(graph, bits)
        if value > best[0]:
            best = (value, bits)
    return best
