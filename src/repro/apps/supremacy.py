"""Random-circuit-sampling workloads (the paper's introductory motivation).

The intro frames bitstring sampling from random circuits as the "quantum
supremacy" benchmark [Bouland et al. 2019].  This module builds
Sycamore-style pseudo-random circuits on a 2-D grid — alternating layers
of random single-qubit gates (sqrt-X, sqrt-Y, sqrt-W-like) and a cycled
pattern of two-qubit entanglers on grid edges — plus the linear
cross-entropy (XEB) scoring used to certify samples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..circuits import (
    Circuit,
    GridQubit,
    ISWAP,
    PhasedXPowGate,
    XPowGate,
    YPowGate,
    measure,
)

# The canonical single-qubit set: sqrt-X, sqrt-Y, sqrt-W.  The sqrt-W gate
# (PhasedX at phase 1/4) is the non-Clifford member that drives the output
# distribution to Porter-Thomas.
_SQRT_GATES = [
    XPowGate(exponent=0.5),
    YPowGate(exponent=0.5),
    PhasedXPowGate(phase_exponent=0.25, exponent=0.5),
]


def _grid_edge_pattern(
    rows: int, cols: int
) -> List[List[Tuple[GridQubit, GridQubit]]]:
    """Four staggered edge colorings of the grid (A/B/C/D cycles)."""
    horiz_even, horiz_odd, vert_even, vert_odd = [], [], [], []
    for r in range(rows):
        for c in range(cols - 1):
            edge = (GridQubit(r, c), GridQubit(r, c + 1))
            (horiz_even if c % 2 == 0 else horiz_odd).append(edge)
    for r in range(rows - 1):
        for c in range(cols):
            edge = (GridQubit(r, c), GridQubit(r + 1, c))
            (vert_even if r % 2 == 0 else vert_odd).append(edge)
    return [horiz_even, vert_even, horiz_odd, vert_odd]


def random_supremacy_circuit(
    rows: int,
    cols: int,
    cycles: int,
    entangler=ISWAP,
    random_state: Union[int, np.random.Generator, None] = None,
    measure_key: Optional[str] = "m",
) -> Circuit:
    """Sycamore-style random circuit on a ``rows x cols`` grid.

    Each cycle: a layer of random sqrt-gates (never repeating the previous
    gate on a qubit) followed by one of four staggered entangler patterns.

    Args:
        rows, cols: Grid dimensions.
        cycles: Number of (1q layer, 2q layer) cycles.
        entangler: Two-qubit gate applied on pattern edges.
        random_state: Seed or generator.
        measure_key: Terminal measurement key (None to omit).
    """
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    qubits = GridQubit.rect(rows, cols)
    patterns = _grid_edge_pattern(rows, cols)
    last_gate = {q: -1 for q in qubits}

    circuit = Circuit()
    for cycle in range(cycles):
        layer = []
        for q in qubits:
            choices = [
                i for i in range(len(_SQRT_GATES)) if i != last_gate[q]
            ]
            pick = int(rng.choice(choices))
            last_gate[q] = pick
            layer.append(_SQRT_GATES[pick].on(q))
        circuit.append_new_moment(layer)
        edges = patterns[cycle % len(patterns)]
        if edges:
            circuit.append_new_moment(entangler.on(a, b) for a, b in edges)
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def xeb_fidelity(
    samples: np.ndarray, ideal_probabilities: np.ndarray
) -> float:
    """Linear XEB fidelity of samples against the ideal distribution.

    1.0 for a perfect sampler of a Porter-Thomas distribution, ~0 for a
    uniform sampler.
    """
    from ..analysis import linear_xeb

    return linear_xeb(samples, ideal_probabilities)
