"""Random-circuit-sampling workloads (the paper's introductory motivation).

The intro frames bitstring sampling from random circuits as the "quantum
supremacy" benchmark [Bouland et al. 2019].  This module builds
Sycamore-style pseudo-random circuits on a 2-D grid — alternating layers
of random single-qubit gates (sqrt-X, sqrt-Y, sqrt-W-like) and a cycled
pattern of two-qubit entanglers on grid edges — plus the linear
cross-entropy (XEB) scoring used to certify samples.

The headline verification workload lives in :func:`run_xeb_workload` /
:func:`stream_xeb_workload`: sweep many *distinct* random circuits
through ``Simulator.run_batch(scope="points")`` (one warm-pool init for
the whole ensemble, one pool point per circuit) and score each circuit's
samples with the batched estimators in :mod:`repro.analysis.xeb`.  The
streaming variant yields per-circuit estimates as points land on the
pool, bit-for-bit equal to the blocking path.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.xeb import (
    XEBEstimate,
    XEBResult,
    ensemble_xeb,
    linear_xeb_estimate,
)
from ..circuits import (
    Circuit,
    GridQubit,
    ISWAP,
    PhasedXPowGate,
    XPowGate,
    YPowGate,
    measure,
)

# The canonical single-qubit set: sqrt-X, sqrt-Y, sqrt-W.  The sqrt-W gate
# (PhasedX at phase 1/4) is the non-Clifford member that drives the output
# distribution to Porter-Thomas.
_SQRT_GATES = [
    XPowGate(exponent=0.5),
    YPowGate(exponent=0.5),
    PhasedXPowGate(phase_exponent=0.25, exponent=0.5),
]


def _grid_edge_pattern(
    rows: int, cols: int
) -> List[List[Tuple[GridQubit, GridQubit]]]:
    """Four staggered edge colorings of the grid (A/B/C/D cycles)."""
    horiz_even, horiz_odd, vert_even, vert_odd = [], [], [], []
    for r in range(rows):
        for c in range(cols - 1):
            edge = (GridQubit(r, c), GridQubit(r, c + 1))
            (horiz_even if c % 2 == 0 else horiz_odd).append(edge)
    for r in range(rows - 1):
        for c in range(cols):
            edge = (GridQubit(r, c), GridQubit(r + 1, c))
            (vert_even if r % 2 == 0 else vert_odd).append(edge)
    return [horiz_even, vert_even, horiz_odd, vert_odd]


def _split_pulses(gate, pulse_splits: int) -> List:
    """One sqrt gate as ``pulse_splits`` equal same-axis fractional pulses.

    Mimics hardware pulse decomposition: ``X^t`` becomes ``pulse_splits``
    consecutive ``X^(t/k)`` pulses (same class, same phase for PhasedX),
    whose product is the original gate exactly.  ``MergeRotations``
    collapses these runs back to one gate.
    """
    if pulse_splits == 1:
        return [gate]
    if isinstance(gate, PhasedXPowGate):
        pulse = PhasedXPowGate(
            phase_exponent=gate.phase_exponent,
            exponent=float(gate.exponent) / pulse_splits,
        )
    else:
        pulse = type(gate)(exponent=float(gate.exponent) / pulse_splits)
    return [pulse] * pulse_splits


def random_supremacy_circuit(
    rows: int,
    cols: int,
    cycles: int,
    entangler=ISWAP,
    random_state: Union[int, np.random.Generator, None] = None,
    measure_key: Optional[str] = "m",
    pulse_splits: int = 1,
) -> Circuit:
    """Sycamore-style random circuit on a ``rows x cols`` grid.

    Each cycle: a layer of random sqrt-gates (never repeating the previous
    gate on a qubit) followed by one of four staggered entangler patterns.

    Args:
        rows, cols: Grid dimensions.
        cycles: Number of (1q layer, 2q layer) cycles.
        entangler: Two-qubit gate applied on pattern edges.
        random_state: Seed or generator.
        measure_key: Terminal measurement key (None to omit).
        pulse_splits: Emit each single-qubit sqrt gate as this many
            consecutive equal same-axis fractional pulses (hardware-style
            pulse decomposition; the product is the original gate
            exactly).  The gate choices consume the rng identically for
            every value, so the same seed at different ``pulse_splits``
            describes the same unitary.
    """
    if pulse_splits < 1:
        raise ValueError(f"pulse_splits must be >= 1, got {pulse_splits}")
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    qubits = GridQubit.rect(rows, cols)
    patterns = _grid_edge_pattern(rows, cols)
    last_gate = {q: -1 for q in qubits}

    circuit = Circuit()
    for cycle in range(cycles):
        pulse_layers = [[] for _ in range(pulse_splits)]
        for q in qubits:
            choices = [
                i for i in range(len(_SQRT_GATES)) if i != last_gate[q]
            ]
            pick = int(rng.choice(choices))
            last_gate[q] = pick
            for layer, pulse in zip(
                pulse_layers, _split_pulses(_SQRT_GATES[pick], pulse_splits)
            ):
                layer.append(pulse.on(q))
        for layer in pulse_layers:
            circuit.append_new_moment(layer)
        edges = patterns[cycle % len(patterns)]
        if edges:
            circuit.append_new_moment(entangler.on(a, b) for a, b in edges)
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def xeb_circuits(
    rows: int,
    cols: int,
    cycles: int,
    num_circuits: int,
    *,
    entangler=ISWAP,
    pulse_splits: int = 1,
    random_state: Union[int, np.random.Generator, None] = None,
    measure_key: str = "m",
) -> List[Circuit]:
    """An ensemble of distinct random supremacy circuits for one XEB batch.

    One parent rng deterministically derives a child seed per circuit, so
    a single ``random_state`` pins the whole ensemble while every member
    stays distinct — the shape ``run_batch(scope="points")`` fans across
    the warm pool as one multi-program payload.
    """
    if num_circuits < 1:
        raise ValueError(f"num_circuits must be >= 1, got {num_circuits}")
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    seeds = rng.integers(0, 2**63, size=num_circuits)
    return [
        random_supremacy_circuit(
            rows,
            cols,
            cycles,
            entangler=entangler,
            random_state=int(seed),
            measure_key=measure_key,
            pulse_splits=pulse_splits,
        )
        for seed in seeds
    ]


def ideal_output_probabilities(circuit: Circuit) -> np.ndarray:
    """Exact Born distribution of a circuit's terminal measurement.

    Strips measurements and evolves the state vector over the circuit's
    canonical (sorted) qubit order — the same order ``measure(*qubits)``
    records bits in — so the result indexes bitstrings exactly as
    :func:`repro.analysis.linear_xeb` expects (first qubit = MSB).
    """
    qubits = circuit.all_qubits()
    state = circuit.without_measurements().final_state_vector(
        qubit_order=qubits
    )
    return np.abs(state) ** 2


def xeb_fidelity(
    samples: np.ndarray, ideal_probabilities: np.ndarray
) -> float:
    """Linear XEB fidelity of samples against the ideal distribution.

    1.0 for a perfect sampler of a Porter-Thomas distribution, ~0 for a
    uniform sampler.
    """
    from ..analysis import linear_xeb

    return linear_xeb(samples, ideal_probabilities)


def _workload_samples(circuit: Circuit, result) -> np.ndarray:
    """The (reps, n) sample array of a workload circuit's one measurement."""
    keys = circuit.all_measurement_keys()
    if len(keys) != 1:
        raise ValueError(
            f"XEB workload circuits need exactly one measurement key, "
            f"got {keys}"
        )
    return result.measurements[keys[0]]


def stream_xeb_workload(
    simulator,
    circuits: Sequence[Circuit],
    repetitions: int,
    *,
    probabilities: Optional[Sequence[np.ndarray]] = None,
    scope: str = "points",
) -> Iterator[XEBEstimate]:
    """Stream per-circuit XEB estimates as batch points land on the pool.

    Feeds the whole ensemble through ``Simulator.run_batch_iter`` —
    hundreds of distinct circuits become one multi-program pool payload
    (one warm-pool init total, one point per circuit) — and scores each
    circuit's samples the moment its :class:`Result` completes, while
    later circuits are still sampling.  Bit-for-bit equal to scoring the
    blocking :func:`run_xeb_workload` path.

    Args:
        simulator: A ``repro.sampler.Simulator`` (pooled executor for the
            fan-out; serial works too, it just streams in-process).
        circuits: Distinct measured circuits (e.g. :func:`xeb_circuits`).
        repetitions: Samples per circuit.
        probabilities: Optional precomputed exact Born distribution per
            circuit (skips the statevector recomputation — the bench
            reuses one set across transpile variants).
        scope: Forwarded to ``run_batch_iter``; ``"points"`` is the
            one-point-per-circuit contract this workload is shaped for.
    """
    circuits = list(circuits)
    if probabilities is None:
        probabilities = [ideal_output_probabilities(c) for c in circuits]
    else:
        probabilities = list(probabilities)
        if len(probabilities) != len(circuits):
            raise ValueError(
                f"Got {len(circuits)} circuits but {len(probabilities)} "
                f"distributions"
            )
    results = simulator.run_batch_iter(
        circuits, repetitions=repetitions, scope=scope
    )
    for circuit, probs, result in zip(circuits, probabilities, results):
        yield linear_xeb_estimate(_workload_samples(circuit, result), probs)


def run_xeb_workload(
    simulator,
    circuits: Sequence[Circuit],
    repetitions: int,
    *,
    probabilities: Optional[Sequence[np.ndarray]] = None,
    scope: str = "points",
) -> XEBResult:
    """Blocking ensemble XEB over a batch of distinct random circuits.

    ``run_batch`` + batched scoring; the ensemble combination (equal
    circuit weights, propagated and scatter error bars) is
    :func:`repro.analysis.ensemble_xeb`.  Equals
    ``ensemble_xeb(stream_xeb_workload(...))`` bit-for-bit.
    """
    return ensemble_xeb(
        stream_xeb_workload(
            simulator,
            circuits,
            repetitions,
            probabilities=probabilities,
            scope=scope,
        )
    )
