"""Quantum teleportation with real mid-circuit measurements.

Exercises the trajectory path of the BGLS simulator (paper Sec. 3.2.1):
the Bell measurement happens *mid-circuit*, collapsing the state, and the
corrections are applied with deferred-measurement quantum controls (CNOT
and CZ from the measured qubits), which commute with the measurements —
so the teleported qubit is exact while the records still show all four
(m0, m1) outcomes uniformly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits import (
    CNOT,
    CZ,
    Circuit,
    H,
    LineQubit,
    MatrixGate,
    Qid,
    measure,
)


def teleportation_circuit(
    message_preparation: Optional[np.ndarray] = None,
    *,
    verify: bool = True,
    qubits: Optional[Sequence[Qid]] = None,
) -> Circuit:
    """The 3-qubit teleportation circuit.

    Register: ``[message, alice, bob]``.  The message qubit is prepared by
    the given single-qubit unitary (defaults to a fixed non-trivial one),
    teleported onto bob via a mid-circuit Bell measurement plus deferred
    corrections, and — when ``verify`` — un-prepared on bob and measured
    under key ``"verify"``, which must then read 0 with probability 1.

    Measurement keys: ``"m0"`` (message), ``"m1"`` (alice), ``"verify"``.
    """
    if message_preparation is None:
        # An arbitrary fixed state: Rx-then-Rz rotated, nothing special.
        theta, phi = 1.1, 0.6
        message_preparation = np.array(
            [
                [np.cos(theta / 2), -1j * np.sin(theta / 2)],
                [-1j * np.sin(theta / 2), np.cos(theta / 2)],
            ]
        ) @ np.diag([1.0, np.exp(1j * phi)])
    prep = MatrixGate(np.asarray(message_preparation, dtype=np.complex128))

    if qubits is None:
        qubits = LineQubit.range(3)
    msg, alice, bob = qubits

    circuit = Circuit()
    circuit.append(prep.on(msg))
    # Shared Bell pair between alice and bob.
    circuit.append(H.on(alice))
    circuit.append(CNOT.on(alice, bob))
    # Bell measurement of (msg, alice) — mid-circuit.
    circuit.append(CNOT.on(msg, alice))
    circuit.append(H.on(msg))
    circuit.append(measure(msg, key="m0"))
    circuit.append(measure(alice, key="m1"))
    # Deferred-measurement corrections: X^m1 then Z^m0 on bob.
    circuit.append(CNOT.on(alice, bob))
    circuit.append(CZ.on(msg, bob))
    if verify:
        circuit.append(MatrixGate(prep._unitary_().conj().T).on(bob))
        circuit.append(measure(bob, key="verify"))
    return circuit


def teleportation_fidelity(result) -> float:
    """Fraction of repetitions whose verification qubit read 0."""
    records = result.measurements["verify"]
    return float(np.mean(np.asarray(records) == 0))


def bell_measurement_distribution(result) -> np.ndarray:
    """Empirical distribution over the four (m0, m1) outcomes."""
    m0 = np.asarray(result.measurements["m0"]).reshape(-1)
    m1 = np.asarray(result.measurements["m1"]).reshape(-1)
    hist = np.zeros(4)
    for a, b in zip(m0, m1):
        hist[2 * int(a) + int(b)] += 1
    return hist / hist.sum()
