"""Grover search: oracle + diffusion, with the optimal iteration count.

A dense-state workload whose output distribution is extremely peaked —
the opposite regime from random-circuit sampling — exercising the BGLS
candidate-resampling path on near-deterministic distributions.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Set, Union

import numpy as np

from ..circuits import (
    Circuit,
    H,
    LineQubit,
    MatrixGate,
    Qid,
    measure,
)
from ..states.base import bits_to_index


def _as_index_set(
    marked: Iterable[Union[int, Sequence[int]]], n: int
) -> Set[int]:
    """Normalize marked items (ints or bit tuples) to basis-state indices."""
    out: Set[int] = set()
    for item in marked:
        if isinstance(item, (int, np.integer)):
            index = int(item)
        else:
            bits = list(item)
            if len(bits) != n:
                raise ValueError(
                    f"Marked bitstring {item!r} has wrong length (want {n})"
                )
            index = bits_to_index(bits)
        if not 0 <= index < 2**n:
            raise ValueError(f"Marked index {index} out of range for {n} qubits")
        out.add(index)
    if not out:
        raise ValueError("Need at least one marked state")
    return out


def oracle_gate(marked: Iterable, n: int) -> MatrixGate:
    """The phase oracle ``O|x> = -|x>`` for marked ``x``, else ``+|x>``."""
    indices = _as_index_set(marked, n)
    diag = np.ones(2**n, dtype=np.complex128)
    for index in indices:
        diag[index] = -1.0
    return MatrixGate(np.diag(diag))


def diffusion_gate(n: int) -> MatrixGate:
    """The Grover diffusion operator ``2|s><s| - I`` over ``n`` qubits."""
    dim = 2**n
    s = np.full((dim, 1), 1.0 / math.sqrt(dim), dtype=np.complex128)
    return MatrixGate(2.0 * (s @ s.conj().T) - np.eye(dim))


def optimal_iterations(n: int, num_marked: int) -> int:
    """``round(pi/4 sqrt(N/M))``-ish optimal Grover iteration count."""
    if num_marked < 1:
        raise ValueError("num_marked must be >= 1")
    ratio = (2**n) / num_marked
    theta = math.asin(math.sqrt(1.0 / ratio))
    return max(0, int(round(math.pi / (4.0 * theta) - 0.5)))


def grover_circuit(
    n: int,
    marked: Iterable,
    iterations: Optional[int] = None,
    qubits: Optional[Sequence[Qid]] = None,
    measure_key: Optional[str] = "z",
) -> Circuit:
    """The full Grover circuit: uniform prep, ``iterations`` rounds, measure.

    Args:
        n: Number of qubits.
        marked: Marked basis states (indices or bit tuples).
        iterations: Defaults to the optimal count for ``len(marked)``.
        qubits: Defaults to ``LineQubit.range(n)``.
        measure_key: Terminal measurement key (None to omit).
    """
    indices = _as_index_set(marked, n)
    if iterations is None:
        iterations = optimal_iterations(n, len(indices))
    if qubits is None:
        qubits = LineQubit.range(n)
    qubits = list(qubits)
    if len(qubits) != n:
        raise ValueError(f"Expected {n} qubits, got {len(qubits)}")

    circuit = Circuit(H.on(q) for q in qubits)
    oracle = oracle_gate(indices, n)
    diffusion = diffusion_gate(n)
    for _ in range(iterations):
        circuit.append(oracle.on(*qubits))
        circuit.append(diffusion.on(*qubits))
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def success_probability(samples: np.ndarray, marked: Iterable) -> float:
    """Fraction of sampled rows landing in the marked set."""
    samples = np.asarray(samples)
    n = samples.shape[1]
    indices = _as_index_set(marked, n)
    hits = sum(1 for row in samples if bits_to_index(row) in indices)
    return hits / samples.shape[0]
