"""GHZ circuit builders (paper Fig. 1 and Fig. 6 workloads)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..circuits import CNOT, Circuit, H, LineQubit, Qid, measure


def ghz_circuit(
    qubits: Union[int, Sequence[Qid]],
    measure_key: Optional[str] = "z",
) -> Circuit:
    """Linear-chain GHZ circuit: H then a CNOT ladder.

    The 2-qubit instance is the paper's Fig. 1 example; sampling returns
    only the all-zeros and all-ones bitstrings.
    """
    if isinstance(qubits, int):
        qubits = LineQubit.range(qubits)
    qubits = list(qubits)
    circuit = Circuit(H.on(qubits[0]))
    for a, b in zip(qubits, qubits[1:]):
        circuit.append(CNOT.on(a, b))
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit


def random_ghz_circuit(
    qubits: Union[int, Sequence[Qid]],
    random_state: Union[int, np.random.Generator, None] = None,
    measure_key: Optional[str] = None,
) -> Circuit:
    """GHZ circuit with randomly sequenced CNOTs (paper Fig. 6a).

    Qubits are entangled in a random order, each by a CNOT from a randomly
    chosen already-entangled qubit.  The final state is exactly GHZ, but
    the random connectivity makes the naive MPS tensor network dense —
    the workload where MPS scales as badly as a dense state vector.
    """
    if isinstance(qubits, int):
        qubits = LineQubit.range(qubits)
    qubits = list(qubits)
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    order = list(rng.permutation(len(qubits)))
    root = order[0]
    circuit = Circuit(H.on(qubits[root]))
    entangled: List[int] = [root]
    for nxt in order[1:]:
        control = entangled[int(rng.integers(len(entangled)))]
        circuit.append(CNOT.on(qubits[control], qubits[nxt]))
        entangled.append(nxt)
    if measure_key is not None:
        circuit.append(measure(*qubits, key=measure_key))
    return circuit
