"""Applications: GHZ builders, scaling workloads, QAOA MaxCut, QFT/QPE,
Grover, Bernstein-Vazirani, VQE (TFIM), quantum volume, teleportation."""

from .bernstein_vazirani import (
    bernstein_vazirani_circuit,
    parse_secret,
    recover_secret,
)
from .error_correction import (
    decode_with_syndrome,
    logical_error_rate,
    majority_decode,
    repetition_code_circuit,
    syndrome_distribution,
    theoretical_logical_error_rate,
)
from .ghz import ghz_circuit, random_ghz_circuit
from .grover import (
    diffusion_gate,
    grover_circuit,
    optimal_iterations,
    oracle_gate,
    success_probability,
)
from .qaoa import (
    QAOAResult,
    average_cut,
    brute_force_maxcut,
    cut_value,
    qaoa_maxcut_circuit,
    random_graph,
    solve_maxcut,
    sweep_parameters,
)
from .qft import (
    estimate_phase,
    phase_estimation_circuit,
    phase_from_bits,
    qft_circuit,
    qft_matrix,
)
from .quantum_volume import (
    IDEAL_ASYMPTOTIC_HOP,
    QuantumVolumeResult,
    heavy_output_probability,
    heavy_set,
    ideal_probabilities,
    quantum_volume_circuit,
    run_quantum_volume,
)
from .supremacy import random_supremacy_circuit, xeb_fidelity
from .teleportation import (
    bell_measurement_distribution,
    teleportation_circuit,
    teleportation_fidelity,
)
from .vqe import (
    TFIMProblem,
    VQEResult,
    energy_from_samples,
    exact_energy_of_parameters,
    exact_ground_energy,
    optimize_tfim,
    tfim_ansatz_circuit,
    tfim_hamiltonian_matrix,
)
from .workloads import random_fixed_cnot_circuit, random_shallow_circuit

__all__ = [
    "ghz_circuit",
    "random_ghz_circuit",
    "random_supremacy_circuit",
    "xeb_fidelity",
    "random_fixed_cnot_circuit",
    "random_shallow_circuit",
    "QAOAResult",
    "average_cut",
    "brute_force_maxcut",
    "cut_value",
    "qaoa_maxcut_circuit",
    "random_graph",
    "solve_maxcut",
    "sweep_parameters",
    "qft_circuit",
    "qft_matrix",
    "phase_estimation_circuit",
    "phase_from_bits",
    "estimate_phase",
    "grover_circuit",
    "oracle_gate",
    "diffusion_gate",
    "optimal_iterations",
    "success_probability",
    "bernstein_vazirani_circuit",
    "parse_secret",
    "recover_secret",
    "TFIMProblem",
    "VQEResult",
    "tfim_ansatz_circuit",
    "tfim_hamiltonian_matrix",
    "exact_ground_energy",
    "exact_energy_of_parameters",
    "energy_from_samples",
    "optimize_tfim",
    "quantum_volume_circuit",
    "QuantumVolumeResult",
    "heavy_set",
    "heavy_output_probability",
    "ideal_probabilities",
    "run_quantum_volume",
    "IDEAL_ASYMPTOTIC_HOP",
    "teleportation_circuit",
    "teleportation_fidelity",
    "bell_measurement_distribution",
    "repetition_code_circuit",
    "majority_decode",
    "decode_with_syndrome",
    "logical_error_rate",
    "theoretical_logical_error_rate",
    "syndrome_distribution",
]
