"""Thermal relaxation: the T1/T2 channel of real hardware.

Combines amplitude damping (energy relaxation, time constant T1) and pure
dephasing so the off-diagonal coherence decays with time constant T2.
Physicality requires ``T2 <= 2 T1``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..circuits.gates import Gate


class ThermalRelaxationChannel(Gate):
    """Single-qubit thermal relaxation over duration ``t``.

    Kraus form: amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed
    with phase damping chosen so total coherence decay is ``exp(-t/T2)``.

    Args:
        t1: Energy relaxation time constant (same units as ``t``).
        t2: Coherence time constant; must satisfy ``t2 <= 2 * t1``.
        t: Gate/idle duration the channel models.
    """

    def __init__(self, t1: float, t2: float, t: float):
        t1, t2, t = float(t1), float(t2), float(t)
        if t1 <= 0 or t2 <= 0:
            raise ValueError("T1 and T2 must be positive")
        if t2 > 2.0 * t1 + 1e-12:
            raise ValueError(f"Unphysical parameters: T2={t2} > 2*T1={2 * t1}")
        if t < 0:
            raise ValueError(f"Duration must be non-negative, got {t}")
        self.t1 = t1
        self.t2 = t2
        self.t = t

    def num_qubits(self) -> int:
        return 1

    def _unitary_(self):
        return None

    def _gamma_lambda(self) -> Tuple[float, float]:
        """(amplitude-damping gamma, extra phase-damping lambda)."""
        gamma = 1.0 - math.exp(-self.t / self.t1)
        # After AD, coherence scales by sqrt(1-gamma) = e^{-t/(2 T1)};
        # the residual dephasing must supply e^{-t/T2 + t/(2 T1)}.
        residual = math.exp(-self.t / self.t2 + self.t / (2.0 * self.t1))
        lam = 1.0 - residual**2
        return gamma, max(0.0, min(1.0, lam))

    def _kraus_(self) -> List[np.ndarray]:
        gamma, lam = self._gamma_lambda()
        keep = math.sqrt(max(0.0, (1.0 - gamma) * (1.0 - lam)))
        k0 = np.array([[1.0, 0.0], [0.0, keep]], dtype=np.complex128)
        k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=np.complex128)
        k2 = np.array(
            [[0.0, 0.0], [0.0, math.sqrt((1.0 - gamma) * lam)]],
            dtype=np.complex128,
        )
        return [k0, k1, k2]

    def _diagram_symbols_(self) -> Tuple[str, ...]:
        return (f"TR(T1={self.t1},T2={self.t2},t={self.t})",)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ThermalRelaxationChannel):
            return NotImplemented
        return (self.t1, self.t2, self.t) == (other.t1, other.t2, other.t)

    def __hash__(self) -> int:
        return hash(("ThermalRelaxationChannel", self.t1, self.t2, self.t))

    def __repr__(self) -> str:
        return f"ThermalRelaxationChannel(t1={self.t1}, t2={self.t2}, t={self.t})"


def thermal_relaxation(t1: float, t2: float, t: float) -> ThermalRelaxationChannel:
    """Thermal relaxation channel over duration ``t`` with constants T1, T2."""
    return ThermalRelaxationChannel(t1, t2, t)
