"""Noise models: rules mapping clean circuits to noisy ones.

A :class:`NoiseModel` decides which channel (if any) follows each
operation or moment.  ``apply_noise`` rewrites a circuit by interleaving
the model's channels; the result is a non-unitary circuit that the BGLS
simulator runs in quantum-trajectory mode (paper Sec. 3.2.1) and the
density-matrix state evolves exactly — the test suite checks the two
agree.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..circuits import channels
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..circuits.moment import Moment
from ..circuits.operations import GateOperation
from ..circuits.qubits import Qid


class NoiseModel(abc.ABC):
    """Maps each clean moment to the operations that follow it."""

    @abc.abstractmethod
    def noise_after_moment(
        self, moment: Moment, system_qubits: Sequence[Qid]
    ) -> List[GateOperation]:
        """Noise operations to insert after ``moment`` (may be empty)."""

    def is_virtual(self, op: GateOperation) -> bool:
        """Operations exempt from noise (measurements by default)."""
        return op.is_measurement


class NoNoise(NoiseModel):
    """The trivial model: circuits pass through unchanged."""

    def noise_after_moment(self, moment, system_qubits):
        return []


class ConstantNoiseModel(NoiseModel):
    """One fixed channel on every qubit touched by each moment.

    Args:
        channel_factory: Zero-argument callable returning the channel gate
            (e.g. ``lambda: channels.depolarize(0.01)``) — or a fixed Gate,
            which will be reused directly (gates are immutable).
    """

    def __init__(self, channel_factory: Union[Callable[[], Gate], Gate]):
        if isinstance(channel_factory, Gate):
            # Gates are immutable values, so reusing one instance is safe.
            gate = channel_factory
            self._factory = lambda: gate
        else:
            self._factory = channel_factory

    def noise_after_moment(self, moment, system_qubits):
        noisy = []
        for op in moment.operations:
            if self.is_virtual(op):
                continue
            for q in op.qubits:
                noisy.append(self._factory().on(q))
        return noisy


class DepolarizingNoiseModel(NoiseModel):
    """Gate-dependent depolarizing noise: rate ``p1`` after 1-qubit gates
    (per qubit) and ``p2`` after 2+-qubit gates (on each participating
    qubit) — the standard coarse model of hardware where entangling gates
    are an order of magnitude noisier.
    """

    def __init__(self, p1: float, p2: Optional[float] = None):
        self.p1 = float(p1)
        self.p2 = self.p1 if p2 is None else float(p2)
        for p in (self.p1, self.p2):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"Depolarizing rate must be in [0, 1], got {p}")

    def noise_after_moment(self, moment, system_qubits):
        noisy = []
        for op in moment.operations:
            if self.is_virtual(op):
                continue
            rate = self.p1 if len(op.qubits) == 1 else self.p2
            if rate == 0.0:
                continue
            for q in op.qubits:
                noisy.append(channels.depolarize(rate).on(q))
        return noisy


class PerQubitNoiseModel(NoiseModel):
    """Qubit-addressed channels: e.g. one bad qubit on a device.

    Args:
        channel_by_qubit: Map from qubit to the channel gate applied after
            every moment that touches the qubit.  Unlisted qubits are clean.
    """

    def __init__(self, channel_by_qubit: Dict[Qid, Gate]):
        self._by_qubit = dict(channel_by_qubit)

    def noise_after_moment(self, moment, system_qubits):
        noisy = []
        for op in moment.operations:
            if self.is_virtual(op):
                continue
            for q in op.qubits:
                gate = self._by_qubit.get(q)
                if gate is not None:
                    noisy.append(gate.on(q))
        return noisy


class IdleNoiseModel(NoiseModel):
    """Noise on *idle* qubits: decoherence while waiting for other gates.

    Each moment, every system qubit not acted on receives the idle channel
    (amplitude damping models T1 decay during the moment's duration).
    """

    def __init__(self, idle_channel: Gate):
        self.idle_channel = idle_channel

    def noise_after_moment(self, moment, system_qubits):
        busy = set(moment.qubits)
        return [
            self.idle_channel.on(q) for q in system_qubits if q not in busy
        ]


class ComposedNoiseModel(NoiseModel):
    """Union of several models (their channels are concatenated per moment)."""

    def __init__(self, models: Iterable[NoiseModel]):
        self.models = list(models)

    def noise_after_moment(self, moment, system_qubits):
        noisy = []
        for model in self.models:
            noisy.extend(model.noise_after_moment(moment, system_qubits))
        return noisy


def apply_noise(
    circuit: Circuit,
    model: NoiseModel,
    system_qubits: Optional[Sequence[Qid]] = None,
) -> Circuit:
    """Interleave the model's channels after each moment of ``circuit``.

    Moment structure is preserved: each clean moment is followed by one
    moment of noise operations (when the model emits any).

    Args:
        circuit: The clean circuit.
        model: The noise model to apply.
        system_qubits: The full device register; defaults to the circuit's
            own qubits.  Matters for :class:`IdleNoiseModel`, where qubits
            never touched by the circuit still decohere.
    """
    if system_qubits is None:
        system_qubits = circuit.all_qubits()
    out = Circuit()
    for moment in circuit.moments:
        out.append_new_moment(moment.operations)
        noise_ops = model.noise_after_moment(moment, system_qubits)
        if noise_ops:
            out.append_new_moment(noise_ops)
    return out
