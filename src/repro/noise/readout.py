"""Classical readout error: asymmetric bit flips on measurement records.

Readout error is classical post-processing — it commutes with everything
in the quantum circuit — so it is applied to sampled bit arrays rather
than simulated as a channel.  This keeps the automatic sample
parallelization (paper Sec. 3.2.3) available for noisy-readout studies:
the quantum part stays unitary.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..sampler.results import Result


class ReadoutErrorModel:
    """Asymmetric classical bit-flip error.

    Args:
        p0_to_1: Probability a true 0 is read out as 1.
        p1_to_0: Probability a true 1 is read out as 0.
    """

    def __init__(self, p0_to_1: float, p1_to_0: float):
        for name, p in (("p0_to_1", p0_to_1), ("p1_to_0", p1_to_0)):
            if not 0.0 <= float(p) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p0_to_1 = float(p0_to_1)
        self.p1_to_0 = float(p1_to_0)

    def apply_to_bits(
        self,
        bits: np.ndarray,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> np.ndarray:
        """Flip each bit with its state-dependent probability (vectorized)."""
        rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        bits = np.asarray(bits)
        flips_up = (bits == 0) & (rng.random(bits.shape) < self.p0_to_1)
        flips_down = (bits == 1) & (rng.random(bits.shape) < self.p1_to_0)
        return (bits ^ flips_up ^ flips_down).astype(bits.dtype)

    def apply_to_result(
        self,
        result: Result,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> Result:
        """A new :class:`Result` with every key's records corrupted."""
        rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        noisy: Dict[str, np.ndarray] = {
            key: self.apply_to_bits(records, rng)
            for key, records in result.measurements.items()
        }
        return Result(noisy)

    def confusion_matrix(self) -> np.ndarray:
        """The 2x2 single-bit confusion matrix ``M[read, true]``."""
        return np.array(
            [
                [1.0 - self.p0_to_1, self.p1_to_0],
                [self.p0_to_1, 1.0 - self.p1_to_0],
            ]
        )

    def __repr__(self) -> str:
        return (
            f"ReadoutErrorModel(p0_to_1={self.p0_to_1}, "
            f"p1_to_0={self.p1_to_0})"
        )
