"""Noise modelling: circuit-level noise models, readout error, T1/T2.

The paper (Sec. 3.2.1) supports noisy simulation through quantum
trajectories; this package supplies the modelling layer above the raw
channels of :mod:`repro.circuits.channels` — device-style noise models
that rewrite clean circuits, classical readout error applied to sampled
records, and the thermal-relaxation channel of real hardware.
"""

from .model import (
    ComposedNoiseModel,
    ConstantNoiseModel,
    DepolarizingNoiseModel,
    IdleNoiseModel,
    NoNoise,
    NoiseModel,
    PerQubitNoiseModel,
    apply_noise,
)
from .readout import ReadoutErrorModel
from .thermal import ThermalRelaxationChannel, thermal_relaxation

__all__ = [
    "NoiseModel",
    "NoNoise",
    "ConstantNoiseModel",
    "DepolarizingNoiseModel",
    "PerQubitNoiseModel",
    "IdleNoiseModel",
    "ComposedNoiseModel",
    "apply_noise",
    "ReadoutErrorModel",
    "ThermalRelaxationChannel",
    "thermal_relaxation",
]
