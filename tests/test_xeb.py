"""Tests for the XEB verification subsystem.

Covers the :mod:`repro.analysis.xeb` estimators against exact Born
distributions with statistical error bars (ideal sampler -> fidelity ~ 1,
depolarized sampler -> fidelity tracks the analytic decay, uniform
sampler -> fidelity ~ 0), the speckle-purity and Porter-Thomas
convergence diagnostics, and the supremacy workload runners
(streamed == blocking bit-for-bit, pool fan-out with one init).
"""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro.analysis import (
    PTConvergence,
    batched_xeb_estimate,
    empirical_pt_convergence,
    ensemble_xeb,
    linear_xeb,
    linear_xeb_estimate,
    per_circuit_fidelities,
    porter_thomas_convergence,
    speckle_purity,
    xeb_sample_scores,
)
from repro.apps import (
    ideal_output_probabilities,
    random_supremacy_circuit,
    run_xeb_workload,
    stream_xeb_workload,
    xeb_circuits,
)


def make_sv_simulator(qubits, seed=0, **kw):
    return bgls.Simulator(
        bgls.StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        **kw,
    )


def pt_distribution(n, seed):
    """An exact Porter-Thomas-converged Born distribution over 2^n."""
    circuit = random_supremacy_circuit(
        1, n, cycles=12, random_state=seed, measure_key=None
    )
    return ideal_output_probabilities(circuit)


def draw_samples(probs, n, num, rng):
    """Bitstring rows drawn exactly from ``probs`` (MSB-first indexing)."""
    outcomes = rng.choice(probs.size, size=num, p=probs)
    return ((outcomes[:, None] >> np.arange(n - 1, -1, -1)) & 1).astype(
        np.uint8
    )


class TestPerCircuitEstimator:
    N = 6

    def test_ideal_sampler_fidelity_one(self):
        rng = np.random.default_rng(0)
        probs = pt_distribution(self.N, seed=1)
        samples = draw_samples(probs, self.N, 20_000, rng)
        est = linear_xeb_estimate(samples, probs)
        assert est.fidelity == pytest.approx(1.0, abs=4 * est.std_err)
        assert 0 < est.std_err < 0.05
        assert est.num_samples == 20_000

    def test_uniform_sampler_fidelity_zero(self):
        rng = np.random.default_rng(2)
        probs = pt_distribution(self.N, seed=3)
        samples = rng.integers(0, 2, size=(20_000, self.N)).astype(np.uint8)
        est = linear_xeb_estimate(samples, probs)
        assert est.fidelity == pytest.approx(0.0, abs=4 * est.std_err)

    @pytest.mark.parametrize("f", [0.25, 0.5, 0.75])
    def test_depolarized_sampler_tracks_analytic_decay(self, f):
        # Global depolarizing at fidelity f: sample from p with prob f,
        # uniformly otherwise.  Linear XEB is linear in the sampled
        # distribution, so the normalized score must track f.
        rng = np.random.default_rng(int(f * 100))
        probs = pt_distribution(self.N, seed=4)
        depolarized = f * probs + (1 - f) / probs.size
        samples = draw_samples(depolarized, self.N, 40_000, rng)
        est = linear_xeb_estimate(samples, probs)
        assert est.fidelity == pytest.approx(f, abs=4 * est.std_err)

    def test_raw_score_matches_linear_xeb(self):
        rng = np.random.default_rng(5)
        probs = pt_distribution(self.N, seed=6)
        samples = draw_samples(probs, self.N, 500, rng)
        est = linear_xeb_estimate(samples, probs)
        assert est.raw_xeb == pytest.approx(linear_xeb(samples, probs))
        # Normalization: fidelity = raw / ideal.
        assert est.fidelity == pytest.approx(est.raw_xeb / est.ideal_xeb)

    def test_error_bar_shrinks_with_samples(self):
        rng = np.random.default_rng(7)
        probs = pt_distribution(self.N, seed=8)
        small = linear_xeb_estimate(
            draw_samples(probs, self.N, 500, rng), probs
        )
        large = linear_xeb_estimate(
            draw_samples(probs, self.N, 50_000, rng), probs
        )
        assert large.std_err < small.std_err / 5

    def test_sample_scores_shape_and_mean(self):
        rng = np.random.default_rng(9)
        probs = pt_distribution(self.N, seed=10)
        samples = draw_samples(probs, self.N, 300, rng)
        scores = xeb_sample_scores(samples, probs)
        assert scores.shape == (300,)
        assert scores.mean() == pytest.approx(linear_xeb(samples, probs))

    def test_uniform_ideal_distribution_gives_nan_fidelity(self):
        probs = np.full(2**self.N, 1 / 2**self.N)
        samples = np.zeros((10, self.N), dtype=np.uint8)
        est = linear_xeb_estimate(samples, probs)
        assert np.isnan(est.fidelity)
        assert est.ideal_xeb == pytest.approx(0.0)

    def test_shape_validation(self):
        probs = pt_distribution(self.N, seed=11)
        with pytest.raises(ValueError, match="bitstring"):
            xeb_sample_scores(np.zeros(5), probs)
        with pytest.raises(ValueError, match="probabilities"):
            xeb_sample_scores(np.zeros((5, self.N + 1), dtype=int), probs)


class TestEnsembleEstimator:
    N = 5

    def _estimates(self, num_circuits, reps, seed):
        rng = np.random.default_rng(seed)
        ests = []
        for k in range(num_circuits):
            probs = pt_distribution(self.N, seed=100 + k)
            samples = draw_samples(probs, self.N, reps, rng)
            ests.append(linear_xeb_estimate(samples, probs))
        return ests

    def test_ensemble_combines_means_and_errors(self):
        ests = self._estimates(8, 2_000, seed=0)
        res = ensemble_xeb(ests)
        assert res.num_circuits == 8
        assert res.num_samples == 8 * 2_000
        assert res.fidelity == pytest.approx(
            np.mean([e.fidelity for e in ests])
        )
        assert res.fidelity == pytest.approx(1.0, abs=5 * res.scatter_err)
        # Propagated error: sqrt(sum sigma_i^2)/K.
        expected = np.sqrt(np.sum([e.std_err**2 for e in ests])) / 8
        assert res.std_err == pytest.approx(expected)
        assert per_circuit_fidelities(res) == [e.fidelity for e in ests]

    def test_single_circuit_scatter_is_nan(self):
        res = ensemble_xeb(self._estimates(1, 500, seed=1))
        assert np.isnan(res.scatter_err)
        assert res.num_circuits == 1

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ensemble_xeb([])

    def test_batched_entry_point(self):
        rng = np.random.default_rng(2)
        probs = [pt_distribution(self.N, seed=200 + k) for k in range(3)]
        samples = [draw_samples(p, self.N, 1_000, rng) for p in probs]
        res = batched_xeb_estimate(samples, probs)
        assert res.num_circuits == 3
        with pytest.raises(ValueError, match="distributions"):
            batched_xeb_estimate(samples, probs[:2])


class TestPTDiagnostics:
    def test_speckle_purity_limits(self):
        probs = pt_distribution(6, seed=0)
        assert 0.5 < speckle_purity(probs) < 1.5
        assert speckle_purity(np.full(64, 1 / 64)) == pytest.approx(0.0)

    def test_speckle_purity_interpolates(self):
        probs = pt_distribution(6, seed=1)
        uniform = np.full(probs.size, 1 / probs.size)
        mixed = 0.5 * probs + 0.5 * uniform
        # Variance scales as the square of the mixing weight.
        assert speckle_purity(mixed) == pytest.approx(
            0.25 * speckle_purity(probs)
        )

    def test_speckle_purity_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            speckle_purity(np.ones((4, 4)))

    def test_convergence_on_pt_distribution(self):
        conv = porter_thomas_convergence(pt_distribution(6, seed=2))
        assert isinstance(conv, PTConvergence)
        assert conv.dim == 64
        assert conv.p_value > 1e-3
        assert 1.7 < conv.collision_ratio < 2.3
        assert conv.is_converged()

    def test_uniform_not_converged(self):
        conv = porter_thomas_convergence(np.full(64, 1 / 64))
        assert conv.p_value < 1e-6
        assert conv.collision_ratio == pytest.approx(1.0)
        assert not conv.is_converged()

    def test_empirical_estimate_requires_renormalize(self):
        counts = np.arange(8, dtype=float)
        with pytest.raises(ValueError, match="renormalize"):
            porter_thomas_convergence(counts)
        conv = porter_thomas_convergence(counts, renormalize=True)
        assert conv.dim == 8

    def test_empirical_convergence_from_samples(self):
        # At N = 16 the PT collision ratio itself fluctuates circuit to
        # circuit, so compare the empirical estimate against the exact
        # distribution's own ratio, not the asymptotic 2.
        rng = np.random.default_rng(3)
        n = 4
        probs = pt_distribution(n, seed=4)
        samples = draw_samples(probs, n, 200_000, rng)
        conv = empirical_pt_convergence(samples, n)
        exact = porter_thomas_convergence(probs)
        assert conv.collision_ratio == pytest.approx(
            exact.collision_ratio, abs=0.05
        )


class TestWorkloadRunners:
    def _circuits(self, num=6, seed=11):
        return xeb_circuits(2, 2, cycles=4, num_circuits=num, random_state=seed)

    def test_xeb_circuits_distinct_and_reproducible(self):
        a = self._circuits()
        b = self._circuits()
        assert [repr(c) for c in a] == [repr(c) for c in b]
        assert len({repr(c) for c in a}) == len(a)

    def test_blocking_workload_fidelity_near_one(self):
        circuits = self._circuits()
        sim = make_sv_simulator(circuits[0].all_qubits(), seed=5)
        res = run_xeb_workload(sim, circuits, repetitions=300)
        assert res.num_circuits == len(circuits)
        assert res.num_samples == len(circuits) * 300
        assert res.fidelity == pytest.approx(
            1.0, abs=max(5 * res.scatter_err, 0.3)
        )

    def test_streamed_equals_blocking_bit_for_bit(self):
        circuits = self._circuits()
        probs = [ideal_output_probabilities(c) for c in circuits]
        blocking = run_xeb_workload(
            make_sv_simulator(circuits[0].all_qubits(), seed=5),
            circuits,
            repetitions=200,
            probabilities=probs,
        )
        streamed = list(
            stream_xeb_workload(
                make_sv_simulator(circuits[0].all_qubits(), seed=5),
                circuits,
                repetitions=200,
                probabilities=probs,
            )
        )
        assert streamed == list(blocking.per_circuit)

    def test_precomputed_probabilities_match_recompute(self):
        circuits = self._circuits(num=3)
        probs = [ideal_output_probabilities(c) for c in circuits]
        a = run_xeb_workload(
            make_sv_simulator(circuits[0].all_qubits(), seed=7),
            circuits,
            repetitions=100,
        )
        b = run_xeb_workload(
            make_sv_simulator(circuits[0].all_qubits(), seed=7),
            circuits,
            repetitions=100,
            probabilities=probs,
        )
        assert a == b

    def test_probabilities_length_mismatch_rejected(self):
        circuits = self._circuits(num=3)
        sim = make_sv_simulator(circuits[0].all_qubits(), seed=0)
        with pytest.raises(ValueError, match="distributions"):
            list(
                stream_xeb_workload(
                    sim, circuits, 10, probabilities=[np.ones(16) / 16]
                )
            )

    def test_unmeasured_circuit_rejected(self):
        circuit = random_supremacy_circuit(
            2, 2, 3, random_state=0, measure_key=None
        )
        sim = make_sv_simulator(circuit.all_qubits(), seed=0)
        with pytest.raises(ValueError, match="meas"):
            run_xeb_workload(
                sim, [circuit], 10, probabilities=[np.ones(16) / 16]
            )

    def test_ideal_output_probabilities_normalized(self):
        circuit = random_supremacy_circuit(2, 2, 4, random_state=9)
        probs = ideal_output_probabilities(circuit)
        assert probs.shape == (16,)
        assert probs.sum() == pytest.approx(1.0)
